//! A minimal, offline stand-in for `rayon`.
//!
//! `par_iter()` / `par_iter_mut()` / `into_par_iter()` return ordinary
//! sequential iterators, so downstream `.zip(..)`, `.map(..)`,
//! `.for_each(..)` chains compile unchanged against `std::iter::Iterator`.
//! Results are identical to rayon's (the workspace only uses
//! order-insensitive or elementwise operations); only the wall-clock
//! parallelism is dropped, which offline test runs do not need.

// These crates mirror upstream APIs verbatim, so API-shape lints
// (method names, arg conventions) do not apply to them.
#![allow(clippy::all)]

pub mod prelude {
    /// `&collection → par_iter()` (sequential stand-in).
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator;
        fn par_iter(&'data self) -> Self::Iter;
    }

    /// `&mut collection → par_iter_mut()` (sequential stand-in).
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter: Iterator;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    /// `collection → into_par_iter()` (sequential stand-in).
    pub trait IntoParallelIterator {
        type Iter: Iterator;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_mut_zips_like_rayon() {
        let mut a = vec![1, 2, 3];
        let mut b = vec![10, 20, 30];
        a.par_iter_mut().zip(b.par_iter_mut()).for_each(|(x, y)| {
            *x += *y;
            *y = 0;
        });
        assert_eq!(a, vec![11, 22, 33]);
        assert_eq!(b, vec![0, 0, 0]);
    }

    #[test]
    fn into_par_iter_over_range() {
        let s: usize = (0..5usize).into_par_iter().sum();
        assert_eq!(s, 10);
    }
}
