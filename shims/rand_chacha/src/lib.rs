//! A minimal, offline stand-in for `rand_chacha`.
//!
//! [`ChaCha8Rng`] runs a genuine 8-round ChaCha keystream (the seed fills
//! the key, counter starts at zero). The stream does not bit-match
//! upstream `rand_chacha` (which seeds from 32 bytes), but it has the same
//! properties the workspace needs: high-quality, cheap, and exactly
//! reproducible from a `u64` seed.

// These crates mirror upstream APIs verbatim, so API-shape lints
// (method names, arg conventions) do not apply to them.
#![allow(clippy::all)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// Deterministic ChaCha8 keystream generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Buffered keystream words from the current block.
    buf: [u32; 16],
    /// Next unread index into `buf` (16 = exhausted).
    idx: usize,
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = w[i].wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the u64 seed into the 256-bit key via SplitMix64, as
        // upstream rand does for seed_from_u64.
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let v = rand::splitmix64(&mut sm);
            pair[0] = v as u32;
            pair[1] = (v >> 32) as u32;
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[..4].copy_from_slice(&[0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574]);
        state[4..12].copy_from_slice(&key);
        // counter = 0, nonce = 0.
        ChaCha8Rng { state, buf: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.idx + 2 > 16 {
            self.refill();
        }
        let lo = self.buf[self.idx] as u64;
        let hi = self.buf[self.idx + 1] as u64;
        self.idx += 2;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn reproducible_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_f64_looks_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
