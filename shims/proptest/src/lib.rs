//! A minimal, offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`Just`], [`any`], the `proptest!`
//! macro, and `prop_assert*`. Inputs are generated from a ChaCha stream
//! seeded deterministically per test (override with `PROPTEST_SEED`), so
//! failures replay exactly. Shrinking is not implemented: on failure the
//! harness prints the offending inputs and the case number instead.

// These crates mirror upstream APIs verbatim, so API-shape lints
// (method names, arg conventions) do not apply to them.
#![allow(clippy::all)]

use rand::{Rng, RngCore, SeedableRng};

/// Deterministic generator handed to strategies.
pub struct TestRng {
    inner: rand_chacha::ChaCha8Rng,
}

impl TestRng {
    /// Independent stream for one (seed, case) pair.
    pub fn for_case(seed: u64, case: u32) -> Self {
        TestRng {
            inner: rand_chacha::ChaCha8Rng::seed_from_u64(
                seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi]`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo + 1; // hi = u64::MAX is not used by any strategy here
        lo + if span == 0 { self.next_u64() } else { self.next_u64() % span }
    }
}

/// Deterministic seed for a test, derived from its full path (FNV-1a) or
/// forced with the `PROPTEST_SEED` environment variable.
pub fn test_seed(name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runner configuration; only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Upper bound on shrink iterations (accepted for source compatibility
    /// with the real crate; this shim's shrinker is already bounded).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 1024 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: std::fmt::Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S2: Strategy, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: std::fmt::Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.uniform_u64(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.uniform_u64(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($S:ident $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

/// A vector of strategies generates element-wise (upstream parity).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: exact or ranged.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            rng.uniform_u64(self.start as u64, self.end as u64 - 1) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.uniform_u64(*self.start() as u64, *self.end() as u64) as usize
        }
    }

    /// Strategy for vectors with random length and random elements.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec` equivalent.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }
}

/// Assertion macros: assert-compatible, kept as distinct names so test
/// bodies read identically to upstream proptest.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The test-defining macro. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` seeded cases; a failing case
/// prints its inputs and case number before propagating the panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed =
                $crate::test_seed(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(__seed, __case);
                let __vals =
                    ($( $crate::Strategy::generate(&($strat), &mut __rng), )+);
                let __desc = format!("{:?}", __vals);
                let __outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let ($($pat,)+) = __vals;
                        $body
                    }));
                if let Err(e) = __outcome {
                    eprintln!(
                        "[proptest] {} failed at case {}/{} (seed {:#x}):\n  inputs = {}",
                        stringify!($name), __case, __config.cases, __seed, __desc
                    );
                    std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u64..100, 3..=6usize);
        let mut a = crate::TestRng::for_case(9, 0);
        let mut b = crate::TestRng::for_case(9, 0);
        assert_eq!(crate::Strategy::generate(&strat, &mut a), {
            let v: Vec<u64> = crate::Strategy::generate(&strat, &mut b);
            v
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(n in 1usize..10, v in 5u64..=9) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((5..=9).contains(&v));
        }

        #[test]
        fn flat_map_chains((len, items) in (1usize..5).prop_flat_map(|n|
            (Just(n), crate::collection::vec(0u32..7, n)))) {
            prop_assert_eq!(items.len(), len);
            prop_assert!(items.iter().all(|&x| x < 7));
        }
    }
}
