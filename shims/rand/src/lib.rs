//! A minimal, offline stand-in for the `rand` crate.
//!
//! Deterministic, seedable generators with the `Rng` convenience surface
//! the workspace uses (`gen`, `gen_range`, `gen_bool`, `fill_bytes`).
//! [`rngs::StdRng`] is xoshiro256** seeded via SplitMix64 — not the same
//! stream as upstream `StdRng`, but the workspace only relies on
//! *determinism*, never on a particular stream.

// These crates mirror upstream APIs verbatim, so API-shape lints
// (method names, arg conventions) do not apply to them.
#![allow(clippy::all)]

/// Core generator interface: a source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Expand a `u64` seed into well-mixed state words (SplitMix64).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic default generator: xoshiro256** seeded by SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
