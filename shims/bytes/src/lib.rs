//! A minimal, offline stand-in for the `bytes` crate.
//!
//! Provides the subset of the real crate's API that this workspace uses:
//! [`Bytes`] (a cheaply cloneable, sliceable, refcounted byte buffer),
//! [`BytesMut`] (a growable builder that freezes into `Bytes`), and the
//! [`BufMut`] write trait. Cloning a `Bytes` is an `Arc` refcount bump and
//! `slice` shares the same allocation, which is what makes shallow-copy
//! (zero-copy) message payloads meaningful inside one address space.

// These crates mirror upstream APIs verbatim, so API-shape lints
// (method names, arg conventions) do not apply to them.
#![allow(clippy::all)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A refcounted, immutable byte buffer. Clones and slices share storage.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation is shared, but none is needed).
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]), start: 0, end: 0 }
    }

    /// Copy `src` into a fresh refcounted buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes { data: Arc::from(src), start: 0, end: src.len() }
    }

    /// Wrap a static slice (copied; the real crate borrows, but the
    /// distinction is unobservable through this API).
    pub fn from_static(src: &'static [u8]) -> Self {
        Self::copy_from_slice(src)
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same allocation (refcount bump, no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of range for {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, end: len }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        let len = b.len();
        Bytes { data: Arc::from(b), start: 0, end: len }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// Growable byte buffer; freeze it into an immutable [`Bytes`].
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Write-side trait mirroring the subset of `bytes::BufMut` the workspace
/// uses. Little- and big-endian integer puts plus raw slices.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(Arc::strong_count(&b.data), 2);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn bytesmut_builds_and_freezes() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32_le(7);
        m.put_u64_le(9);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(b.len(), 14);
        assert_eq!(u32::from_le_bytes(b[..4].try_into().unwrap()), 7);
        assert_eq!(&b[12..], b"xy");
    }

    #[test]
    fn equality_and_debug() {
        let b = Bytes::from_static(b"ab");
        assert_eq!(b, Bytes::copy_from_slice(b"ab"));
        assert_eq!(b, &b"ab"[..]);
        assert_eq!(format!("{b:?}"), "b\"ab\"");
    }
}
