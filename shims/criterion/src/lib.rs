//! A minimal, offline stand-in for `criterion`.
//!
//! Runs each benchmark closure `sample_size` times, reports the mean and
//! min wall-clock time per iteration to stdout, and exits. There is no
//! statistical analysis, warm-up calibration, or HTML report — just enough
//! to execute the workspace's `benches/` targets and give ballpark
//! numbers. The `criterion_group!` / `criterion_main!` macros and the
//! `Criterion` / `BenchmarkGroup` / `Bencher` / `BenchmarkId` surface
//! match the call sites in this repository.

// These crates mirror upstream APIs verbatim, so API-shape lints
// (method names, arg conventions) do not apply to them.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level handle passed to every benchmark function.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_samples: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { samples: self.default_samples }
    }
}

/// Identifier combining a function name with an input parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId { text: format!("{function}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.text.fmt(f)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    samples: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.samples, times: Vec::new() };
        f(&mut b);
        b.report(&id.to_string());
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.samples, times: Vec::new() };
        f(&mut b, input);
        b.report(&id.to_string());
        self
    }

    pub fn finish(self) {}
}

/// Collects per-iteration timings for one benchmark.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let out = f();
            self.times.push(t0.elapsed());
            drop(out);
        }
    }

    fn report(&self, id: &str) {
        if self.times.is_empty() {
            println!("  {id}: no samples");
            return;
        }
        let total: Duration = self.times.iter().sum();
        let mean = total / self.times.len() as u32;
        let min = self.times.iter().min().copied().unwrap_or_default();
        println!("  {id}: mean {:?} / min {:?} over {} iters", mean, min, self.times.len());
    }
}

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-test");
        g.sample_size(7);
        let mut count = 0usize;
        g.bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        g.finish();
        assert_eq!(count, 7);
    }

    #[test]
    fn bench_with_input_passes_value() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-test-2");
        g.sample_size(3);
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::new("square", 9u64), &9u64, |b, &n| {
            b.iter(|| {
                seen = n * n;
            })
        });
        g.finish();
        assert_eq!(seen, 81);
    }
}
