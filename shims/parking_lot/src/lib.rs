//! A minimal, offline stand-in for `parking_lot`, layered over `std::sync`.
//!
//! Mirrors the parking_lot API shape the workspace relies on: `lock()`
//! returns a guard directly (poisoning is swallowed — a panicking rank
//! must not poison unrelated ranks' mailboxes), and `Condvar::wait` takes
//! `&mut MutexGuard`. `Condvar::wait_for` is included because the
//! transport's timeout paths need bounded waits.

// These crates mirror upstream APIs verbatim, so API-shape lints
// (method names, arg conventions) do not apply to them.
#![allow(clippy::all)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion lock; `lock()` never returns a poisoned error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. The inner `Option` lets [`Condvar::wait`]
/// temporarily take ownership of the std guard.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Result of a bounded [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable matching the parking_lot calling convention.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present before wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Wait with a timeout; returns whether the wait timed out (spurious
    /// wakeups are possible either way, exactly as in parking_lot).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present before wait");
        let (g, res) = self.inner.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
