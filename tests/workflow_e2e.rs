//! Workspace-level end-to-end tests: whole workflows spanning every crate
//! (simmpi → diyblk → minih5 → lowfive → nyxsim → orchestra).

use minih5::{Dataspace, Datatype, Selection, H5};
use nyxsim::find_halos;
use nyxsim::sim::{read_snapshot_slab, write_snapshot, NyxSim, SimConfig, WriteOptions};
use orchestra::Workflow;
use parking_lot_like::SharedCounter;

/// Tiny shared-state helper (std-only) so tasks can report results back
/// to the test body.
mod parking_lot_like {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[derive(Clone, Default)]
    pub struct SharedCounter(Arc<AtomicU64>);

    impl SharedCounter {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn set(&self, v: u64) {
            self.0.store(v, Ordering::SeqCst);
        }

        pub fn get(&self) -> u64 {
            self.0.load(Ordering::SeqCst)
        }
    }
}

/// The full cosmology workflow in situ: simulate, stream, find halos.
/// The same analysis rerun against a direct (no-transport) computation
/// must find identical halos — transport must not change science results.
#[test]
fn nyx_reeber_in_situ_matches_direct_computation() {
    const GRID: u64 = 24;
    const PRODUCERS: usize = 4;
    let cfg = SimConfig {
        grid: GRID,
        nranks: PRODUCERS,
        particles_per_rank: 20_000,
        centers: 4,
        seed: 31,
    };

    // Direct: run the sim serially-per-rank and assemble the field.
    let mut direct_field = vec![0.0f64; (GRID * GRID * GRID) as usize];
    for r in 0..PRODUCERS {
        let sim = NyxSim::new(cfg.clone(), r);
        let rho = sim.deposit();
        let (lo, _) = cfg.slab(r);
        let off = (lo * GRID * GRID) as usize;
        direct_field[off..off + rho.len()].copy_from_slice(&rho);
    }
    let mean = direct_field.iter().sum::<f64>() / direct_field.len() as f64;
    let direct_halos = find_halos([GRID, GRID, GRID], &direct_field, 8.0 * mean, 2);
    assert!(!direct_halos.is_empty());

    // In situ: the same computation through the workflow.
    let halo_count = SharedCounter::new();
    let heaviest_mass = SharedCounter::new();
    let hc = halo_count.clone();
    let hm = heaviest_mass.clone();
    let cfg2 = cfg.clone();
    let mut wf = Workflow::new();
    wf.task("nyx", PRODUCERS, move |tc| {
        let h5 = H5::open_default();
        let sim = NyxSim::new(cfg2.clone(), tc.local.rank());
        let rho = sim.deposit();
        write_snapshot(&h5, "snap", &sim, &rho, WriteOptions::default()).unwrap();
    });
    wf.task("reeber", 2, move |tc| {
        let h5 = H5::open_default();
        let lo = GRID * tc.local.rank() as u64 / 2;
        let hi = GRID * (tc.local.rank() as u64 + 1) / 2;
        let (_, slab) = read_snapshot_slab(&h5, "snap", lo, hi).unwrap();
        let mut framed = lo.to_le_bytes().to_vec();
        framed.extend(slab.iter().flat_map(|v| v.to_le_bytes()));
        if let Some(parts) = tc.local.gather_bytes(0, framed.into()) {
            let mut field = vec![0.0f64; (GRID * GRID * GRID) as usize];
            for part in parts {
                let plo = u64::from_le_bytes(part[..8].try_into().unwrap());
                let off = (plo * GRID * GRID) as usize;
                for (i, c) in part[8..].chunks_exact(8).enumerate() {
                    field[off + i] = f64::from_le_bytes(c.try_into().unwrap());
                }
            }
            let mean = field.iter().sum::<f64>() / field.len() as f64;
            let halos = find_halos([GRID, GRID, GRID], &field, 8.0 * mean, 2);
            hc.set(halos.len() as u64);
            hm.set(halos[0].mass as u64);
        }
    });
    wf.link("nyx", "reeber", "snap");
    wf.run();

    assert_eq!(halo_count.get() as usize, direct_halos.len());
    assert_eq!(heaviest_mass.get(), direct_halos[0].mass as u64);
}

/// A diamond workflow: one source fans out to two filters that each
/// produce a derived file, and a sink joins both (fan-out + fan-in in one
/// graph).
#[test]
fn diamond_graph_fan_out_then_fan_in() {
    const N: u64 = 64;
    let ok = SharedCounter::new();
    let ok2 = ok.clone();
    let mut wf = Workflow::new();
    wf.task("source", 2, |tc| {
        let h5 = H5::open_default();
        let f = h5.create_file("base.h5").unwrap();
        let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[N])).unwrap();
        let half = N / 2;
        let s = tc.local.rank() as u64 * half;
        d.write_selection(&Selection::block(&[s], &[half]), &(s..s + half).collect::<Vec<u64>>())
            .unwrap();
        f.close().unwrap();
    });
    for (name, mult) in [("double", 2u64), ("triple", 3u64)] {
        wf.task(name, 1, move |_tc| {
            let h5 = H5::open_default();
            let fin = h5.open_file("base.h5").unwrap();
            let x = fin.open_dataset("x").unwrap().read_all::<u64>().unwrap();
            fin.close().unwrap();
            let fout = h5.create_file(&format!("{name}.h5")).unwrap();
            let d = fout.create_dataset("y", Datatype::UInt64, Dataspace::simple(&[N])).unwrap();
            d.write_all(&x.iter().map(|v| v * mult).collect::<Vec<u64>>()).unwrap();
            fout.close().unwrap();
        });
    }
    wf.task("sink", 1, move |_tc| {
        let h5 = H5::open_default();
        let fa = h5.open_file("double.h5").unwrap();
        let a = fa.open_dataset("y").unwrap().read_all::<u64>().unwrap();
        fa.close().unwrap();
        let fb = h5.open_file("triple.h5").unwrap();
        let b = fb.open_dataset("y").unwrap().read_all::<u64>().unwrap();
        fb.close().unwrap();
        // a[i] + b[i] = 5 i.
        assert!(a.iter().zip(&b).enumerate().all(|(i, (x, y))| x + y == 5 * i as u64));
        ok2.set(1);
    });
    wf.link("source", "double", "base.h5");
    wf.link("source", "triple", "base.h5");
    wf.link("double", "sink", "double.h5");
    wf.link("triple", "sink", "triple.h5");
    wf.run();
    assert_eq!(ok.get(), 1);
}

/// File mode through the orchestrator: the consumer polls until the
/// producer's file is complete on disk, so the unmodified workflow also
/// works with storage in the middle.
#[test]
fn workflow_file_mode_via_properties() {
    let dir = std::env::temp_dir().join("workflow-e2e-filemode");
    std::fs::create_dir_all(&dir).unwrap();
    let path: &'static str =
        Box::leak(dir.join("fm.nh5").to_str().unwrap().to_string().into_boxed_str());
    let _ = std::fs::remove_file(path);

    let mut props = lowfive::LowFiveProps::new();
    props.set_memory("*", false).set_passthrough("*", true);
    let ok = SharedCounter::new();
    let ok2 = ok.clone();
    let mut wf = Workflow::new();
    wf.props(props);
    wf.task("p", 2, move |tc| {
        let h5 = H5::open_default();
        let f = h5.create_file(path).unwrap();
        let d = f.create_dataset("v", Datatype::UInt32, Dataspace::simple(&[8])).unwrap();
        let s = tc.local.rank() as u64 * 4;
        d.write_selection(
            &Selection::block(&[s], &[4]),
            &(s as u32..s as u32 + 4).collect::<Vec<u32>>(),
        )
        .unwrap();
        f.close().unwrap();
    });
    wf.task("c", 1, move |_tc| {
        let h5 = H5::open_default();
        let f = h5.open_file(path).unwrap(); // polls until complete
        let v = f.open_dataset("v").unwrap().read_all::<u32>().unwrap();
        assert_eq!(v, (0..8).collect::<Vec<u32>>());
        f.close().unwrap();
        ok2.set(1);
    });
    wf.link("p", "c", path);
    wf.run();
    assert_eq!(ok.get(), 1);
    assert!(std::path::Path::new(path).exists());
}
