//! Cross-transport equivalence: every transport in the repo (LowFive
//! memory, LowFive file, pure HDF5 files, hand-written MPI, DataSpaces,
//! Bredala) must deliver byte-identical redistributed data for the same
//! synthetic workload. This is the repo-wide version of the paper's
//! validation ("values encode their global position").

use std::sync::Arc;

use baselines::bredala::{self, Field};
use baselines::dataspaces::{run_server, DsClient, DsConfig};
use baselines::puempi;
use bench::workload::Workload;
use lowfive::{DistVolBuilder, LowFiveProps};
use minih5::{BBox, Dataspace, Datatype, Ownership, Selection, Vol, H5};
use simmpi::{TaskComm, TaskSpec, TaskWorld};

fn workload() -> Workload {
    Workload::paper_split(8, 1_000, 900)
}

fn grid_bytes(w: &Workload, bb: &BBox) -> Vec<u8> {
    w.grid_values(bb).iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Expected consumer-side grid bytes (row-major within the consumer box).
fn expected_grid(w: &Workload, c: usize) -> Vec<u8> {
    grid_bytes(w, &w.consumer_grid_box(c))
}

fn expected_particles(w: &Workload, c: usize) -> Vec<u8> {
    w.particle_bytes(w.consumer_part_range(c))
}

fn world_ranks(tc: &TaskComm, task_id: usize) -> Vec<usize> {
    (0..tc.task_size(task_id)).map(|r| tc.world_rank_of(task_id, r)).collect()
}

#[test]
fn lowfive_memory_delivers_expected_bytes() {
    let w = workload();
    let specs = [TaskSpec::new("p", w.producers), TaskSpec::new("c", w.consumers)];
    TaskWorld::run(&specs, move |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone()).produce("*", consumers).build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone()).consume("*", producers).build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let p = tc.local.rank();
            let f = h5.create_file("eq.h5").unwrap();
            let dg = f
                .create_dataset("grid", Datatype::UInt64, Dataspace::simple(&w.grid_dims()))
                .unwrap();
            dg.write_bytes(
                &w.producer_grid_sel(p),
                grid_bytes(&w, &w.producer_grid_box(p)).into(),
                Ownership::Shallow,
            )
            .unwrap();
            let (s, e) = w.producer_part_range(p);
            let dp = f
                .create_dataset(
                    "particles",
                    Datatype::vector(Datatype::Float32, 3),
                    Dataspace::simple(&[w.total_particles()]),
                )
                .unwrap();
            dp.write_bytes(
                &Selection::block(&[s], &[e - s]),
                w.particle_bytes((s, e)).into(),
                Ownership::Shallow,
            )
            .unwrap();
            f.close().unwrap();
        } else {
            let c = tc.local.rank();
            let f = h5.open_file("eq.h5").unwrap();
            let got = f.open_dataset("grid").unwrap().read_bytes(&w.consumer_grid_sel(c)).unwrap();
            assert_eq!(&got[..], &expected_grid(&w, c)[..], "grid bytes");
            let (s, e) = w.consumer_part_range(c);
            let gp = f
                .open_dataset("particles")
                .unwrap()
                .read_bytes(&Selection::block(&[s], &[e - s]))
                .unwrap();
            assert_eq!(&gp[..], &expected_particles(&w, c)[..], "particle bytes");
            f.close().unwrap();
        }
    });
}

/// The pipelined fetch path (`set_fetch_pipeline`, default on) must be
/// byte-identical to the serial one-RPC-at-a-time path it replaces, for
/// single reads, repeated reads (cache hits), and multi-selection batched
/// reads whose batches span several producers.
#[test]
fn pipelined_fetch_is_byte_identical_to_serial() {
    let w = workload();
    let mut per_mode: Vec<Vec<Vec<u8>>> = Vec::new();
    for pipeline in [false, true] {
        let collected = Arc::new(std::sync::Mutex::new(vec![Vec::new(); w.consumers]));
        let sink = collected.clone();
        let specs = [TaskSpec::new("p", w.producers), TaskSpec::new("c", w.consumers)];
        TaskWorld::run(&specs, move |tc| {
            let producers = world_ranks(&tc, 0);
            let consumers = world_ranks(&tc, 1);
            let mut props = LowFiveProps::new();
            props.set_fetch_pipeline("*", pipeline);
            let vol: Arc<dyn Vol> = if tc.task_id == 0 {
                DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                    .props(props)
                    .produce("*", consumers)
                    .build()
            } else {
                DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                    .props(props)
                    .consume("*", producers)
                    .build()
            };
            let h5 = H5::with_vol(vol);
            if tc.task_id == 0 {
                let p = tc.local.rank();
                let f = h5.create_file("ab.h5").unwrap();
                let dg = f
                    .create_dataset("grid", Datatype::UInt64, Dataspace::simple(&w.grid_dims()))
                    .unwrap();
                dg.write_bytes(
                    &w.producer_grid_sel(p),
                    grid_bytes(&w, &w.producer_grid_box(p)).into(),
                    Ownership::Shallow,
                )
                .unwrap();
                f.close().unwrap();
            } else {
                let c = tc.local.rank();
                let f = h5.open_file("ab.h5").unwrap();
                let d = f.open_dataset("grid").unwrap();
                let mut bytes = Vec::new();
                // A full single read (fans out to every producer)...
                let full = w.consumer_grid_sel(c);
                bytes.extend_from_slice(&d.read_bytes(&full).unwrap());
                // ...a repeat of the same read (a cache hit when
                // pipelined)...
                bytes.extend_from_slice(&d.read_bytes(&full).unwrap());
                // ...and a multi-read of x-chunks of the consumer slab,
                // each chunk touching a different producer subset, so one
                // batch frame per producer carries several selections.
                let bb = w.consumer_grid_box(c);
                let sels: Vec<Selection> = (0..3)
                    .map(|i| {
                        let x0 = bb.hi[0] * i / 3;
                        let x1 = bb.hi[0] * (i + 1) / 3;
                        let mut chunk = bb.clone();
                        chunk.lo[0] = x0;
                        chunk.hi[0] = x1;
                        chunk.to_selection()
                    })
                    .collect();
                for buf in d.read_bytes_multi(&sels).unwrap() {
                    bytes.extend_from_slice(&buf);
                }
                f.close().unwrap();
                sink.lock().unwrap()[c] = bytes;
            }
        });
        let bytes = collected.lock().unwrap().clone();
        per_mode.push(bytes);
    }
    assert_eq!(per_mode[0], per_mode[1], "pipelined reads must be byte-identical to serial");
    // And both must match the position-encoded ground truth for the full
    // selection (the first read of each consumer's transcript).
    for (c, got) in per_mode[1].iter().enumerate() {
        let want = expected_grid(&w, c);
        assert_eq!(&got[..want.len()], &want[..], "consumer {c} ground truth");
    }
}

/// A temp dir that is unique per invocation (two concurrent `cargo test`
/// runs must not race on the same backing files) and removed on drop,
/// even when the test body panics.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(label: &str) -> Self {
        let unique = format!("{label}-{}-{:?}", std::process::id(), std::thread::current().id())
            .replace(['(', ')', ' '], "");
        let dir = std::env::temp_dir().join(unique);
        std::fs::create_dir_all(&dir).unwrap();
        ScratchDir(dir)
    }

    fn path(&self, file: &str) -> String {
        self.0.join(file).to_str().unwrap().to_string()
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn file_transports_deliver_expected_bytes() {
    let w = workload();
    let dir = ScratchDir::new("transport-eq-files");
    let filename = dir.path("eq.nh5");
    let specs = [TaskSpec::new("p", w.producers), TaskSpec::new("c", w.consumers)];
    TaskWorld::run(&specs, move |tc| {
        let local = tc.local.clone();
        let vol: Arc<dyn Vol> =
            Arc::new(minih5::native::NativeVol::parallel(local.rank(), move || local.barrier()));
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let p = tc.local.rank();
            let f = h5.create_file(&filename).unwrap();
            let dg = f
                .create_dataset("grid", Datatype::UInt64, Dataspace::simple(&w.grid_dims()))
                .unwrap();
            dg.write_bytes(
                &w.producer_grid_sel(p),
                grid_bytes(&w, &w.producer_grid_box(p)).into(),
                Ownership::Deep,
            )
            .unwrap();
            f.close().unwrap();
            tc.world.barrier();
        } else {
            tc.world.barrier();
            let c = tc.local.rank();
            let f = h5.open_file(&filename).unwrap();
            let got = f.open_dataset("grid").unwrap().read_bytes(&w.consumer_grid_sel(c)).unwrap();
            assert_eq!(&got[..], &expected_grid(&w, c)[..]);
            f.close().unwrap();
        }
    });
}

#[test]
fn pure_mpi_delivers_expected_bytes() {
    let w = workload();
    let specs = [TaskSpec::new("p", w.producers), TaskSpec::new("c", w.consumers)];
    TaskWorld::run(&specs, move |tc| {
        let prod: Vec<(usize, BBox)> =
            (0..w.producers).map(|p| (tc.world_rank_of(0, p), w.producer_grid_box(p))).collect();
        let cons: Vec<(usize, BBox)> =
            (0..w.consumers).map(|c| (tc.world_rank_of(1, c), w.consumer_grid_box(c))).collect();
        if tc.task_id == 0 {
            let bb = w.producer_grid_box(tc.local.rank());
            puempi::send_grid(&tc.world, 61, 8, &bb, &grid_bytes(&w, &bb), &cons);
        } else {
            let bb = w.consumer_grid_box(tc.local.rank());
            let got = puempi::recv_grid(&tc.world, 61, 8, &bb, &prod);
            assert_eq!(got, expected_grid(&w, tc.local.rank()));
        }
    });
}

#[test]
fn dataspaces_delivers_expected_bytes() {
    let w = workload();
    let specs =
        [TaskSpec::new("p", w.producers), TaskSpec::new("s", 1), TaskSpec::new("c", w.consumers)];
    TaskWorld::run(&specs, move |tc| {
        let cfg = DsConfig {
            producers: world_ranks(&tc, 0),
            servers: world_ranks(&tc, 1),
            consumers: world_ranks(&tc, 2),
        };
        match tc.task_id {
            0 => {
                let client = DsClient::new(tc.world.clone(), cfg);
                let bb = w.producer_grid_box(tc.local.rank());
                client.put_local("grid", 0, bb.clone(), grid_bytes(&w, &bb).into()).unwrap();
                client.serve_local();
            }
            1 => run_server(&tc.world, &cfg),
            _ => {
                let client = DsClient::new(tc.world.clone(), cfg);
                let bb = w.consumer_grid_box(tc.local.rank());
                let got = client.get("grid", 0, &bb, 8).unwrap();
                assert_eq!(got, expected_grid(&w, tc.local.rank()));
                client.done();
            }
        }
    });
}

#[test]
fn bredala_delivers_expected_bytes() {
    let w = workload();
    let specs = [TaskSpec::new("p", w.producers), TaskSpec::new("c", w.consumers)];
    TaskWorld::run(&specs, move |tc| {
        let prod_grid: Vec<(usize, BBox)> =
            (0..w.producers).map(|p| (tc.world_rank_of(0, p), w.producer_grid_box(p))).collect();
        let cons_grid: Vec<(usize, BBox)> =
            (0..w.consumers).map(|c| (tc.world_rank_of(1, c), w.consumer_grid_box(c))).collect();
        let prod_parts: Vec<(usize, (u64, u64))> =
            (0..w.producers).map(|p| (tc.world_rank_of(0, p), w.producer_part_range(p))).collect();
        let cons_parts: Vec<(usize, (u64, u64))> =
            (0..w.consumers).map(|c| (tc.world_rank_of(1, c), w.consumer_part_range(c))).collect();
        if tc.task_id == 0 {
            let p = tc.local.rank();
            let bb = w.producer_grid_box(p);
            let fg = Field::bounding_box("grid", 8, bb.clone(), grid_bytes(&w, &bb).into());
            bredala::send_bbox(&tc.world, 71, &fg, &cons_grid);
            let pr = w.producer_part_range(p);
            let fp = Field::contiguous("particles", 12, pr, w.particle_bytes(pr).into());
            bredala::send_contiguous(&tc.world, 72, &fp, &cons_parts);
        } else {
            let c = tc.local.rank();
            let bb = w.consumer_grid_box(c);
            let got = bredala::recv_bbox(&tc.world, 71, 8, &bb, &prod_grid);
            assert_eq!(got, expected_grid(&w, c), "bredala grid");
            let got_p =
                bredala::recv_contiguous(&tc.world, 72, 12, w.consumer_part_range(c), &prod_parts);
            assert_eq!(got_p, expected_particles(&w, c), "bredala particles");
        }
    });
}
