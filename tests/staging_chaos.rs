//! Chaos suite for the sharded, replicated staging tier.
//!
//! The availability claim under test: with replication `k >= 2`, killing
//! any single shard mid-query leaves every consumer read **byte
//! identical** — first because the surviving replicas of each key are
//! complete (puts only return once all replicas acked), then because
//! read repair and heartbeat-driven re-replication restore the
//! replication factor for the replicas that joined after the failover.
//!
//! Four angles, all on `simmpi`'s deterministic fault layer:
//!
//! 1. A proptest sweep (geometry × k × seed × kill point) killing an
//!    arbitrary shard at an arbitrary send: reads stay exact before and
//!    after the death, and only the planned rank dies.
//! 2. A lost heartbeat (`drop_once`) makes peers flap Suspected →
//!    Healthy without a single re-replicated byte.
//! 3. A deterministic two-kill run at `k = 3` whose recovery counters
//!    (failovers, read repairs) are asserted from the metrics JSON — the
//!    same artifact the CI chaos job greps.
//! 4. The fault trace of a kill replays bit-identically, so any failure
//!    of this suite is reproducible from its seed.

use std::time::Duration;

use baselines::staging::{
    run_shard, staging_key, HashRing, HeartbeatConfig, StagingClient, StagingConfig,
};
use minih5::BBox;
use obsv::json::Value;
use simmpi::{ChaosOutput, FaultKind, FaultPlan, TaskComm, TaskSpec, TaskWorld, TransportKind};

/// Socket re-runs are opt-in (`SIMMPI_SOCKET_CHAOS=1`): the CI
/// transport-matrix job sets the variable; plain `cargo test` skips them.
fn socket_chaos_enabled() -> bool {
    std::env::var("SIMMPI_SOCKET_CHAOS").is_ok_and(|v| !v.is_empty() && v != "0")
}

const PRODUCERS: usize = 2;
const CONSUMERS: usize = 2;
const ELEMS: u64 = 48;

/// Geometry and tuning of one tier run.
#[derive(Clone)]
struct Tier {
    shards: usize,
    k: usize,
    rounds: u64,
    hb: HeartbeatConfig,
    recovery: bool,
    /// Version of the `go` sentinel producers put last and consumers
    /// poll first (see `bench::runners::run_staging` for the role it
    /// plays in deterministic kill placement).
    gate: u64,
    /// How long consumers linger before `done()` — heartbeat tests need
    /// the tier to outlive the suspect/fail windows.
    hold: Duration,
}

impl Tier {
    fn new(shards: usize, k: usize) -> Self {
        Tier {
            shards,
            k,
            rounds: 3,
            hb: HeartbeatConfig::disabled(),
            recovery: false,
            gate: 0,
            hold: Duration::ZERO,
        }
    }

    /// The shard world ranks under the producer/staging/consumer layout.
    fn shard_ranks(&self) -> Vec<usize> {
        (PRODUCERS..PRODUCERS + self.shards).collect()
    }

    fn ring(&self) -> HashRing {
        // Must mirror `StagingConfig::new`'s vnodes for the placement
        // computed here to match the tier's.
        HashRing::new(&self.shard_ranks(), 16).expect("non-empty tier")
    }

    /// Replicated-put acks shard `victim` sends before any query can
    /// reach it (data puts gated by the `go` sentinel): its kill point
    /// `acks + 1` is its first query reply.
    fn acks_of(&self, victim: usize) -> u64 {
        let ring = self.ring();
        (0..self.rounds)
            .filter(|&v| ring.replicas(&staging_key("grid", v), self.k).contains(&victim))
            .count() as u64
            * PRODUCERS as u64
    }

    /// A sentinel version whose replica set avoids every rank in `avoid`.
    fn gate_avoiding(&self, avoid: &[usize]) -> u64 {
        let ring = self.ring();
        (0u64..)
            .find(|&g| {
                let set = ring.replicas(&staging_key("go", g), self.k);
                avoid.iter().all(|r| !set.contains(r))
            })
            .expect("some gate version avoids the victims")
    }
}

/// Per-rank slab: producer and consumer `r` both use this box, so each
/// consumer's expected bytes are exactly its producer twin's puts.
fn owner_box(r: usize) -> BBox {
    BBox::new(vec![r as u64 * ELEMS], vec![(r as u64 + 1) * ELEMS])
}

/// Version-dependent payload — byte identity across versions is only
/// meaningful if versions differ.
fn values(bb: &BBox, version: u64) -> Vec<u8> {
    (bb.lo[0]..bb.hi[0])
        .flat_map(|x| x.wrapping_mul(1_000_003).wrapping_add(version * 7919).to_le_bytes())
        .collect()
}

fn world_ranks(tc: &TaskComm, task_id: usize) -> Vec<usize> {
    (0..tc.task_size(task_id)).map(|r| tc.world_rank_of(task_id, r)).collect()
}

/// Run the tier under `plan`: producers put `rounds` versions then the
/// gate sentinel; consumers poll the gate, read every version **twice**
/// asserting byte identity, linger `hold`, and release the shards.
fn run_tier(t: Tier, plan: FaultPlan, observe: Option<&obsv::Registry>) -> ChaosOutput<()> {
    run_tier_on(t, plan, observe, TransportKind::from_env())
}

/// As [`run_tier`], pinning the delivery backend (socket re-runs).
fn run_tier_on(
    t: Tier,
    plan: FaultPlan,
    observe: Option<&obsv::Registry>,
    kind: TransportKind,
) -> ChaosOutput<()> {
    let specs = [
        TaskSpec::new("producer", PRODUCERS),
        TaskSpec::new("staging", t.shards),
        TaskSpec::new("consumer", CONSUMERS),
    ];
    TaskWorld::run_chaos_observed_on(&specs, None, plan, observe, kind, move |tc| {
        let mut cfg =
            StagingConfig::new(world_ranks(&tc, 1), world_ranks(&tc, 0), world_ranks(&tc, 2));
        cfg.replication = t.k;
        cfg.hb = t.hb.clone();
        cfg.recovery = t.recovery;
        match tc.task_id {
            0 => {
                let client = StagingClient::new(tc.world.clone(), cfg).expect("ring");
                let bb = owner_box(tc.local.rank());
                for v in 0..t.rounds {
                    client.put("grid", v, bb.clone(), values(&bb, v).into()).expect("put");
                }
                let sentinel = bytes::Bytes::from_static(&[0u8; 8]);
                client.put("go", t.gate, BBox::new(vec![0], vec![1]), sentinel).expect("gate");
                // Producer-local barrier (producers never die in these
                // plans): without it, one producer's DS_RDONE could
                // reach a victim while the other is still mid-put,
                // letting a done-reply consume a user-send slot counted
                // as a put ack — the kill would fire early and the slow
                // producer would see PeerDead, skewing the failover
                // counters the deterministic tests assert exactly.
                tc.local.barrier();
                client.done();
            }
            1 => run_shard(&tc.world, &cfg),
            _ => {
                let client = StagingClient::new(tc.world.clone(), cfg).expect("ring");
                client.get("go", t.gate, &BBox::new(vec![0], vec![1]), 8).expect("gate");
                let bb = owner_box(tc.local.rank());
                for pass in 0..2 {
                    for v in 0..t.rounds {
                        let got = client.get("grid", v, &bb, 8).expect("get");
                        assert_eq!(
                            got,
                            values(&bb, v),
                            "consumer {} pass {pass} version {v}: bytes differ",
                            tc.local.rank()
                        );
                    }
                }
                if !t.hold.is_zero() {
                    std::thread::sleep(t.hold);
                }
                client.done();
            }
        }
    })
}

/// Every death was injected at a planned victim; every survivor (and in
/// particular every consumer, whose body asserts byte identity) ran to
/// completion.
fn assert_only_planned_deaths(out: &ChaosOutput<()>, victims: &[usize]) {
    for d in &out.deaths {
        assert!(
            d.injected && victims.contains(&d.rank),
            "unplanned death of rank {}: {}",
            d.rank,
            d.message
        );
    }
    for (rank, r) in out.results.iter().enumerate() {
        if !out.deaths.iter().any(|d| d.rank == rank) {
            assert!(r.is_some(), "surviving rank {rank} did not finish");
        }
    }
}

mod single_kill {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

        /// Killing any one shard at an arbitrary point of its send
        /// stream — mid-replication, mid-serve, or never (the kill
        /// point may lie beyond the run) — leaves every read byte
        /// identical, with heartbeats and recovery running at full
        /// production cadence.
        #[test]
        fn any_single_shard_kill_preserves_reads(
            shards in 3usize..=5,
            k in 2usize..=3,
            victim_idx in 0usize..5,
            at_send in 1u64..=16,
            seed in any::<u64>(),
        ) {
            let mut t = Tier::new(shards, k);
            t.hb = HeartbeatConfig::default_cadence();
            t.recovery = true;
            let victim = t.shard_ranks()[victim_idx % shards];
            let plan = FaultPlan::new(seed).kill_rank(victim, at_send);
            let out = run_tier(t, plan, None);
            assert_only_planned_deaths(&out, &[victim]);
            prop_assert!(out.deaths.len() <= 1);
        }
    }
}

/// A lost heartbeat datagram (drop-once on the gossip lane) plus an
/// aggressive suspect threshold makes peers flap Healthy → Suspected →
/// Healthy; flapping must never escalate to Failed or move a single
/// re-replication byte.
#[test]
fn suspected_peer_heals_without_spurious_rereplication() {
    let mut t = Tier::new(3, 2);
    t.hb = HeartbeatConfig {
        interval: Duration::from_millis(40),
        // Below the interval on purpose: every inter-heartbeat gap (and
        // the widened first gap behind the dropped datagram) suspects
        // the peer, and the next heartbeat must heal it.
        suspect_after: Duration::from_millis(25),
        fail_after: Duration::from_secs(30),
    };
    t.recovery = true;
    t.hold = Duration::from_millis(150);
    let reg = obsv::Registry::new();
    let out = run_tier(t, FaultPlan::new(9).drop_once(1.0), Some(&reg));
    assert!(out.deaths.is_empty(), "no rank dies in this run: {:?}", out.deaths);
    let report = reg.report();
    assert!(
        report.counter(obsv::Ctr::StagingSuspects) >= 1,
        "the aggressive cadence must produce at least one Suspected transition"
    );
    assert_eq!(
        report.counter(obsv::Ctr::FailoversDetected),
        0,
        "a Suspected peer must heal, not fail"
    );
    assert_eq!(
        report.counter(obsv::Ctr::ReRepBytes),
        0,
        "suspicion alone must not trigger re-replication"
    );
}

/// A shard killed after replicating is detected by missed heartbeats
/// (Suspected, then Failed), routed around by the clients, and its keys
/// re-replicated by the surviving replica-set leaders.
#[test]
fn missed_heartbeats_fail_the_shard_and_rereplicate() {
    let mut t = Tier::new(4, 2);
    t.hb = HeartbeatConfig {
        interval: Duration::from_millis(10),
        suspect_after: Duration::from_millis(30),
        fail_after: Duration::from_millis(60),
    };
    t.recovery = true;
    t.hold = Duration::from_millis(300);
    let victim = t.ring().replicas(&staging_key("grid", 0), t.k)[0];
    t.gate = t.gate_avoiding(&[victim]);
    // Heartbeats share the victim's user-send stream with its put acks,
    // so the ack-counting kill placement is a lower bound here, not
    // exact — any kill point at or past the first ack works for this
    // test, since detection is by silence, not by which send died.
    let plan = FaultPlan::new(21).kill_rank(victim, t.acks_of(victim) + 1);
    let reg = obsv::Registry::new();
    let shards = t.shards;
    let out = run_tier(t, plan, Some(&reg));
    assert_eq!(out.deaths.len(), 1, "exactly the planned kill: {:?}", out.deaths);
    assert_only_planned_deaths(&out, &[victim]);
    let report = reg.report();
    let failovers = report.counter(obsv::Ctr::FailoversDetected);
    assert!(
        failovers >= (shards - 1) as u64,
        "every surviving shard must declare the victim Failed (got {failovers})"
    );
    assert!(
        report.counter(obsv::Ctr::StagingSuspects) >= (shards - 1) as u64,
        "Failed is always preceded by Suspected"
    );
    assert!(
        report.counter(obsv::Ctr::ReRepBytes) > 0,
        "the victim's keys must be re-replicated to their replacements"
    );
}

/// Deterministic two-kill run at `k = 3`: both leading replicas of
/// `grid@0` die on their first query reply, after the tier is fully
/// replicated. The third replica serves every read exactly; the
/// replacements answer incomplete and get read-repaired. Counters are
/// asserted from the metrics JSON — the artifact CI greps — rather than
/// the in-process registry.
#[test]
fn double_kill_is_survived_and_read_repaired() {
    let mut t = Tier::new(5, 3);
    t.rounds = 4;
    let ring = t.ring();
    let front = ring.replicas(&staging_key("grid", 0), t.k);
    let victims = [front[0], front[1]];
    t.gate = t.gate_avoiding(&victims);
    let mut plan = FaultPlan::new(33);
    for v in victims {
        plan = plan.kill_rank(v, t.acks_of(v) + 1);
    }
    let reg = obsv::Registry::new();
    let out = run_tier(t, plan, Some(&reg));
    assert_eq!(out.deaths.len(), 2, "both planned kills fire: {:?}", out.deaths);
    assert_only_planned_deaths(&out, &victims);

    let doc = obsv::json::parse(&reg.report().metrics_json()).expect("valid metrics JSON");
    let counter = |name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("metrics JSON lacks counter {name:?}"))
    };
    // Each consumer discovers each victim dead exactly once.
    assert_eq!(counter("failovers_detected"), (CONSUMERS * victims.len()) as u64);
    assert!(
        counter("read_repairs") >= 1,
        "a replacement answering incomplete next to a complete survivor must be repaired"
    );
    assert!(counter("rerep_bytes") > 0, "read repair pushes entries");
    assert!(counter("replica_puts") > 0);
}

/// The same seed replays the same fault trace, bit for bit: a kill is
/// recorded as pure sender facts `(rank, user-send seq)`, so thread
/// scheduling cannot smear it across runs. This is what makes every
/// failure of this suite reproducible.
#[test]
fn kill_trace_replays_bit_identically() {
    let t = Tier::new(4, 2);
    // The primary of grid@0 provably makes a 3rd user-tag send: two put
    // acks for grid@0, then its first reply to a consumer query.
    let victim = t.ring().replicas(&staging_key("grid", 0), t.k)[0];
    let plan = || FaultPlan::new(77).kill_rank(victim, 3);
    let a = run_tier(t.clone(), plan(), None);
    let b = run_tier(t, plan(), None);
    assert!(!a.trace.is_empty(), "the kill must appear in the trace");
    assert_eq!(a.trace, b.trace, "fault traces must replay bit-identically");
    let kill = &a.trace[0];
    assert_eq!(kill.kind, FaultKind::Killed);
    assert_eq!((kill.src, kill.seq), (victim, 3));
    assert_eq!(a.deaths.len(), 1);
    assert_eq!(b.deaths.len(), 1);
}

/// Socket re-run of the deterministic single-kill scenario: the kill
/// trace and the failover-detection counter must match the in-proc run
/// exactly — the fault layer decides before the transport, and each
/// client discovers the victim dead exactly once on either backend.
#[test]
fn socket_single_kill_matches_inproc() {
    if !socket_chaos_enabled() {
        eprintln!("skipped: set SIMMPI_SOCKET_CHAOS=1 to run the socket chaos re-runs");
        return;
    }
    let t = Tier::new(4, 2);
    let victim = t.ring().replicas(&staging_key("grid", 0), t.k)[0];
    let plan = || FaultPlan::new(77).kill_rank(victim, 3);
    let reg_in = obsv::Registry::new();
    let reg_so = obsv::Registry::new();
    let a = run_tier_on(t.clone(), plan(), Some(&reg_in), TransportKind::InProc);
    let b = run_tier_on(t, plan(), Some(&reg_so), TransportKind::Socket);
    assert_only_planned_deaths(&a, &[victim]);
    assert_only_planned_deaths(&b, &[victim]);
    assert_eq!(a.trace, b.trace, "kill trace must be backend-invariant");
    assert_eq!(
        reg_in.report().counter(obsv::Ctr::FailoversDetected),
        reg_so.report().counter(obsv::Ctr::FailoversDetected),
        "failover detections must match across backends"
    );
}

/// Socket re-run of the double-kill acceptance scenario: byte-identical
/// reads (asserted inside the consumer bodies), the exact
/// `failovers_detected` count the in-proc run pins, and the same
/// recovery machinery engaging. When `SIMMPI_SOCKET_METRICS_OUT` names a
/// path, the socket run's metrics JSON is written there — the artifact
/// the CI transport-matrix job uploads.
#[test]
fn socket_double_kill_matches_inproc() {
    if !socket_chaos_enabled() {
        eprintln!("skipped: set SIMMPI_SOCKET_CHAOS=1 to run the socket chaos re-runs");
        return;
    }
    let make = || {
        let mut t = Tier::new(5, 3);
        t.rounds = 4;
        t
    };
    let tier = make();
    let ring = tier.ring();
    let front = ring.replicas(&staging_key("grid", 0), tier.k);
    let victims = [front[0], front[1]];
    let plan = || {
        let t = make();
        let mut plan = FaultPlan::new(33);
        for v in victims {
            plan = plan.kill_rank(v, t.acks_of(v) + 1);
        }
        plan
    };
    let run = |kind| {
        let mut t = make();
        t.gate = t.gate_avoiding(&victims);
        let reg = obsv::Registry::new();
        let out = run_tier_on(t, plan(), Some(&reg), kind);
        assert_eq!(out.deaths.len(), 2, "[{kind}] both planned kills fire: {:?}", out.deaths);
        assert_only_planned_deaths(&out, &victims);
        reg
    };
    let reg_in = run(TransportKind::InProc);
    let reg_so = run(TransportKind::Socket);
    for (kind, reg) in [("inproc", &reg_in), ("socket", &reg_so)] {
        let report = reg.report();
        assert_eq!(
            report.counter(obsv::Ctr::FailoversDetected),
            (CONSUMERS * victims.len()) as u64,
            "[{kind}] each consumer discovers each victim dead exactly once"
        );
        assert!(report.counter(obsv::Ctr::ReadRepairs) >= 1, "[{kind}] repair must engage");
        assert!(report.counter(obsv::Ctr::ReplicaPuts) > 0, "[{kind}]");
    }
    // `read_repairs` / `rerep_bytes` race with tear-down (repair pushes
    // are fire-and-forget), so only the deterministic counter is compared
    // across backends.
    assert_eq!(
        reg_in.report().counter(obsv::Ctr::FailoversDetected),
        reg_so.report().counter(obsv::Ctr::FailoversDetected),
        "failover detections must match across backends"
    );
    if let Ok(path) = std::env::var("SIMMPI_SOCKET_METRICS_OUT") {
        if !path.is_empty() {
            std::fs::write(&path, reg_so.report().metrics_json())
                .unwrap_or_else(|e| panic!("write socket metrics JSON to {path}: {e}"));
            println!("socket-metrics-json: {path}");
        }
    }
}
