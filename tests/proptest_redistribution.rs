//! Property-based test of the index–serve–query redistribution: for
//! random task sizes, grid shapes, producer decompositions, and consumer
//! queries, every element the consumer reads must equal its global linear
//! index (and unwritten cells must read zero) — and a second property
//! samples the (geometry × fault seed) product: under any benign
//! delay/reorder plan the redistributed bytes are identical to the
//! fault-free run.

use std::sync::Arc;
use std::time::Duration;

use lowfive::{DistVolBuilder, LowFiveProps};
use minih5::{Dataspace, Datatype, Selection, Vol, H5};
use proptest::prelude::*;
use simmpi::{FaultPlan, TaskSpec, TaskWorld};

#[derive(Debug, Clone)]
struct Scenario {
    producers: usize,
    consumers: usize,
    dims: Vec<u64>,
    /// Per-producer x-ranges (contiguous partition of dims[0]).
    cuts: Vec<u64>,
    /// Consumer queries: one box per consumer, inside the dims.
    queries: Vec<(Vec<u64>, Vec<u64>)>, // (start, size)
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1usize..=5, 1usize..=4, 1usize..=3).prop_flat_map(|(producers, consumers, rank)| {
        let dim = 2u64..=12;
        let dims = proptest::collection::vec(dim, rank);
        dims.prop_flat_map(move |dims| {
            let nx = dims[0];
            // Random cut points partitioning [0, nx) into `producers` ranges.
            let cuts = proptest::collection::vec(0..=nx, producers - 1).prop_map(move |mut c| {
                c.sort_unstable();
                c
            });
            let dims2 = dims.clone();
            let queries = proptest::collection::vec(
                proptest::collection::vec(0u64..=11, dims.len() * 2),
                consumers,
            )
            .prop_map(move |raw| {
                raw.into_iter()
                    .map(|r| {
                        let mut start = Vec::new();
                        let mut size = Vec::new();
                        for (i, &d) in dims2.iter().enumerate() {
                            let s = r[2 * i] % d;
                            let max = d - s;
                            let len = 1 + r[2 * i + 1] % max;
                            start.push(s);
                            size.push(len);
                        }
                        (start, size)
                    })
                    .collect::<Vec<_>>()
            });
            let dims3 = dims.clone();
            (cuts, queries).prop_map(move |(cuts, queries)| Scenario {
                producers,
                consumers,
                dims: dims3.clone(),
                cuts,
                queries,
            })
        })
    })
}

/// Run one redistribution; returns each consumer's values (indexed by
/// consumer rank). With a fault plan, runs under chaos and asserts that
/// no rank died (the plans sampled here are kill-free and benign).
fn run_scenario(s: &Scenario, plan: Option<FaultPlan>) -> Vec<Vec<u64>> {
    let specs = [TaskSpec::new("p", s.producers), TaskSpec::new("c", s.consumers)];
    let producers = s.producers;
    let s = s.clone();
    let body = move |tc: simmpi::TaskComm| {
        let producers: Vec<usize> = (0..s.producers).collect();
        let consumers: Vec<usize> = (s.producers..s.producers + s.consumers).collect();
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone()).produce("*", consumers).build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone()).consume("*", producers).build()
        };
        let h5 = H5::with_vol(vol);
        let space = Dataspace::simple(&s.dims);
        if tc.task_id == 0 {
            let p = tc.local.rank();
            let x0 = if p == 0 { 0 } else { s.cuts[p - 1] };
            let x1 = if p + 1 == s.producers { s.dims[0] } else { s.cuts[p] };
            let f = h5.create_file("prop.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&s.dims)).unwrap();
            if x1 > x0 {
                // Write this x-range (possibly empty for some producers).
                let mut start = vec![0u64; s.dims.len()];
                start[0] = x0;
                let mut size = s.dims.clone();
                size[0] = x1 - x0;
                let sel = Selection::block(&start, &size);
                let vals: Vec<u64> =
                    sel.runs(&space).iter().flat_map(|r| r.offset..r.offset + r.len).collect();
                d.write_selection(&sel, &vals).unwrap();
            }
            f.close().unwrap();
            Vec::new()
        } else {
            let c = tc.local.rank();
            let (start, size) = &s.queries[c];
            let f = h5.open_file("prop.h5").unwrap();
            let d = f.open_dataset("x").unwrap();
            let sel = Selection::block(start, size);
            let got: Vec<u64> = d.read_selection(&sel).unwrap();
            let expect: Vec<u64> = sel
                .runs(&Dataspace::simple(&s.dims))
                .iter()
                .flat_map(|r| r.offset..r.offset + r.len)
                .collect();
            assert_eq!(got, expect, "query {start:?}+{size:?} over dims {:?}", s.dims);
            f.close().unwrap();
            got
        }
    };
    let results: Vec<Option<Vec<u64>>> = match plan {
        None => TaskWorld::run(&specs, body).into_iter().map(Some).collect(),
        Some(plan) => {
            let out = TaskWorld::run_chaos(&specs, None, plan, body);
            assert!(out.deaths.is_empty(), "benign plan killed ranks: {:?}", out.deaths);
            out.results
        }
    };
    results.into_iter().skip(producers).map(|r| r.expect("every rank finishes")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Every consumer read returns position-encoded values, for arbitrary
    /// rank-1..3 grids, uneven producer cuts (including empty producers),
    /// and arbitrary consumer boxes.
    #[test]
    fn redistribution_is_position_exact(s in scenario()) {
        run_scenario(&s, None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Sampling the (workload geometry × fault seed) product: a seeded
    /// delay/reorder plan (no kills) must leave every redistributed byte
    /// identical to the fault-free run of the same geometry.
    #[test]
    fn faulted_redistribution_matches_fault_free(s in scenario(), seed in any::<u64>()) {
        let clean = run_scenario(&s, None);
        let plan = FaultPlan::new(seed).delay(0.4, Duration::from_micros(400)).reorder(0.5);
        let chaotic = run_scenario(&s, Some(plan));
        prop_assert_eq!(clean, chaotic, "fault seed {:#x} changed redistributed bytes", seed);
    }
}

/// Like [`run_scenario`], but every consumer reads *all* scenario queries
/// in one shot. With `batched` the read is a single `read_bytes_multi`
/// over the pipelined path (one `M_DATA_BATCH` frame per producer);
/// without it the fetch pipeline is disabled and the queries run as N
/// serial reads. Returns each consumer's concatenated bytes.
fn run_scenario_multi(s: &Scenario, plan: Option<FaultPlan>, batched: bool) -> Vec<Vec<u8>> {
    let specs = [TaskSpec::new("p", s.producers), TaskSpec::new("c", s.consumers)];
    let producers = s.producers;
    let s = s.clone();
    let body = move |tc: simmpi::TaskComm| {
        let producers: Vec<usize> = (0..s.producers).collect();
        let consumers: Vec<usize> = (s.producers..s.producers + s.consumers).collect();
        let mut props = LowFiveProps::new();
        props.set_fetch_pipeline("*", batched);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*", consumers)
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*", producers)
                .build()
        };
        let h5 = H5::with_vol(vol);
        let space = Dataspace::simple(&s.dims);
        if tc.task_id == 0 {
            let p = tc.local.rank();
            let x0 = if p == 0 { 0 } else { s.cuts[p - 1] };
            let x1 = if p + 1 == s.producers { s.dims[0] } else { s.cuts[p] };
            let f = h5.create_file("prop-multi.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&s.dims)).unwrap();
            if x1 > x0 {
                let mut start = vec![0u64; s.dims.len()];
                start[0] = x0;
                let mut size = s.dims.clone();
                size[0] = x1 - x0;
                let sel = Selection::block(&start, &size);
                let vals: Vec<u64> =
                    sel.runs(&space).iter().flat_map(|r| r.offset..r.offset + r.len).collect();
                d.write_selection(&sel, &vals).unwrap();
            }
            f.close().unwrap();
            Vec::new()
        } else {
            let f = h5.open_file("prop-multi.h5").unwrap();
            let d = f.open_dataset("x").unwrap();
            let sels: Vec<Selection> =
                s.queries.iter().map(|(start, size)| Selection::block(start, size)).collect();
            let bufs = if batched {
                d.read_bytes_multi(&sels).unwrap()
            } else {
                sels.iter().map(|sel| d.read_bytes(sel).unwrap()).collect()
            };
            f.close().unwrap();
            bufs.iter().flat_map(|b| b.iter().copied()).collect::<Vec<u8>>()
        }
    };
    let results: Vec<Option<Vec<u8>>> = match plan {
        None => TaskWorld::run(&specs, body).into_iter().map(Some).collect(),
        Some(plan) => {
            let out = TaskWorld::run_chaos(&specs, None, plan, body);
            assert!(out.deaths.is_empty(), "benign plan killed ranks: {:?}", out.deaths);
            out.results
        }
    };
    results.into_iter().skip(producers).map(|r| r.expect("every rank finishes")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// One batched multi-selection read must return byte-identical data
    /// to N serial reads, across the (geometry × fault seed) product —
    /// batching and overlap are pure transport optimizations.
    #[test]
    fn batched_read_matches_serial_reads(s in scenario(), seed in any::<u64>()) {
        let plan = || FaultPlan::new(seed).delay(0.3, Duration::from_micros(300)).reorder(0.4);
        let serial = run_scenario_multi(&s, Some(plan()), false);
        let batched = run_scenario_multi(&s, Some(plan()), true);
        prop_assert_eq!(serial, batched, "fault seed {:#x}: batched != serial", seed);
    }
}

/// Like [`run_scenario_multi`], but the producers write raw refcounted
/// buffers and the zero-copy rule is toggled: `shallow` serves borrowed
/// sub-slices of the producer regions, `!shallow` forces deep staging
/// copies. A drop-once fault plan (plus bounded RPC retries) may be
/// layered on to retransmit borrowed reply frames. Returns each
/// consumer's concatenated query bytes.
fn run_scenario_zc(s: &Scenario, plan: Option<FaultPlan>, shallow: bool) -> Vec<Vec<u8>> {
    let specs = [TaskSpec::new("p", s.producers), TaskSpec::new("c", s.consumers)];
    let producers = s.producers;
    let faulted = plan.is_some();
    let s = s.clone();
    let body = move |tc: simmpi::TaskComm| {
        let producers: Vec<usize> = (0..s.producers).collect();
        let consumers: Vec<usize> = (s.producers..s.producers + s.consumers).collect();
        let mut props = LowFiveProps::new();
        props.set_zerocopy("*", "*", shallow);
        if faulted {
            // Dropped requests/replies need a bounded retry to converge.
            props.set_rpc_timeout("*", Some(Duration::from_millis(150)));
            props.set_rpc_retries("*", 30);
        }
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*", consumers)
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*", producers)
                .build()
        };
        let h5 = H5::with_vol(vol);
        let space = Dataspace::simple(&s.dims);
        if tc.task_id == 0 {
            let p = tc.local.rank();
            let x0 = if p == 0 { 0 } else { s.cuts[p - 1] };
            let x1 = if p + 1 == s.producers { s.dims[0] } else { s.cuts[p] };
            let f = h5.create_file("prop-zc.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&s.dims)).unwrap();
            if x1 > x0 {
                let mut start = vec![0u64; s.dims.len()];
                start[0] = x0;
                let mut size = s.dims.clone();
                size[0] = x1 - x0;
                let sel = Selection::block(&start, &size);
                let raw: Vec<u8> = sel
                    .runs(&space)
                    .iter()
                    .flat_map(|r| r.offset..r.offset + r.len)
                    .flat_map(|v| v.to_le_bytes())
                    .collect();
                d.write_bytes(&sel, bytes::Bytes::from(raw), minih5::Ownership::Shallow).unwrap();
            }
            f.close().unwrap();
            Vec::new()
        } else {
            let f = h5.open_file("prop-zc.h5").unwrap();
            let d = f.open_dataset("x").unwrap();
            let sels: Vec<Selection> =
                s.queries.iter().map(|(start, size)| Selection::block(start, size)).collect();
            let bufs = d.read_bytes_multi(&sels).unwrap();
            f.close().unwrap();
            bufs.iter().flat_map(|b| b.iter().copied()).collect::<Vec<u8>>()
        }
    };
    let results: Vec<Option<Vec<u8>>> = match plan {
        None => TaskWorld::run(&specs, body).into_iter().map(Some).collect(),
        Some(plan) => {
            let out = TaskWorld::run_chaos(&specs, None, plan, body);
            assert!(out.deaths.is_empty(), "benign plan killed ranks: {:?}", out.deaths);
            out.results
        }
    };
    results.into_iter().skip(producers).map(|r| r.expect("every rank finishes")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Shallow (zero-copy, borrowed reply slices) and deep (staged copy)
    /// serves must deliver byte-identical data across the (geometry ×
    /// fault seed) product — including dropped-once replies whose
    /// borrowed frames are retransmitted — and both must match the
    /// fault-free shallow run. Ownership is a transport property, never
    /// a data property.
    #[test]
    fn shallow_and_deep_serves_are_byte_identical(s in scenario(), seed in any::<u64>()) {
        let clean = run_scenario_zc(&s, None, true);
        let plan = || FaultPlan::new(seed)
            .drop_once(0.3)
            .delay(0.3, Duration::from_micros(300))
            .reorder(0.4);
        let shallow = run_scenario_zc(&s, Some(plan()), true);
        let deep = run_scenario_zc(&s, Some(plan()), false);
        prop_assert_eq!(&shallow, &deep, "fault seed {:#x}: shallow != deep", seed);
        prop_assert_eq!(&shallow, &clean, "fault seed {:#x}: faulted != fault-free", seed);
    }
}
