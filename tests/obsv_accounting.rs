//! Transport accounting: the `obsv` layer and `simmpi`'s byte counters
//! are two independent views of the same traffic and must agree exactly.
//!
//! `Comm::send_internal` feeds both sinks back to back — `TransportStats`
//! (the paper's message/byte counts) and the `MsgSize` histogram — after
//! the fault layer has decided the message's fate. These tests pin that
//! identity down: histogram `sum`/`count` equal the `StatsSnapshot`
//! delta over a whole LowFive exchange, and over hand-rolled traffic with
//! known sizes the bucket placement itself is exact.

use std::sync::Arc;

use bench::workload::Workload;
use lowfive::DistVolBuilder;
use minih5::{Vol, H5};
use simmpi::{TaskComm, TaskSpec, TaskWorld, World};

fn world_ranks(tc: &TaskComm, task_id: usize) -> Vec<usize> {
    (0..tc.task_size(task_id)).map(|r| tc.world_rank_of(task_id, r)).collect()
}

fn grid_bytes(w: &Workload, bb: &minih5::BBox) -> Vec<u8> {
    w.grid_values(bb).iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// A full in-memory LowFive exchange, observed: every payload byte the
/// world delivered must appear in the `MsgSize` histogram, once.
#[test]
fn lowfive_exchange_bytes_match_stats_snapshot() {
    let w = Workload { producers: 2, consumers: 2, grid_per_prod: 64, particles_per_prod: 16 };
    let reg = obsv::Registry::new();
    let specs = [TaskSpec::new("p", w.producers), TaskSpec::new("c", w.consumers)];
    let out = TaskWorld::run_observed(&specs, None, Some(&reg), |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone()).produce("*", consumers).build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone()).consume("*", producers).build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let p = tc.local.rank();
            let f = h5.create_file("acct.h5").unwrap();
            let d = f
                .create_dataset(
                    "grid",
                    minih5::Datatype::UInt64,
                    minih5::Dataspace::simple(&w.grid_dims()),
                )
                .unwrap();
            d.write_bytes(
                &w.producer_grid_sel(p),
                grid_bytes(&w, &w.producer_grid_box(p)).into(),
                minih5::Ownership::Shallow,
            )
            .unwrap();
            f.close().unwrap();
        } else {
            let c = tc.local.rank();
            let f = h5.open_file("acct.h5").unwrap();
            let got = f.open_dataset("grid").unwrap().read_bytes(&w.consumer_grid_sel(c)).unwrap();
            assert_eq!(got.len(), w.consumer_grid_box(c).npoints() as usize * 8);
            f.close().unwrap();
        }
    });

    let report = reg.report();
    assert_eq!(report.dropped(), 0, "ring overflow would skew the accounting");
    assert_eq!(report.ranks(), vec![0, 1, 2, 3], "every world rank must have a lane");

    // The core identity: two independent byte counters, one truth.
    let sizes = report.hist(obsv::Hist::MsgSize);
    assert_eq!(report.counter(obsv::Ctr::MsgsSent), out.stats.messages);
    assert_eq!(report.counter(obsv::Ctr::BytesSent), out.stats.bytes);
    assert_eq!(sizes.count, out.stats.messages, "one histogram sample per message");
    assert_eq!(sizes.sum, out.stats.bytes, "histogram byte mass == StatsSnapshot bytes");
    assert_eq!(
        sizes.buckets.iter().sum::<u64>(),
        sizes.count,
        "bucket occupancies must account for every sample"
    );

    // Latency is recorded on delivery; nothing can be delivered more
    // often than it was sent.
    let lat = report.hist(obsv::Hist::MsgLatencyNs);
    assert!(
        lat.count <= out.stats.messages,
        "{} delivered > {} sent",
        lat.count,
        out.stats.messages
    );
    assert!(lat.count > 0, "a real exchange delivers messages");

    // The exchange exercises the whole stack: collectives under the
    // communicator split, RPC for metadata/data, LowFive phases on top.
    let coll_total: u64 = [
        obsv::Ctr::CollBarrier,
        obsv::Ctr::CollBcast,
        obsv::Ctr::CollGather,
        obsv::Ctr::CollScatter,
        obsv::Ctr::CollAlltoall,
        obsv::Ctr::CollAllgather,
        obsv::Ctr::CollReduce,
        obsv::Ctr::CollExscan,
    ]
    .iter()
    .map(|&c| report.counter(c))
    .sum();
    assert!(coll_total > 0, "the exchange must run at least one collective");
    let coll_lat = report.hist(obsv::Hist::CollLatencyNs);
    assert_eq!(coll_lat.count, coll_total, "one latency sample per collective call");
    assert_eq!(
        report.hist(obsv::Hist::CollBytes).count,
        coll_total,
        "one payload-size sample per collective call"
    );
    assert!(report.counter(obsv::Ctr::RpcCalls) > 0);
    let phases: Vec<&str> = report.phase_totals().iter().map(|p| p.phase.name()).collect();
    for want in ["index", "serve", "open", "query"] {
        assert!(phases.contains(&want), "phase {want:?} missing from {phases:?}");
    }
}

/// Hand-rolled traffic with known payload sizes: the histogram must place
/// each message in exactly the right power-of-two bucket.
#[test]
fn known_payload_sizes_land_in_exact_buckets() {
    let reg = obsv::Registry::new();
    // Rank 0 sends rank 1 three messages of 1, 100, and 5000 u64s
    // (8, 800, 40000 bytes).
    let lens: [usize; 3] = [1, 100, 5000];
    let out = World::builder(2)
        .observe(reg.clone())
        .run(|comm| {
            if comm.rank() == 0 {
                for (tag, n) in lens.iter().enumerate() {
                    comm.send_u64s(1, tag as u32, &vec![7u64; *n]);
                }
            } else {
                for (tag, n) in lens.iter().enumerate() {
                    let (_, got) = comm.recv_u64s(0.into(), (tag as u32).into());
                    assert_eq!(got.len(), *n);
                }
            }
        })
        .stats;

    let report = reg.report();
    let total: u64 = lens.iter().map(|n| *n as u64 * 8).sum();
    assert_eq!(out.bytes, total);
    assert_eq!(out.messages, 3);

    let sizes = report.hist(obsv::Hist::MsgSize);
    assert_eq!(sizes.count, 3);
    assert_eq!(sizes.sum, total);
    for n in lens {
        let bytes = n as u64 * 8;
        let b = obsv::hist::bucket_index(bytes);
        assert!(sizes.buckets[b] > 0, "{bytes}-byte message missing from bucket {b}");
        assert!(obsv::hist::bucket_lo(b) <= bytes && bytes <= obsv::hist::bucket_hi(b));
    }
}

/// Messages the fault layer swallows are invisible to *both* counters:
/// the histogram must not claim bytes the transport never delivered nor
/// counted.
#[test]
fn dropped_messages_stay_out_of_both_ledgers() {
    use diyblk::{RetryPolicy, RpcClient, RpcServer, ServeOutcome};
    use simmpi::FaultPlan;

    let run = |seed: u64| {
        let reg = obsv::Registry::new();
        let out = World::builder(2)
            .fault_plan(FaultPlan::new(seed).drop_once(1.0))
            .observe(reg.clone())
            .run_chaos(|comm| {
                if comm.rank() == 0 {
                    RpcServer::new(&comm).serve(|_caller, method, args| {
                        if method == 1 {
                            ServeOutcome::Stop(Some(bytes::Bytes::from_static(b"bye")))
                        } else {
                            ServeOutcome::Reply(args)
                        }
                    });
                } else {
                    let client = RpcClient::new(&comm);
                    let policy = RetryPolicy::new(5, std::time::Duration::from_millis(150));
                    let echoed = client.call_retry(0, 0, b"ping", policy).unwrap();
                    assert_eq!(&echoed[..], b"ping");
                    client.call_retry(0, 1, b"", policy).unwrap();
                }
            });
        (reg.report(), out.stats)
    };

    let (report, stats) = run(0xACC7);
    // Retries happened (the first request and/or reply was dropped) …
    assert!(report.counter(obsv::Ctr::RpcRetries) > 0, "drop_once(1.0) must force a retry");
    // … yet the two byte ledgers still agree exactly, because both are
    // updated only for messages the fault layer let through.
    let sizes = report.hist(obsv::Hist::MsgSize);
    assert_eq!(report.counter(obsv::Ctr::BytesSent), stats.bytes);
    assert_eq!(sizes.sum, stats.bytes);
    assert_eq!(sizes.count, stats.messages);
}
