//! A/B property test: step streaming is just file exchange in a loop.
//!
//! For any small geometry (producer/consumer counts, slab size, step
//! count) and any benign fault seed (delays, reordering), an `EveryStep`
//! subscription over a `Block`-mode series must deliver byte-identical
//! data, in the identical order, to the obvious serial alternative: the
//! producer writing one whole file per step and the consumer reading each
//! file back through the plain (non-streaming) transport. Back-pressure,
//! slot rotation, announce polling, and ack multicast are all invisible
//! in the delivered bytes — they only change *when* things happen.

use std::sync::Arc;
use std::time::Duration;

use lowfive::{
    BackPressure, DistVolBuilder, LowFiveProps, StepPolicy, StepPublisher, StepSubscription,
};
use minih5::{Dataspace, Datatype, Selection, Vol, H5};
use proptest::prelude::*;
use simmpi::{FaultPlan, TaskComm, TaskSpec, TaskWorld};

/// The one dataset cell value: a function of the step and the global
/// index, so any misrouted, stale, or reordered read changes some byte.
fn val(seq: u64, i: u64) -> u64 {
    seq * 1_000_000 + i
}

fn world_ranks(tc: &TaskComm, task_id: usize) -> Vec<usize> {
    (0..tc.task_size(task_id)).map(|r| tc.world_rank_of(task_id, r)).collect()
}

/// One consumer's delivered steps: `(seq, dataset bytes)` in delivery
/// order.
type Delivered = Vec<(u64, Vec<u64>)>;

/// Producer rank `p` of `producers` writes its slab of step `seq` into
/// the open file `f` (dims `[producers * elems]`).
fn write_slab(f: &minih5::H5File, producers: u64, p: u64, elems: u64, seq: u64) {
    let d = f
        .create_dataset("x", Datatype::UInt64, Dataspace::simple(&[producers * elems]))
        .expect("dataset");
    let base = p * elems;
    let vals: Vec<u64> = (base..base + elems).map(|i| val(seq, i)).collect();
    d.write_selection(&Selection::block(&[base], &[elems]), &vals).expect("write slab");
}

/// Stream `steps` steps through a depth-2 `Block` queue and return each
/// consumer's delivered `(seq, bytes)` list, under `plan`'s benign
/// faults.
fn run_streamed(
    producers: usize,
    consumers: usize,
    elems: u64,
    steps: u64,
    plan: FaultPlan,
) -> Vec<Option<Delivered>> {
    let specs = [TaskSpec::new("producer", producers), TaskSpec::new("consumer", consumers)];
    let np = producers as u64;
    let out = TaskWorld::run_chaos(&specs, None, plan, move |tc| {
        let mut props = LowFiveProps::new();
        props
            .set_stream_queue_depth("sim.h5", 2)
            .set_stream_backpressure("sim.h5", BackPressure::Block);
        if tc.task_id == 0 {
            let vol = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("sim.h5@s*", world_ranks(&tc, 1))
                .async_serve(true)
                .build();
            let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
            let publisher = StepPublisher::new(vol.clone(), "sim.h5").expect("publisher");
            // Every producer rank runs this loop in lockstep, as the
            // ordering contract requires.
            for seq in 0..steps {
                let f = h5.create_file(&publisher.step_file()).expect("create slot");
                write_slab(&f, np, tc.local.rank() as u64, elems, seq);
                f.close().expect("close slot");
                publisher.publish().expect("publish");
            }
            assert!(publisher.finish(None), "Block + EveryStep consumes everything");
            vol.drain();
            Vec::new()
        } else {
            let vol = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("sim.h5@s*", world_ranks(&tc, 0))
                .build();
            let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
            let mut sub =
                StepSubscription::new(vol, "sim.h5", StepPolicy::EveryStep).expect("subscribe");
            let mut seen = Vec::new();
            while let Some(step) = sub.next_step().expect("next step") {
                let f = h5.open_file(&step.file).expect("open step");
                let got = f.open_dataset("x").expect("dataset").read_all::<u64>().expect("read");
                f.close().expect("close step");
                seen.push((step.seq, got));
            }
            seen
        }
    });
    out.results
}

/// The reference: the same data as one ordinary whole-file exchange per
/// step (`ref<seq>.h5`), no streaming anywhere. Fault-free — this is the
/// ground truth the faulted streamed run must reproduce.
fn run_serial(producers: usize, consumers: usize, elems: u64, steps: u64) -> Vec<Delivered> {
    let specs = [TaskSpec::new("producer", producers), TaskSpec::new("consumer", consumers)];
    let np = producers as u64;
    TaskWorld::run(&specs, move |tc| {
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("ref*", world_ranks(&tc, 1))
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("ref*", world_ranks(&tc, 0))
                .build()
        };
        let h5 = H5::with_vol(vol);
        let mut seen = Vec::new();
        for seq in 0..steps {
            let name = format!("ref{seq}.h5");
            if tc.task_id == 0 {
                let f = h5.create_file(&name).expect("create");
                write_slab(&f, np, tc.local.rank() as u64, elems, seq);
                f.close().expect("close (index + serve)");
            } else {
                let f = h5.open_file(&name).expect("open");
                let got = f.open_dataset("x").expect("dataset").read_all::<u64>().expect("read");
                f.close().expect("release the producers");
                seen.push((seq, got));
            }
        }
        seen
    })
}

fn plan_for(seed: u64, fault: u8) -> FaultPlan {
    match fault {
        0 => FaultPlan::new(seed),
        1 => FaultPlan::new(seed).delay(0.3, Duration::from_millis(1)),
        _ => FaultPlan::new(seed).delay(0.2, Duration::from_millis(1)).reorder(0.5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]
    #[test]
    fn streamed_reads_match_serial_exchange(
        producers in 1usize..=2,
        consumers in 1usize..=2,
        elems in 2u64..=6,
        steps in 3u64..=5,
        seed in any::<u64>(),
        fault in 0u8..3,
    ) {
        let streamed = run_streamed(producers, consumers, elems, steps, plan_for(seed, fault));
        let serial = run_serial(producers, consumers, elems, steps);
        for c in 0..consumers {
            let got = streamed[producers + c].as_ref().expect("consumer survived benign faults");
            let want = &serial[producers + c];
            prop_assert_eq!(
                got, want,
                "consumer {} (geometry {}x{}, {} elems, {} steps, fault {})",
                c, producers, consumers, elems, steps, fault
            );
        }
        // Sanity on the reference itself: all steps, expected bytes.
        let want0 = &serial[producers];
        prop_assert_eq!(want0.len() as u64, steps);
        for (seq, data) in want0 {
            let expect: Vec<u64> =
                (0..producers as u64 * elems).map(|i| val(*seq, i)).collect();
            prop_assert_eq!(data, &expect);
        }
    }
}
