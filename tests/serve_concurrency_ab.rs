//! A/B property and chaos tests for the concurrent serve engine.
//!
//! 1. **Byte identity.** For any small geometry (producer/consumer
//!    counts, slab size), region ownership (shallow lend or deep copy
//!    with a modeled gather cost), fetch shape (per-chunk or batched),
//!    and benign fault seed (delays, reordering), an exchange served by
//!    a worker pool must deliver bytes identical to the strictly serial
//!    engine's fault-free run. The pool only changes *when* replies are
//!    computed and sent — call-id matching means it can never change
//!    what a consumer reads.
//!
//! 2. **Dead consumers.** A consumer killed mid-flight — with its
//!    requests potentially queued in the pool — must neither wedge the
//!    producer nor corrupt another consumer's replies, and the kill
//!    trace must be identical between the serial and concurrent
//!    engines (fault injection counts only the victim's own sends, so
//!    producer-side concurrency must not move the kill point).

use std::sync::Arc;
use std::time::Duration;

use lowfive::{
    BackPressure, DistVolBuilder, LowFiveProps, ServeWorkers, StepPolicy, StepPublisher,
    StepSubscription,
};
use minih5::{Dataspace, Datatype, Selection, Vol, H5};
use proptest::prelude::*;
use simmpi::{FaultKind, FaultPlan, TaskComm, TaskSpec, TaskWorld};

fn world_ranks(tc: &TaskComm, task_id: usize) -> Vec<usize> {
    (0..tc.task_size(task_id)).map(|r| tc.world_rank_of(task_id, r)).collect()
}

/// Smooth field value (compresses under delta-RLE, exercises the codec
/// planning path inside the workers too).
fn smooth(i: u64) -> u64 {
    1_000_000 + i / 7
}

/// Incompressible value: a full-width LCG scramble of the index.
fn noisy(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ 0xA5A5_5A5A_DEAD_BEEF
}

/// One exchange with `workers` serve workers; returns each consumer
/// rank's `(smooth, noisy)` reads (None for producer slots).
fn run_exchange(
    producers: usize,
    consumers: usize,
    elems: u64,
    workers: usize,
    deep: bool,
    pipelined: bool,
    plan: FaultPlan,
) -> Vec<Option<(Vec<u64>, Vec<u64>)>> {
    let specs = [TaskSpec::new("producer", producers), TaskSpec::new("consumer", consumers)];
    let np = producers as u64;
    let out = TaskWorld::run_chaos(&specs, None, plan, move |tc| {
        let mut props = LowFiveProps::new();
        props
            .set_serve_workers("*.h5", ServeWorkers::Fixed(workers))
            .set_zerocopy("*", "*", !deep)
            .set_fetch_pipeline("*", pipelined);
        if deep {
            // A small modeled gather stall keeps several requests
            // genuinely in flight inside the pool at once.
            props.set_gather_cost("*.h5", 10.0);
        }
        if tc.task_id == 0 {
            let vol: Arc<dyn Vol> = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*.h5", world_ranks(&tc, 1))
                .build();
            let h5 = H5::with_vol(vol);
            let f = h5.create_file("ab.h5").expect("create");
            let total = np * elems;
            let base = tc.local.rank() as u64 * elems;
            for (name, gen) in [("smooth", smooth as fn(u64) -> u64), ("noisy", noisy)] {
                let d = f
                    .create_dataset(name, Datatype::UInt64, Dataspace::simple(&[total]))
                    .expect("dataset");
                let vals: Vec<u64> = (base..base + elems).map(gen).collect();
                d.write_selection(&Selection::block(&[base], &[elems]), &vals).expect("write");
            }
            f.close().expect("index + serve");
            None
        } else {
            let vol: Arc<dyn Vol> = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*.h5", world_ranks(&tc, 0))
                .build();
            let h5 = H5::with_vol(vol);
            let f = h5.open_file("ab.h5").expect("open");
            let s = f.open_dataset("smooth").expect("smooth").read_all::<u64>().expect("read");
            let n = f.open_dataset("noisy").expect("noisy").read_all::<u64>().expect("read");
            f.close().expect("release");
            Some((s, n))
        }
    });
    out.results.into_iter().map(|r| r.expect("rank survived benign faults")).collect()
}

fn plan_for(seed: u64, fault: u8) -> FaultPlan {
    match fault {
        0 => FaultPlan::new(seed),
        1 => FaultPlan::new(seed).delay(0.3, Duration::from_millis(1)),
        _ => FaultPlan::new(seed).delay(0.2, Duration::from_millis(1)).reorder(0.5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn concurrent_serve_delivers_serial_identical_bytes(
        producers in 1usize..=2,
        consumers in 1usize..=3,
        elems in 16u64..=64,
        deep in any::<bool>(),
        pipelined in any::<bool>(),
        seed in any::<u64>(),
        fault in 0u8..3,
    ) {
        // Ground truth: today's strictly serial engine, shallow regions,
        // unbatched fetch, no faults.
        let want = run_exchange(
            producers, consumers, elems, 1, false, false, FaultPlan::new(0),
        );
        for workers in [2usize, 4] {
            let got = run_exchange(
                producers, consumers, elems, workers, deep, pipelined,
                plan_for(seed, fault),
            );
            for c in 0..consumers {
                prop_assert_eq!(
                    &got[producers + c], &want[producers + c],
                    "consumer {} with {} workers (deep={}, pipelined={}, \
                     geometry {}x{}, {} elems, fault {})",
                    c, workers, deep, pipelined, producers, consumers, elems, fault
                );
            }
        }
        // Sanity on the ground truth itself.
        let (s, n) = want[producers].as_ref().expect("consumer result");
        let total = producers as u64 * elems;
        prop_assert_eq!(s, &(0..total).map(smooth).collect::<Vec<u64>>());
        prop_assert_eq!(n, &(0..total).map(noisy).collect::<Vec<u64>>());
    }
}

/// Outcome of one kill run: the surviving consumer's delivered step
/// sequence and the fault trace's kill record.
struct KillRun {
    survivor_steps: Vec<u64>,
    victim_rank: usize,
    deaths: usize,
    producer_finished: bool,
}

/// One streaming session over the overlap-mode serve loop — the only
/// serve path whose lifetime does not count the dead consumer's DONE —
/// with consumer world rank 2 killed at its `kill_at`-th send, i.e.
/// mid-flight with data requests potentially queued in the pool. The
/// producer publishes deep steps under a modeled gather cost so the
/// workers really do hold jobs when the kill lands.
fn run_kill(workers: usize, kill_at: u64) -> KillRun {
    const STEPS: u64 = 6;
    let specs = [TaskSpec::new("producer", 1), TaskSpec::new("consumer", 2)];
    let plan = FaultPlan::new(0xC0_FFEE).kill_rank(2, kill_at);
    let out = TaskWorld::run_chaos(&specs, None, plan, move |tc| -> (Vec<u64>, bool) {
        let mut props = LowFiveProps::new();
        props
            .set_stream_queue_depth("sim.h5", 2)
            .set_stream_backpressure("sim.h5", BackPressure::DropOldest)
            .set_serve_workers("sim.h5*", ServeWorkers::Fixed(workers))
            .set_zerocopy("*", "*", false)
            .set_gather_cost("sim.h5*", 50.0);
        if tc.task_id == 0 {
            let vol = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("sim.h5@s*", vec![1, 2])
                .async_serve(true)
                .build();
            let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
            let publisher = StepPublisher::new(vol.clone(), "sim.h5").expect("publisher");
            for n in 0..STEPS {
                let f = h5.create_file(&publisher.step_file()).expect("create slot");
                let d = f
                    .create_dataset("x", Datatype::UInt64, Dataspace::simple(&[512]))
                    .expect("dataset");
                d.write_selection(&Selection::block(&[0], &[512]), &[n; 512]).expect("write");
                f.close().expect("close slot");
                publisher.publish().expect("DropOldest publish never blocks");
                // Give the followers a moment per step so the survivor
                // sees most of the series even at depth 2.
                std::thread::sleep(Duration::from_millis(5));
            }
            // The victim never acks its outstanding steps: the bounded
            // drain must time out cleanly, never hang on the pool.
            let drained = publisher.finish(Some(Duration::from_millis(100)));
            vol.drain();
            (Vec::new(), !drained)
        } else {
            let vol = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("sim.h5@s*", vec![0])
                .build();
            let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
            let mut sub =
                StepSubscription::new(vol, "sim.h5", StepPolicy::EveryStep).expect("subscribe");
            let mut seen = Vec::new();
            while let Some(step) = sub.next_step().expect("next step") {
                let f = h5.open_file(&step.file).expect("open step");
                let got = f.open_dataset("x").expect("dataset").read_all::<u64>().expect("read");
                f.close().expect("close step");
                if !sub.is_torn(&step) {
                    assert_eq!(
                        got,
                        vec![step.seq; 512],
                        "step {} payload corrupted by a concurrent reply",
                        step.seq
                    );
                    seen.push(step.seq);
                }
            }
            (seen, true)
        }
    });
    assert_eq!(out.deaths.len(), 1, "exactly one injected death: {:?}", out.deaths);
    assert!(out.deaths[0].injected);
    assert_eq!(out.trace.len(), 1);
    assert_eq!(out.trace[0].kind, FaultKind::Killed);
    assert!(out.results[2].is_none(), "the victim never returns");
    let (survivor_steps, _) = out.results[1].clone().expect("survivor finished");
    let (_, producer_finished) = out.results[0].clone().expect("producer finished");
    KillRun {
        survivor_steps,
        victim_rank: out.deaths[0].rank,
        deaths: out.deaths.len(),
        producer_finished,
    }
}

#[test]
fn killed_consumer_with_queued_requests_is_contained() {
    // Send 8 lands mid-stream: after the subscribe and the first slot
    // reads, with data requests plausibly sitting in the worker queue.
    let t0 = std::time::Instant::now();
    let serial = run_kill(1, 8);
    let pooled = run_kill(4, 8);
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "took {:?} — a dead consumer wedged a serve engine?",
        t0.elapsed()
    );
    for (name, run) in [("serial", &serial), ("pooled", &pooled)] {
        assert_eq!(run.deaths, 1, "{name}");
        assert_eq!(run.victim_rank, 2, "{name}: the kill must land on the victim");
        assert!(run.producer_finished, "{name}: producer must exit via drain timeout");
        assert!(
            !run.survivor_steps.is_empty(),
            "{name}: the surviving consumer must keep receiving steps"
        );
        let sorted = {
            let mut s = run.survivor_steps.clone();
            s.sort_unstable();
            s.dedup();
            s
        };
        assert_eq!(sorted, run.survivor_steps, "{name}: steps arrive in order, no duplicates");
    }
    // The kill point is a pure function of the victim's own sends, so
    // producer-side concurrency must not move it.
    assert_eq!(serial.victim_rank, pooled.victim_rank, "kill trace differs across engines");
}
