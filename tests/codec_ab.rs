//! A/B property test: the wire codec layer is invisible in delivered
//! bytes.
//!
//! For any small geometry (producer/consumer counts, slab size), any
//! codec policy (`Raw`, `Rle`, `DeltaRle`, `Auto` over a slow modeled
//! link), and any benign fault seed (delays, reordering), a full
//! produce → redistribute → consume exchange must deliver bytes
//! identical to the fault-free raw run. Compression, negotiation, the
//! cost model, and the raw fallback only change what crosses the wire —
//! never what the consumer reads.
//!
//! The file carries two datasets chosen to force both encoder paths at
//! once: a smooth field (delta-RLE collapses it) and a pseudo-random
//! one (nothing shrinks it, so the encoder must take the raw fallback
//! mid-negotiated-session).

use std::sync::Arc;
use std::time::Duration;

use lowfive::{DistVolBuilder, LowFiveProps, WireCodec};
use minih5::{Dataspace, Datatype, Selection, Vol, H5};
use proptest::prelude::*;
use simmpi::{CostModel, FaultPlan, TaskComm, TaskSpec, TaskWorld};

fn world_ranks(tc: &TaskComm, task_id: usize) -> Vec<usize> {
    (0..tc.task_size(task_id)).map(|r| tc.world_rank_of(task_id, r)).collect()
}

/// Smooth field value: consecutive elements near-equal, so the delta
/// stream is almost all zeros.
fn smooth(i: u64) -> u64 {
    1_000_000 + i / 7
}

/// Incompressible value: a full-width LCG scramble of the index.
fn noisy(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ 0xA5A5_5A5A_DEAD_BEEF
}

/// One exchange under `codec` policy on both sides; returns each
/// consumer rank's `(smooth, noisy)` reads (None for producer slots).
fn run_exchange(
    producers: usize,
    consumers: usize,
    elems: u64,
    codec: WireCodec,
    cost: Option<CostModel>,
    plan: FaultPlan,
) -> Vec<Option<(Vec<u64>, Vec<u64>)>> {
    let specs = [TaskSpec::new("producer", producers), TaskSpec::new("consumer", consumers)];
    let np = producers as u64;
    let out = TaskWorld::run_chaos(&specs, cost, plan, move |tc| {
        let mut props = LowFiveProps::new();
        props.set_wire_codec("*.h5", codec);
        if tc.task_id == 0 {
            let vol: Arc<dyn Vol> = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*.h5", world_ranks(&tc, 1))
                .build();
            let h5 = H5::with_vol(vol);
            let f = h5.create_file("ab.h5").expect("create");
            let total = np * elems;
            let base = tc.local.rank() as u64 * elems;
            for (name, gen) in [("smooth", smooth as fn(u64) -> u64), ("noisy", noisy)] {
                let d = f
                    .create_dataset(name, Datatype::UInt64, Dataspace::simple(&[total]))
                    .expect("dataset");
                let vals: Vec<u64> = (base..base + elems).map(gen).collect();
                d.write_selection(&Selection::block(&[base], &[elems]), &vals).expect("write");
            }
            f.close().expect("index + serve");
            None
        } else {
            let vol: Arc<dyn Vol> = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*.h5", world_ranks(&tc, 0))
                .build();
            let h5 = H5::with_vol(vol);
            let f = h5.open_file("ab.h5").expect("open");
            let s = f.open_dataset("smooth").expect("smooth").read_all::<u64>().expect("read");
            let n = f.open_dataset("noisy").expect("noisy").read_all::<u64>().expect("read");
            f.close().expect("release");
            Some((s, n))
        }
    });
    out.results.into_iter().map(|r| r.expect("rank survived benign faults")).collect()
}

fn plan_for(seed: u64, fault: u8) -> FaultPlan {
    match fault {
        0 => FaultPlan::new(seed),
        1 => FaultPlan::new(seed).delay(0.3, Duration::from_millis(1)),
        _ => FaultPlan::new(seed).delay(0.2, Duration::from_millis(1)).reorder(0.5),
    }
}

/// A link slow enough that the cost model says compression pays for
/// every dataset-sized body (1 ns/byte against the 0.3 ns/byte codec
/// cost).
fn slow_link() -> CostModel {
    CostModel { latency: Duration::from_micros(2), per_byte_ns: 1.0 }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    #[test]
    fn every_codec_delivers_raw_identical_bytes(
        producers in 1usize..=3,
        consumers in 1usize..=2,
        elems in 16u64..=64,
        seed in any::<u64>(),
        fault in 0u8..3,
    ) {
        // Ground truth: raw policy, no faults, no cost model.
        let want = run_exchange(
            producers, consumers, elems, WireCodec::Raw, None, FaultPlan::new(0),
        );
        for (codec, cost) in [
            (WireCodec::Raw, None),
            (WireCodec::Rle, None),
            (WireCodec::DeltaRle, None),
            (WireCodec::Auto, None),              // no model: negotiates, ships raw
            (WireCodec::Auto, Some(slow_link())), // model says compress
        ] {
            let got = run_exchange(
                producers, consumers, elems, codec, cost, plan_for(seed, fault),
            );
            for c in 0..consumers {
                prop_assert_eq!(
                    &got[producers + c], &want[producers + c],
                    "consumer {} under {:?} (cost={}, geometry {}x{}, {} elems, fault {})",
                    c, codec, cost.is_some(), producers, consumers, elems, fault
                );
            }
        }
        // Sanity on the ground truth itself.
        let (s, n) = want[producers].as_ref().expect("consumer result");
        let total = producers as u64 * elems;
        prop_assert_eq!(s, &(0..total).map(smooth).collect::<Vec<u64>>());
        prop_assert_eq!(n, &(0..total).map(noisy).collect::<Vec<u64>>());
    }
}
