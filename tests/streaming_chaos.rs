//! Chaos tests for the step-streaming layer (`lowfive::stream`).
//!
//! Two liveness properties the bounded step window must keep under
//! seeded fault injection:
//!
//! 1. **A dead consumer must not wedge the producer.** Under
//!    `BackPressure::DropOldest` the publish loop never waits on acks, so
//!    a consumer killed at its very first request still lets the producer
//!    publish everything, time out its bounded drain, and exit — with the
//!    streaming counters exact (no ack ever arrives, so eviction accounts
//!    for every step beyond the queue depth).
//! 2. **A dropped step announce is survivable.** The subscribe /
//!    next-step / ack control plane is idempotent polling, so with a
//!    retry policy armed (`set_rpc_timeout` / `set_rpc_retries`) a
//!    consumer whose request or reply vanished resends it and the
//!    delivered sequence — and every step's payload — stays exact.

use std::sync::Arc;
use std::time::Duration;

use lowfive::{
    BackPressure, DistVolBuilder, LowFiveProps, StepPolicy, StepPublisher, StepSubscription,
};
use minih5::{Dataspace, Datatype, Selection, Vol, H5};
use simmpi::{FaultKind, FaultPlan, TaskSpec, TaskWorld};

/// Properties shared by both sides: a depth-2 step queue on series
/// `sim.h5`, under the given back-pressure mode.
fn stream_props(mode: BackPressure) -> LowFiveProps {
    let mut props = LowFiveProps::new();
    props.set_stream_queue_depth("sim.h5", 2).set_stream_backpressure("sim.h5", mode);
    props
}

#[test]
fn killed_consumer_does_not_wedge_the_producer() {
    let specs = [TaskSpec::new("producer", 1), TaskSpec::new("consumer", 1)];
    // The consumer's first user-tag send is its M_STEP_SUB request: it
    // dies before the producer ever hears from it.
    let plan = FaultPlan::new(0x00DE_AD5B).kill_rank(1, 1);
    let reg = obsv::Registry::new();
    let t0 = std::time::Instant::now();
    let out = TaskWorld::run_chaos_observed(&specs, None, plan, Some(&reg), move |tc| {
        if tc.task_id == 0 {
            let vol = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(stream_props(BackPressure::DropOldest))
                .produce("sim.h5@s*", vec![1])
                .async_serve(true)
                .build();
            let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
            let publisher = StepPublisher::new(vol.clone(), "sim.h5").expect("publisher");
            for n in 0..6u64 {
                let f = h5.create_file(&publisher.step_file()).expect("create slot");
                let d = f
                    .create_dataset("x", Datatype::UInt64, Dataspace::simple(&[4]))
                    .expect("dataset");
                d.write_selection(&Selection::block(&[0], &[4]), &[n; 4]).expect("write");
                f.close().expect("close slot");
                publisher.publish().expect("DropOldest publish never blocks");
            }
            // The dead consumer never acks: the bounded drain must time
            // out cleanly rather than hang.
            let drained = publisher.finish(Some(Duration::from_millis(50)));
            vol.drain();
            drained
        } else {
            let vol = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("sim.h5@s*", vec![0])
                .build();
            // The fault plan kills this rank inside the subscribe's first
            // request send; the value below is never returned.
            let _ = StepSubscription::new(vol, "sim.h5", StepPolicy::EveryStep);
            true
        }
    });
    let elapsed = t0.elapsed();

    assert_eq!(out.deaths.len(), 1, "deaths: {:?}", out.deaths);
    assert_eq!(out.deaths[0].rank, 1, "the consumer is the victim");
    assert!(out.deaths[0].injected);
    assert!(out.results[1].is_none(), "the consumer never returns");
    assert_eq!(out.results[0], Some(false), "producer exits; its drain must have timed out");
    assert!(elapsed < Duration::from_secs(30), "took {elapsed:?} — producer wedged?");
    assert_eq!(out.trace.len(), 1);
    assert_eq!(out.trace[0].kind, FaultKind::Killed);

    // Counters are exact: all 6 steps published; with no ack ever
    // received, the depth-2 queue evicted everything beyond its capacity;
    // nobody was alive to lag.
    let report = reg.report();
    assert_eq!(report.counter(obsv::Ctr::StepsPublished), 6);
    assert_eq!(report.counter(obsv::Ctr::StepsDropped), 4);
    assert_eq!(report.counter(obsv::Ctr::StepsLagged), 0);
}

#[test]
fn dropped_step_announce_recovers_via_retry() {
    let specs = [TaskSpec::new("producer", 1), TaskSpec::new("consumer", 1)];
    // Probability 1: the first message on every flow vanishes — the SUB
    // request, the first announce reply, the first ack, all of them. The
    // armed retry policy must resend each one.
    let plan = FaultPlan::new(0x57E9).drop_once(1.0);
    let out = TaskWorld::run_chaos(&specs, None, plan, move |tc| -> Vec<u64> {
        if tc.task_id == 0 {
            let vol = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(stream_props(BackPressure::Block))
                .produce("sim.h5@s*", vec![1])
                .async_serve(true)
                .build();
            let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
            let publisher = StepPublisher::new(vol.clone(), "sim.h5").expect("publisher");
            for n in 0..4u64 {
                let f = h5.create_file(&publisher.step_file()).expect("create slot");
                let d = f
                    .create_dataset("x", Datatype::UInt64, Dataspace::simple(&[4]))
                    .expect("dataset");
                d.write_selection(&Selection::block(&[0], &[4]), &[n; 4]).expect("write");
                f.close().expect("close slot");
                publisher.publish().expect("publish");
            }
            assert!(
                publisher.finish(Some(Duration::from_secs(30))),
                "Block mode must drain fully once the retries get through"
            );
            vol.drain();
            Vec::new()
        } else {
            let mut props = stream_props(BackPressure::Block);
            props.set_rpc_timeout("*", Some(Duration::from_millis(200)));
            props.set_rpc_retries("*", 4);
            let vol = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("sim.h5@s*", vec![0])
                .build();
            let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
            let mut sub =
                StepSubscription::new(vol, "sim.h5", StepPolicy::EveryStep).expect("subscribe");
            let mut seen = Vec::new();
            while let Some(step) = sub.next_step().expect("next step") {
                let f = h5.open_file(&step.file).expect("open step");
                let got = f.open_dataset("x").expect("dataset").read_all::<u64>().expect("read");
                f.close().expect("close step");
                assert!(!sub.is_torn(&step), "Block mode cannot tear a step");
                assert_eq!(got, vec![step.seq; 4], "step {} payload exact under drops", step.seq);
                seen.push(step.seq);
            }
            seen
        }
    });
    assert!(out.deaths.is_empty(), "no rank should die: {:?}", out.deaths);
    let seen = out.results[1].as_ref().expect("consumer finished");
    assert_eq!(seen[..], [0, 1, 2, 3], "EveryStep under Block delivers the lossless sequence");
    assert!(
        out.trace.iter().any(|e| e.kind == FaultKind::Dropped),
        "the plan must actually have dropped something"
    );
}
