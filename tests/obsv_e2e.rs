//! End-to-end observability: run a real workload under tracing, export
//! the Chrome trace and metrics JSON, and hold them to the exporter's own
//! validator — plus determinism: a fixed fault seed must reproduce the
//! identical retry counters run over run.
//!
//! The workload is the paper's file-vs-memory comparison at a 3:1
//! producer:consumer fan-in (Fig. 5's shape): the same grid exchange runs
//! once over in-memory transport and once through a shared file, each
//! under its own registry, and both traces must validate — round-trip
//! JSON, strict per-track span nesting, non-negative durations, and every
//! world rank present as a track.

use std::sync::Arc;

use bench::workload::Workload;
use lowfive::{DistVolBuilder, LowFiveProps};
use minih5::{Vol, H5};
use obsv::validate::validate_chrome_trace;
use simmpi::{TaskComm, TaskSpec, TaskWorld, World};

fn world_ranks(tc: &TaskComm, task_id: usize) -> Vec<usize> {
    (0..tc.task_size(task_id)).map(|r| tc.world_rank_of(task_id, r)).collect()
}

fn grid_bytes(w: &Workload, bb: &minih5::BBox) -> Vec<u8> {
    w.grid_values(bb).iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// One observed 3:1 exchange; `memory` picks the transport. Returns the
/// registry's report.
fn run_observed_exchange(memory: bool, file: &str) -> obsv::Report {
    let w = Workload { producers: 3, consumers: 1, grid_per_prod: 48, particles_per_prod: 8 };
    let reg = obsv::Registry::new();
    let specs = [TaskSpec::new("p", w.producers), TaskSpec::new("c", w.consumers)];
    let file = file.to_string();
    TaskWorld::run_observed(&specs, None, Some(&reg), move |tc| {
        // Same wrapping `orchestra::Workflow` applies: the whole body is
        // one Task span, so even a rank whose transport work is pure
        // storage I/O (file mode) owns a track in the trace.
        let _task = obsv::span_tagged(obsv::Phase::Task, tc.task_id as u64);
        let mut props = LowFiveProps::new();
        if !memory {
            props.set_memory("*", false).set_passthrough("*", true);
        }
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*", consumers)
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*", producers)
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let p = tc.local.rank();
            let f = h5.create_file(&file).unwrap();
            let d = f
                .create_dataset(
                    "grid",
                    minih5::Datatype::UInt64,
                    minih5::Dataspace::simple(&w.grid_dims()),
                )
                .unwrap();
            d.write_bytes(
                &w.producer_grid_sel(p),
                grid_bytes(&w, &w.producer_grid_box(p)).into(),
                minih5::Ownership::Shallow,
            )
            .unwrap();
            f.close().unwrap();
        } else {
            let f = h5.open_file(&file).unwrap();
            let got = f.open_dataset("grid").unwrap().read_bytes(&w.consumer_grid_sel(0)).unwrap();
            assert_eq!(got[..], grid_bytes(&w, &w.consumer_grid_box(0))[..]);
            f.close().unwrap();
        }
    });
    reg.report()
}

#[test]
fn chrome_trace_validates_for_memory_and_file_transport() {
    let dir = std::env::temp_dir().join(format!("lf-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let shared = dir.join("e2e.nh5").to_str().unwrap().to_string();

    for (memory, file) in [(true, "e2e-mem.h5"), (false, shared.as_str())] {
        let report = run_observed_exchange(memory, file);
        let trace = report.chrome_trace();
        let summary = validate_chrome_trace(&trace)
            .unwrap_or_else(|e| panic!("memory={memory}: invalid trace: {e}"));
        // Every world rank must be declared *and* have at least one span.
        assert_eq!(summary.ranks_declared, vec![0, 1, 2, 3], "memory={memory}");
        assert_eq!(summary.ranks_with_spans, vec![0, 1, 2, 3], "memory={memory}");
        assert!(summary.spans > 0);

        // The flat metrics JSON must parse and carry the same counters.
        let metrics = obsv::json::parse(&report.metrics_json()).expect("metrics parse");
        assert_eq!(
            metrics.get("schema").and_then(|v| v.as_str()),
            Some(obsv::export::METRICS_SCHEMA)
        );
        let msgs = metrics
            .get("counters")
            .and_then(|c| c.get("msgs_sent"))
            .and_then(|v| v.as_u64())
            .expect("msgs_sent counter");
        assert_eq!(msgs, report.counter(obsv::Ctr::MsgsSent));

        // Memory mode streams via query/fetch; file mode never should.
        let fetched = report.hist(obsv::Hist::BytesFetched);
        if memory {
            assert!(fetched.count > 0, "memory transport must fetch remotely");
        } else {
            assert_eq!(fetched.count, 0, "file transport reads from storage, not peers");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Determinism under injected faults: the same seed must reproduce the
/// identical retry/timeout counters (a single client-server pair keeps
/// the drop pattern replayable).
#[test]
fn fixed_fault_seed_reproduces_retry_counters() {
    use diyblk::{RetryPolicy, RpcClient, RpcServer, ServeOutcome};
    use simmpi::FaultPlan;

    let run = || {
        let reg = obsv::Registry::new();
        World::builder(2)
            .fault_plan(FaultPlan::new(0x5EED).drop_once(1.0))
            .observe(reg.clone())
            .run_chaos(|comm| {
                if comm.rank() == 0 {
                    RpcServer::new(&comm).serve(|_caller, method, args| {
                        if method == 1 {
                            ServeOutcome::Stop(None)
                        } else {
                            ServeOutcome::Reply(args)
                        }
                    });
                } else {
                    let client = RpcClient::new(&comm);
                    let policy = RetryPolicy::new(6, std::time::Duration::from_millis(150));
                    let echoed = client.call_retry(0, 0, b"deterministic?", policy).unwrap();
                    assert_eq!(&echoed[..], b"deterministic?");
                    client.notify(0, 1, b"");
                }
            });
        let report = reg.report();
        (
            report.counter(obsv::Ctr::RpcRetries),
            report.counter(obsv::Ctr::RpcTimeouts),
            report.counter(obsv::Ctr::RpcCalls),
        )
    };

    let first = run();
    let second = run();
    assert!(first.0 > 0, "drop_once(1.0) must force at least one retry");
    assert_eq!(first, second, "same seed, same counters: {first:?} vs {second:?}");
}
