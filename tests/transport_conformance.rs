//! Transport conformance: one suite, every backend.
//!
//! The `Transport` trait promises the delivery-order and liveness
//! guarantees the in-proc mailboxes have always given — per-(src, tag)
//! FIFO, accurate probes, timed receives that expire, any-source receives
//! that serve concurrent senders, `peer_alive` flipping after a kill, and
//! parts/contiguous byte-identity. This suite pins each guarantee and runs
//! it over **both** backends (`TransportKind::InProc` and
//! `TransportKind::Socket`), so a new backend cannot pass by accident and
//! the in-proc backend cannot regress unnoticed.
//!
//! The second half is the cross-transport equivalence property: the
//! lowfive fetch/serve redistribution, sampled over (geometry × fault
//! seed), must produce byte-identical consumer reads and identical
//! user-send kill traces on both backends — the wire is an implementation
//! detail, never a data property.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lowfive::DistVolBuilder;
use minih5::{Dataspace, Datatype, Selection, Vol, H5};
use proptest::prelude::*;
use simmpi::{
    FaultKind, FaultPlan, RecvError, SendError, SocketConfig, TaskSpec, TaskWorld, TransportKind,
    World, ANY_SOURCE, ANY_TAG,
};

/// Every backend the suite must hold for.
const BACKENDS: [TransportKind; 2] = [TransportKind::InProc, TransportKind::Socket];

fn on_each_backend(f: impl Fn(TransportKind)) {
    for kind in BACKENDS {
        f(kind);
    }
}

// ---------------------------------------------------------------------
// Trait-contract pins
// ---------------------------------------------------------------------

#[test]
fn per_src_tag_fifo_order() {
    on_each_backend(|kind| {
        World::builder(2).transport(kind).run(|c| {
            assert_eq!(c.transport_kind(), kind);
            if c.rank() == 0 {
                for i in 0..200u64 {
                    // Interleave two tags: FIFO must hold per (src, tag).
                    c.send_u64s(1, (i % 2) as u32, &[i]);
                }
            } else {
                let mut next = [0u64, 1];
                for _ in 0..200 {
                    let (_, tag, _) = c.probe(ANY_SOURCE, ANY_TAG);
                    let (_, v) = c.recv_u64s(0.into(), tag.into());
                    assert_eq!(v[0], next[tag as usize], "[{kind}] tag {tag} out of order");
                    next[tag as usize] += 2;
                }
            }
        });
    });
}

#[test]
fn probe_and_iprobe_sizes_are_exact() {
    on_each_backend(|kind| {
        World::builder(2).transport(kind).run(|c| {
            if c.rank() == 0 {
                c.send(1, 4, bytes::Bytes::from(vec![7u8; 33]));
                c.send(1, 5, bytes::Bytes::from(vec![8u8; 4096]));
            } else {
                let (src, tag, len) = c.probe(0.into(), 4.into());
                assert_eq!((src, tag, len), (0, 4, 33), "[{kind}] blocking probe");
                let env = c.recv(0.into(), 4.into());
                assert_eq!(env.payload.len(), 33);
                // Nonblocking probe: poll until the second message lands.
                let deadline = Instant::now() + Duration::from_secs(10);
                let got = loop {
                    if let Some(hit) = c.iprobe(ANY_SOURCE, ANY_TAG) {
                        break hit;
                    }
                    assert!(Instant::now() < deadline, "[{kind}] iprobe never saw the message");
                    std::thread::yield_now();
                };
                assert_eq!(got, (0, 5, 4096), "[{kind}] iprobe size");
                assert_eq!(c.recv(0.into(), 5.into()).payload.len(), 4096);
            }
        });
    });
}

#[test]
fn recv_timeout_expires_when_nothing_arrives() {
    on_each_backend(|kind| {
        World::builder(2).transport(kind).run(|c| {
            if c.rank() == 1 {
                let t0 = Instant::now();
                let err = c
                    .recv_timeout(0.into(), 9.into(), Duration::from_millis(80))
                    .expect_err("nothing was sent");
                assert_eq!(err, RecvError::TimedOut, "[{kind}]");
                assert!(t0.elapsed() >= Duration::from_millis(80), "[{kind}] expired early");
            }
            c.barrier();
        });
    });
}

#[test]
fn any_source_serves_concurrent_senders() {
    const PER_SENDER: u64 = 50;
    on_each_backend(|kind| {
        World::builder(4).transport(kind).run(|c| {
            if c.rank() == 0 {
                // Track each sender's stream: wildcard receives must still
                // observe per-source FIFO, and every sender must complete.
                let mut next = vec![0u64; c.size()];
                for _ in 0..PER_SENDER * 3 {
                    let env = c.recv(ANY_SOURCE, 2.into());
                    let v = u64::from_le_bytes(env.payload[..8].try_into().unwrap());
                    assert_eq!(v, next[env.src], "[{kind}] source {} out of order", env.src);
                    next[env.src] += 1;
                }
                for (s, got) in next.iter().enumerate().skip(1) {
                    assert_eq!(*got, PER_SENDER, "[{kind}] sender {s} starved");
                }
            } else {
                for i in 0..PER_SENDER {
                    c.send_u64s(0, 2, &[i]);
                }
            }
        });
    });
}

#[test]
fn peer_alive_flips_after_kill() {
    on_each_backend(|kind| {
        let out = World::builder(2)
            .transport(kind)
            .fault_plan(FaultPlan::new(0xC0FFEE).kill_rank(0, 3))
            .run_chaos(|c| {
                if c.rank() == 0 {
                    for i in 0..10u64 {
                        c.send_u64s(1, 1, &[i]);
                    }
                    unreachable!("killed at send 3");
                } else {
                    // (No pre-check of `peer_alive(0)`: rank 0 dies at its
                    // third send, which can happen before this rank runs.)
                    // The two pre-kill messages stay receivable.
                    for i in 0..2u64 {
                        let v = c
                            .recv_timeout(0.into(), 1.into(), Duration::from_secs(10))
                            .expect("pre-kill message must arrive");
                        assert_eq!(u64::from_le_bytes(v.payload[..8].try_into().unwrap()), i);
                    }
                    let deadline = Instant::now() + Duration::from_secs(10);
                    while c.peer_alive(0) {
                        assert!(Instant::now() < deadline, "[{kind}] peer_alive never flipped");
                        std::thread::yield_now();
                    }
                }
            });
        assert_eq!(out.deaths.len(), 1, "[{kind}]");
        assert_eq!(out.deaths[0].rank, 0);
        assert!(out.deaths[0].injected);
    });
}

#[test]
fn parts_and_contiguous_forms_are_byte_identical() {
    on_each_backend(|kind| {
        World::builder(2).transport(kind).run(|c| {
            let want: &[u8] = &[1, 2, 3, 4, 5, 6, 7];
            if c.rank() == 0 {
                let parts = || {
                    simmpi::Payload::from_parts(vec![
                        bytes::Bytes::from(vec![1u8, 2]),
                        bytes::Bytes::from(vec![3u8, 4, 5]),
                        bytes::Bytes::from(vec![6u8, 7]),
                    ])
                };
                c.send_parts(1, 6, parts()); // for recv_parts
                c.send_parts(1, 6, parts()); // for flattening recv
            } else {
                // Parts-aware receive. In-proc preserves the sender's part
                // structure; the socket wire is the flattened form (one
                // contiguous part). Both must read back the same bytes.
                let env = c.recv_parts(0.into(), 6.into());
                match kind {
                    TransportKind::InProc => assert_eq!(env.payload.num_parts(), 3),
                    TransportKind::Socket => assert_eq!(env.payload.num_parts(), 1),
                }
                assert_eq!(&env.payload.to_bytes()[..], want, "[{kind}] parts receive");
                let env = c.recv(0.into(), 6.into());
                assert_eq!(&env.payload[..], want, "[{kind}] contiguous receive");
            }
        });
    });
}

#[test]
fn collectives_and_split_run_on_both_backends() {
    on_each_backend(|kind| {
        World::builder(6).transport(kind).run(|c| {
            let sum = c.allreduce_one::<u64, _>(c.rank() as u64, |a, b| a + b);
            assert_eq!(sum, 15, "[{kind}] allreduce");
            let sub = c.split(c.rank() % 2, c.rank());
            assert_eq!(sub.size(), 3, "[{kind}] split");
            let sub_sum = sub.allreduce_one::<u64, _>(1, |a, b| a + b);
            assert_eq!(sub_sum, 3, "[{kind}] split-scoped collective");
            c.barrier();
        });
    });
}

// ---------------------------------------------------------------------
// Backpressure: in-proc stays unbounded, the socket bound is real
// ---------------------------------------------------------------------

#[test]
fn inproc_try_send_never_refuses() {
    World::builder(2).transport(TransportKind::InProc).run(|c| {
        if c.rank() == 0 {
            for i in 0..500u64 {
                c.try_send(1, 1, bytes::Bytes::from(i.to_le_bytes().to_vec()))
                    .expect("in-proc sends are unbounded");
            }
        } else {
            for i in 0..500u64 {
                let (_, v) = c.recv_u64s(0.into(), 1.into());
                assert_eq!(v[0], i);
            }
        }
    });
}

#[test]
fn socket_try_send_surfaces_would_block_and_recovers() {
    // A 1-frame writer queue behind a 1-envelope receive window, with
    // frames far larger than any kernel socket buffer: a burst of
    // nonblocking sends must hit the bound, and draining must clear it.
    // With a 1-envelope receive window the wire drains strictly in order,
    // so everything stays on one tag: big frames, then a tiny in-band
    // sentinel marking the end of the burst.
    let cfg = SocketConfig { queue_cap: 1, recv_window: 1, ..SocketConfig::default() };
    World::builder(2).transport(TransportKind::Socket).socket_config(cfg).run(|c| {
        if c.rank() == 0 {
            let big = bytes::Bytes::from(vec![0x5Au8; 1 << 20]);
            let mut sent = 0u64;
            let mut refused = false;
            for _ in 0..64 {
                match c.try_send(1, 1, big.clone()) {
                    Ok(()) => sent += 1,
                    Err(SendError::WouldBlock) => {
                        refused = true;
                        break;
                    }
                }
            }
            assert!(refused, "saturated socket path must refuse a nonblocking send");
            assert!(sent >= 1, "some sends must land before the bound");
            // The path must recover: this *blocking* send completes once
            // the receiver's drain frees queue space end to end.
            c.send(1, 1, bytes::Bytes::from(vec![1u8; 4]));
            let (_, drained) = c.recv_u64s(1.into(), 4.into());
            assert_eq!(drained[0], sent, "receiver saw every accepted frame");
        } else {
            let mut bigs = 0u64;
            loop {
                let env = c.recv(0.into(), 1.into());
                if env.payload.len() == 4 {
                    break; // the sentinel: burst over
                }
                assert_eq!(env.payload.len(), 1 << 20);
                bigs += 1;
            }
            c.send_u64s(0, 4, &[bigs]);
        }
    });
}

// ---------------------------------------------------------------------
// Cross-transport equivalence: lowfive fetch/serve A/B
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Scenario {
    producers: usize,
    consumers: usize,
    dims: Vec<u64>,
    /// Per-producer x-ranges (contiguous partition of dims[0]).
    cuts: Vec<u64>,
    /// Consumer queries: one box per consumer, inside the dims.
    queries: Vec<(Vec<u64>, Vec<u64>)>,
    /// Which send of the bystander rank the kill plan fires at.
    kill_at: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1usize..=3, 1usize..=3, 1usize..=2, 1u64..=20).prop_flat_map(
        |(producers, consumers, rank, kill_at)| {
            let dims = proptest::collection::vec(2u64..=10, rank);
            dims.prop_flat_map(move |dims| {
                let nx = dims[0];
                let cuts =
                    proptest::collection::vec(0..=nx, producers - 1).prop_map(move |mut c| {
                        c.sort_unstable();
                        c
                    });
                let dims2 = dims.clone();
                let queries = proptest::collection::vec(
                    proptest::collection::vec(0u64..=11, dims.len() * 2),
                    consumers,
                )
                .prop_map(move |raw| {
                    raw.into_iter()
                        .map(|r| {
                            let mut start = Vec::new();
                            let mut size = Vec::new();
                            for (i, &d) in dims2.iter().enumerate() {
                                let s = r[2 * i] % d;
                                let len = 1 + r[2 * i + 1] % (d - s);
                                start.push(s);
                                size.push(len);
                            }
                            (start, size)
                        })
                        .collect::<Vec<_>>()
                });
                let dims3 = dims.clone();
                (cuts, queries).prop_map(move |(cuts, queries)| Scenario {
                    producers,
                    consumers,
                    dims: dims3.clone(),
                    cuts,
                    queries,
                    kill_at,
                })
            })
        },
    )
}

/// Run the fetch/serve redistribution on the given backend under a seeded
/// benign plan (delay + reorder) *plus* a kill of a bystander rank — one
/// extra task no consumer depends on, streaming sends until the plan kills
/// it. Returns each consumer's bytes and the injected `Killed` trace
/// events (the user-send kill trace; benign events are timing-dependent
/// and excluded by construction).
fn run_ab(s: &Scenario, seed: u64, kind: TransportKind) -> (Vec<Vec<u8>>, Vec<(usize, u64)>) {
    let specs = [
        TaskSpec::new("p", s.producers),
        TaskSpec::new("c", s.consumers),
        TaskSpec::new("bystander", 1),
    ];
    let bystander_world = s.producers + s.consumers;
    let plan = FaultPlan::new(seed)
        .delay(0.3, Duration::from_micros(200))
        .reorder(0.3)
        .kill_rank(bystander_world, s.kill_at);
    let producers = s.producers;
    let s = s.clone();
    let body = move |tc: simmpi::TaskComm| {
        if tc.task_id == 2 {
            // The bystander talks only to itself: its death cannot wedge
            // the workflow, but its sends feed the kill counter.
            for i in 0..200u64 {
                tc.world.send_u64s(tc.world.rank(), 1, &[i]);
                let _ = tc.world.try_recv(tc.world.rank().into(), 1.into());
            }
            unreachable!("bystander must be killed within 200 sends");
        }
        let producer_ranks: Vec<usize> = (0..s.producers).collect();
        let consumer_ranks: Vec<usize> = (s.producers..s.producers + s.consumers).collect();
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*", consumer_ranks)
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*", producer_ranks)
                .build()
        };
        let h5 = H5::with_vol(vol);
        let space = Dataspace::simple(&s.dims);
        if tc.task_id == 0 {
            let p = tc.local.rank();
            let x0 = if p == 0 { 0 } else { s.cuts[p - 1] };
            let x1 = if p + 1 == s.producers { s.dims[0] } else { s.cuts[p] };
            let f = h5.create_file("ab.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&s.dims)).unwrap();
            if x1 > x0 {
                let mut start = vec![0u64; s.dims.len()];
                start[0] = x0;
                let mut size = s.dims.clone();
                size[0] = x1 - x0;
                let sel = Selection::block(&start, &size);
                let vals: Vec<u64> =
                    sel.runs(&space).iter().flat_map(|r| r.offset..r.offset + r.len).collect();
                d.write_selection(&sel, &vals).unwrap();
            }
            f.close().unwrap();
            Vec::new()
        } else {
            let c = tc.local.rank();
            let (start, size) = &s.queries[c];
            let f = h5.open_file("ab.h5").unwrap();
            let d = f.open_dataset("x").unwrap();
            let got = d.read_bytes(&Selection::block(start, size)).unwrap();
            f.close().unwrap();
            got.to_vec()
        }
    };
    let out = TaskWorld::run_chaos_observed_on(&specs, None, plan, None, kind, body);
    assert_eq!(out.deaths.len(), 1, "[{kind}] only the bystander dies");
    assert_eq!(out.deaths[0].rank, bystander_world, "[{kind}]");
    assert!(out.deaths[0].injected, "[{kind}]");
    let kills: Vec<(usize, u64)> =
        out.trace.iter().filter(|e| e.kind == FaultKind::Killed).map(|e| (e.src, e.seq)).collect();
    let reads: Vec<Vec<u8>> = out
        .results
        .into_iter()
        .skip(producers)
        .take(s.consumers)
        .map(|r| r.expect("consumers survive"))
        .collect();
    (reads, kills)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// The acceptance property: for every sampled geometry, at least 3
    /// fault seeds are replayed A/B over in-proc and socket, and both
    /// backends must produce byte-identical consumer reads *and*
    /// identical user-send kill traces.
    #[test]
    fn fetch_serve_is_backend_invariant(s in scenario(), seeds in proptest::collection::vec(any::<u64>(), 3)) {
        for seed in seeds {
            let (reads_ip, kills_ip) = run_ab(&s, seed, TransportKind::InProc);
            let (reads_sk, kills_sk) = run_ab(&s, seed, TransportKind::Socket);
            prop_assert_eq!(
                &reads_ip, &reads_sk,
                "seed {:#x}: consumer bytes differ across backends", seed
            );
            prop_assert_eq!(
                &kills_ip, &kills_sk,
                "seed {:#x}: user-send kill traces differ across backends", seed
            );
            prop_assert!(!kills_ip.is_empty(), "seed {:#x}: the kill must fire", seed);
        }
    }
}
