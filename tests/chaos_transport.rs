//! Chaos tests: the LowFive transport under seeded fault injection.
//!
//! Three properties, all driven by `simmpi`'s deterministic fault layer:
//!
//! 1. **Benign faults are invisible.** Delaying or reordering message
//!    delivery must not change a single redistributed byte — the
//!    index/serve/query protocol only relies on per-flow FIFO where the
//!    fault layer preserves it (collective framing).
//! 2. **A dropped message is survivable.** With a retry policy configured
//!    (`set_rpc_timeout` / `set_rpc_retries`), a consumer whose request or
//!    reply vanished resends the idempotent query and still gets exact
//!    bytes; the call-id protocol discards the stale duplicate replies.
//! 3. **A dead producer is an error, not a hang.** Killing the producer
//!    mid-serve surfaces `H5Error::PeerUnavailable` on every surviving
//!    consumer rank within the configured bounds, and the same seed
//!    reproduces the identical failure trace.

use std::sync::Arc;
use std::time::Duration;

use bench::workload::Workload;
use lowfive::{DistVolBuilder, LowFiveProps};
use minih5::{H5Error, Vol, H5};
use simmpi::{ChaosOutput, FaultKind, FaultPlan, TaskComm, TaskSpec, TaskWorld, TransportKind};

/// Socket re-runs are opt-in (`SIMMPI_SOCKET_CHAOS=1`): the CI
/// transport-matrix job sets the variable; plain `cargo test` skips them.
fn socket_chaos_enabled() -> bool {
    std::env::var("SIMMPI_SOCKET_CHAOS").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn workload() -> Workload {
    Workload { producers: 2, consumers: 2, grid_per_prod: 64, particles_per_prod: 16 }
}

fn grid_bytes(w: &Workload, bb: &minih5::BBox) -> Vec<u8> {
    w.grid_values(bb).iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn world_ranks(tc: &TaskComm, task_id: usize) -> Vec<usize> {
    (0..tc.task_size(task_id)).map(|r| tc.world_rank_of(task_id, r)).collect()
}

/// One producer/consumer exchange of the workload's grid under `plan`.
/// Consumers return the bytes they read (producers return `Vec::new()`);
/// `props` lets tests arm the consumer-side retry policy.
fn run_exchange(w: Workload, plan: FaultPlan, props: LowFiveProps) -> ChaosOutput<Vec<u8>> {
    run_exchange_on(w, plan, props, TransportKind::from_env())
}

/// As [`run_exchange`], pinning the delivery backend (socket re-runs).
fn run_exchange_on(
    w: Workload,
    plan: FaultPlan,
    props: LowFiveProps,
    kind: TransportKind,
) -> ChaosOutput<Vec<u8>> {
    let specs = [TaskSpec::new("p", w.producers), TaskSpec::new("c", w.consumers)];
    TaskWorld::run_chaos_observed_on(&specs, None, plan, None, kind, move |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone()).produce("*", consumers).build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props.clone())
                .consume("*", producers)
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let p = tc.local.rank();
            let f = h5.create_file("chaos.h5").unwrap();
            let d = f
                .create_dataset(
                    "grid",
                    minih5::Datatype::UInt64,
                    minih5::Dataspace::simple(&w.grid_dims()),
                )
                .unwrap();
            d.write_bytes(
                &w.producer_grid_sel(p),
                grid_bytes(&w, &w.producer_grid_box(p)).into(),
                minih5::Ownership::Shallow,
            )
            .unwrap();
            f.close().unwrap();
            Vec::new()
        } else {
            let c = tc.local.rank();
            let f = h5.open_file("chaos.h5").unwrap();
            let got = f.open_dataset("grid").unwrap().read_bytes(&w.consumer_grid_sel(c)).unwrap();
            f.close().unwrap();
            got.to_vec()
        }
    })
}

fn assert_consumer_bytes_exact(w: &Workload, out: &ChaosOutput<Vec<u8>>) {
    assert!(out.deaths.is_empty(), "no rank should die: {:?}", out.deaths);
    for c in 0..w.consumers {
        let got = out.results[w.producers + c].as_ref().expect("consumer finished");
        let want = grid_bytes(w, &w.consumer_grid_box(c));
        assert_eq!(got[..], want[..], "consumer {c} bytes must be exact under faults");
    }
}

#[test]
fn delayed_delivery_is_byte_identical() {
    let w = workload();
    let plan = FaultPlan::new(0xD31A).delay(0.4, Duration::from_millis(2));
    let out = run_exchange(w, plan, LowFiveProps::new());
    assert_consumer_bytes_exact(&w, &out);
    assert!(
        out.trace.iter().any(|e| matches!(e.kind, FaultKind::Delayed(_))),
        "the plan must actually have delayed something"
    );
}

#[test]
fn reordered_delivery_is_byte_identical() {
    let w = workload();
    let plan = FaultPlan::new(0x0DE8).delay(0.2, Duration::from_millis(1)).reorder(0.5);
    let out = run_exchange(w, plan, LowFiveProps::new());
    assert_consumer_bytes_exact(&w, &out);
}

#[test]
fn dropped_messages_recover_via_retry() {
    let w = workload();
    // Probability 1: the *first* message on every consumer↔producer
    // request/reply flow is dropped (then the ledger lets retries pass).
    // Consumers must be armed with a timeout, or the first call would
    // block forever.
    let plan = FaultPlan::new(0xD809).drop_once(1.0);
    let mut props = LowFiveProps::new();
    props.set_rpc_timeout("*", Some(Duration::from_millis(200)));
    props.set_rpc_retries("*", 4);
    let out = run_exchange(w, plan, props);
    assert_consumer_bytes_exact(&w, &out);
    assert!(
        out.trace.iter().any(|e| e.kind == FaultKind::Dropped),
        "the plan must actually have dropped something"
    );
}

/// Pipelined batch fetches survive dropped replies: with drop-once armed
/// on every flow, a consumer multi-read whose batch frames fan out to
/// both producers recovers each lost request *and* each lost reply via
/// the bounded retry machinery, and the assembled bytes stay exact.
#[test]
fn dropped_batch_reply_recovers_via_retry() {
    let w = workload();
    let plan = FaultPlan::new(0xBA7C).drop_once(1.0);
    let mut props = LowFiveProps::new();
    props.set_rpc_timeout("*", Some(Duration::from_millis(200)));
    props.set_rpc_retries("*", 4);
    let specs = [TaskSpec::new("p", w.producers), TaskSpec::new("c", w.consumers)];
    let out = TaskWorld::run_chaos(&specs, None, plan, move |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone()).produce("*", consumers).build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props.clone())
                .consume("*", producers)
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let p = tc.local.rank();
            let f = h5.create_file("chaos-batch.h5").unwrap();
            let d = f
                .create_dataset(
                    "grid",
                    minih5::Datatype::UInt64,
                    minih5::Dataspace::simple(&w.grid_dims()),
                )
                .unwrap();
            d.write_bytes(
                &w.producer_grid_sel(p),
                grid_bytes(&w, &w.producer_grid_box(p)).into(),
                minih5::Ownership::Shallow,
            )
            .unwrap();
            f.close().unwrap();
            Vec::new()
        } else {
            let c = tc.local.rank();
            let f = h5.open_file("chaos-batch.h5").unwrap();
            let d = f.open_dataset("grid").unwrap();
            // Split the consumer slab into x-chunks so the batched fetch
            // sends one multi-entry frame to each producer.
            let bb = w.consumer_grid_box(c);
            let sels: Vec<minih5::Selection> = (0..2)
                .map(|i| {
                    let mut chunk = bb.clone();
                    chunk.lo[0] = bb.hi[0] * i / 2;
                    chunk.hi[0] = bb.hi[0] * (i + 1) / 2;
                    chunk.to_selection()
                })
                .collect();
            let bufs = d.read_bytes_multi(&sels).unwrap();
            f.close().unwrap();
            bufs.iter().flat_map(|b| b.iter().copied()).collect()
        }
    });
    assert!(out.deaths.is_empty(), "no rank should die: {:?}", out.deaths);
    for c in 0..w.consumers {
        let got = out.results[w.producers + c].as_ref().expect("consumer finished");
        let bb = w.consumer_grid_box(c);
        let mut want = Vec::new();
        for i in 0..2 {
            let mut chunk = bb.clone();
            chunk.lo[0] = bb.hi[0] * i / 2;
            chunk.hi[0] = bb.hi[0] * (i + 1) / 2;
            want.extend_from_slice(&grid_bytes(&w, &chunk));
        }
        assert_eq!(got[..], want[..], "consumer {c} batched bytes exact under drops");
    }
    assert!(
        out.trace.iter().any(|e| e.kind == FaultKind::Dropped),
        "the plan must actually have dropped something"
    );
}

/// A dead producer must not wedge the rest of a pipelined fan-out: with
/// one of two producers killed mid-serve, a multi-read spanning both
/// surfaces `PeerUnavailable` (bounded, no hang), while selections owned
/// entirely by the surviving producer keep reading exact bytes.
#[test]
fn killed_producer_does_not_wedge_inflight_batches() {
    let seed = 0x0DD_DEAD;
    let specs = [TaskSpec::new("p", 2), TaskSpec::new("c", 1)];
    // Producer world rank 1 dies mid-serve (send 25 is past communicator
    // setup and the index exchange, inside the reply stream).
    let plan = FaultPlan::new(seed).kill_rank(1, 25);
    let t0 = std::time::Instant::now();
    let out = TaskWorld::run_chaos(&specs, None, plan, move |tc| -> Result<String, String> {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let dims = [64u64];
        if tc.task_id == 0 {
            let vol: Arc<dyn Vol> = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*", consumers)
                .build();
            let h5 = H5::with_vol(vol);
            let p = tc.local.rank() as u64;
            let f = h5.create_file("half-doomed.h5").map_err(|e| e.to_string())?;
            let d = f
                .create_dataset("grid", minih5::Datatype::UInt64, minih5::Dataspace::simple(&dims))
                .map_err(|e| e.to_string())?;
            // Producer p owns [32p, 32p + 32).
            let vals: Vec<u8> = (32 * p..32 * (p + 1)).flat_map(|v| v.to_le_bytes()).collect();
            d.write_bytes(
                &minih5::Selection::block(&[32 * p], &[32]),
                vals.into(),
                minih5::Ownership::Shallow,
            )
            .map_err(|e| e.to_string())?;
            // Rank 1 dies inside the serve loop triggered here; rank 0
            // keeps serving until the consumer's DONE.
            f.close().map_err(|e| e.to_string())?;
            Ok("served".into())
        } else {
            let mut props = LowFiveProps::new();
            props.set_rpc_timeout("*", Some(Duration::from_millis(250)));
            props.set_rpc_retries("*", 1);
            let vol: Arc<dyn Vol> = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*", producers)
                .build();
            let h5 = H5::with_vol(vol);
            let f = h5.open_file("half-doomed.h5").map_err(|e| e.to_string())?;
            let d = f.open_dataset("grid").map_err(|e| e.to_string())?;
            let both = vec![
                minih5::Selection::block(&[0], &[32]),  // producer 0 only
                minih5::Selection::block(&[32], &[32]), // producer 1 only
            ];
            // Read until the dying producer's absence surfaces.
            let mut verdict = None;
            for _ in 0..40 {
                match d.read_bytes_multi(&both) {
                    Ok(_) => {}
                    Err(H5Error::PeerUnavailable(m)) => {
                        verdict = Some(m);
                        break;
                    }
                    Err(e) => {
                        let _ = f.close();
                        return Err(format!("wrong error kind: {e}"));
                    }
                }
            }
            // The surviving producer's half must still read exactly, in
            // the same pipelined fan-out, after the failure.
            let left =
                d.read_bytes(&minih5::Selection::block(&[0], &[32])).map_err(|e| e.to_string())?;
            let want: Vec<u8> = (0u64..32).flat_map(|v| v.to_le_bytes()).collect();
            if left[..] != want[..] {
                return Err("surviving producer returned wrong bytes".into());
            }
            // Close so the surviving producer's serve loop can exit.
            f.close().map_err(|e| e.to_string())?;
            verdict.ok_or_else(|| "producer death never surfaced".to_string())
        }
    });
    let elapsed = t0.elapsed();
    assert_eq!(out.deaths.len(), 1, "deaths: {:?}", out.deaths);
    assert_eq!(out.deaths[0].rank, 1);
    assert!(out.deaths[0].injected);
    // Producer 0 survives and returns; the consumer saw PeerUnavailable.
    assert_eq!(out.results[0].as_ref().expect("producer 0 alive").as_deref(), Ok("served"));
    assert!(out.results[1].is_none(), "producer 1 never returns");
    let consumer = out.results[2].as_ref().expect("consumer survived");
    let msg = consumer.as_ref().expect("consumer completes with a verdict");
    assert!(msg.contains("rank 1"), "error should name the dead producer: {msg}");
    assert!(elapsed < Duration::from_secs(30), "took {elapsed:?} — fan-out wedged?");
}

/// The acceptance scenario: the sole producer is killed mid-serve; both
/// consumers must come back with `H5Error::PeerUnavailable` — quickly,
/// not after burning every timeout, and certainly not hanging — and the
/// same seed must reproduce the identical trace.
/// The doomed-producer scenario shared by the acceptance test and the
/// socket kill-trace comparison: the sole producer is killed at user
/// send 30, both consumers must surface `PeerUnavailable`.
fn run_doomed(kind: TransportKind) -> ChaosOutput<Result<(), String>> {
    let specs = [TaskSpec::new("p", 1), TaskSpec::new("c", 2)];
    // Send 30 is well past communicator setup and the two metadata
    // replies, and far before the ~160 replies the consumers' read
    // loops demand: the producer dies with both consumers mid-read.
    let plan = FaultPlan::new(0xFEED_BEEF).kill_rank(0, 30);
    TaskWorld::run_chaos_observed_on(
        &specs,
        None,
        plan,
        None,
        kind,
        move |tc| -> Result<(), String> {
            let producers = world_ranks(&tc, 0);
            let consumers = world_ranks(&tc, 1);
            if tc.task_id == 0 {
                let vol: Arc<dyn Vol> = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                    .produce("*", consumers)
                    .build();
                let h5 = H5::with_vol(vol);
                let f = h5.create_file("doomed.h5").map_err(|e| e.to_string())?;
                let d = f
                    .create_dataset(
                        "grid",
                        minih5::Datatype::UInt64,
                        minih5::Dataspace::simple(&[64]),
                    )
                    .map_err(|e| e.to_string())?;
                let data: Vec<u8> = (0..64u64).flat_map(|v| v.to_le_bytes()).collect();
                d.write_bytes(
                    &minih5::Selection::block(&[0], &[64]),
                    data.into(),
                    minih5::Ownership::Shallow,
                )
                .map_err(|e| e.to_string())?;
                // Dies somewhere inside the serve loop triggered here.
                f.close().map_err(|e| e.to_string())?;
                Ok(())
            } else {
                let mut props = LowFiveProps::new();
                props.set_rpc_timeout("*", Some(Duration::from_millis(250)));
                props.set_rpc_retries("*", 1);
                let vol: Arc<dyn Vol> = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                    .props(props)
                    .consume("*", producers)
                    .build();
                let h5 = H5::with_vol(vol);
                let work = || -> Result<(), H5Error> {
                    let f = h5.open_file("doomed.h5")?;
                    let d = f.open_dataset("grid")?;
                    for _ in 0..40 {
                        d.read_bytes(&minih5::Selection::block(&[0], &[64]))?;
                    }
                    f.close()
                };
                match work() {
                    Ok(()) => Err("consumer finished although the producer died".into()),
                    Err(H5Error::PeerUnavailable(m)) => Err(format!("peer unavailable: {m}")),
                    Err(e) => Err(format!("wrong error kind: {e}")),
                }
            }
        },
    )
}

#[test]
fn killed_producer_surfaces_peer_unavailable_everywhere() {
    let run = || run_doomed(TransportKind::from_env());
    let t0 = std::time::Instant::now();
    let out = run();
    let elapsed = t0.elapsed();

    // Exactly the injected death — the consumers survive.
    assert_eq!(out.deaths.len(), 1, "deaths: {:?}", out.deaths);
    assert_eq!(out.deaths[0].rank, 0);
    assert!(out.deaths[0].injected);
    assert!(out.results[0].is_none(), "the producer never returns");
    for c in 1..=2 {
        let r = out.results[c].as_ref().expect("consumer survived").as_ref();
        let msg = r.expect_err("consumer cannot have succeeded");
        assert!(
            msg.starts_with("peer unavailable:"),
            "consumer {c} must see PeerUnavailable, got: {msg}"
        );
    }
    // "Within the configured timeout": dead-peer detection fails fast, so
    // the whole run finishes in a handful of 250 ms windows at worst.
    assert!(elapsed < Duration::from_secs(30), "took {elapsed:?} — retries not bounded?");

    // Same seed ⇒ identical failure trace, replayed exactly.
    assert_eq!(out.trace.len(), 1);
    assert_eq!(out.trace[0].kind, FaultKind::Killed);
    assert_eq!((out.trace[0].src, out.trace[0].seq), (0, 30));
    let again = run();
    assert_eq!(out.trace, again.trace, "replay with the same seed must match");
    assert_eq!(again.deaths.len(), 1);
}

/// Satellite regression: a *file-mode* consume link used to poll for the
/// producer's file against a hard-coded 120 s deadline, ignoring the
/// file's RPC policy. The open must now fail within
/// `timeout x (retries + 1)` with `PeerUnavailable` when the producer
/// never delivers — and a file that shows up late but within budget must
/// still open.
#[test]
fn file_mode_open_honors_rpc_policy() {
    let dir = std::env::temp_dir().join(format!("lf-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let missing = dir.join("never-written.nh5").to_str().unwrap().to_string();

    // A dead producer: task 0 exits without writing anything.
    let specs = [TaskSpec::new("p", 1), TaskSpec::new("c", 1)];
    let missing2 = missing.clone();
    let t0 = std::time::Instant::now();
    let out = TaskWorld::run(&specs, move |tc| {
        if tc.task_id == 0 {
            return Ok(());
        }
        let mut props = LowFiveProps::new();
        props.set_memory("*", false).set_passthrough("*", true);
        props.set_rpc_timeout("*", Some(Duration::from_millis(100)));
        props.set_rpc_retries("*", 2);
        let producers = world_ranks(&tc, 0);
        let vol: Arc<dyn Vol> = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
            .props(props)
            .consume("*", producers)
            .build();
        match H5::with_vol(vol).open_file(&missing2) {
            Ok(_) => Err("open of a never-written file cannot succeed".to_string()),
            Err(H5Error::PeerUnavailable(m)) => Ok(Err::<(), String>(m)),
            Err(e) => Err(format!("wrong error kind: {e}")),
        }
        .map(|_| ())
    });
    let elapsed = t0.elapsed();
    out.into_iter().for_each(|r| r.unwrap());
    // Budget is 100 ms x 3 attempts = 300 ms; anything close to the old
    // 120 s default means the policy was ignored.
    assert!(elapsed < Duration::from_secs(10), "fast failure expected, took {elapsed:?}");

    // Late arrival within budget: the producer writes after a delay and
    // the consumer's poll loop must pick the file up and read it back.
    let late = dir.join("late.nh5").to_str().unwrap().to_string();
    let late2 = late.clone();
    let out = TaskWorld::run(&specs, move |tc| {
        let mut props = LowFiveProps::new();
        props.set_memory("*", false).set_passthrough("*", true);
        if tc.task_id == 0 {
            std::thread::sleep(Duration::from_millis(50));
            let vol: Arc<dyn Vol> = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*", world_ranks(&tc, 1))
                .build();
            let h5 = H5::with_vol(vol);
            let f = h5.create_file(&late2).unwrap();
            let d = f
                .create_dataset("x", minih5::Datatype::UInt64, minih5::Dataspace::simple(&[4]))
                .unwrap();
            d.write_all(&[7u64, 8, 9, 10]).unwrap();
            f.close().unwrap();
            Vec::new()
        } else {
            props.set_rpc_timeout("*", Some(Duration::from_secs(5)));
            props.set_rpc_retries("*", 1);
            let vol: Arc<dyn Vol> = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*", world_ranks(&tc, 0))
                .build();
            let h5 = H5::with_vol(vol);
            let f = h5.open_file(&late2).unwrap();
            let got = f.open_dataset("x").unwrap().read_all::<u64>().unwrap();
            f.close().unwrap();
            got
        }
    });
    assert_eq!(out[1], vec![7, 8, 9, 10]);
    std::fs::remove_dir_all(&dir).ok();
}

/// Socket re-run of the drop-once recovery path (the CI transport-matrix
/// job arms it): the idempotent-retry machinery must recover identically
/// when requests and replies cross a real wire instead of a mailbox.
#[test]
fn socket_dropped_messages_recover_via_retry() {
    if !socket_chaos_enabled() {
        eprintln!("skipped: set SIMMPI_SOCKET_CHAOS=1 to run the socket chaos re-runs");
        return;
    }
    let w = workload();
    let plan = FaultPlan::new(0xD809).drop_once(1.0);
    let mut props = LowFiveProps::new();
    props.set_rpc_timeout("*", Some(Duration::from_millis(200)));
    props.set_rpc_retries("*", 4);
    let out = run_exchange_on(w, plan, props, TransportKind::Socket);
    assert_consumer_bytes_exact(&w, &out);
    assert!(
        out.trace.iter().any(|e| e.kind == FaultKind::Dropped),
        "the plan must actually have dropped something"
    );
}

/// A kill is recorded as pure sender facts `(src, user-send seq)`, so the
/// doomed-producer trace must be bit-identical across backends — the
/// in-proc and socket runs inject the very same failure. CI greps this
/// test's `kill-trace-equal: ok` line (run with `--nocapture`).
#[test]
fn socket_kill_trace_matches_inproc() {
    if !socket_chaos_enabled() {
        eprintln!("skipped: set SIMMPI_SOCKET_CHAOS=1 to run the socket chaos re-runs");
        return;
    }
    let inproc = run_doomed(TransportKind::InProc);
    let socket = run_doomed(TransportKind::Socket);
    assert_eq!(inproc.trace, socket.trace, "kill trace must be backend-invariant");
    for (kind, out) in [("inproc", &inproc), ("socket", &socket)] {
        assert_eq!(out.deaths.len(), 1, "[{kind}] deaths: {:?}", out.deaths);
        assert_eq!(out.deaths[0].rank, 0, "[{kind}]");
        assert!(out.deaths[0].injected, "[{kind}]");
        assert!(out.results[0].is_none(), "[{kind}] the producer never returns");
        for c in 1..=2 {
            let r = out.results[c].as_ref().expect("consumer survived").as_ref();
            let msg = r.expect_err("consumer cannot have succeeded");
            assert!(
                msg.starts_with("peer unavailable:"),
                "[{kind}] consumer {c} must see PeerUnavailable, got: {msg}"
            );
        }
    }
    println!("kill-trace-equal: ok");
}
