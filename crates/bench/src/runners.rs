//! End-to-end transport runners: each executes one producer→consumer
//! exchange of the synthetic workload over one transport and reports the
//! completion time (max over ranks), plus transport statistics.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use baselines::bredala::{self, Field};
use baselines::dataspaces::{run_server, DsClient, DsConfig};
use baselines::puempi;
use baselines::staging::{run_shard, HeartbeatConfig, StagingClient, StagingConfig};
use bytes::Bytes;
use lowfive::{DistVolBuilder, LowFiveProps, WireCodec};
use minih5::{BBox, Dataspace, Datatype, Ownership, Selection, Vol, H5};
use simmpi::{CostModel, FaultPlan, TaskComm, TaskSpec, TaskWorld};

use crate::workload::Workload;

/// One run's outcome.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Completion time: max over all ranks of (exchange end − start
    /// barrier), in seconds.
    pub seconds: f64,
    /// Messages delivered during the whole run.
    pub messages: u64,
    /// Payload bytes delivered during the whole run.
    pub bytes: u64,
}

/// Bredala's timing decomposed as in Fig. 9.
#[derive(Debug, Clone, Copy)]
pub struct BredalaMeasurement {
    pub total: f64,
    pub grid: f64,
    pub particles: f64,
}

fn world_ranks(tc: &TaskComm, task_id: usize) -> Vec<usize> {
    (0..tc.task_size(task_id)).map(|r| tc.world_rank_of(task_id, r)).collect()
}

/// Measure `work` across the whole world: barrier, run, allreduce-max.
fn timed(tc: &TaskComm, work: impl FnOnce()) -> f64 {
    tc.world.barrier();
    let t0 = Instant::now();
    work();
    let dt = t0.elapsed().as_secs_f64();
    tc.world.allreduce_one::<f64, _>(dt, f64::max)
}

fn grid_bytes(w: &Workload, bb: &BBox) -> Vec<u8> {
    w.grid_values(bb).iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// LowFive memory mode (Figs. 5, 7, 8, 9, 11): producers write both
/// datasets through the distributed VOL and serve; consumers read their
/// slabs.
pub fn run_lowfive_memory(w: &Workload) -> Measurement {
    run_lowfive(w, true, None, None)
}

/// LowFive file mode (Figs. 5, 6): same API calls, but the data go to a
/// shared file in `dir` and the consumers read it back from storage.
pub fn run_lowfive_file(w: &Workload, dir: &Path) -> Measurement {
    run_lowfive(w, false, Some(dir), None)
}

/// As [`run_lowfive_memory`], recording spans/counters/histograms into
/// `observe` so callers can export a Chrome trace and metrics JSON next
/// to the timing numbers.
pub fn run_lowfive_memory_traced(w: &Workload, observe: &obsv::Registry) -> Measurement {
    run_lowfive(w, true, None, Some(observe))
}

/// As [`run_lowfive_file`], traced (see [`run_lowfive_memory_traced`]).
pub fn run_lowfive_file_traced(w: &Workload, dir: &Path, observe: &obsv::Registry) -> Measurement {
    run_lowfive(w, false, Some(dir), Some(observe))
}

fn run_lowfive(
    w: &Workload,
    memory: bool,
    dir: Option<&Path>,
    observe: Option<&obsv::Registry>,
) -> Measurement {
    let filename = match dir {
        Some(d) => d.join("lowfive-sweep.nh5").to_str().expect("utf-8 path").to_string(),
        None => "sweep.h5".to_string(),
    };
    let specs = [TaskSpec::new("producer", w.producers), TaskSpec::new("consumer", w.consumers)];
    let w = *w;
    let out = TaskWorld::run_observed(&specs, None, observe, move |tc| {
        let _task = obsv::span_tagged(obsv::Phase::Task, tc.task_id as u64);
        let mut props = LowFiveProps::new();
        if !memory {
            props.set_memory("*", false).set_passthrough("*", true);
        }
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*", consumers)
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*", producers)
                .build()
        };
        let h5 = H5::with_vol(vol);
        let gdims = w.grid_dims();
        // Prepare payloads outside the timed section.
        let (gsel, gdata, prange, pdata, csel, crange) = if tc.task_id == 0 {
            let p = tc.local.rank();
            let bb = w.producer_grid_box(p);
            let gdata = grid_bytes(&w, &bb);
            let prange = w.producer_part_range(p);
            let pdata = w.particle_bytes(prange);
            (Some(bb.to_selection()), gdata, prange, pdata, None, (0, 0))
        } else {
            let c = tc.local.rank();
            (
                None,
                Vec::new(),
                (0, 0),
                Vec::new(),
                Some(w.consumer_grid_sel(c)),
                w.consumer_part_range(c),
            )
        };
        timed(&tc, || {
            if tc.task_id == 0 {
                let f = h5.create_file(&filename).expect("create");
                let dg = f
                    .create_dataset("grid", Datatype::UInt64, Dataspace::simple(&gdims))
                    .expect("grid dataset");
                dg.write_bytes(&gsel.expect("producer sel"), gdata.into(), Ownership::Shallow)
                    .expect("grid write");
                let dp = f
                    .create_dataset(
                        "particles",
                        Datatype::vector(Datatype::Float32, 3),
                        Dataspace::simple(&[w.total_particles()]),
                    )
                    .expect("particles dataset");
                dp.write_bytes(
                    &Selection::block(&[prange.0], &[prange.1 - prange.0]),
                    pdata.into(),
                    Ownership::Shallow,
                )
                .expect("particles write");
                f.close().expect("close (index + serve)");
                if !memory {
                    // File mode has no serve; consumers wait on a barrier.
                    tc.world.barrier();
                }
            } else {
                if !memory {
                    tc.world.barrier();
                }
                let f = h5.open_file(&filename).expect("open");
                let dg = f.open_dataset("grid").expect("grid");
                let _grid = dg.read_bytes(&csel.expect("consumer sel")).expect("grid read");
                let dp = f.open_dataset("particles").expect("particles");
                let _parts = dp
                    .read_bytes(&Selection::block(&[crange.0], &[crange.1 - crange.0]))
                    .expect("particles read");
                f.close().expect("consumer close");
            }
        })
    });
    Measurement { seconds: out.results[0], messages: out.stats.messages, bytes: out.stats.bytes }
}

/// Fig. 5 pipelining variant: the same memory-mode grid exchange, with
/// each consumer's slab read as one x-chunk per producer — either through
/// the pipelined fetch path (one batched `M_DATA_BATCH` frame per
/// producer, all round-trips overlapped) or with the pipeline knob off
/// (one blocking intersect + fetch round-trip per producer per chunk).
/// `cost` adds per-message interconnect latency, which the serial path
/// pays once per sequential round-trip and the pipelined path overlaps.
pub fn run_lowfive_fetch(w: &Workload, pipelined: bool, cost: Option<CostModel>) -> Measurement {
    let specs = [TaskSpec::new("producer", w.producers), TaskSpec::new("consumer", w.consumers)];
    let w = *w;
    let out = TaskWorld::run_with(&specs, cost, move |tc| {
        let mut props = LowFiveProps::new();
        props.set_fetch_pipeline("*", pipelined);
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*", consumers)
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*", producers)
                .build()
        };
        let h5 = H5::with_vol(vol);
        let gdims = w.grid_dims();
        let (gsel, gdata, chunks) = if tc.task_id == 0 {
            let bb = w.producer_grid_box(tc.local.rank());
            let gdata = grid_bytes(&w, &bb);
            (Some(bb.to_selection()), gdata, Vec::new())
        } else {
            // Two x-chunks per producer: each chunk is owned by exactly
            // one producer, and the batched fan-out coalesces the two
            // chunks per producer into a single frame.
            let bb = w.consumer_grid_box(tc.local.rank());
            let n = 2 * w.producers as u64;
            let chunks: Vec<Selection> = (0..n)
                .map(|i| {
                    let mut chunk = bb.clone();
                    chunk.lo[0] = bb.hi[0] * i / n;
                    chunk.hi[0] = bb.hi[0] * (i + 1) / n;
                    chunk.to_selection()
                })
                .collect();
            (None, Vec::new(), chunks)
        };
        timed(&tc, || {
            if tc.task_id == 0 {
                let f = h5.create_file("fetch-mode.h5").expect("create");
                let dg = f
                    .create_dataset("grid", Datatype::UInt64, Dataspace::simple(&gdims))
                    .expect("grid dataset");
                dg.write_bytes(&gsel.expect("producer sel"), gdata.into(), Ownership::Shallow)
                    .expect("grid write");
                f.close().expect("close (index + serve)");
            } else {
                let f = h5.open_file("fetch-mode.h5").expect("open");
                let dg = f.open_dataset("grid").expect("grid");
                if pipelined {
                    let _bufs = dg.read_bytes_multi(&chunks).expect("pipelined read");
                } else {
                    for sel in &chunks {
                        let _buf = dg.read_bytes(sel).expect("serial read");
                    }
                }
                f.close().expect("consumer close");
            }
        })
    });
    Measurement { seconds: out.results[0], messages: out.stats.messages, bytes: out.stats.bytes }
}

/// Fig. 5 serve-ownership variant: the same memory-mode grid exchange
/// with the zero-copy rule toggled. With `shallow` the producers' serve
/// loops answer data queries by *lending* refcounted sub-slices of the
/// written regions straight into the reply frames — no dataset byte is
/// copied between the producer's buffer and the wire. With `!shallow`
/// every region is deep and the serve path pays the historical staging
/// gather-copy, counted under `obsv::Ctr::BytesCopied` (the shallow run
/// must report exactly zero — CI asserts it on the exported metrics).
/// `cost` charges interconnect latency/bandwidth per delivered message
/// so the A/B compares realistic wire times, not just memcpy time.
pub fn run_lowfive_serve(
    w: &Workload,
    shallow: bool,
    cost: Option<CostModel>,
    observe: Option<&obsv::Registry>,
) -> Measurement {
    let specs = [TaskSpec::new("producer", w.producers), TaskSpec::new("consumer", w.consumers)];
    let w = *w;
    let out = TaskWorld::run_observed(&specs, cost, observe, move |tc| {
        let _task = obsv::span_tagged(obsv::Phase::Task, tc.task_id as u64);
        let mut props = LowFiveProps::new();
        props.set_zerocopy("*", "*", shallow);
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*", consumers)
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*", producers)
                .build()
        };
        let h5 = H5::with_vol(vol);
        let gdims = w.grid_dims();
        let (gsel, gdata, csel) = if tc.task_id == 0 {
            let bb = w.producer_grid_box(tc.local.rank());
            let gdata = grid_bytes(&w, &bb);
            (Some(bb.to_selection()), gdata, None)
        } else {
            (None, Vec::new(), Some(w.consumer_grid_sel(tc.local.rank())))
        };
        timed(&tc, || {
            if tc.task_id == 0 {
                let f = h5.create_file("serve-mode.h5").expect("create");
                let dg = f
                    .create_dataset("grid", Datatype::UInt64, Dataspace::simple(&gdims))
                    .expect("grid dataset");
                dg.write_bytes(&gsel.expect("producer sel"), gdata.into(), Ownership::Shallow)
                    .expect("grid write");
                f.close().expect("close (index + serve)");
            } else {
                let f = h5.open_file("serve-mode.h5").expect("open");
                let dg = f.open_dataset("grid").expect("grid");
                let _slab = dg.read_bytes(csel.as_ref().expect("consumer sel")).expect("read");
                f.close().expect("consumer close");
            }
        })
    });
    Measurement { seconds: out.results[0], messages: out.stats.messages, bytes: out.stats.bytes }
}

/// Wire-codec A/B variant: the shallow zero-copy serve exchange of
/// [`run_lowfive_serve`] with an explicit per-frame codec policy. Under
/// `WireCodec::Auto` plus a slow modeled link the producers' serve loops
/// compress each data reply (the grid's position-encoded values collapse
/// under the lag-8 delta-RLE codec); under `WireCodec::Raw` the same
/// exchange negotiates raw-only and keeps the lend path byte-for-byte
/// intact. Pass an `observe` registry to read back the
/// `bytes_pre_codec` / `bytes_on_wire` counters the A/B CSV reports.
pub fn run_lowfive_codec(
    w: &Workload,
    codec: WireCodec,
    cost: Option<CostModel>,
    observe: Option<&obsv::Registry>,
) -> Measurement {
    let specs = [TaskSpec::new("producer", w.producers), TaskSpec::new("consumer", w.consumers)];
    let w = *w;
    let out = TaskWorld::run_observed(&specs, cost, observe, move |tc| {
        let _task = obsv::span_tagged(obsv::Phase::Task, tc.task_id as u64);
        let mut props = LowFiveProps::new();
        props.set_zerocopy("*", "*", true).set_wire_codec("*", codec);
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*", consumers)
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*", producers)
                .build()
        };
        let h5 = H5::with_vol(vol);
        let gdims = w.grid_dims();
        let (gsel, gdata, csel) = if tc.task_id == 0 {
            let bb = w.producer_grid_box(tc.local.rank());
            let gdata = grid_bytes(&w, &bb);
            (Some(bb.to_selection()), gdata, None)
        } else {
            (None, Vec::new(), Some(w.consumer_grid_sel(tc.local.rank())))
        };
        timed(&tc, || {
            if tc.task_id == 0 {
                let f = h5.create_file("codec-mode.h5").expect("create");
                let dg = f
                    .create_dataset("grid", Datatype::UInt64, Dataspace::simple(&gdims))
                    .expect("grid dataset");
                dg.write_bytes(&gsel.expect("producer sel"), gdata.into(), Ownership::Shallow)
                    .expect("grid write");
                f.close().expect("close (index + serve)");
            } else {
                let f = h5.open_file("codec-mode.h5").expect("open");
                let dg = f.open_dataset("grid").expect("grid");
                let _slab = dg.read_bytes(csel.as_ref().expect("consumer sel")).expect("read");
                f.close().expect("consumer close");
            }
        })
    });
    Measurement { seconds: out.results[0], messages: out.stats.messages, bytes: out.stats.bytes }
}

/// Pure HDF5 (Fig. 6): the same file exchange without any LowFive layer —
/// producers write the shared file through the native parallel connector,
/// consumers read it back.
pub fn run_pure_hdf5(w: &Workload, dir: &Path) -> Measurement {
    let filename = dir.join("pure-hdf5.nh5").to_str().expect("utf-8 path").to_string();
    let specs = [TaskSpec::new("producer", w.producers), TaskSpec::new("consumer", w.consumers)];
    let w = *w;
    let out = TaskWorld::run_with(&specs, None, move |tc| {
        let gdims = w.grid_dims();
        let local = tc.local.clone();
        let vol: Arc<dyn Vol> =
            Arc::new(minih5::native::NativeVol::parallel(local.rank(), move || local.barrier()));
        let h5 = H5::with_vol(vol);
        let (gsel, gdata, prange, pdata, csel, crange) = if tc.task_id == 0 {
            let p = tc.local.rank();
            let bb = w.producer_grid_box(p);
            (
                Some(bb.to_selection()),
                grid_bytes(&w, &bb),
                w.producer_part_range(p),
                w.particle_bytes(w.producer_part_range(p)),
                None,
                (0, 0),
            )
        } else {
            let c = tc.local.rank();
            (
                None,
                Vec::new(),
                (0, 0),
                Vec::new(),
                Some(w.consumer_grid_sel(c)),
                w.consumer_part_range(c),
            )
        };
        timed(&tc, || {
            if tc.task_id == 0 {
                let f = h5.create_file(&filename).expect("create");
                let dg = f
                    .create_dataset("grid", Datatype::UInt64, Dataspace::simple(&gdims))
                    .expect("grid dataset");
                dg.write_bytes(&gsel.expect("sel"), gdata.into(), Ownership::Deep)
                    .expect("grid write");
                let dp = f
                    .create_dataset(
                        "particles",
                        Datatype::vector(Datatype::Float32, 3),
                        Dataspace::simple(&[w.total_particles()]),
                    )
                    .expect("particles dataset");
                dp.write_bytes(
                    &Selection::block(&[prange.0], &[prange.1 - prange.0]),
                    pdata.into(),
                    Ownership::Deep,
                )
                .expect("particles write");
                f.close().expect("close");
                tc.world.barrier();
            } else {
                tc.world.barrier();
                let f = h5.open_file(&filename).expect("open");
                let dg = f.open_dataset("grid").expect("grid");
                let _grid = dg.read_bytes(&csel.expect("sel")).expect("grid read");
                let dp = f.open_dataset("particles").expect("particles");
                let _parts = dp
                    .read_bytes(&Selection::block(&[crange.0], &[crange.1 - crange.0]))
                    .expect("particles read");
                f.close().expect("close");
            }
        })
    });
    Measurement { seconds: out.results[0], messages: out.stats.messages, bytes: out.stats.bytes }
}

/// Hand-written pure MPI (Figs. 7, 11): static decompositions, one
/// message per intersecting pair, per-point serialization.
pub fn run_pure_mpi(w: &Workload) -> Measurement {
    let specs = [TaskSpec::new("producer", w.producers), TaskSpec::new("consumer", w.consumers)];
    let w = *w;
    let out = TaskWorld::run_with(&specs, None, move |tc| {
        let prod_grid: Vec<(usize, BBox)> =
            (0..w.producers).map(|p| (tc.world_rank_of(0, p), w.producer_grid_box(p))).collect();
        let cons_grid: Vec<(usize, BBox)> =
            (0..w.consumers).map(|c| (tc.world_rank_of(1, c), w.consumer_grid_box(c))).collect();
        let prod_parts: Vec<(usize, BBox)> = (0..w.producers)
            .map(|p| {
                let (s, e) = w.producer_part_range(p);
                (tc.world_rank_of(0, p), BBox::new(vec![s], vec![e]))
            })
            .collect();
        let cons_parts: Vec<(usize, BBox)> = (0..w.consumers)
            .map(|c| {
                let (s, e) = w.consumer_part_range(c);
                (tc.world_rank_of(1, c), BBox::new(vec![s], vec![e]))
            })
            .collect();
        let (gdata, pdata, gbox, pbox) = if tc.task_id == 0 {
            let p = tc.local.rank();
            let gbox = w.producer_grid_box(p);
            let gdata = grid_bytes(&w, &gbox);
            let pr = w.producer_part_range(p);
            (gdata, w.particle_bytes(pr), gbox, BBox::new(vec![pr.0], vec![pr.1]))
        } else {
            let c = tc.local.rank();
            let (s, e) = w.consumer_part_range(c);
            (Vec::new(), Vec::new(), w.consumer_grid_box(c), BBox::new(vec![s], vec![e]))
        };
        timed(&tc, || {
            if tc.task_id == 0 {
                puempi::send_grid(&tc.world, 21, 8, &gbox, &gdata, &cons_grid);
                puempi::send_grid(&tc.world, 22, 12, &pbox, &pdata, &cons_parts);
            } else {
                let _grid = puempi::recv_grid(&tc.world, 21, 8, &gbox, &prod_grid);
                let _parts = puempi::recv_grid(&tc.world, 22, 12, &pbox, &prod_parts);
            }
        })
    });
    Measurement { seconds: out.results[0], messages: out.stats.messages, bytes: out.stats.bytes }
}

/// DataSpaces (Figs. 8, 11): `staging` extra server ranks index
/// `put_local` registrations; consumers query then pull directly from
/// producers.
pub fn run_dataspaces(w: &Workload, staging: usize) -> Measurement {
    assert!(staging > 0);
    let specs = [
        TaskSpec::new("producer", w.producers),
        TaskSpec::new("staging", staging),
        TaskSpec::new("consumer", w.consumers),
    ];
    let w = *w;
    let out = TaskWorld::run_with(&specs, None, move |tc| {
        let cfg = DsConfig {
            producers: world_ranks(&tc, 0),
            servers: world_ranks(&tc, 1),
            consumers: world_ranks(&tc, 2),
        };
        let (gbox, gdata, pbox, pdata) = if tc.task_id == 0 {
            let p = tc.local.rank();
            let gbox = w.producer_grid_box(p);
            let gdata = grid_bytes(&w, &gbox);
            let (s, e) = w.producer_part_range(p);
            (gbox, gdata, BBox::new(vec![s], vec![e]), w.particle_bytes((s, e)))
        } else if tc.task_id == 2 {
            let c = tc.local.rank();
            let (s, e) = w.consumer_part_range(c);
            (w.consumer_grid_box(c), Vec::new(), BBox::new(vec![s], vec![e]), Vec::new())
        } else {
            (BBox::new(vec![0], vec![0]), Vec::new(), BBox::new(vec![0], vec![0]), Vec::new())
        };
        timed(&tc, || match tc.task_id {
            0 => {
                let client = DsClient::new(tc.world.clone(), cfg.clone());
                client.put_local("grid", 0, gbox.clone(), gdata.clone().into()).unwrap();
                client.put_local("particles", 0, pbox.clone(), pdata.clone().into()).unwrap();
                client.serve_local();
            }
            1 => run_server(&tc.world, &cfg),
            _ => {
                let client = DsClient::new(tc.world.clone(), cfg.clone());
                let _grid = client.get("grid", 0, &gbox, 8).expect("grid get");
                let _parts = client.get("particles", 0, &pbox, 12).expect("particles get");
                client.done();
            }
        })
    });
    Measurement { seconds: out.results[0], messages: out.stats.messages, bytes: out.stats.bytes }
}

/// Outcome of one sharded-staging run (see [`run_staging`]).
#[derive(Debug, Clone, Copy)]
pub struct StagingOutcome {
    /// Max elapsed seconds over the *surviving* ranks.
    pub seconds: f64,
    /// Messages delivered during the whole run.
    pub messages: u64,
    /// Payload bytes delivered during the whole run.
    pub bytes: u64,
    /// Ranks the fault plan killed (0 for a fault-free run).
    pub deaths: usize,
}

/// Sharded, replicated staging tier (`staging` experiment): producers
/// replicate `rounds` versions of the grid onto `shards` shard ranks at
/// replication factor `k`; consumers read every version back **twice**
/// and assert byte identity against the expected slab. Pass a fault
/// `plan` to kill a shard mid-run: heartbeats and shard-side recovery
/// are then disabled so the run stays deterministic — failover happens
/// through the clients' dead-peer detection and repair through
/// client-triggered read repair, which are exactly the counters the CI
/// chaos job asserts on. No collectives anywhere in the body (a killed
/// rank would hang a barrier); timing is the per-rank max of survivors.
///
/// `gate` picks the version of the `go` sentinel each producer puts
/// after its last data put and every consumer polls before its first
/// read. The sentinel is the run's producer→consumer barrier (a real
/// barrier would hang on a killed rank): once it reads complete, every
/// data put has been acked by its full replica set. A chaos caller
/// chooses `gate` so the sentinel's replica set avoids the victim —
/// then no query reaches the victim before the sentinel completes, so
/// the victim's first sends are exactly its data-put acks and
/// `FaultPlan::kill_rank(victim, acks + 1)` lands on its first query
/// reply: after the tier is fully replicated, before serving is done.
pub fn run_staging(
    w: &Workload,
    shards: usize,
    k: usize,
    rounds: usize,
    gate: u64,
    plan: Option<FaultPlan>,
    observe: Option<&obsv::Registry>,
) -> StagingOutcome {
    assert!(shards > 0 && rounds > 0);
    let specs = [
        TaskSpec::new("producer", w.producers),
        TaskSpec::new("staging", shards),
        TaskSpec::new("consumer", w.consumers),
    ];
    let chaos = plan.is_some();
    let w = *w;
    let body = move |tc: TaskComm| -> f64 {
        let mut cfg =
            StagingConfig::new(world_ranks(&tc, 1), world_ranks(&tc, 0), world_ranks(&tc, 2));
        cfg.replication = k;
        if chaos {
            cfg.hb = HeartbeatConfig::disabled();
            cfg.recovery = false;
        }
        let t0 = Instant::now();
        match tc.task_id {
            0 => {
                let client = StagingClient::new(tc.world.clone(), cfg).expect("non-empty tier");
                let bb = w.producer_grid_box(tc.local.rank());
                let data: Bytes = grid_bytes(&w, &bb).into();
                for v in 0..rounds as u64 {
                    client.put("grid", v, bb.clone(), data.clone()).expect("replicated put");
                }
                let sentinel = Bytes::from_static(&[0u8; 8]);
                client.put("go", gate, BBox::new(vec![0], vec![1]), sentinel).expect("gate put");
                // Producers barrier among themselves before releasing
                // the shards: a done-reply must not consume one of the
                // victim's user-send slots while a peer producer is
                // still collecting put acks, or the kill point drifts.
                tc.local.barrier();
                client.done();
            }
            1 => run_shard(&tc.world, &cfg),
            _ => {
                let client = StagingClient::new(tc.world.clone(), cfg).expect("non-empty tier");
                let bb = w.consumer_grid_box(tc.local.rank());
                let expect = grid_bytes(&w, &bb);
                client.get("go", gate, &BBox::new(vec![0], vec![1]), 8).expect("gate get");
                // Two passes: a shard killed during pass 0 forces a
                // failover, and its replacements get read-repaired by
                // the time pass 1 re-reads the same versions.
                for pass in 0..2 {
                    for v in 0..rounds as u64 {
                        let got = client.get("grid", v, &bb, 8).expect("replicated get");
                        assert_eq!(got, expect, "pass {pass} version {v}: bytes differ");
                    }
                }
                client.done();
            }
        }
        t0.elapsed().as_secs_f64()
    };
    match plan {
        Some(p) => {
            let out = TaskWorld::run_chaos_observed(&specs, None, p, observe, body);
            StagingOutcome {
                seconds: out.results.iter().flatten().copied().fold(0.0, f64::max),
                messages: out.stats.messages,
                bytes: out.stats.bytes,
                deaths: out.deaths.len(),
            }
        }
        None => {
            let out = TaskWorld::run_observed(&specs, None, observe, body);
            StagingOutcome {
                seconds: out.results.iter().copied().fold(0.0, f64::max),
                messages: out.stats.messages,
                bytes: out.stats.bytes,
                deaths: 0,
            }
        }
    }
}

/// Outcome of one step-streaming run (see [`run_streaming`]).
#[derive(Debug, Clone, Copy)]
pub struct StreamingOutcome {
    /// Steps the producer published.
    pub steps: u64,
    /// Wall seconds of the producer's publish loop (excludes the final
    /// drain wait), max over producer ranks.
    pub seconds: f64,
    /// Producer step rate: `steps / seconds`.
    pub rate: f64,
    /// `steps_published` counter summed over all lanes.
    pub published: u64,
    /// `steps_dropped` counter summed over all lanes.
    pub dropped: u64,
    /// Did [`lowfive::StepPublisher::finish`] drain cleanly (every
    /// consumer acknowledged every step)?
    pub drained: bool,
}

/// Sustained-traffic streaming scenario (`streaming` experiment): one
/// fast producer rank publishes `steps` steps of a small dataset (a
/// ~0.5 ms write-and-publish loop) while `consumers` slow consumer ranks
/// follow with [`lowfive::StepPolicy::EveryStep`] at ~3 ms per step.
///
/// The interesting contrast is the back-pressure `mode`:
/// [`lowfive::BackPressure::DropOldest`] lets the producer run at its natural
/// rate and sheds steps (the CI job asserts the rate stays within 10% of
/// the unconsumed baseline), while [`lowfive::BackPressure::Block`] throttles the
/// publish loop down to the slowest consumer's pace and drops nothing.
/// With `subscribe` false the consumers never subscribe at all — that is
/// the baseline rate, and the final drain then necessarily times out
/// (`drained` is false).
///
/// Consumers verify every non-torn step's payload: dataset `x` of step
/// `n` holds the value `n` in every cell, so a stale or misrouted slot
/// read fails loudly rather than skewing the timing.
pub fn run_streaming(
    consumers: usize,
    steps: u64,
    mode: lowfive::BackPressure,
    subscribe: bool,
    observe: Option<&obsv::Registry>,
) -> StreamingOutcome {
    use lowfive::{StepPolicy, StepPublisher, StepSubscription};
    assert!(consumers > 0 && steps > 0);
    let own;
    let reg = match observe {
        Some(r) => r,
        None => {
            own = obsv::Registry::new();
            &own
        }
    };
    let specs = [TaskSpec::new("producer", 1), TaskSpec::new("consumer", consumers)];
    let out = TaskWorld::run_observed(&specs, None, Some(reg), move |tc| {
        let _task = obsv::span_tagged(obsv::Phase::Task, tc.task_id as u64);
        let mut props = LowFiveProps::new();
        props.set_stream_queue_depth("sim.h5", 4).set_stream_backpressure("sim.h5", mode);
        if tc.task_id == 0 {
            let consumers = world_ranks(&tc, 1);
            let vol = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("sim.h5@s*", consumers)
                .async_serve(true)
                .build();
            let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
            let publisher = StepPublisher::new(vol.clone(), "sim.h5").expect("publisher");
            let t0 = Instant::now();
            for n in 0..steps {
                let f = h5.create_file(&publisher.step_file()).expect("create slot");
                let d = f
                    .create_dataset("x", Datatype::UInt64, Dataspace::simple(&[64]))
                    .expect("step dataset");
                d.write_selection(&Selection::block(&[0], &[64]), &[n; 64]).expect("step write");
                f.close().expect("close slot");
                publisher.publish().expect("publish");
                // The producer's natural inter-step gap: fast, but not a
                // pure spin — the baseline rate must be reproducible.
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
            let seconds = t0.elapsed().as_secs_f64();
            // Blocking mode with live consumers must drain every step;
            // otherwise bound the wait (an unconsumed baseline never
            // drains by construction).
            let grace = if subscribe {
                std::time::Duration::from_secs(30)
            } else {
                std::time::Duration::from_millis(50)
            };
            let drained = publisher.finish(Some(grace));
            vol.drain();
            (seconds, drained)
        } else {
            let producers = world_ranks(&tc, 0);
            let vol = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("sim.h5@s*", producers)
                .build();
            if subscribe {
                let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
                let mut sub =
                    StepSubscription::new(vol, "sim.h5", StepPolicy::EveryStep).expect("subscribe");
                while let Some(step) = sub.next_step().expect("next step") {
                    let f = h5.open_file(&step.file).expect("open step");
                    let d = f.open_dataset("x").expect("step dataset");
                    let got = d.read_all::<u64>().expect("step read");
                    f.close().expect("close step");
                    if !sub.is_torn(&step) {
                        assert_eq!(got, vec![step.seq; 64], "step {} payload", step.seq);
                    }
                    // The slow-consumer pace that creates back-pressure.
                    std::thread::sleep(std::time::Duration::from_millis(3));
                }
            }
            (0.0, true)
        }
    });
    let (seconds, drained) = out.results[0];
    let report = reg.report();
    StreamingOutcome {
        steps,
        seconds,
        rate: steps as f64 / seconds.max(1e-9),
        published: report.counter(obsv::Ctr::StepsPublished),
        dropped: report.counter(obsv::Ctr::StepsDropped),
        drained: out.results.iter().all(|&(_, d)| d) && drained,
    }
}

/// Serve-concurrency scenario (`serve-concurrency` experiment): one
/// producer rank serves `consumers` consumer ranks, each fetching its
/// slab of the dataset as one batched frame. With `shallow` false every
/// region is deep, so each reply pays the modeled per-byte gather cost
/// (`set_gather_cost`) — a real sleep on the producer's data path. At
/// `workers` == 1 the serve loop answers those gathers strictly one
/// after another, so the makespan stacks every consumer's stall;
/// `workers` == N overlaps them in the dispatcher/worker-pool engine and
/// the makespan collapses toward `ceil(consumers / N)` stalls. With
/// `shallow` true the same exchange lends refcounted slices: no copy,
/// no stall, and `bytes_copied` must stay exactly zero even with the
/// pool on (the CI serve-concurrency job asserts both properties on the
/// exported metrics).
pub fn run_serve_concurrency(
    consumers: usize,
    workers: usize,
    shallow: bool,
    observe: Option<&obsv::Registry>,
) -> Measurement {
    use lowfive::ServeWorkers;
    assert!(consumers > 0 && workers > 0);
    // 4096 u64 elements (32 KiB) per consumer slab; at 100 ns modeled
    // gather per byte each deep reply stalls ~3.3 ms — long enough to
    // dominate scheduling noise, short enough for a CI sweep.
    const SLAB: u64 = 4096;
    const GATHER_NS_PER_BYTE: f64 = 100.0;
    let specs = [TaskSpec::new("producer", 1), TaskSpec::new("consumer", consumers)];
    let out = TaskWorld::run_observed(&specs, None, observe, move |tc| {
        let _task = obsv::span_tagged(obsv::Phase::Task, tc.task_id as u64);
        let mut props = LowFiveProps::new();
        props
            .set_zerocopy("*", "*", shallow)
            .set_fetch_pipeline("*", true)
            .set_serve_workers("*", ServeWorkers::Fixed(workers));
        if !shallow {
            props.set_gather_cost("*", GATHER_NS_PER_BYTE);
        }
        let producers = world_ranks(&tc, 0);
        let consumer_ranks = world_ranks(&tc, 1);
        let total = SLAB * consumers as u64;
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*", consumer_ranks)
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*", producers)
                .build()
        };
        let h5 = H5::with_vol(vol);
        timed(&tc, || {
            if tc.task_id == 0 {
                let f = h5.create_file("serve-conc.h5").expect("create");
                let d = f
                    .create_dataset("x", Datatype::UInt64, Dataspace::simple(&[total]))
                    .expect("dataset");
                let data: Vec<u8> = (0..total).flat_map(|v| v.to_le_bytes()).collect();
                d.write_bytes(&Selection::block(&[0], &[total]), data.into(), Ownership::Shallow)
                    .expect("write");
                f.close().expect("close (index + serve)");
            } else {
                let base = tc.local.rank() as u64 * SLAB;
                let f = h5.open_file("serve-conc.h5").expect("open");
                let d = f.open_dataset("x").expect("dataset");
                // Four chunks per slab, coalesced into one batched frame
                // by the pipelined fetch path — the deep-dataset batch
                // shape the concurrent engine is sized for.
                let chunk = SLAB / 4;
                let sels: Vec<Selection> =
                    (0..4).map(|i| Selection::block(&[base + i * chunk], &[chunk])).collect();
                let bufs = d.read_bytes_multi(&sels).expect("batched read");
                for (i, buf) in bufs.iter().enumerate() {
                    let start = base + i as u64 * chunk;
                    let expect: Vec<u8> =
                        (start..start + chunk).flat_map(|v| v.to_le_bytes()).collect();
                    assert_eq!(&buf[..], &expect[..], "chunk {i} bytes");
                }
                f.close().expect("consumer close");
            }
        })
    });
    Measurement { seconds: out.results[0], messages: out.stats.messages, bytes: out.stats.bytes }
}

/// Bredala (Fig. 9): contiguous policy for the particles, bounding-box
/// policy for the grid, timed separately.
pub fn run_bredala(w: &Workload) -> BredalaMeasurement {
    let specs = [TaskSpec::new("producer", w.producers), TaskSpec::new("consumer", w.consumers)];
    let w = *w;
    let out = TaskWorld::run(&specs, move |tc| {
        let cons_grid: Vec<(usize, BBox)> =
            (0..w.consumers).map(|c| (tc.world_rank_of(1, c), w.consumer_grid_box(c))).collect();
        let prod_grid: Vec<(usize, BBox)> =
            (0..w.producers).map(|p| (tc.world_rank_of(0, p), w.producer_grid_box(p))).collect();
        let cons_parts: Vec<(usize, (u64, u64))> =
            (0..w.consumers).map(|c| (tc.world_rank_of(1, c), w.consumer_part_range(c))).collect();
        let prod_parts: Vec<(usize, (u64, u64))> =
            (0..w.producers).map(|p| (tc.world_rank_of(0, p), w.producer_part_range(p))).collect();

        // Build the container (producer side).
        let container = if tc.task_id == 0 {
            let p = tc.local.rank();
            let gbox = w.producer_grid_box(p);
            let gdata = grid_bytes(&w, &gbox);
            let pr = w.producer_part_range(p);
            let mut c = bredala::Container::new();
            c.append(Field::bounding_box("grid", 8, gbox, gdata.into()));
            c.append(Field::contiguous("particles", 12, pr, w.particle_bytes(pr).into()));
            Some(c)
        } else {
            None
        };

        let t_grid = timed(&tc, || {
            if tc.task_id == 0 {
                let f =
                    container.as_ref().expect("producer container").field("grid").expect("grid");
                bredala::send_bbox(&tc.world, 31, f, &cons_grid);
            } else {
                let my = w.consumer_grid_box(tc.local.rank());
                let _grid = bredala::recv_bbox(&tc.world, 31, 8, &my, &prod_grid);
            }
        });
        let t_parts = timed(&tc, || {
            if tc.task_id == 0 {
                let f = container
                    .as_ref()
                    .expect("producer container")
                    .field("particles")
                    .expect("particles");
                bredala::send_contiguous(&tc.world, 32, f, &cons_parts);
            } else {
                let my = w.consumer_part_range(tc.local.rank());
                let _parts = bredala::recv_contiguous(&tc.world, 32, 12, my, &prod_parts);
            }
        });
        (t_grid, t_parts)
    });
    let (grid, particles) = out[0];
    BredalaMeasurement { total: grid + particles, grid, particles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::boxes::BoxCoords;

    fn small() -> Workload {
        Workload::paper_split(8, 512, 500)
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("bench-runners-test").join(name);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn all_transports_complete() {
        let w = small();
        assert!(run_lowfive_memory(&w).seconds >= 0.0);
        assert!(run_pure_mpi(&w).seconds >= 0.0);
        assert!(run_dataspaces(&w, 1).seconds >= 0.0);
        let b = run_bredala(&w);
        assert!(b.total >= b.grid.max(b.particles));
    }

    #[test]
    fn file_transports_complete() {
        let w = small();
        let d1 = tmpdir("lf");
        let d2 = tmpdir("h5");
        assert!(run_lowfive_file(&w, &d1).seconds >= 0.0);
        assert!(run_pure_hdf5(&w, &d2).seconds >= 0.0);
        assert!(d1.join("lowfive-sweep.nh5").exists());
        assert!(d2.join("pure-hdf5.nh5").exists());
    }

    #[test]
    fn pipelined_fetch_beats_serial_under_latency() {
        // Under a latency-dominated interconnect the serial path pays one
        // message delay per sequential round-trip (6 intersects + 1 fetch
        // per chunk, 12 chunks per consumer), while the pipelined path
        // overlaps the fan-out — the gap is an order of magnitude, so the
        // comparison is robust to scheduling noise.
        let w = small();
        let cost = CostModel { latency: std::time::Duration::from_millis(1), per_byte_ns: 0.0 };
        let serial = run_lowfive_fetch(&w, false, Some(cost));
        let pipelined = run_lowfive_fetch(&w, true, Some(cost));
        assert!(
            pipelined.seconds < serial.seconds,
            "pipelined {:.4}s should beat serial {:.4}s",
            pipelined.seconds,
            serial.seconds
        );
        // Batching also shrinks the message count: one request+reply per
        // producer instead of one per (chunk x producer).
        assert!(
            pipelined.messages < serial.messages,
            "pipelined {} msgs should be fewer than serial {}",
            pipelined.messages,
            serial.messages
        );
    }

    #[test]
    fn memory_mode_moves_roughly_the_payload() {
        let w = small();
        let m = run_lowfive_memory(&w);
        // All data cross once, plus metadata/control; far less than 3x.
        assert!(
            m.bytes as f64 >= w.total_bytes() as f64 * 0.9,
            "{} vs {}",
            m.bytes,
            w.total_bytes()
        );
        assert!(m.bytes < w.total_bytes() * 3);
    }

    #[test]
    fn bredala_grid_sends_more_bytes_than_lowfive() {
        // Coordinate annotations inflate Bredala's grid traffic ~4x.
        let w = small();
        let lf = run_lowfive_memory(&w);
        let specs =
            [TaskSpec::new("producer", w.producers), TaskSpec::new("consumer", w.consumers)];
        let out = TaskWorld::run_with(&specs, None, move |tc| {
            let cons: Vec<(usize, BBox)> = (0..w.consumers)
                .map(|c| (tc.world_rank_of(1, c), w.consumer_grid_box(c)))
                .collect();
            let prods: Vec<(usize, BBox)> = (0..w.producers)
                .map(|p| (tc.world_rank_of(0, p), w.producer_grid_box(p)))
                .collect();
            if tc.task_id == 0 {
                let gbox = w.producer_grid_box(tc.local.rank());
                let gdata = grid_bytes(&w, &gbox);
                let f = Field::bounding_box("grid", 8, gbox, gdata.into());
                bredala::send_bbox(&tc.world, 41, &f, &cons);
            } else {
                let my = w.consumer_grid_box(tc.local.rank());
                let _ = bredala::recv_bbox(&tc.world, 41, 8, &my, &prods);
            }
        });
        assert!(
            out.stats.bytes > lf.bytes,
            "bredala grid bytes {} should exceed lowfive total {}",
            out.stats.bytes,
            lf.bytes
        );
    }

    #[test]
    fn streaming_modes_complete() {
        // DropOldest with slow consumers: every step published, at least
        // one shed, and the stragglers still drain once the series ends.
        let drop = run_streaming(2, 12, lowfive::BackPressure::DropOldest, true, None);
        assert_eq!(drop.published, 12);
        assert!(drop.dropped >= 1, "slow consumers must force drops");
        assert!(drop.drained, "consumers catch up after the end");
        // Block never drops and drains cleanly.
        let block = run_streaming(2, 12, lowfive::BackPressure::Block, true, None);
        assert_eq!(block.published, 12);
        assert_eq!(block.dropped, 0, "Block mode is lossless");
        assert!(block.drained);
        // Unconsumed baseline: full rate, queue overflow, drain timeout.
        let base = run_streaming(2, 12, lowfive::BackPressure::DropOldest, false, None);
        assert_eq!(base.published, 12);
        assert_eq!(base.dropped, 12 - 4, "depth-4 queue keeps only the tail");
        assert!(!base.drained, "nobody consumed; the drain must time out");
    }

    #[test]
    fn concurrent_serve_overlaps_modeled_gather() {
        // Eight deep replies at ~3.3 ms of modeled gather each: the
        // serial engine stacks all eight, a 4-worker pool overlaps them
        // into ~2 rounds — the gap is several-fold, robust to noise.
        let serial = run_serve_concurrency(8, 1, false, None);
        let pooled = run_serve_concurrency(8, 4, false, None);
        assert!(
            pooled.seconds < serial.seconds,
            "workers=4 ({:.4}s) must beat workers=1 ({:.4}s)",
            pooled.seconds,
            serial.seconds
        );
    }

    #[test]
    fn concurrent_serve_keeps_shallow_lend_copyless() {
        let reg = obsv::Registry::new();
        let m = run_serve_concurrency(6, 4, true, Some(&reg));
        assert!(m.seconds >= 0.0);
        let report = reg.report();
        assert_eq!(
            report.counter(obsv::Ctr::BytesCopied),
            0,
            "the worker pool must not reintroduce producer-side copies"
        );
        // The pool actually ran: offloaded jobs were counted.
        assert!(report.counter(obsv::Ctr::ServeWorkerJobs) > 0);
    }

    #[test]
    fn pure_mpi_validates_grid_content() {
        // recv_grid output equals position-encoded values.
        let w = Workload::paper_split(4, 216, 100);
        let specs =
            [TaskSpec::new("producer", w.producers), TaskSpec::new("consumer", w.consumers)];
        TaskWorld::run(&specs, move |tc| {
            let prod: Vec<(usize, BBox)> = (0..w.producers)
                .map(|p| (tc.world_rank_of(0, p), w.producer_grid_box(p)))
                .collect();
            let cons: Vec<(usize, BBox)> = (0..w.consumers)
                .map(|c| (tc.world_rank_of(1, c), w.consumer_grid_box(c)))
                .collect();
            if tc.task_id == 0 {
                let bb = w.producer_grid_box(tc.local.rank());
                let data = grid_bytes(&w, &bb);
                puempi::send_grid(&tc.world, 51, 8, &bb, &data, &cons);
            } else {
                let bb = w.consumer_grid_box(tc.local.rank());
                let got = puempi::recv_grid(&tc.world, 51, 8, &bb, &prod);
                let expect = grid_bytes(&w, &bb);
                assert_eq!(got, expect);
                let _ = BoxCoords::new(&bb).count();
            }
        });
    }
}
