use bench::runners::run_lowfive_memory;
use bench::workload::Workload;
fn main() {
    for gpp in [27_000u64, 80_000, 160_000, 270_000] {
        let w = Workload::paper_split(64, gpp, gpp);
        let t0 = std::time::Instant::now();
        let m = run_lowfive_memory(&w);
        eprintln!(
            "gpp={gpp}: inner={:.3}s wall={:.3}s msgs={} bytes={}",
            m.seconds,
            t0.elapsed().as_secs_f64(),
            m.messages,
            m.bytes
        );
    }
}
