//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run -p bench --release --bin figures -- all
//! cargo run -p bench --release --bin figures -- fig5 fig7
//! cargo run -p bench --release --bin figures -- table2 --trials 1
//! cargo run -p bench --release --bin figures -- fig8 --scale large
//! ```
//!
//! Experiments: `table1`, `fig5`, `fig6`, `fig7`, `fig8`, `fig9`,
//! `fig11`, `table2`, `collectives`, `staging`, `streaming`,
//! `compression`, `serve-concurrency`, or `all`.
//! Results print as aligned tables and are also appended as CSV under
//! `bench-results/`.
//!
//! Scales (`--scale small|medium|large`) set rank counts and per-producer
//! data sizes. The paper runs 4→16384 MPI processes at 19 MiB per
//! producer on Cray XC40s; thread-ranks on one node reproduce the
//! *protocol* at reduced scale, so who-wins and curve shapes are the
//! comparable quantities, not absolute seconds (see EXPERIMENTS.md).

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use bench::collectives::{run_collectives, STRAGGLER_SKEW};
use bench::runners::{
    run_bredala, run_dataspaces, run_lowfive_codec, run_lowfive_file, run_lowfive_file_traced,
    run_lowfive_memory, run_lowfive_memory_traced, run_lowfive_serve, run_pure_hdf5, run_pure_mpi,
};
use bench::table2::{run_case, Table2Case};
use bench::workload::Workload;
use lowfive::WireCodec;
use simmpi::CostModel;

#[derive(Clone, Copy)]
struct Scale {
    /// Total rank counts for weak-scaling sweeps (3:1 producer:consumer).
    sweep: &'static [usize],
    /// Rank counts used for the (slow) file-mode and Bredala sweeps.
    sweep_slow: &'static [usize],
    grid_per_prod: u64,
    particles_per_prod: u64,
    /// Table II grids (the paper used 256³–2048³).
    table2_grids: &'static [u64],
    table2_producers: usize,
    table2_consumers: usize,
}

const SMALL: Scale = Scale {
    sweep: &[4, 16, 64],
    sweep_slow: &[4, 16, 64],
    grid_per_prod: 8_000, // 20³
    particles_per_prod: 8_000,
    table2_grids: &[32, 64],
    table2_producers: 8,
    table2_consumers: 2,
};

const MEDIUM: Scale = Scale {
    sweep: &[4, 16, 64, 256],
    sweep_slow: &[4, 16, 64],
    grid_per_prod: 27_000, // 30³
    particles_per_prod: 27_000,
    table2_grids: &[32, 64, 128],
    table2_producers: 16,
    table2_consumers: 4,
};

const LARGE: Scale = Scale {
    sweep: &[4, 16, 64, 256],
    sweep_slow: &[4, 16, 64, 256],
    grid_per_prod: 125_000, // 50³
    particles_per_prod: 125_000,
    table2_grids: &[32, 64, 128, 256],
    table2_producers: 16,
    table2_consumers: 4,
};

struct Args {
    experiments: Vec<String>,
    scale: Scale,
    scale_name: String,
    trials: usize,
}

fn parse_args() -> Args {
    let mut experiments = Vec::new();
    let mut scale_name = "medium".to_string();
    let mut trials = 3usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale_name = it.next().expect("--scale needs a value"),
            "--trials" => {
                trials = it.next().expect("--trials needs a value").parse().expect("integer")
            }
            "--transport" => {
                // Every run in this process inherits the chosen backend:
                // the runners build worlds via `TransportKind::from_env`,
                // so the flag just pins the environment variable up front.
                let v = it.next().expect("--transport needs inproc|socket|tcp");
                match v.as_str() {
                    "inproc" => std::env::set_var("SIMMPI_TRANSPORT", ""),
                    "socket" | "uds" | "unix" | "tcp" => std::env::set_var("SIMMPI_TRANSPORT", v),
                    other => panic!("unknown transport {other:?} (inproc|socket|tcp)"),
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [table1 fig5 fig6 fig7 fig8 fig9 fig11 table2 collectives \
                     staging streaming compression serve-concurrency | all] \
                     [--scale small|medium|large] [--trials N] \
                     [--transport inproc|socket|tcp]"
                );
                std::process::exit(0);
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = [
            "table1",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig11",
            "table2",
            "collectives",
            "staging",
            "streaming",
            "compression",
            "serve-concurrency",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let scale = match scale_name.as_str() {
        "small" => SMALL,
        "medium" => MEDIUM,
        "large" => LARGE,
        other => panic!("unknown scale {other:?}"),
    };
    Args { experiments, scale, scale_name, trials }
}

fn results_dir() -> PathBuf {
    let d = PathBuf::from("bench-results");
    std::fs::create_dir_all(&d).expect("create bench-results/");
    d
}

fn csv(path: &Path, header: &str, row: &str) {
    let fresh = !path.exists();
    let mut f = OpenOptions::new().append(true).create(true).open(path).expect("open csv");
    if fresh {
        writeln!(f, "{header}").expect("write header");
    }
    writeln!(f, "{row}").expect("write row");
}

fn avg<F: FnMut() -> f64>(trials: usize, mut f: F) -> f64 {
    (0..trials).map(|_| f()).sum::<f64>() / trials as f64
}

/// Export an observed run: `<stem>.trace.json` (Chrome `trace_event`,
/// loadable in Perfetto / `chrome://tracing`) and `<stem>.metrics.json`
/// (flat per-phase counters/histograms). The trace is validated before
/// it is written — a malformed export fails the run, not the viewer.
fn write_obsv_artifacts(report: &obsv::Report, stem: &str) {
    let dir = results_dir();
    let trace = report.chrome_trace();
    let summary = obsv::validate::validate_chrome_trace(&trace)
        .unwrap_or_else(|e| panic!("{stem}: exporter produced an invalid trace: {e}"));
    let trace_path = dir.join(format!("{stem}.trace.json"));
    std::fs::write(&trace_path, trace).expect("write trace");
    let metrics_path = dir.join(format!("{stem}.metrics.json"));
    std::fs::write(&metrics_path, report.metrics_json()).expect("write metrics");
    println!(
        "  traced: {} spans over {} rank track(s) -> {} + {}",
        summary.spans,
        summary.ranks_with_spans.len(),
        trace_path.display(),
        metrics_path.display()
    );
}

fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join("lowfive-figures").join(tag);
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

fn table1(s: &Scale) {
    println!("\n== Table I: processes and data sizes (1 producer + 1 consumer task) ==");
    println!(
        "{:>10} {:>10} {:>10} {:>14} {:>14} {:>12}",
        "total", "producers", "consumers", "grid pts", "particles", "size (GiB)"
    );
    let out = results_dir().join("table1.csv");
    for &n in s.sweep {
        let w = Workload::paper_split(n, s.grid_per_prod, s.particles_per_prod);
        println!(
            "{:>10} {:>10} {:>10} {:>14.3e} {:>14.3e} {:>12.4}",
            n,
            w.producers,
            w.consumers,
            w.total_grid_points() as f64,
            w.total_particles() as f64,
            gib(w.total_bytes())
        );
        csv(
            &out,
            "total,producers,consumers,grid_points,particles,bytes",
            &format!(
                "{n},{},{},{},{},{}",
                w.producers,
                w.consumers,
                w.total_grid_points(),
                w.total_particles(),
                w.total_bytes()
            ),
        );
    }
}

fn fig5(s: &Scale, trials: usize) {
    println!("\n== Fig. 5: LowFive file mode vs memory mode (weak scaling) ==");
    println!("{:>8} {:>16} {:>16}", "procs", "file mode (s)", "memory mode (s)");
    let out = results_dir().join("fig5.csv");
    for &n in s.sweep_slow {
        let w = Workload::paper_split(n, s.grid_per_prod, s.particles_per_prod);
        let dir = tmpdir(&format!("fig5-{n}"));
        let tf = avg(trials, || run_lowfive_file(&w, &dir).seconds);
        let tm = avg(trials, || run_lowfive_memory(&w).seconds);
        println!("{n:>8} {tf:>16.4} {tm:>16.4}");
        csv(&out, "procs,file_s,memory_s", &format!("{n},{tf},{tm}"));
    }
    // Memory mode continues to the largest scale, as in the paper (file
    // mode was terminated early there because of its run time).
    for &n in s.sweep.iter().filter(|n| !s.sweep_slow.contains(n)) {
        let w = Workload::paper_split(n, s.grid_per_prod, s.particles_per_prod);
        let tm = avg(trials, || run_lowfive_memory(&w).seconds);
        println!("{n:>8} {:>16} {tm:>16.4}", "-");
        csv(&out, "procs,file_s,memory_s", &format!("{n},,{tm}"));
    }
    // One traced pass at the smallest scale: per-phase metrics plus a
    // Chrome trace of both transport modes, rank by rank.
    let n = s.sweep_slow[0];
    let w = Workload::paper_split(n, s.grid_per_prod, s.particles_per_prod);
    let reg = obsv::Registry::new();
    run_lowfive_file_traced(&w, &tmpdir(&format!("fig5t-{n}")), &reg);
    run_lowfive_memory_traced(&w, &reg);
    write_obsv_artifacts(&reg.report(), "fig5");

    // Deep vs shallow serve A/B under the interconnect cost model: the
    // zero-copy serve path answers from borrowed region slices, so the
    // shallow column pays only wire time while the deep column adds one
    // staging copy per served byte.
    println!("\n-- serve ownership A/B (interconnect cost model) --");
    println!("{:>8} {:>16} {:>16} {:>10}", "procs", "deep serve (s)", "shallow (s)", "deep/shal");
    let out = results_dir().join("fig5_serve.csv");
    for &n in s.sweep {
        let w = Workload::paper_split(n, s.grid_per_prod, s.particles_per_prod);
        let td = avg(trials, || {
            run_lowfive_serve(&w, false, Some(CostModel::interconnect()), None).seconds
        });
        let ts = avg(trials, || {
            run_lowfive_serve(&w, true, Some(CostModel::interconnect()), None).seconds
        });
        println!("{n:>8} {td:>16.4} {ts:>16.4} {:>9.2}x", td / ts);
        csv(&out, "procs,deep_s,shallow_s", &format!("{n},{td},{ts}"));
    }
    // Traced A/B passes: `fig5_shallow.metrics.json` must report
    // bytes_copied == 0 (CI asserts this), `fig5_deep` counts the
    // staging copies it was forced to make.
    let w = Workload::paper_split(s.sweep[0], s.grid_per_prod, s.particles_per_prod);
    let reg = obsv::Registry::new();
    run_lowfive_serve(&w, true, Some(CostModel::interconnect()), Some(&reg));
    write_obsv_artifacts(&reg.report(), "fig5_shallow");
    let reg = obsv::Registry::new();
    run_lowfive_serve(&w, false, Some(CostModel::interconnect()), Some(&reg));
    write_obsv_artifacts(&reg.report(), "fig5_deep");
}

fn fig6(s: &Scale, trials: usize) {
    println!("\n== Fig. 6: LowFive file mode vs pure HDF5 (weak scaling) ==");
    println!(
        "{:>8} {:>18} {:>16} {:>10}",
        "procs", "LowFive file (s)", "pure HDF5 (s)", "overhead"
    );
    let out = results_dir().join("fig6.csv");
    for &n in s.sweep_slow {
        let w = Workload::paper_split(n, s.grid_per_prod, s.particles_per_prod);
        let d1 = tmpdir(&format!("fig6lf-{n}"));
        let d2 = tmpdir(&format!("fig6h5-{n}"));
        let tlf = avg(trials, || run_lowfive_file(&w, &d1).seconds);
        let th5 = avg(trials, || run_pure_hdf5(&w, &d2).seconds);
        println!("{n:>8} {tlf:>18.4} {th5:>16.4} {:>9.2}x", tlf / th5);
        csv(&out, "procs,lowfive_file_s,pure_hdf5_s", &format!("{n},{tlf},{th5}"));
    }
}

fn fig7(s: &Scale, trials: usize) {
    println!("\n== Fig. 7: LowFive memory mode vs pure MPI (weak scaling) ==");
    println!("{:>8} {:>18} {:>14} {:>10}", "procs", "LowFive mem (s)", "pure MPI (s)", "LF/MPI");
    let out = results_dir().join("fig7.csv");
    for &n in s.sweep {
        let w = Workload::paper_split(n, s.grid_per_prod, s.particles_per_prod);
        let tlf = avg(trials, || run_lowfive_memory(&w).seconds);
        let tmpi = avg(trials, || run_pure_mpi(&w).seconds);
        println!("{n:>8} {tlf:>18.4} {tmpi:>14.4} {:>9.2}x", tlf / tmpi);
        csv(&out, "procs,lowfive_mem_s,pure_mpi_s", &format!("{n},{tlf},{tmpi}"));
    }
}

fn staging_for(total: usize) -> usize {
    (total / 32).max(1)
}

fn fig8(s: &Scale, trials: usize) {
    println!("\n== Fig. 8: LowFive memory mode vs DataSpaces (weak scaling) ==");
    println!(
        "{:>8} {:>18} {:>16} {:>10} {:>9}",
        "procs", "LowFive mem (s)", "DataSpaces (s)", "LF/DS", "+staging"
    );
    let out = results_dir().join("fig8.csv");
    for &n in s.sweep {
        let w = Workload::paper_split(n, s.grid_per_prod, s.particles_per_prod);
        let staging = staging_for(n);
        let tlf = avg(trials, || run_lowfive_memory(&w).seconds);
        let tds = avg(trials, || run_dataspaces(&w, staging).seconds);
        println!("{n:>8} {tlf:>18.4} {tds:>16.4} {:>9.2}x {staging:>9}", tlf / tds);
        csv(
            &out,
            "procs,lowfive_mem_s,dataspaces_s,staging_ranks",
            &format!("{n},{tlf},{tds},{staging}"),
        );
    }
}

fn fig9(s: &Scale, trials: usize) {
    println!("\n== Fig. 9: LowFive memory mode vs Bredala (weak scaling) ==");
    println!(
        "{:>8} {:>18} {:>14} {:>14} {:>16}",
        "procs", "LowFive mem (s)", "Bredala (s)", "Bredala grid", "Bredala particles"
    );
    let out = results_dir().join("fig9.csv");
    for &n in s.sweep_slow {
        let w = Workload::paper_split(n, s.grid_per_prod, s.particles_per_prod);
        let tlf = avg(trials, || run_lowfive_memory(&w).seconds);
        let mut grid = 0.0;
        let mut parts = 0.0;
        for _ in 0..trials {
            let b = run_bredala(&w);
            grid += b.grid;
            parts += b.particles;
        }
        grid /= trials as f64;
        parts /= trials as f64;
        println!("{n:>8} {tlf:>18.4} {:>14.4} {grid:>14.4} {parts:>16.4}", grid + parts);
        csv(
            &out,
            "procs,lowfive_mem_s,bredala_total_s,bredala_grid_s,bredala_particles_s",
            &format!("{n},{tlf},{},{grid},{parts}", grid + parts),
        );
    }
}

fn fig11(s: &Scale, trials: usize) {
    println!("\n== Fig. 11: large data — LowFive vs DataSpaces vs pure MPI ==");
    println!(
        "{:>8} {:>18} {:>16} {:>14}",
        "procs", "LowFive mem (s)", "DataSpaces (s)", "pure MPI (s)"
    );
    let out = results_dir().join("fig11.csv");
    for &n in s.sweep {
        // 10× the per-producer data of the other figures, as in the paper.
        let w = Workload::paper_split(n, s.grid_per_prod * 10, s.particles_per_prod * 10);
        let staging = staging_for(n);
        let tlf = avg(trials, || run_lowfive_memory(&w).seconds);
        let tds = avg(trials, || run_dataspaces(&w, staging).seconds);
        let tmpi = avg(trials, || run_pure_mpi(&w).seconds);
        println!("{n:>8} {tlf:>18.4} {tds:>16.4} {tmpi:>14.4}");
        csv(
            &out,
            "procs,lowfive_mem_s,dataspaces_s,pure_mpi_s",
            &format!("{n},{tlf},{tds},{tmpi}"),
        );
    }
}

fn table2(s: &Scale, trials: usize) {
    println!("\n== Table II: Nyx–Reeber use case ==");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10} {:>11} {:>7}",
        "grid",
        "LF write",
        "LF read",
        "H5 write",
        "H5 read",
        "Plot write",
        "LF/H5",
        "LF/Plot",
        "halos"
    );
    let out = results_dir().join("table2.csv");
    for &g in s.table2_grids {
        let case = Table2Case::new(g, s.table2_producers, s.table2_consumers);
        let dir = tmpdir(&format!("table2-{g}"));
        // Average rows over trials field-by-field.
        let mut acc: Option<bench::table2::Table2Row> = None;
        for _ in 0..trials {
            let row = run_case(&case, &dir);
            acc = Some(match acc {
                None => row,
                Some(mut a) => {
                    a.lowfive_write += row.lowfive_write;
                    a.lowfive_read += row.lowfive_read;
                    a.hdf5_write += row.hdf5_write;
                    a.hdf5_read += row.hdf5_read;
                    a.plotfiles_write += row.plotfiles_write;
                    a
                }
            });
        }
        let mut row = acc.expect("at least one trial");
        let t = trials as f64;
        row.lowfive_write /= t;
        row.lowfive_read /= t;
        row.hdf5_write /= t;
        row.hdf5_read /= t;
        row.plotfiles_write /= t;
        let lf = row.lowfive_write + row.lowfive_read;
        row.speedup_vs_hdf5 = (row.hdf5_write + row.hdf5_read) / lf;
        row.speedup_vs_plotfiles = row.plotfiles_write / lf;
        println!(
            "{:>7}³ {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>11.3} {:>9.2}x {:>10.2}x {:>7}",
            row.grid,
            row.lowfive_write,
            row.lowfive_read,
            row.hdf5_write,
            row.hdf5_read,
            row.plotfiles_write,
            row.speedup_vs_hdf5,
            row.speedup_vs_plotfiles,
            row.halos
        );
        csv(
            &out,
            "grid,lf_write,lf_read,h5_write,h5_read,plot_write,speedup_h5,speedup_plot,halos",
            &format!(
                "{},{},{},{},{},{},{},{},{}",
                row.grid,
                row.lowfive_write,
                row.lowfive_read,
                row.hdf5_write,
                row.hdf5_read,
                row.plotfiles_write,
                row.speedup_vs_hdf5,
                row.speedup_vs_plotfiles,
                row.halos
            ),
        );
    }
}

fn collectives_fig(s: &Scale, trials: usize) {
    println!("\n== Collective schedules: linear reference vs log-time (scaling) ==");
    println!(
        "{:>10} {:>8} {:>6} {:>8} {:>9} {:>14} {:>12}",
        "op", "algo", "n", "msgs", "crit.path", "modeled (ms)", "measured (s)"
    );
    // 4 KiB blocks sit well below the interconnect crossover (10 KB), so
    // the sweep exercises the small-payload tree schedules — the ring /
    // segmented variants are covered by the simmpi tests and the model.
    let block = 4096;
    let reg_linear = obsv::Registry::new();
    let reg_tree = obsv::Registry::new();
    let ns: Vec<usize> = s.sweep.iter().copied().filter(|&n| n <= 64).collect();
    let points = run_collectives(&ns, block, trials, Some(&reg_linear), Some(&reg_tree));
    let out = results_dir().join("collectives_scaling.csv");
    for p in &points {
        let algo = match p.algo {
            simmpi::CollectiveAlgo::Linear => "linear",
            _ => "tree",
        };
        println!(
            "{:>10} {:>8} {:>6} {:>8} {:>9} {:>14.3} {:>12.4}",
            p.op,
            algo,
            p.n,
            p.messages,
            p.critical_path_recvs,
            p.modeled_ns / 1e6,
            p.measured_s
        );
        csv(
            &out,
            "op,algo,n,block_bytes,messages,critical_path_recvs,modeled_ns,measured_s",
            &format!(
                "{},{algo},{},{},{},{},{},{}",
                p.op,
                p.n,
                p.block_bytes,
                p.messages,
                p.critical_path_recvs,
                p.modeled_ns,
                p.measured_s
            ),
        );
    }
    println!(
        "  (alltoall measured with a {} ms rank-0 straggler; modeled under \
         the interconnect cost model)",
        STRAGGLER_SKEW.as_millis()
    );
    write_obsv_artifacts(&reg_linear.report(), "collectives_linear");
    write_obsv_artifacts(&reg_tree.report(), "collectives_tree");
}

/// Sharded staging tier: a fault-free weak-scaling sweep over shard
/// counts, then three seeded chaos runs that kill the primary of
/// `grid@0` mid-run and require the consumers' reads to stay
/// byte-identical. The kill point is computed, not guessed: the victim's
/// first `at_send - 1` sends are exactly its replicated-put acks, so it
/// dies attempting its first query reply — after the tier is fully
/// replicated, before serving finishes. Per-seed metrics JSON lands in
/// `bench-results/staging_kill_seed<N>.metrics.json`; the CI chaos job
/// greps it for nonzero `failovers_detected` and `read_repairs`.
fn staging_fig(s: &Scale, scale: &str) {
    use baselines::staging::{staging_key, HashRing, StagingConfig};
    use bench::runners::run_staging;
    use simmpi::FaultPlan;
    use std::time::Duration;

    let w = Workload {
        producers: 2,
        consumers: 2,
        grid_per_prod: s.grid_per_prod,
        particles_per_prod: s.particles_per_prod,
    };
    let rounds = 4usize;
    let k = 2usize;
    let out = results_dir().join("staging_scale.csv");
    let header = "scale,mode,shards,k,rounds,seconds,messages,bytes,deaths";

    println!("\n== Staging tier: replicated shards, with and without a mid-run kill ==");
    println!(
        "{:>10} {:>7} {:>3} {:>7} {:>10} {:>9} {:>12} {:>7}",
        "mode", "shards", "k", "rounds", "seconds", "msgs", "bytes", "deaths"
    );
    for &shards in &[2usize, 4, 8] {
        let m = run_staging(&w, shards, k, rounds, 0, None, None);
        println!(
            "{:>10} {:>7} {:>3} {:>7} {:>10.4} {:>9} {:>12} {:>7}",
            "healthy", shards, k, rounds, m.seconds, m.messages, m.bytes, m.deaths
        );
        csv(
            &out,
            header,
            &format!(
                "{scale},healthy,{shards},{k},{rounds},{},{},{},{}",
                m.seconds, m.messages, m.bytes, m.deaths
            ),
        );
    }

    // Chaos runs: 4 shards, k = 2 tolerates the single kill. The victim
    // and kill point are pure functions of the ring, so every seed kills
    // the same rank at the same send; the seed varies message delays and
    // with them the interleaving the recovery path must absorb.
    let shards = 4usize;
    let shard_ranks: Vec<usize> = (w.producers..w.producers + shards).collect();
    let cfg = StagingConfig::new(shard_ranks.clone(), Vec::new(), Vec::new());
    let ring = HashRing::new(&shard_ranks, cfg.vnodes).expect("non-empty tier");
    let victim = ring.replicas(&staging_key("grid", 0), k)[0];
    let acked_puts: usize = (0..rounds as u64)
        .filter(|&v| ring.replicas(&staging_key("grid", v), k).contains(&victim))
        .count()
        * w.producers;
    // The gate sentinel must live off the victim, or polling it would
    // elicit victim sends before the data puts are all acked and shift
    // the kill point (see `run_staging`).
    let gate = (0u64..)
        .find(|&g| !ring.replicas(&staging_key("go", g), k).contains(&victim))
        .expect("some gate version avoids the victim");
    for &seed in &[11u64, 23, 47] {
        let plan = FaultPlan::new(seed)
            .delay(0.2, Duration::from_micros(200))
            .kill_rank(victim, acked_puts as u64 + 1);
        let reg = obsv::Registry::new();
        let m = run_staging(&w, shards, k, rounds, gate, Some(plan), Some(&reg));
        assert_eq!(m.deaths, 1, "the fault plan kills exactly one shard");
        let mode = format!("kill-seed{seed}");
        println!(
            "{:>10} {:>7} {:>3} {:>7} {:>10.4} {:>9} {:>12} {:>7}",
            mode, shards, k, rounds, m.seconds, m.messages, m.bytes, m.deaths
        );
        csv(
            &out,
            header,
            &format!(
                "{scale},{mode},{shards},{k},{rounds},{},{},{},{}",
                m.seconds, m.messages, m.bytes, m.deaths
            ),
        );
        write_obsv_artifacts(&reg.report(), &format!("staging_kill_seed{seed}"));
    }
    println!(
        "  (victim = shard rank {victim}, killed at send {} — its last put ack is send {})",
        acked_puts + 1,
        acked_puts
    );
}

/// Sustained step-streaming traffic: one fast producer versus slow
/// consumers, under each back-pressure mode (see
/// `bench::runners::run_streaming` and docs/STREAMING.md). Three runs,
/// each with its own metrics registry:
///
/// * `baseline` — `DropOldest`, consumers never subscribe: the
///   producer's unconstrained publish rate.
/// * `drop` — `DropOldest` with slow `EveryStep` subscribers: the rate
///   must stay close to the baseline (CI asserts within 10%) because
///   eviction, not the consumers, absorbs the lag.
/// * `block` — `Block` with the same subscribers: the publish loop
///   throttles down to the slowest consumer's pace and sheds nothing.
///
/// Rows land in `bench-results/streaming_rates.csv`; per-run counters in
/// `streaming_<mode>.metrics.json` (the CI streaming job asserts
/// `steps_published` everywhere, `steps_dropped == 0` for `block`, and
/// `steps_dropped >= 1` for `drop`).
fn streaming_fig(scale: &str) {
    use bench::runners::run_streaming;
    use lowfive::BackPressure;

    let consumers = 3usize;
    let steps = 60u64;
    println!("\n== Streaming: sustained step traffic under both back-pressure modes ==");
    println!(
        "{:>10} {:>10} {:>7} {:>10} {:>12} {:>10} {:>9} {:>8}",
        "mode", "consumers", "steps", "seconds", "steps/s", "published", "dropped", "drained"
    );
    let out = results_dir().join("streaming_rates.csv");
    let header = "scale,mode,consumers,steps,seconds,steps_per_s,published,dropped,drained";
    let run = |mode: BackPressure, subscribe: bool, name: &str| {
        let reg = obsv::Registry::new();
        let m = run_streaming(consumers, steps, mode, subscribe, Some(&reg));
        println!(
            "{name:>10} {consumers:>10} {steps:>7} {:>10.4} {:>12.1} {:>10} {:>9} {:>8}",
            m.seconds, m.rate, m.published, m.dropped, m.drained
        );
        csv(
            &out,
            header,
            &format!(
                "{scale},{name},{consumers},{steps},{},{},{},{},{}",
                m.seconds, m.rate, m.published, m.dropped, m.drained
            ),
        );
        write_obsv_artifacts(&reg.report(), &format!("streaming_{name}"));
        m
    };
    let baseline = run(BackPressure::DropOldest, false, "baseline");
    let drop = run(BackPressure::DropOldest, true, "drop");
    let block = run(BackPressure::Block, true, "block");
    assert_eq!(baseline.published, steps);
    assert!(drop.drained && block.drained, "subscribed runs must drain cleanly");
    assert_eq!(block.dropped, 0, "Block mode is lossless");
    println!(
        "  (drop keeps {:.0}% of the baseline rate; block throttles to {:.0}%)",
        100.0 * drop.rate / baseline.rate,
        100.0 * block.rate / baseline.rate
    );
}

/// Wire-codec A/B over a slow modeled link (~1 GB/s staging-grade):
/// the shallow zero-copy serve exchange once under `WireCodec::Auto`
/// (the cost model elects the lag-8 delta-RLE codec for every
/// bandwidth-bound grid reply) and once pinned to `WireCodec::Raw`
/// (negotiation settles on raw-only; replies ship untouched). Each
/// point reports the trial-averaged modeled time plus the pre-codec vs
/// on-wire byte counters from one observed pass, so the `ratio` column
/// is the *realized* compression, not the planner's assumed 0.5.
///
/// Artifacts from the smallest scale back the CI `compression` job:
/// `compression_auto.metrics.json` must show
/// `bytes_on_wire < bytes_pre_codec`, and `compression_raw.metrics.json`
/// must show the two equal with `bytes_copied == 0` — opting out of
/// compression costs the zero-copy lend path nothing.
fn compression_fig(s: &Scale, trials: usize) {
    use std::time::Duration;
    let slow = || CostModel { latency: Duration::from_micros(2), per_byte_ns: 1.0 };
    println!("\n== Compression: wire-codec A/B over a slow modeled link ==");
    println!(
        "{:>8} {:>10} {:>10} {:>14} {:>14} {:>7}",
        "procs", "scenario", "seconds", "pre-codec B", "on-wire B", "ratio"
    );
    let out = results_dir().join("compression.csv");
    let header = "procs,scenario,seconds,bytes_pre_codec,bytes_on_wire,ratio";
    for &n in s.sweep {
        let w = Workload::paper_split(n, s.grid_per_prod, s.particles_per_prod);
        for (codec, name) in [(WireCodec::Auto, "auto"), (WireCodec::Raw, "raw")] {
            let t = avg(trials, || run_lowfive_codec(&w, codec, Some(slow()), None).seconds);
            let reg = obsv::Registry::new();
            run_lowfive_codec(&w, codec, Some(slow()), Some(&reg));
            let report = reg.report();
            let pre = report.counter(obsv::Ctr::BytesPreCodec);
            let wire = report.counter(obsv::Ctr::BytesOnWire);
            let ratio = wire as f64 / pre as f64;
            println!("{n:>8} {name:>10} {t:>10.4} {pre:>14} {wire:>14} {ratio:>7.3}");
            csv(&out, header, &format!("{n},{name},{t},{pre},{wire},{ratio}"));
            match codec {
                WireCodec::Auto => assert!(
                    wire < pre,
                    "auto over a slow link must shrink wire bytes ({wire} vs {pre})"
                ),
                _ => assert_eq!(wire, pre, "raw-negotiated replies must ship unchanged"),
            }
            if n == s.sweep[0] {
                write_obsv_artifacts(&report, &format!("compression_{name}"));
            }
        }
    }
}

/// Concurrent serve engine A/B (`serve-concurrency` experiment): one
/// producer rank answers 12 consumers' batched deep-dataset reads under
/// a modeled per-byte gather cost, with the serve worker pool swept over
/// 1 / 2 / 4 workers. The workers=1 row is today's strictly serial
/// engine; every pooled row must strictly beat it on makespan (asserted
/// here and re-checked by the CI job on the CSV), because the pool
/// overlaps the producer-side gather stalls that the serial loop stacks.
///
/// Artifacts: `serve_concurrency_w1` / `serve_concurrency_w4` metrics +
/// traces from observed passes (the w4 metrics must carry the
/// `serve_worker_jobs` counter and `serve_queue_depth` histogram — the
/// queue actually formed), and `serve_concurrency_shallow` from a
/// zero-copy pass with the pool on, whose `bytes_copied` must be exactly
/// zero: concurrency must not reintroduce the copy the lend path
/// exists to avoid.
fn serve_concurrency_fig(scale: &str, trials: usize) {
    use bench::runners::run_serve_concurrency;

    let consumers = 12usize;
    println!("\n== Serve concurrency: worker pool vs serial engine (modeled gather) ==");
    println!(
        "{:>9} {:>10} {:>10} {:>9} {:>12}",
        "workers", "consumers", "seconds", "speedup", "bytes"
    );
    let out = results_dir().join("serve_concurrency.csv");
    let header = "scale,workers,consumers,seconds,speedup,bytes";
    let mut serial_s = 0.0f64;
    for &workers in &[1usize, 2, 4] {
        let t = avg(trials, || run_serve_concurrency(consumers, workers, false, None).seconds);
        let m = run_serve_concurrency(consumers, workers, false, None);
        if workers == 1 {
            serial_s = t;
        }
        let speedup = serial_s / t;
        println!("{workers:>9} {consumers:>10} {t:>10.4} {speedup:>8.2}x {:>12}", m.bytes);
        csv(&out, header, &format!("{scale},{workers},{consumers},{t},{speedup},{}", m.bytes));
        if workers > 1 {
            assert!(
                t < serial_s,
                "workers={workers} ({t:.4}s) must strictly beat workers=1 ({serial_s:.4}s)"
            );
        }
    }

    // Observed passes back the CI assertions on the exported JSON.
    let reg = obsv::Registry::new();
    let w1 = run_serve_concurrency(consumers, 1, false, Some(&reg));
    write_obsv_artifacts(&reg.report(), "serve_concurrency_w1");
    let reg = obsv::Registry::new();
    let w4 = run_serve_concurrency(consumers, 4, false, Some(&reg));
    let report = reg.report();
    assert!(
        w4.seconds < w1.seconds,
        "observed pass: workers=4 ({:.4}s) must beat workers=1 ({:.4}s)",
        w4.seconds,
        w1.seconds
    );
    assert!(
        report.counter(obsv::Ctr::ServeWorkerJobs) > 0,
        "the pool must have executed offloaded jobs"
    );
    write_obsv_artifacts(&report, "serve_concurrency_w4");

    let reg = obsv::Registry::new();
    run_serve_concurrency(consumers, 4, true, Some(&reg));
    let report = reg.report();
    assert_eq!(
        report.counter(obsv::Ctr::BytesCopied),
        0,
        "shallow lend path must stay copyless under the worker pool"
    );
    write_obsv_artifacts(&report, "serve_concurrency_shallow");
    println!(
        "  (workers=4 observed {:.4}s vs workers=1 {:.4}s; shallow pass copied 0 bytes)",
        w4.seconds, w1.seconds
    );
}

fn main() {
    let args = parse_args();
    println!(
        "LowFive reproduction figures — scale {} ({} trials per point, {} transport)",
        args.scale_name,
        args.trials,
        simmpi::TransportKind::from_env()
    );
    for exp in &args.experiments {
        match exp.as_str() {
            "table1" => table1(&args.scale),
            "fig5" => fig5(&args.scale, args.trials),
            "fig6" => fig6(&args.scale, args.trials),
            "fig7" => fig7(&args.scale, args.trials),
            "fig8" => fig8(&args.scale, args.trials),
            "fig9" => fig9(&args.scale, args.trials),
            "fig11" => fig11(&args.scale, args.trials),
            "table2" => table2(&args.scale, args.trials),
            "collectives" => collectives_fig(&args.scale, args.trials),
            "staging" => staging_fig(&args.scale, &args.scale_name),
            "streaming" => streaming_fig(&args.scale_name),
            "compression" => compression_fig(&args.scale, args.trials),
            "serve-concurrency" => serve_concurrency_fig(&args.scale_name, args.trials),
            other => eprintln!("unknown experiment {other:?} (see --help)"),
        }
    }
    println!("\nCSV rows appended under bench-results/.");
}
