//! Collective-schedule scaling experiment: linear reference vs log-time
//! schedules for gather / allgather / all-to-all at n = 4…64 ranks.
//!
//! Three quantities per (op, schedule, n) point, because the schedules
//! win on different axes:
//!
//! * **total messages** — counted on the wire by [`simmpi::TransportStats`]
//!   and cross-checked against the closed-form counts in `simmpi::cost`
//!   (Bruck dissemination pays `n·⌈lg n⌉` messages for its logarithmic
//!   completion; gather ships `n-1` under both schedules),
//! * **modeled critical-path latency** under the paper-style interconnect
//!   cost model (1 µs + 0.1 ns/B) — where the binomial tree collapses the
//!   root's O(n) receive chain to O(lg n),
//! * **measured wall time** under a latency-dominated cost model, with a
//!   deliberate straggler for the all-to-all — the pairwise any-source
//!   schedule overlaps the straggle with every other receive, the linear
//!   rank-order schedule queues its whole receive loop behind it.

use std::time::{Duration, Instant};

use bytes::Bytes;
use simmpi::{
    allgather_messages, alltoall_messages, critical_path_recvs, gather_messages, CollectiveAlgo,
    CostModel, World,
};

/// The collectives the scaling figure sweeps.
pub const OPS: [&str; 3] = ["gather", "allgather", "alltoall"];

/// One measured point of the scaling experiment.
#[derive(Debug, Clone)]
pub struct CollPoint {
    pub op: &'static str,
    pub algo: CollectiveAlgo,
    pub n: usize,
    pub block_bytes: usize,
    /// Wire messages for one collective call (measured, whole world).
    pub messages: u64,
    /// Longest serialized receive chain on any rank (closed form).
    pub critical_path_recvs: u64,
    /// Modeled critical-path latency under the interconnect cost model.
    pub modeled_ns: f64,
    /// Measured completion time under the latency cost model, averaged
    /// over `trials`. For the all-to-all (run with a straggling rank 0)
    /// this is the slowest **non-straggler** rank: the straggler's own
    /// finish time is `skew + its receives` under any schedule, but the
    /// other ranks only queue behind it when receives are rank-ordered.
    pub measured_s: f64,
}

/// Per-message latency charged in the measured runs. Large enough to
/// dominate thread scheduling noise at n = 64, small enough to keep the
/// whole sweep in seconds.
fn measured_model() -> CostModel {
    CostModel { latency: Duration::from_micros(200), per_byte_ns: 0.0 }
}

/// How long the all-to-all straggler (rank 0) sleeps before sending.
pub const STRAGGLER_SKEW: Duration = Duration::from_millis(20);

fn run_op(c: &simmpi::Comm, op: &str, block: usize, skew: Option<Duration>) {
    let me = c.rank();
    let mine = Bytes::from(vec![me as u8; block]);
    match op {
        "gather" => {
            c.gather_bytes(0, mine);
        }
        "allgather" => {
            c.allgather_bytes(mine);
        }
        "alltoall" => {
            if let Some(s) = skew {
                if me == 0 {
                    std::thread::sleep(s);
                }
            }
            c.alltoall_bytes(vec![mine; c.size()]);
        }
        other => panic!("unknown collective op {other:?}"),
    }
}

/// Measure one (op, schedule, n) point. `observe` attaches a registry to
/// the message-count pass so the per-op counters and latency histograms
/// land in the exported metrics.
pub fn run_point(
    op: &'static str,
    algo: CollectiveAlgo,
    n: usize,
    block: usize,
    trials: usize,
    observe: Option<&obsv::Registry>,
) -> CollPoint {
    // Pass 1 (no cost model): count wire messages for a single call.
    let mut builder = World::builder(n).collective_algo(algo);
    if let Some(reg) = observe {
        builder = builder.observe(reg.clone());
    }
    let out = builder.run(move |c| run_op(&c, op, block, None));
    let messages = out.stats.messages;

    let expected = match op {
        "gather" => gather_messages(algo, n),
        "allgather" => allgather_messages(algo, n),
        "alltoall" => alltoall_messages(algo, n),
        _ => unreachable!(),
    };
    assert_eq!(
        messages, expected,
        "{op}/{algo:?} at n={n}: wire count disagrees with the closed form"
    );

    // Pass 2 (latency cost model, straggler for alltoall): per-rank
    // completion time, clocked from a synchronizing barrier so thread
    // spawn order doesn't leak into the measurement.
    let skew = (op == "alltoall").then_some(STRAGGLER_SKEW);
    let mut total = 0.0f64;
    for _ in 0..trials {
        let out =
            World::builder(n).collective_algo(algo).cost_model(measured_model()).run(move |c| {
                c.barrier();
                let t0 = Instant::now();
                run_op(&c, op, block, skew);
                t0.elapsed().as_secs_f64()
            });
        total += out
            .results
            .iter()
            .enumerate()
            .filter(|&(r, _)| skew.is_none() || r != 0)
            .map(|(_, &s)| s)
            .fold(0.0, f64::max);
    }

    let cm = CostModel::interconnect();
    let skew_ns = skew.map_or(0.0, |s| s.as_nanos() as f64);
    let modeled_ns = match op {
        "gather" => cm.modeled_gather_ns(algo, n, block),
        "allgather" => cm.modeled_allgather_ns(algo, n, block),
        "alltoall" => cm.modeled_alltoall_ns(algo, n, block, skew_ns),
        _ => unreachable!(),
    };

    CollPoint {
        op,
        algo,
        n,
        block_bytes: block,
        messages,
        critical_path_recvs: critical_path_recvs(algo, op, n),
        modeled_ns,
        measured_s: total / trials as f64,
    }
}

/// Sweep every op × schedule over `ns`, returning the points in sweep
/// order. The observed pass runs under the matching registry (one for
/// the linear family, one for the log-time family) so the exported
/// metrics split cleanly into `collectives_linear` / `collectives_tree`.
pub fn run_collectives(
    ns: &[usize],
    block: usize,
    trials: usize,
    observe_linear: Option<&obsv::Registry>,
    observe_tree: Option<&obsv::Registry>,
) -> Vec<CollPoint> {
    let mut points = Vec::new();
    for &n in ns {
        for op in OPS {
            for algo in [CollectiveAlgo::Linear, CollectiveAlgo::LogTime] {
                let reg = match algo {
                    CollectiveAlgo::Linear => observe_linear,
                    _ => observe_tree,
                };
                points.push(run_point(op, algo, n, block, trials, reg));
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_messages_match_closed_forms() {
        // run_point itself asserts wire count == closed form; exercise
        // both schedule families at an awkward (non-power-of-two) size.
        for op in OPS {
            for algo in [CollectiveAlgo::Linear, CollectiveAlgo::LogTime] {
                let p = run_point(op, algo, 6, 128, 1, None);
                assert!(p.measured_s > 0.0);
            }
        }
    }

    #[test]
    fn tree_wins_where_it_should_at_16_ranks() {
        let n = 16;
        for op in OPS {
            let lin = run_point(op, CollectiveAlgo::Linear, n, 256, 1, None);
            let tree = run_point(op, CollectiveAlgo::LogTime, n, 256, 1, None);
            assert!(
                tree.modeled_ns < lin.modeled_ns,
                "{op}: modeled {} !< {}",
                tree.modeled_ns,
                lin.modeled_ns
            );
            assert!(tree.critical_path_recvs <= lin.critical_path_recvs, "{op}");
        }
    }
}
