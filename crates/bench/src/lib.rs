//! # bench — benchmark harness regenerating every table and figure
//!
//! The `figures` binary (`cargo run -p bench --release --bin figures -- <exp>`)
//! prints the rows/series of each experiment in the paper's evaluation
//! (Table I, Figs. 5–9, 11, Table II); the Criterion benches under
//! `benches/` cover the same comparisons in micro form plus the ablations
//! called out in DESIGN.md.

pub mod collectives;
pub mod runners;
pub mod table2;
pub mod workload;
