//! The synthetic benchmark workload of §IV-B.
//!
//! "We generate synthetic data consisting of two datasets: a regular grid
//! of 64-bit unsigned integer scalar values and a list of particles, each
//! particle a 3-d vector of 32-bit floating-point values. … The values of
//! the grid points and particles encode their global position."
//!
//! The grid is 3-d, slab-decomposed along x on the producer side and —
//! to force a genuine redistribution, as in Fig. 3 — along y on the
//! consumer side. Particles are a 1-d list in contiguous chunks on both
//! sides. Three-fourths of the ranks produce, one-fourth consume
//! (plus optional staging ranks for DataSpaces).

use minih5::{BBox, Selection};

/// One weak-scaling configuration.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    pub producers: usize,
    pub consumers: usize,
    /// Grid points per producer rank (the paper uses 1e6; scaled here).
    pub grid_per_prod: u64,
    /// Particles per producer rank.
    pub particles_per_prod: u64,
}

impl Workload {
    /// The paper's split: 3/4 producers, 1/4 consumers of `total` ranks.
    pub fn paper_split(total: usize, grid_per_prod: u64, particles_per_prod: u64) -> Workload {
        assert!(
            total >= 4 && total.is_multiple_of(4),
            "total ranks must be a positive multiple of 4"
        );
        Workload {
            producers: total * 3 / 4,
            consumers: total / 4,
            grid_per_prod,
            particles_per_prod,
        }
    }

    /// Per-producer subgrid side: the largest `s` with `s³ ≤ grid_per_prod`
    /// (the actual per-producer grid count is `s³`).
    pub fn subgrid_side(&self) -> u64 {
        let mut s = (self.grid_per_prod as f64).cbrt().round() as u64;
        while s.pow(3) > self.grid_per_prod {
            s -= 1;
        }
        s.max(1)
    }

    /// Global grid dims `[s·n, s, s]`.
    pub fn grid_dims(&self) -> Vec<u64> {
        let s = self.subgrid_side();
        vec![s * self.producers as u64, s, s]
    }

    /// Actual global grid point count.
    pub fn total_grid_points(&self) -> u64 {
        self.grid_dims().iter().product()
    }

    /// Total particles.
    pub fn total_particles(&self) -> u64 {
        self.particles_per_prod * self.producers as u64
    }

    /// Total exchanged payload in bytes (grid u64 + particles 3×f32).
    pub fn total_bytes(&self) -> u64 {
        self.total_grid_points() * 8 + self.total_particles() * 12
    }

    /// Producer `p`'s grid slab (x-decomposed).
    pub fn producer_grid_box(&self, p: usize) -> BBox {
        let d = self.grid_dims();
        let s = self.subgrid_side();
        BBox::new(vec![s * p as u64, 0, 0], vec![s * (p as u64 + 1), d[1], d[2]])
    }

    /// Consumer `c`'s grid slab (y-decomposed — cross-cutting the
    /// producers, Fig. 3 style).
    pub fn consumer_grid_box(&self, c: usize) -> BBox {
        let d = self.grid_dims();
        let m = self.consumers as u64;
        let y0 = d[1] * c as u64 / m;
        let y1 = d[1] * (c as u64 + 1) / m;
        BBox::new(vec![0, y0, 0], vec![d[0], y1, d[2]])
    }

    pub fn producer_grid_sel(&self, p: usize) -> Selection {
        self.producer_grid_box(p).to_selection()
    }

    pub fn consumer_grid_sel(&self, c: usize) -> Selection {
        self.consumer_grid_box(c).to_selection()
    }

    /// Grid values for a box: each value encodes its global linear index.
    pub fn grid_values(&self, bb: &BBox) -> Vec<u64> {
        let d = self.grid_dims();
        let mut out = Vec::with_capacity(bb.npoints() as usize);
        for x in bb.lo[0]..bb.hi[0] {
            for y in bb.lo[1]..bb.hi[1] {
                for z in bb.lo[2]..bb.hi[2] {
                    out.push(x * d[1] * d[2] + y * d[2] + z);
                }
            }
        }
        out
    }

    /// Producer `p`'s particle index range.
    pub fn producer_part_range(&self, p: usize) -> (u64, u64) {
        (self.particles_per_prod * p as u64, self.particles_per_prod * (p as u64 + 1))
    }

    /// Consumer `c`'s particle index range (near-equal contiguous split).
    pub fn consumer_part_range(&self, c: usize) -> (u64, u64) {
        let total = self.total_particles();
        let m = self.consumers as u64;
        (total * c as u64 / m, total * (c as u64 + 1) / m)
    }

    /// Particle payload for an index range: particle `i` is
    /// `(i, i + 0.5, -i)` as `f32`s (position-encoding validation data).
    pub fn particle_bytes(&self, range: (u64, u64)) -> Vec<u8> {
        let mut out = Vec::with_capacity(((range.1 - range.0) * 12) as usize);
        for i in range.0..range.1 {
            out.extend_from_slice(&(i as f32).to_le_bytes());
            out.extend_from_slice(&(i as f32 + 0.5).to_le_bytes());
            out.extend_from_slice(&(-(i as f32)).to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_split_ratios() {
        let w = Workload::paper_split(16, 1000, 1000);
        assert_eq!(w.producers, 12);
        assert_eq!(w.consumers, 4);
    }

    #[test]
    fn producer_boxes_tile_grid() {
        let w = Workload::paper_split(8, 1000, 500);
        let total: u64 = (0..w.producers).map(|p| w.producer_grid_box(p).npoints()).sum();
        assert_eq!(total, w.total_grid_points());
        // Per-producer count is s³ ≤ requested.
        assert!(w.producer_grid_box(0).npoints() <= 1000);
    }

    #[test]
    fn consumer_boxes_tile_grid() {
        let w = Workload::paper_split(8, 1000, 500);
        let total: u64 = (0..w.consumers).map(|c| w.consumer_grid_box(c).npoints()).sum();
        assert_eq!(total, w.total_grid_points());
    }

    #[test]
    fn particle_ranges_partition() {
        let w = Workload::paper_split(8, 1000, 777);
        let last = (0..w.consumers).fold(0u64, |acc, c| {
            let (s, e) = w.consumer_part_range(c);
            assert_eq!(s, acc);
            e
        });
        assert_eq!(last, w.total_particles());
    }

    #[test]
    fn grid_values_encode_position() {
        let w = Workload { producers: 2, consumers: 1, grid_per_prod: 8, particles_per_prod: 4 };
        let d = w.grid_dims();
        assert_eq!(d, vec![4, 2, 2]);
        let bb = w.producer_grid_box(1);
        let vals = w.grid_values(&bb);
        // First value of slab 1 is global index of (2,0,0) = 8.
        assert_eq!(vals[0], 8);
        assert_eq!(vals.len() as u64, bb.npoints());
    }

    #[test]
    fn particle_bytes_encode_index() {
        let w = Workload { producers: 1, consumers: 1, grid_per_prod: 8, particles_per_prod: 4 };
        let b = w.particle_bytes((2, 4));
        assert_eq!(b.len(), 24);
        let x = f32::from_le_bytes(b[0..4].try_into().unwrap());
        assert_eq!(x, 2.0);
        let z = f32::from_le_bytes(b[20..24].try_into().unwrap());
        assert_eq!(z, -3.0);
    }
}
