//! The Nyx–Reeber science use case (Table II).
//!
//! Three scenarios, as in §IV-C:
//!
//! * **Baseline HDF5** — the simulation writes each snapshot to a single
//!   shared file; after it finishes, the analysis reads the file back.
//! * **Plotfiles** — the native AMReX-style format, one binary file per
//!   group of ranks. Read time is deliberately excluded from the speedup,
//!   as in the paper ("code for reading plotfiles was not optimized").
//! * **LowFive** — simulation and analysis coupled in situ; zero changes
//!   to either code: the orchestration installs the distributed VOL in
//!   the thread registry and both sides keep calling the plain H5 API.
//!   Matching the paper's finding that the AMReX writer *repacks* data,
//!   the producer writes through a repacked (transient) buffer, which
//!   forces deep copies in the transport.
//!
//! The analysis is real work: each consumer reads its slab, the slabs are
//! gathered, and the Reeber-substitute merge-tree sweep segments the
//! halos (untimed, as the paper times I/O only).

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use lowfive::DistVolBuilder;
use minih5::vol::set_thread_vol;
use minih5::{Vol, H5};
use nyxsim::plotfile;
use nyxsim::sim::{read_snapshot_slab, write_snapshot, NyxSim, SimConfig, WriteOptions};
use nyxsim::{find_halos_distributed, Halo};
use simmpi::{TaskComm, TaskSpec, TaskWorld};

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Grid cells per side.
    pub grid: u64,
    pub lowfive_write: f64,
    pub lowfive_read: f64,
    pub hdf5_write: f64,
    pub hdf5_read: f64,
    pub plotfiles_write: f64,
    /// `(hdf5 write + read) / (lowfive write + read)`.
    pub speedup_vs_hdf5: f64,
    /// `plotfiles write / (lowfive write + read)` — a lower bound, as the
    /// plotfile read time is excluded.
    pub speedup_vs_plotfiles: f64,
    /// Halos found in the final snapshot (sanity that analysis ran).
    pub halos: usize,
}

/// Parameters of one Table II case.
#[derive(Debug, Clone)]
pub struct Table2Case {
    pub grid: u64,
    pub producers: usize,
    pub consumers: usize,
    pub snapshots: usize,
    pub particles_per_rank: usize,
}

impl Table2Case {
    pub fn new(grid: u64, producers: usize, consumers: usize) -> Self {
        // Particle count scales with the volume so density stays O(1).
        let per_rank = ((grid.pow(3) as usize) / producers).max(1000);
        Table2Case { grid, producers, consumers, snapshots: 2, particles_per_rank: per_rank }
    }

    fn sim_config(&self) -> SimConfig {
        SimConfig {
            grid: self.grid,
            nranks: self.producers,
            particles_per_rank: self.particles_per_rank,
            centers: 8,
            seed: 2023,
        }
    }
}

fn world_ranks(tc: &TaskComm, task_id: usize) -> Vec<usize> {
    (0..tc.task_size(task_id)).map(|r| tc.world_rank_of(task_id, r)).collect()
}

/// Consumer-side analysis: the Reeber pattern — local merge-tree sweeps
/// per slab, boundary-plane exchange, statistics reduced on analysis
/// rank 0 (see `nyxsim::halo_dist`). Returns the halos on rank 0.
fn analyze(tc: &TaskComm, grid: u64, slab: (u64, u64), data: &[f64]) -> Option<Vec<Halo>> {
    let local_sum: f64 = data.iter().sum();
    let total = tc.local.allreduce_one::<f64, _>(local_sum, |a, b| a + b);
    let mean = total / (grid * grid * grid) as f64;
    find_halos_distributed(&tc.local, [grid, grid, grid], slab, data, (8.0 * mean).max(1.0), 2)
}

/// Per-rank outcome: (write seconds, read seconds, halos found).
type RankOutcome = (f64, f64, usize);

fn reduce_times(tc: &TaskComm, write: f64, read: f64) -> (f64, f64) {
    let w = tc.world.allreduce_one::<f64, _>(write, f64::max);
    let r = tc.world.allreduce_one::<f64, _>(read, f64::max);
    (w, r)
}

fn consumer_slab(grid: u64, consumers: usize, rank: usize) -> (u64, u64) {
    (grid * rank as u64 / consumers as u64, grid * (rank as u64 + 1) / consumers as u64)
}

/// LowFive in situ scenario.
pub fn scenario_lowfive(case: &Table2Case) -> (f64, f64, usize) {
    let specs = [TaskSpec::new("nyx", case.producers), TaskSpec::new("reeber", case.consumers)];
    let case = case.clone();
    let out: Vec<RankOutcome> = TaskWorld::run(&specs, move |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("plt*", consumers)
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("plt*", producers)
                .build()
        };
        // The zero-change deployment: install the plugin, call plain code.
        let _guard = set_thread_vol(vol);
        let h5 = H5::open_default();
        let (mut tw, mut tr, mut halos) = (0.0f64, 0.0f64, 0usize);
        if tc.task_id == 0 {
            let mut sim = NyxSim::new(case.sim_config(), tc.local.rank());
            for s in 0..case.snapshots {
                let rho = sim.deposit();
                tc.local.barrier();
                let t0 = Instant::now();
                write_snapshot(
                    &h5,
                    &format!("plt{s:05}"),
                    &sim,
                    &rho,
                    WriteOptions { repack: true, zero_copy: false },
                )
                .expect("snapshot write");
                tw += t0.elapsed().as_secs_f64();
                sim.step();
            }
        } else {
            let (lo, hi) = consumer_slab(case.grid, case.consumers, tc.local.rank());
            for s in 0..case.snapshots {
                let t0 = Instant::now();
                let (_step, slab) =
                    read_snapshot_slab(&h5, &format!("plt{s:05}"), lo, hi).expect("snapshot read");
                tr += t0.elapsed().as_secs_f64();
                if let Some(h) = analyze(&tc, case.grid, (lo, hi), &slab) {
                    halos = h.len();
                }
            }
        }
        let (w, r) = reduce_times(&tc, tw, tr);
        (w, r, halos)
    });
    let halos = out.iter().map(|o| o.2).max().unwrap_or(0);
    (out[0].0, out[0].1, halos)
}

/// Baseline HDF5 scenario: write to a shared file, read after.
pub fn scenario_hdf5(case: &Table2Case, dir: &Path) -> (f64, f64, usize) {
    let specs = [TaskSpec::new("nyx", case.producers), TaskSpec::new("reeber", case.consumers)];
    let case = case.clone();
    let dir = dir.to_path_buf();
    let out: Vec<RankOutcome> = TaskWorld::run(&specs, move |tc| {
        let local = tc.local.clone();
        let vol: Arc<dyn Vol> =
            Arc::new(minih5::native::NativeVol::parallel(local.rank(), move || local.barrier()));
        let h5 = H5::with_vol(vol);
        let (mut tw, mut tr, mut halos) = (0.0f64, 0.0f64, 0usize);
        if tc.task_id == 0 {
            let mut sim = NyxSim::new(case.sim_config(), tc.local.rank());
            for s in 0..case.snapshots {
                let rho = sim.deposit();
                let path = dir.join(format!("h5_{s:05}.nh5"));
                tc.local.barrier();
                let t0 = Instant::now();
                write_snapshot(
                    &h5,
                    path.to_str().expect("utf-8"),
                    &sim,
                    &rho,
                    WriteOptions { repack: true, zero_copy: false },
                )
                .expect("snapshot write");
                tw += t0.elapsed().as_secs_f64();
                sim.step();
                tc.world.barrier(); // release readers of snapshot s
                tc.world.barrier(); // readers finished snapshot s
            }
        } else {
            let plain = H5::native();
            let (lo, hi) = consumer_slab(case.grid, case.consumers, tc.local.rank());
            for s in 0..case.snapshots {
                tc.world.barrier(); // wait for writers
                let path = dir.join(format!("h5_{s:05}.nh5"));
                let t0 = Instant::now();
                let (_step, slab) =
                    read_snapshot_slab(&plain, path.to_str().expect("utf-8"), lo, hi)
                        .expect("snapshot read");
                tr += t0.elapsed().as_secs_f64();
                if let Some(h) = analyze(&tc, case.grid, (lo, hi), &slab) {
                    halos = h.len();
                }
                tc.world.barrier();
            }
        }
        let (w, r) = reduce_times(&tc, tw, tr);
        (w, r, halos)
    });
    let halos = out.iter().map(|o| o.2).max().unwrap_or(0);
    (out[0].0, out[0].1, halos)
}

/// Plotfiles scenario: write only (read excluded per the paper); the
/// final plotfile is read back serially afterwards to validate.
pub fn scenario_plotfiles(case: &Table2Case, dir: &Path) -> f64 {
    let specs = [TaskSpec::new("nyx", case.producers)];
    let case2 = case.clone();
    let dirb = dir.to_path_buf();
    let out: Vec<f64> = TaskWorld::run(&specs, move |tc| {
        let mut sim = NyxSim::new(case2.sim_config(), tc.local.rank());
        let slabs: plotfile::SlabTable =
            (0..case2.producers).map(|r| case2.sim_config().slab(r)).collect();
        let group_size = (case2.producers / 4).max(1);
        let mut tw = 0.0f64;
        for s in 0..case2.snapshots {
            let rho = sim.deposit();
            let pdir = dirb.join(format!("plt{s:05}"));
            tc.local.barrier();
            let t0 = Instant::now();
            let cb = tc.local.clone();
            plotfile::write_plotfile(
                &pdir,
                [case2.grid, case2.grid, case2.grid],
                &slabs,
                tc.local.rank(),
                group_size,
                &rho,
                move || cb.barrier(),
            )
            .expect("plotfile write");
            tw += t0.elapsed().as_secs_f64();
            sim.step();
        }
        tc.world.allreduce_one::<f64, _>(tw, f64::max)
    });
    // Untimed validation read of the last snapshot.
    let last = dir.join(format!("plt{:05}", case.snapshots - 1));
    let (dims, _, fields) = plotfile::read_plotfile(&last).expect("plotfile read");
    assert_eq!(dims, [case.grid, case.grid, case.grid]);
    assert_eq!(fields.len(), case.producers);
    out[0]
}

/// Run all three scenarios and assemble the Table II row.
pub fn run_case(case: &Table2Case, dir: &Path) -> Table2Row {
    std::fs::create_dir_all(dir).expect("bench dir");
    let (lf_w, lf_r, halos) = scenario_lowfive(case);
    let (h5_w, h5_r, _h) = scenario_hdf5(case, dir);
    let plot_w = scenario_plotfiles(case, dir);
    let lf_total = lf_w + lf_r;
    Table2Row {
        grid: case.grid,
        lowfive_write: lf_w,
        lowfive_read: lf_r,
        hdf5_write: h5_w,
        hdf5_read: h5_r,
        plotfiles_write: plot_w,
        speedup_vs_hdf5: (h5_w + h5_r) / lf_total,
        speedup_vs_plotfiles: plot_w / lf_total,
        halos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("bench-table2-test").join(name);
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn tiny_case_all_scenarios() {
        let mut case = Table2Case::new(16, 4, 2);
        case.particles_per_rank = 2000;
        let row = run_case(&case, &tmpdir("tiny"));
        assert!(row.lowfive_write > 0.0);
        assert!(row.hdf5_write > 0.0);
        assert!(row.plotfiles_write > 0.0);
        assert!(row.speedup_vs_hdf5.is_finite());
        // The analysis found structure.
        assert!(row.halos > 0, "no halos found");
    }

    #[test]
    fn lowfive_and_hdf5_agree_on_halos() {
        let mut case = Table2Case::new(16, 2, 2);
        case.particles_per_rank = 4000;
        let dir = tmpdir("agree");
        let (_, _, halos_lf) = scenario_lowfive(&case);
        let (_, _, halos_h5) = scenario_hdf5(&case, &dir);
        assert_eq!(halos_lf, halos_h5, "transports changed the analysis result");
        assert!(halos_lf > 0);
    }
}
