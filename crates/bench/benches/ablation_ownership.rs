//! Ablation: deep vs shallow (zero-copy) dataset ownership in the
//! metadata VOL — the per-dataset configurable of §III-A.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use lowfive::{LowFiveProps, MetadataVol};
use minih5::{Dataspace, Datatype, Ownership, Selection, Vol};

fn write_once(vol: &MetadataVol, n: u64, data: &Bytes, ownership: Ownership) {
    let f = vol.file_create("o.h5").unwrap();
    let d = vol.dataset_create(f, "d", &Datatype::UInt8, &Dataspace::simple(&[n])).unwrap();
    vol.dataset_write(d, &Selection::all(), data.clone(), ownership).unwrap();
    vol.file_close(f).unwrap();
}

fn bench(c: &mut Criterion) {
    const N: u64 = 8 << 20; // 8 MiB per write
    let data = Bytes::from(vec![0xABu8; N as usize]);
    let mut g = c.benchmark_group("ablation_ownership");
    g.sample_size(20);
    g.bench_function("deep_copy", |b| {
        b.iter(|| {
            let vol = MetadataVol::over_native(LowFiveProps::new());
            write_once(&vol, N, &data, Ownership::Deep);
        })
    });
    g.bench_function("shallow_zero_copy", |b| {
        b.iter(|| {
            let vol = MetadataVol::over_native(LowFiveProps::new());
            write_once(&vol, N, &data, Ownership::Shallow);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
