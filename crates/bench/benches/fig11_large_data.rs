//! Criterion micro-version of Fig. 11: the three fastest transports with
//! 10× larger per-producer data.

use bench::runners::{run_dataspaces, run_lowfive_memory, run_pure_mpi};
use bench::workload::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let w = Workload::paper_split(8, 80_000, 80_000);
    let mut g = c.benchmark_group("fig11_large_data");
    g.sample_size(10);
    g.bench_function("lowfive_memory", |b| b.iter(|| run_lowfive_memory(&w)));
    g.bench_function("dataspaces", |b| b.iter(|| run_dataspaces(&w, 1)));
    g.bench_function("pure_mpi", |b| b.iter(|| run_pure_mpi(&w)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
