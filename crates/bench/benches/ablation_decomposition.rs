//! Ablation: cost of the common decomposition machinery — factoring n
//! into d balanced factors and answering box-intersection queries — as n
//! grows to the paper's scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diyblk::{factor_count, RegularDecomposer};
use minih5::BBox;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_decomposition");
    for n in [64usize, 256, 1024, 4096, 12288] {
        g.bench_with_input(BenchmarkId::new("factor_count", n), &n, |b, &n| {
            b.iter(|| factor_count(n, 3))
        });
        g.bench_with_input(BenchmarkId::new("blocks_intersecting", n), &n, |b, &n| {
            let d = RegularDecomposer::new(&[1024, 1024, 1024], n);
            let q = BBox::new(vec![100, 100, 100], vec![612, 612, 612]);
            b.iter(|| d.blocks_intersecting(&q))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
