//! Criterion micro-version of Fig. 6: LowFive file mode vs pure HDF5 —
//! the interception overhead of the VOL layer on the file path.

use bench::runners::{run_lowfive_file, run_pure_hdf5};
use bench::workload::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let w = Workload::paper_split(8, 4_096, 4_096);
    let d1 = std::env::temp_dir().join("bench-fig6-lf");
    let d2 = std::env::temp_dir().join("bench-fig6-h5");
    std::fs::create_dir_all(&d1).unwrap();
    std::fs::create_dir_all(&d2).unwrap();
    let mut g = c.benchmark_group("fig6_vol_overhead");
    g.sample_size(10);
    g.bench_function("lowfive_file_mode", |b| b.iter(|| run_lowfive_file(&w, &d1)));
    g.bench_function("pure_hdf5", |b| b.iter(|| run_pure_hdf5(&w, &d2)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
