//! Criterion micro-version of Fig. 5: LowFive file mode vs memory mode at
//! a fixed small scale (the `figures` binary runs the full sweep).
//!
//! After the timed samples, one traced pass of each mode dumps per-phase
//! metrics JSON into `bench-results/` next to the figure CSVs.

use bench::runners::{
    run_lowfive_file, run_lowfive_file_traced, run_lowfive_memory, run_lowfive_memory_traced,
};
use bench::workload::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let w = Workload::paper_split(8, 4_096, 4_096);
    let dir = std::env::temp_dir().join("bench-fig5");
    std::fs::create_dir_all(&dir).unwrap();
    let mut g = c.benchmark_group("fig5_transport_mode");
    g.sample_size(10);
    g.bench_function("lowfive_file_mode", |b| b.iter(|| run_lowfive_file(&w, &dir)));
    g.bench_function("lowfive_memory_mode", |b| b.iter(|| run_lowfive_memory(&w)));
    g.finish();

    // Untimed traced pass: where did the benchmarked seconds go?
    let reg = obsv::Registry::new();
    run_lowfive_file_traced(&w, &dir, &reg);
    run_lowfive_memory_traced(&w, &reg);
    let out = std::path::PathBuf::from("bench-results");
    std::fs::create_dir_all(&out).unwrap();
    let path = out.join("fig5_bench.metrics.json");
    std::fs::write(&path, reg.report().metrics_json()).expect("write metrics");
    eprintln!("per-phase metrics -> {}", path.display());
}

criterion_group!(benches, bench);
criterion_main!(benches);
