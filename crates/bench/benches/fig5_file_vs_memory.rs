//! Criterion micro-version of Fig. 5: LowFive file mode vs memory mode at
//! a fixed small scale (the `figures` binary runs the full sweep).

use bench::runners::{run_lowfive_file, run_lowfive_memory};
use bench::workload::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let w = Workload::paper_split(8, 4_096, 4_096);
    let dir = std::env::temp_dir().join("bench-fig5");
    std::fs::create_dir_all(&dir).unwrap();
    let mut g = c.benchmark_group("fig5_transport_mode");
    g.sample_size(10);
    g.bench_function("lowfive_file_mode", |b| b.iter(|| run_lowfive_file(&w, &dir)));
    g.bench_function("lowfive_memory_mode", |b| b.iter(|| run_lowfive_memory(&w)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
