//! Criterion micro-version of Fig. 5: LowFive file mode vs memory mode at
//! a fixed small scale (the `figures` binary runs the full sweep).
//!
//! After the timed samples, one traced pass of each mode dumps per-phase
//! metrics JSON into `bench-results/` next to the figure CSVs.

use bench::runners::{
    run_lowfive_fetch, run_lowfive_file, run_lowfive_file_traced, run_lowfive_memory,
    run_lowfive_memory_traced,
};
use bench::workload::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use simmpi::CostModel;

fn bench(c: &mut Criterion) {
    let w = Workload::paper_split(8, 4_096, 4_096);
    let dir = std::env::temp_dir().join("bench-fig5");
    std::fs::create_dir_all(&dir).unwrap();
    let mut g = c.benchmark_group("fig5_transport_mode");
    g.sample_size(10);
    g.bench_function("lowfive_file_mode", |b| b.iter(|| run_lowfive_file(&w, &dir)));
    g.bench_function("lowfive_memory_mode", |b| b.iter(|| run_lowfive_memory(&w)));
    g.finish();

    // Fig. 5 pipelining variant: the consumer fetch path with batching and
    // overlap on vs. off, under the same interconnect cost model, so the
    // serial round-trips pay their latency while the pipelined fan-out
    // overlaps it.
    let cost = CostModel::interconnect();
    let mut g = c.benchmark_group("fig5_fetch_pipeline");
    g.sample_size(10);
    g.bench_function("fetch_serial", |b| b.iter(|| run_lowfive_fetch(&w, false, Some(cost))));
    g.bench_function("fetch_pipelined", |b| b.iter(|| run_lowfive_fetch(&w, true, Some(cost))));
    g.finish();
    let serial = run_lowfive_fetch(&w, false, Some(cost));
    let pipelined = run_lowfive_fetch(&w, true, Some(cost));
    eprintln!(
        "fetch pipeline: serial {:.4}s / {} msgs -> pipelined {:.4}s / {} msgs ({:.2}x)",
        serial.seconds,
        serial.messages,
        pipelined.seconds,
        pipelined.messages,
        serial.seconds / pipelined.seconds
    );

    // Untimed traced pass: where did the benchmarked seconds go?
    let reg = obsv::Registry::new();
    run_lowfive_file_traced(&w, &dir, &reg);
    run_lowfive_memory_traced(&w, &reg);
    let out = std::path::PathBuf::from("bench-results");
    std::fs::create_dir_all(&out).unwrap();
    let path = out.join("fig5_bench.metrics.json");
    std::fs::write(&path, reg.report().metrics_json()).expect("write metrics");
    eprintln!("per-phase metrics -> {}", path.display());
}

criterion_group!(benches, bench);
criterion_main!(benches);
