//! Ablation: contiguous-run serialization vs per-point serialization —
//! the design choice the paper credits for beating hand-written MPI
//! (§IV-B-c). Packs the same 2-d slab selection both ways.

use criterion::{criterion_group, criterion_main, Criterion};
use minih5::selection::pack;
use minih5::{Dataspace, Selection};

fn per_point_pack(sel: &Selection, space: &Dataspace, es: usize, src: &[u8]) -> Vec<u8> {
    // One element at a time, recomputing the offset per element.
    let mut out = Vec::with_capacity((sel.npoints(space) as usize) * es);
    for run in sel.runs(space) {
        for i in 0..run.len {
            let off = ((run.offset + i) as usize) * es;
            out.extend_from_slice(&src[off..off + es]);
        }
    }
    out
}

fn bench(c: &mut Criterion) {
    let space = Dataspace::simple(&[256, 256, 64]);
    let src = vec![7u8; (space.npoints() as usize) * 8];
    // A y-slab: many medium-length runs — the shape redistribution sees.
    let sel = Selection::block(&[0, 64, 0], &[256, 128, 64]);
    let mut g = c.benchmark_group("ablation_serialization");
    g.sample_size(20);
    g.bench_function("contiguous_runs", |b| b.iter(|| pack(&sel, &space, 8, &src)));
    g.bench_function("point_by_point", |b| b.iter(|| per_point_pack(&sel, &space, 8, &src)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
