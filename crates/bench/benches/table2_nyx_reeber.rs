//! Criterion micro-version of Table II: the three I/O paths of the
//! Nyx–Reeber workflow at a small grid.

use bench::table2::{scenario_hdf5, scenario_lowfive, scenario_plotfiles, Table2Case};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut case = Table2Case::new(16, 4, 2);
    case.particles_per_rank = 2_000;
    let dir = std::env::temp_dir().join("bench-table2");
    std::fs::create_dir_all(&dir).unwrap();
    let mut g = c.benchmark_group("table2_nyx_reeber");
    g.sample_size(10);
    g.bench_function("lowfive_in_situ", |b| b.iter(|| scenario_lowfive(&case)));
    g.bench_function("baseline_hdf5", |b| b.iter(|| scenario_hdf5(&case, &dir)));
    g.bench_function("plotfiles", |b| b.iter(|| scenario_plotfiles(&case, &dir)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
