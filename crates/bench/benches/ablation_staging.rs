//! Ablation: DataSpaces `put_local` (index-only staging, data pulled from
//! producers) vs `put` (full copies staged on the server) — the design
//! choice the paper discusses in §IV-B-g ("we used dspaces_put_local …
//! rather than a staging a full data copy").

use baselines::boxes::BoxCoords;
use baselines::dataspaces::{run_server, DsClient, DsConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use minih5::BBox;
use simmpi::{TaskComm, TaskSpec, TaskWorld};

const N: u64 = 64;

fn grid_bytes(bb: &BBox) -> Vec<u8> {
    BoxCoords::new(bb).flat_map(|c| (c[0] * N + c[1]).to_le_bytes()).collect()
}

fn run(staged: bool) {
    let specs = [TaskSpec::new("prod", 2), TaskSpec::new("staging", 1), TaskSpec::new("cons", 2)];
    TaskWorld::run(&specs, move |tc: TaskComm| {
        let cfg = DsConfig {
            producers: (0..2).map(|r| tc.world_rank_of(0, r)).collect(),
            servers: vec![tc.world_rank_of(1, 0)],
            consumers: (0..2).map(|r| tc.world_rank_of(2, r)).collect(),
        };
        match tc.task_id {
            0 => {
                let client = DsClient::new(tc.world.clone(), cfg);
                let r = tc.local.rank() as u64;
                let bb = BBox::new(vec![r * N / 2, 0], vec![(r + 1) * N / 2, N]);
                let data = grid_bytes(&bb);
                if staged {
                    client.put_staged("g", 0, bb, data.into()).unwrap();
                    // No serving: producer is free immediately.
                } else {
                    client.put_local("g", 0, bb, data.into()).unwrap();
                    client.serve_local();
                }
            }
            1 => run_server(&tc.world, &cfg),
            _ => {
                let client = DsClient::new(tc.world.clone(), cfg);
                let r = tc.local.rank() as u64;
                let qbox = BBox::new(vec![0, r * N / 2], vec![N, (r + 1) * N / 2]);
                let _ = client.get("g", 0, &qbox, 8).unwrap();
                client.done();
            }
        }
    });
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_staging");
    g.sample_size(10);
    g.bench_function("put_local_index_only", |b| b.iter(|| run(false)));
    g.bench_function("put_staged_full_copy", |b| b.iter(|| run(true)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
