//! Ablation: synchronous serve (paper baseline) vs asynchronous overlap
//! serve (the §V-C future-work feature) on a multi-snapshot workload with
//! a compute phase between snapshots.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use lowfive::DistVolBuilder;
use minih5::{Dataspace, Datatype, Selection, Vol, H5};
use simmpi::{TaskSpec, TaskWorld};

const STEPS: usize = 3;
const N: u64 = 1 << 12;

fn run(overlap: bool) {
    run_observed(overlap, None)
}

fn run_observed(overlap: bool, observe: Option<&obsv::Registry>) {
    let specs = [TaskSpec::new("p", 2), TaskSpec::new("c", 1)];
    TaskWorld::run_observed(&specs, None, observe, move |tc| {
        let producers: Vec<usize> = (0..2).collect();
        let consumers = vec![2];
        let vol = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("ov*", consumers.clone())
                .async_serve(overlap)
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("ov*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
        if tc.task_id == 0 {
            for s in 0..STEPS {
                let f = h5.create_file(&format!("ov{s}")).unwrap();
                let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[N])).unwrap();
                let half = N / 2;
                let lo = tc.local.rank() as u64 * half;
                d.write_selection(
                    &Selection::block(&[lo], &[half]),
                    &(lo..lo + half).collect::<Vec<u64>>(),
                )
                .unwrap();
                f.close().unwrap();
                // Compute phase between snapshots.
                std::thread::sleep(Duration::from_millis(2));
            }
            vol.drain();
        } else {
            for s in 0..STEPS {
                let f = h5.open_file(&format!("ov{s}")).unwrap();
                let d = f.open_dataset("x").unwrap();
                // A consumer that takes its time.
                std::thread::sleep(Duration::from_millis(2));
                let _ = d.read_all::<u64>().unwrap();
                f.close().unwrap();
            }
        }
    });
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_overlap");
    g.sample_size(10);
    g.bench_function("synchronous_serve", |b| b.iter(|| run(false)));
    g.bench_function("async_overlap_serve", |b| b.iter(|| run(true)));
    g.finish();

    // Untimed traced pass of the overlap variant: the serve thread shows
    // up as an auxiliary lane on each producer rank, and the metrics JSON
    // lands next to the criterion output.
    let reg = obsv::Registry::new();
    run_observed(true, Some(&reg));
    let out = std::path::PathBuf::from("bench-results");
    std::fs::create_dir_all(&out).unwrap();
    let path = out.join("ablation_overlap.metrics.json");
    std::fs::write(&path, reg.report().metrics_json()).expect("write metrics");
    eprintln!("per-phase metrics -> {}", path.display());
}

criterion_group!(benches, bench);
criterion_main!(benches);
