//! Criterion micro-version of Fig. 8: LowFive memory mode vs the
//! DataSpaces staging service (with 1 extra staging rank).

use bench::runners::{run_dataspaces, run_lowfive_memory};
use bench::workload::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let w = Workload::paper_split(8, 8_000, 8_000);
    let mut g = c.benchmark_group("fig8_vs_dataspaces");
    g.sample_size(10);
    g.bench_function("lowfive_memory", |b| b.iter(|| run_lowfive_memory(&w)));
    g.bench_function("dataspaces", |b| b.iter(|| run_dataspaces(&w, 1)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
