//! Criterion micro-version of Fig. 9: LowFive memory mode vs Bredala
//! (grid under the bounding-box policy, particles contiguous).

use bench::runners::{run_bredala, run_lowfive_memory};
use bench::workload::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let w = Workload::paper_split(8, 8_000, 8_000);
    let mut g = c.benchmark_group("fig9_vs_bredala");
    g.sample_size(10);
    g.bench_function("lowfive_memory", |b| b.iter(|| run_lowfive_memory(&w)));
    g.bench_function("bredala", |b| b.iter(|| run_bredala(&w)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
