//! Criterion micro-version of Fig. 7: LowFive memory mode vs the
//! hand-written point-by-point MPI redistribution.

use bench::runners::{run_lowfive_memory, run_pure_mpi};
use bench::workload::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let w = Workload::paper_split(8, 8_000, 8_000);
    let mut g = c.benchmark_group("fig7_vs_pure_mpi");
    g.sample_size(10);
    g.bench_function("lowfive_memory", |b| b.iter(|| run_lowfive_memory(&w)));
    g.bench_function("pure_mpi", |b| b.iter(|| run_pure_mpi(&w)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
