//! Ablation: per-rank metadata fetch vs collective fetch-and-broadcast
//! (the §V-C synchronization-reduction extension).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use lowfive::{DistVolBuilder, LowFiveProps};
use minih5::{Dataspace, Datatype, Selection, Vol, H5};
use simmpi::{TaskSpec, TaskWorld};

const CONSUMERS: usize = 8;

fn run(broadcast: bool) {
    let specs = [TaskSpec::new("p", 2), TaskSpec::new("c", CONSUMERS)];
    TaskWorld::run(&specs, move |tc| {
        let producers: Vec<usize> = (0..2).collect();
        let consumers: Vec<usize> = (2..2 + CONSUMERS).collect();
        let mut props = LowFiveProps::new();
        props.set_metadata_broadcast("*", broadcast);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let f = h5.create_file("bm.h5").unwrap();
            // Wide metadata: many datasets make the blob non-trivial.
            for i in 0..32 {
                let d = f
                    .create_dataset(&format!("d{i}"), Datatype::UInt64, Dataspace::simple(&[64]))
                    .unwrap();
                if tc.local.rank() == 0 {
                    d.write_selection(&Selection::block(&[0], &[64]), &vec![i as u64; 64]).unwrap();
                }
            }
            f.close().unwrap();
        } else {
            let f = h5.open_file("bm.h5").unwrap();
            let d = f.open_dataset("d0").unwrap();
            let _ = d.read_all::<u64>().unwrap();
            f.close().unwrap();
        }
    });
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_metadata_broadcast");
    g.sample_size(10);
    g.bench_function("per_rank_fetch", |b| b.iter(|| run(false)));
    g.bench_function("fetch_and_broadcast", |b| b.iter(|| run(true)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
