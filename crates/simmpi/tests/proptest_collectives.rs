//! Property-based tests of the collective operations: arbitrary world
//! sizes, roots, and payload shapes — and the A/B contract that the
//! log-time schedules are **byte-identical** to the linear references,
//! with and without a cost model (which flips `Auto` onto the ring
//! allgather and the segmented broadcast past its crossover) and under
//! seeded fault-plan delays.

use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;
use simmpi::{CollectiveAlgo, CostModel, FaultPlan, World};

/// A cost model whose latency/bandwidth crossover sits at 100 bytes, so
/// modest proptest payloads already exercise the ring allgather and the
/// multi-segment broadcast under `Auto`.
fn tiny_crossover() -> CostModel {
    CostModel { latency: Duration::from_nanos(1000), per_byte_ns: 10.0 }
}

/// Deterministic per-(rank, dest, seed) payload with length variety,
/// including empty and multi-segment (>100 B) blocks.
fn blob(rank: usize, salt: usize, seed: u64) -> Bytes {
    let len = ((seed as usize).wrapping_mul(2654435761) ^ (rank * 37 + salt * 101)) % 400;
    Bytes::from((0..len).map(|i| (i ^ rank ^ salt ^ seed as usize) as u8).collect::<Vec<u8>>())
}

/// One full collective workout for a rank; the returned tuple is compared
/// byte-for-byte across schedule families.
type Workout = (Option<Vec<Bytes>>, Bytes, Vec<Bytes>, Vec<Bytes>, u64, u64, Option<u64>);

fn workout(c: &simmpi::Comm, root: usize, seed: u64) -> Workout {
    let me = c.rank();
    let mine = blob(me, 0, seed);
    let gathered = c.gather_bytes(root, mine.clone());
    let scatter_parts =
        (me == root).then(|| (0..c.size()).map(|r| blob(r, 1, seed)).collect::<Vec<Bytes>>());
    let scattered = c.scatter_bytes(root, scatter_parts);
    let allgathered = c.allgather_bytes(blob(me, 2, seed));
    let a2a = c.alltoall_bytes((0..c.size()).map(|d| blob(me, 3 + d, seed)).collect());
    let bc = c.bcast_bytes(root, (me == root).then(|| blob(root, 2, seed)));
    assert_eq!(bc, blob(root, 2, seed));
    let v = (seed + me as u64 * 13) % 97;
    let red = c.allreduce_one::<u64, _>(v, |a, b| a + b);
    let ex = c.exscan_u64(v);
    let r1 = c.reduce_one::<u64, _>(root, v, std::cmp::max);
    (gathered, scattered, allgathered, a2a, red, ex, r1)
}

/// Run the workout under one (algo, cost-model, fault-seed) configuration.
fn run_config(
    n: usize,
    root: usize,
    seed: u64,
    algo: CollectiveAlgo,
    cost: bool,
    fault_seed: Option<u64>,
) -> Vec<Workout> {
    let mut b = World::builder(n).collective_algo(algo);
    if cost {
        b = b.cost_model(tiny_crossover());
    }
    if let Some(fs) = fault_seed {
        let out = b
            .fault_plan(FaultPlan::new(fs).delay(0.5, Duration::from_micros(300)).reorder(0.5))
            .run_chaos(move |c| workout(&c, root, seed));
        assert!(out.deaths.is_empty(), "benign faults must not kill ranks");
        out.results.into_iter().map(|r| r.expect("every rank finishes")).collect()
    } else {
        b.run(move |c| workout(&c, root, seed)).results
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Broadcast delivers the root's exact payload to every rank, for any
    /// size, root, and payload length.
    #[test]
    fn bcast_delivers_everywhere(
        n in 1usize..10,
        root_seed in 0usize..100,
        len in 0usize..2000,
    ) {
        let root = root_seed % n;
        World::run(n, move |c| {
            let data = (c.rank() == root)
                .then(|| Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>()));
            let got = c.bcast_bytes(root, data);
            assert_eq!(got.len(), len);
            assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
        });
    }

    /// gather → scatter is the identity permutation on per-rank payloads.
    #[test]
    fn gather_scatter_roundtrip(n in 1usize..9, root_seed in 0usize..100) {
        let root = root_seed % n;
        World::run(n, move |c| {
            let mine = Bytes::from(vec![c.rank() as u8; c.rank() + 1]);
            let gathered = c.gather_bytes(root, mine.clone());
            let parts = gathered.inspect(|g| {
                // Root validates and scatters everything back.
                for (r, b) in g.iter().enumerate() {
                    assert_eq!(b.len(), r + 1);
                    assert!(b.iter().all(|&x| x == r as u8));
                }
            });
            let back = c.scatter_bytes(root, parts);
            assert_eq!(back, mine);
        });
    }

    /// allreduce equals the fold of allgather, for random per-rank values.
    #[test]
    fn allreduce_equals_folded_allgather(n in 1usize..9, seed in 0u64..10_000) {
        World::run(n, move |c| {
            let v = seed.wrapping_mul(31).wrapping_add(c.rank() as u64 * 7919) % 1000;
            let sum = c.allreduce_one::<u64, _>(v, |a, b| a + b);
            let all = c.allgather_one::<u64>(v);
            assert_eq!(sum, all.iter().sum::<u64>());
            let max = c.allreduce_one::<u64, _>(v, std::cmp::max);
            assert_eq!(max, *all.iter().max().expect("nonempty"));
        });
    }

    /// alltoall is a matrix transpose of the per-rank part lists.
    #[test]
    fn alltoall_transposes(n in 1usize..8, seed in 0u64..10_000) {
        World::run(n, move |c| {
            let parts: Vec<Bytes> = (0..n)
                .map(|d| {
                    let tag = (seed % 251) as u8;
                    Bytes::from(vec![tag, c.rank() as u8, d as u8])
                })
                .collect();
            let got = c.alltoall_bytes(parts);
            for (src, b) in got.iter().enumerate() {
                assert_eq!(&b[..], &[(seed % 251) as u8, src as u8, c.rank() as u8]);
            }
        });
    }

    /// exscan is consistent with the allgather prefix.
    #[test]
    fn exscan_prefix_property(n in 1usize..9, seed in 0u64..10_000) {
        World::run(n, move |c| {
            let v = (seed + c.rank() as u64 * 13) % 97;
            let pre = c.exscan_u64(v);
            let all = c.allgather_one::<u64>(v);
            assert_eq!(pre, all[..c.rank()].iter().sum::<u64>());
        });
    }

    /// The A/B contract: every schedule family — linear reference, forced
    /// log-time, and cost-driven Auto (which switches to ring allgather
    /// and segmented bcast past the 100-byte crossover) — produces
    /// byte-identical results on every rank, for any geometry, root, and
    /// payload shape (empty through multi-segment).
    #[test]
    fn tree_equals_linear_byte_identical(
        n in 1usize..8,
        root_seed in 0usize..100,
        seed in 0u64..10_000,
    ) {
        let root = root_seed % n;
        let reference = run_config(n, root, seed, CollectiveAlgo::Linear, false, None);
        for (algo, cost) in [
            (CollectiveAlgo::LogTime, false),
            (CollectiveAlgo::Auto, false),
            (CollectiveAlgo::Auto, true),
            (CollectiveAlgo::Linear, true),
        ] {
            let got = run_config(n, root, seed, algo, cost, None);
            assert_eq!(got, reference, "{algo:?} cost={cost} diverged from the linear reference");
        }
    }

    /// Same identity under seeded fault-plan delays and reorders: the
    /// schedules are specified by *what* arrives, not *when*.
    #[test]
    fn tree_equals_linear_under_faults(
        n in 2usize..7,
        root_seed in 0usize..100,
        seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
    ) {
        let root = root_seed % n;
        let reference = run_config(n, root, seed, CollectiveAlgo::Linear, false, None);
        for (algo, cost) in
            [(CollectiveAlgo::Linear, false), (CollectiveAlgo::LogTime, false), (CollectiveAlgo::Auto, true)]
        {
            let got = run_config(n, root, seed, algo, cost, Some(fault_seed));
            assert_eq!(
                got, reference,
                "{algo:?} cost={cost} under fault seed {fault_seed:#x} diverged"
            );
        }
    }
}
