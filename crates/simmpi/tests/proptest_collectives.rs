//! Property-based tests of the collective operations: arbitrary world
//! sizes, roots, and payload shapes.

use bytes::Bytes;
use proptest::prelude::*;
use simmpi::World;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Broadcast delivers the root's exact payload to every rank, for any
    /// size, root, and payload length.
    #[test]
    fn bcast_delivers_everywhere(
        n in 1usize..10,
        root_seed in 0usize..100,
        len in 0usize..2000,
    ) {
        let root = root_seed % n;
        World::run(n, move |c| {
            let data = (c.rank() == root)
                .then(|| Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>()));
            let got = c.bcast_bytes(root, data);
            assert_eq!(got.len(), len);
            assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
        });
    }

    /// gather → scatter is the identity permutation on per-rank payloads.
    #[test]
    fn gather_scatter_roundtrip(n in 1usize..9, root_seed in 0usize..100) {
        let root = root_seed % n;
        World::run(n, move |c| {
            let mine = Bytes::from(vec![c.rank() as u8; c.rank() + 1]);
            let gathered = c.gather_bytes(root, mine.clone());
            let parts = gathered.inspect(|g| {
                // Root validates and scatters everything back.
                for (r, b) in g.iter().enumerate() {
                    assert_eq!(b.len(), r + 1);
                    assert!(b.iter().all(|&x| x == r as u8));
                }
            });
            let back = c.scatter_bytes(root, parts);
            assert_eq!(back, mine);
        });
    }

    /// allreduce equals the fold of allgather, for random per-rank values.
    #[test]
    fn allreduce_equals_folded_allgather(n in 1usize..9, seed in 0u64..10_000) {
        World::run(n, move |c| {
            let v = seed.wrapping_mul(31).wrapping_add(c.rank() as u64 * 7919) % 1000;
            let sum = c.allreduce_one::<u64, _>(v, |a, b| a + b);
            let all = c.allgather_one::<u64>(v);
            assert_eq!(sum, all.iter().sum::<u64>());
            let max = c.allreduce_one::<u64, _>(v, std::cmp::max);
            assert_eq!(max, *all.iter().max().expect("nonempty"));
        });
    }

    /// alltoall is a matrix transpose of the per-rank part lists.
    #[test]
    fn alltoall_transposes(n in 1usize..8, seed in 0u64..10_000) {
        World::run(n, move |c| {
            let parts: Vec<Bytes> = (0..n)
                .map(|d| {
                    let tag = (seed % 251) as u8;
                    Bytes::from(vec![tag, c.rank() as u8, d as u8])
                })
                .collect();
            let got = c.alltoall_bytes(parts);
            for (src, b) in got.iter().enumerate() {
                assert_eq!(&b[..], &[(seed % 251) as u8, src as u8, c.rank() as u8]);
            }
        });
    }

    /// exscan is consistent with the allgather prefix.
    #[test]
    fn exscan_prefix_property(n in 1usize..9, seed in 0u64..10_000) {
        World::run(n, move |c| {
            let v = (seed + c.rank() as u64 * 13) % 97;
            let pre = c.exscan_u64(v);
            let all = c.allgather_one::<u64>(v);
            assert_eq!(pre, all[..c.rank()].iter().sum::<u64>());
        });
    }
}
