//! Randomized stress tests of the message substrate: storms of tagged
//! messages between many ranks, mixed with collectives, must deliver
//! every payload exactly once with pairwise FIFO preserved.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simmpi::{CostModel, TaskSpec, TaskWorld, World, ANY_SOURCE, ANY_TAG};

/// Every rank sends a random number of messages to random peers; each
/// payload encodes (src, seq). Receivers drain exactly the announced
/// counts and verify per-source sequence order (FIFO per sender).
#[test]
fn random_message_storm_delivers_everything() {
    for seed in [1u64, 7, 42] {
        let n = 12;
        World::run(n, move |c| {
            let mut rng = StdRng::seed_from_u64(seed ^ (c.rank() as u64) << 32);
            let msgs_per_peer = 40;
            // Announce: everyone sends `msgs_per_peer` to every peer.
            for dest in 0..n {
                if dest == c.rank() {
                    continue;
                }
                for seq in 0..msgs_per_peer {
                    // Random payload sizes; first 16 bytes encode identity.
                    let extra = rng.gen_range(0..64);
                    let mut payload = Vec::with_capacity(16 + extra);
                    payload.extend_from_slice(&(c.rank() as u64).to_le_bytes());
                    payload.extend_from_slice(&(seq as u64).to_le_bytes());
                    payload.extend(std::iter::repeat_n(0xEE, extra));
                    c.send(dest, 3, payload);
                }
            }
            // Drain: (n-1) * msgs_per_peer messages, tracking per-source
            // sequence numbers.
            let mut next_seq = vec![0u64; n];
            for _ in 0..(n - 1) * msgs_per_peer {
                let env = c.recv(ANY_SOURCE, 3.into());
                let src = u64::from_le_bytes(env.payload[..8].try_into().unwrap()) as usize;
                let seq = u64::from_le_bytes(env.payload[8..16].try_into().unwrap());
                assert_eq!(env.src, src, "sender identity");
                assert_eq!(seq, next_seq[src], "FIFO violated from {src}");
                next_seq[src] += 1;
            }
            assert!(c.try_recv(ANY_SOURCE, ANY_TAG).is_none(), "leftover messages");
        });
    }
}

/// Interleave p2p traffic with collectives on split communicators —
/// context isolation must hold under load.
#[test]
fn collectives_and_p2p_interleaved() {
    World::run(9, |c| {
        let sub = c.split(c.rank() % 3, c.rank());
        for round in 0..20u64 {
            // P2P on the world comm.
            let next = (c.rank() + 1) % c.size();
            c.send_u64s(next, 5, &[round * 100 + c.rank() as u64]);
            // Collective on the sub comm.
            let sum = sub.allreduce_one::<u64, _>(round, |a, b| a + b);
            assert_eq!(sum, round * sub.size() as u64);
            // Matching receive.
            let prev = (c.rank() + c.size() - 1) % c.size();
            let (_, v) = c.recv_u64s(prev.into(), 5.into());
            assert_eq!(v[0], round * 100 + prev as u64);
            // World barrier each 5 rounds.
            if round % 5 == 0 {
                c.barrier();
            }
        }
    });
}

/// The cost model slows delivery measurably but changes no semantics.
#[test]
fn cost_model_preserves_semantics() {
    let out = World::builder(4)
        .cost_model(CostModel { latency: std::time::Duration::from_micros(200), per_byte_ns: 0.0 })
        .run(|c| {
            let t0 = std::time::Instant::now();
            if c.rank() == 0 {
                for r in 1..4 {
                    c.send_u64s(r, 1, &[r as u64]);
                }
                0.0
            } else {
                let (_, v) = c.recv_u64s(0.into(), 1.into());
                assert_eq!(v[0], c.rank() as u64);
                t0.elapsed().as_secs_f64()
            }
        });
    // Receivers paid at least the latency.
    for r in 1..4 {
        assert!(out.results[r] >= 190e-6, "rank {r} took {}", out.results[r]);
    }
}

/// Task worlds under churn: run many small task worlds back to back
/// (leak/teardown check).
#[test]
fn repeated_task_worlds() {
    for i in 0..30 {
        let specs = [TaskSpec::new("a", 1 + i % 3), TaskSpec::new("b", 1 + (i / 3) % 2)];
        let ids = TaskWorld::run(&specs, |tc| {
            tc.world.barrier();
            tc.task_id
        });
        assert_eq!(ids.len(), specs[0].procs + specs[1].procs);
    }
}

/// Wildcard receives under concurrent senders never lose or duplicate.
#[test]
fn wildcard_fan_in() {
    World::run(16, |c| {
        if c.rank() == 0 {
            let mut seen = [0u32; 16];
            for _ in 0..15 * 10 {
                let env = c.recv(ANY_SOURCE, ANY_TAG);
                seen[env.src] += 1;
                assert_eq!(env.tag as usize, env.src);
            }
            assert!(seen[1..].iter().all(|&s| s == 10));
        } else {
            for _ in 0..10 {
                c.send(0, c.rank() as u32, vec![0u8; c.rank()]);
            }
        }
    });
}
