//! Collectives and wildcard receives under seeded fault injection.
//!
//! The fault layer perturbs *when* and *in what order* messages arrive
//! (delay, same-flow reorder) but collectives and wildcard receives are
//! specified purely in terms of *what* arrives. These tests pin that
//! contract: under any delay/reorder plan, a barrier still synchronizes,
//! ragged gathers/scatters and reductions still produce exact values, and
//! an `ANY_SOURCE` drain still sees every message exactly once. A final
//! test pins the framing exemption: collective tags are never dropped, so
//! even a drop-everything plan cannot stall a collective.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use simmpi::{ChaosOutput, FaultKind, FaultPlan, World, ANY_SOURCE};

const N: usize = 4;
const ROUNDS: usize = 8;

/// Aggressive but benign: delay roughly a third of all messages and
/// front-queue half of the (user-tag) deliveries.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).delay(0.35, Duration::from_micros(500)).reorder(0.5)
}

fn assert_all_finished<R>(out: &ChaosOutput<R>) {
    assert!(out.deaths.is_empty(), "benign faults must not kill ranks: {:?}", out.deaths);
    assert!(out.results.iter().all(Option::is_some), "every rank must finish");
}

#[test]
fn barrier_synchronizes_under_delay() {
    let arrived: Vec<AtomicUsize> = (0..ROUNDS).map(|_| AtomicUsize::new(0)).collect();
    let arrived = &arrived;
    let out = World::builder(N).fault_plan(chaos_plan(0xBA44)).run_chaos(|c| {
        for (r, count) in arrived.iter().enumerate() {
            count.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // The barrier's whole contract: nobody passes it before
            // everybody has entered it, delays notwithstanding.
            assert_eq!(count.load(Ordering::SeqCst), N, "round {r}");
        }
    });
    assert_all_finished(&out);
    assert!(
        out.trace.iter().any(|e| matches!(e.kind, FaultKind::Delayed(_))),
        "plan must actually have delayed something"
    );
}

#[test]
fn ragged_gather_and_scatter_are_exact() {
    // Rank r contributes (r+1)*(round+1) bytes of a (rank, round)-derived
    // fill, so a swapped or truncated payload cannot collide with the
    // expected one. Root rotates every round.
    let fill =
        |rank: usize, round: usize| vec![(rank * 16 + round) as u8; (rank + 1) * (round + 1)];
    let out = World::builder(N).fault_plan(chaos_plan(0x6A77)).run_chaos(|c| {
        for round in 0..ROUNDS {
            let root = round % N;
            let gathered = c.gather_bytes(root, fill(c.rank(), round).into());
            if c.rank() == root {
                let parts = gathered.expect("root receives the gather");
                for (r, p) in parts.iter().enumerate() {
                    assert_eq!(p[..], fill(r, round)[..], "gather round {round} part {r}");
                }
                // Scatter each part straight back to its contributor.
                let mine = c.scatter_bytes(root, Some(parts));
                assert_eq!(mine[..], fill(root, round)[..]);
            } else {
                assert!(gathered.is_none());
                let mine = c.scatter_bytes(root, None);
                assert_eq!(mine[..], fill(c.rank(), round)[..], "scatter round {round}");
            }
        }
    });
    assert_all_finished(&out);
}

#[test]
fn reductions_and_alltoall_are_exact() {
    let cell = |src: usize, dest: usize, round: usize| {
        vec![(src * 31 + dest * 7 + round) as u8; src + dest + 1]
    };
    let out = World::builder(N).fault_plan(chaos_plan(0xA22E)).run_chaos(|c| {
        for round in 0..ROUNDS {
            let sum = c.allreduce_one(c.rank() as u64 + round as u64, |a, b| a + b);
            assert_eq!(sum as usize, N * (N - 1) / 2 + N * round, "allreduce round {round}");

            let v = [c.rank() as u64, (N - c.rank()) as u64];
            let maxed = c.allreduce_vec(&v, |a: u64, b| a.max(b));
            assert_eq!(maxed, vec![N as u64 - 1, N as u64], "allreduce_vec round {round}");

            let parts = (0..N).map(|d| cell(c.rank(), d, round).into()).collect();
            let got = c.alltoall_bytes(parts);
            for (s, p) in got.iter().enumerate() {
                assert_eq!(p[..], cell(s, c.rank(), round)[..], "alltoall round {round} src {s}");
            }
        }
    });
    assert_all_finished(&out);
}

#[test]
fn wildcard_drain_sees_every_message_exactly_once() {
    const MSGS: u64 = 32;
    const TAG: u32 = 7;
    let out =
        World::builder(N).fault_plan(chaos_plan(0x51CC)).run_chaos(|c| -> Vec<(usize, u64)> {
            if c.rank() == 0 {
                // Reorder scrambles per-flow FIFO, so arrival order proves
                // nothing — collect the multiset and sort.
                let mut seen: Vec<(usize, u64)> = (0..(N - 1) as u64 * MSGS)
                    .map(|_| {
                        let (src, v) = c.recv_u64s(ANY_SOURCE, TAG.into());
                        assert_eq!(v[1] as usize, src, "payload must agree with envelope source");
                        (src, v[0])
                    })
                    .collect();
                seen.sort_unstable();
                seen
            } else {
                for i in 0..MSGS {
                    c.send_u64s(0, TAG, &[i, c.rank() as u64]);
                }
                Vec::new()
            }
        });
    assert_all_finished(&out);
    let expect: Vec<(usize, u64)> =
        (1..N).flat_map(|src| (0..MSGS).map(move |i| (src, i))).collect();
    assert_eq!(
        out.results[0].as_ref().unwrap()[..],
        expect[..],
        "every message must arrive exactly once"
    );
    assert!(
        out.trace.iter().any(|e| e.kind == FaultKind::Reordered),
        "plan must actually have reordered something"
    );
}

/// Collective framing (barrier/bcast/gather/… tags) is exempt from drops:
/// even a drop-everything-once plan leaves a pure-collective program
/// fully correct, with not one Dropped event in the trace.
#[test]
fn collective_framing_is_exempt_from_drops() {
    let plan = FaultPlan::new(0xE4E).drop_once(1.0).delay(0.3, Duration::from_micros(300));
    let out = World::builder(N).fault_plan(plan).run_chaos(|c| {
        for round in 0..ROUNDS as u64 {
            c.barrier();
            let v = c.bcast_one(round as usize % N, Some(round * 1000 + 1));
            assert_eq!(v, round * 1000 + 1);
            let all = c.allgather_one(c.rank() as u64 + round);
            let want: Vec<u64> = (0..N as u64).map(|r| r + round).collect();
            assert_eq!(all, want, "allgather round {round}");
        }
    });
    assert_all_finished(&out);
    assert!(
        !out.trace.iter().any(|e| e.kind == FaultKind::Dropped),
        "collective tags must never be droppable: {:?}",
        out.trace
    );
}
