//! # simmpi — a thread-backed message-passing substrate
//!
//! `simmpi` is a from-scratch stand-in for MPI used by the LowFive
//! reproduction. *Ranks are OS threads* inside a single process; a
//! [`World`] owns one mailbox per rank, and [`World::run`] spawns the
//! ranks as scoped threads, handing each a [`Comm`].
//!
//! The surface mirrors the subset of MPI that LowFive, DIY, and the
//! baselines in the paper actually exercise:
//!
//! * tagged point-to-point messaging: [`Comm::send`], [`Comm::recv`],
//!   [`Comm::isend`], [`Comm::irecv`], [`Comm::probe`] / [`Comm::iprobe`],
//!   with `ANY_SOURCE` / `ANY_TAG` wildcards,
//! * collectives: barrier, broadcast, gather(v), allgather, reduce,
//!   allreduce, exclusive scan,
//! * communicator management: [`Comm::split`] with color/key (used to carve
//!   producer and consumer task communicators out of the world), plus rank
//!   translation between a sub-communicator and its world,
//! * transparent transport statistics ([`TransportStats`]) so benchmarks can
//!   report message and byte counts,
//! * an optional [`CostModel`] that charges a per-message latency and a
//!   per-byte cost on delivery, for experiments that want to emulate an
//!   interconnect slower than shared memory.
//!
//! Message payloads are [`bytes::Bytes`]: cloning a payload is a refcount
//! bump, so a producer that keeps its buffer immutable shares memory with
//! the in-flight message — this is what makes LowFive's *shallow copy*
//! (zero-copy) dataset mode meaningful inside one address space.
//!
//! ## Example
//!
//! ```
//! use simmpi::World;
//!
//! // Ring: each rank sends its rank to the next one.
//! let sums = World::run(4, |comm| {
//!     let next = (comm.rank() + 1) % comm.size();
//!     let prev = (comm.rank() + comm.size() - 1) % comm.size();
//!     comm.send_u64s(next, 7, &[comm.rank() as u64]);
//!     let got = comm.recv_u64s(prev.into(), 7.into()).1;
//!     got[0]
//! });
//! assert_eq!(sums, vec![3, 0, 1, 2]);
//! ```

// The zero-copy transport path hands refcounted buffers around by
// value; a stray `.clone()` there silently reintroduces the copy this
// crate exists to avoid, so redundant clones are a hard error.
#![deny(clippy::redundant_clone)]

mod collectives;
mod comm;
mod cost;
mod envelope;
mod fault;
mod mailbox;
mod payload;
pub mod pod;
mod stats;
mod task;
mod transport;
mod world;

pub use comm::{Comm, RecvError, RecvRequest, SendError};
pub use cost::{
    allgather_messages, alltoall_messages, ceil_log2, critical_path_recvs, gather_messages,
    CollectiveAlgo, CostModel, RatioEwma, CODEC_ASSUMED_RATIO,
};
pub use envelope::{Envelope, PartsEnvelope, SrcSel, Tag, TagSel, ANY_SOURCE, ANY_TAG};
pub use fault::{FaultEvent, FaultKind, FaultPlan, KillSpec, PeerDied, RankKilled};
pub use payload::Payload;
pub use pod::Pod;
pub use stats::TransportStats;
pub use task::{TaskComm, TaskSpec, TaskWorld};
pub use transport::{SocketConfig, SocketMode, TransportKind};
pub use world::{ChaosOutput, RankDeath, World, WorldBuilder};
