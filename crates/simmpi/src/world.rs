//! The world: mailboxes, rank threads, and shared run-wide state.

use std::sync::atomic::AtomicU32;
use std::sync::Arc;

use crate::comm::Comm;
use crate::cost::CostModel;
use crate::mailbox::Mailbox;
use crate::stats::{StatsSnapshot, TransportStats};

/// Shared state behind every [`Comm`] of one run.
pub(crate) struct WorldInner {
    pub mailboxes: Vec<Mailbox>,
    /// Next communicator context id (0 is the world communicator).
    pub next_ctx: AtomicU32,
    pub stats: TransportStats,
    pub cost: Option<CostModel>,
}

impl WorldInner {
    fn new(size: usize, cost: Option<CostModel>) -> Self {
        WorldInner {
            mailboxes: (0..size).map(|_| Mailbox::default()).collect(),
            next_ctx: AtomicU32::new(1),
            stats: TransportStats::default(),
            cost,
        }
    }
}

/// Entry point for running a group of ranks.
///
/// A `World` is not held by user code; [`World::run`] (or
/// [`WorldBuilder::run`]) spawns one scoped thread per rank, passes each a
/// [`Comm`] covering all ranks, and joins them, returning each rank's result
/// in rank order.
pub struct World;

/// Configures a world before running it (cost model, etc.).
pub struct WorldBuilder {
    size: usize,
    cost: Option<CostModel>,
}

/// Results of a completed run plus transport statistics.
pub struct RunOutput<R> {
    /// Per-rank return values, indexed by world rank.
    pub results: Vec<R>,
    /// Message/byte totals accumulated during the run.
    pub stats: StatsSnapshot,
}

impl World {
    /// Run `size` ranks, each executing `f` with its own [`Comm`].
    ///
    /// Panics in any rank propagate after all threads have been joined
    /// (a rank panic generally deadlocks peers blocked on receives from it,
    /// so tests should keep communication patterns total).
    pub fn run<R, F>(size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        Self::builder(size).run(f).results
    }

    /// Start configuring a run (e.g. to attach a [`CostModel`]).
    pub fn builder(size: usize) -> WorldBuilder {
        WorldBuilder { size, cost: None }
    }
}

impl WorldBuilder {
    /// Attach a message cost model charged on every delivery.
    pub fn cost_model(mut self, cm: CostModel) -> Self {
        self.cost = Some(cm);
        self
    }

    /// Spawn the ranks and block until they all return.
    pub fn run<R, F>(self, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        assert!(self.size > 0, "world size must be at least 1");
        let inner = Arc::new(WorldInner::new(self.size, self.cost));
        let f = &f;
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.size)
                .map(|rank| {
                    let comm = Comm::world(Arc::clone(&inner), rank, self.size);
                    let mut builder = std::thread::Builder::new();
                    // Keep stacks modest: sweeps spawn hundreds of ranks.
                    builder = builder.stack_size(2 << 20).name(format!("rank-{rank}"));
                    builder.spawn_scoped(scope, move || f(comm)).expect("spawn rank thread")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect::<Vec<R>>()
        });
        RunOutput { results, stats: inner.stats.snapshot() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.size(), 1);
            42
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn results_are_in_rank_order() {
        let out = World::run(8, |c| c.rank() * 10);
        assert_eq!(out, (0..8).map(|r| r * 10).collect::<Vec<_>>());
    }

    #[test]
    fn stats_count_messages() {
        let out = World::builder(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 0, &[1u8, 2, 3][..]);
            } else {
                c.recv(0.into(), 0.into());
            }
        });
        assert_eq!(out.stats.messages, 1);
        assert_eq!(out.stats.bytes, 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_size_world_rejected() {
        let _ = World::run(0, |_c| ());
    }
}
