//! The world: mailboxes, rank threads, and shared run-wide state.

use std::sync::atomic::{AtomicBool, AtomicU32};
use std::sync::Arc;

use crate::comm::Comm;
use crate::cost::{CollectiveAlgo, CostModel};
use crate::fault::{FaultEvent, FaultPlan, FaultState, PeerDied, RankKilled};
use crate::stats::{StatsSnapshot, TransportStats};
use crate::transport::{make_transport, SocketConfig, Transport, TransportKind};

/// Shared state behind every [`Comm`] of one run.
pub(crate) struct WorldInner {
    /// World rank count.
    pub size: usize,
    /// The delivery backend: owns the per-rank mailboxes and the machinery
    /// (if any) that carries envelopes to them.
    pub transport: Box<dyn Transport>,
    /// Next communicator context id (0 is the world communicator).
    pub next_ctx: AtomicU32,
    pub stats: TransportStats,
    pub cost: Option<CostModel>,
    /// Collective schedule family every [`Comm`] of this run uses.
    pub coll_algo: CollectiveAlgo,
    /// Active fault injector, if any.
    pub fault: Option<FaultState>,
    /// Per-world-rank death flags (only ever set by the chaos runner).
    pub dead: Vec<AtomicBool>,
}

impl WorldInner {
    fn new(
        size: usize,
        transport: Box<dyn Transport>,
        cost: Option<CostModel>,
        coll_algo: CollectiveAlgo,
        fault: Option<FaultState>,
    ) -> Self {
        WorldInner {
            size,
            transport,
            next_ctx: AtomicU32::new(1),
            stats: TransportStats::default(),
            cost,
            coll_algo,
            fault,
            dead: (0..size).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Record a rank's death and wake every blocked receiver so waits on
    /// the dead rank can abort.
    fn mark_dead(&self, world_rank: usize) {
        self.dead[world_rank].store(true, std::sync::atomic::Ordering::SeqCst);
        self.transport.wake_all();
    }
}

/// Entry point for running a group of ranks.
///
/// A `World` is not held by user code; [`World::run`] (or
/// [`WorldBuilder::run`]) spawns one scoped thread per rank, passes each a
/// [`Comm`] covering all ranks, and joins them, returning each rank's result
/// in rank order.
pub struct World;

/// Configures a world before running it (cost model, fault plan, etc.).
pub struct WorldBuilder {
    size: usize,
    cost: Option<CostModel>,
    coll_algo: CollectiveAlgo,
    fault: Option<FaultPlan>,
    observe: Option<obsv::Registry>,
    transport: TransportKind,
    socket: SocketConfig,
}

/// Results of a completed run plus transport statistics.
pub struct RunOutput<R> {
    /// Per-rank return values, indexed by world rank.
    pub results: Vec<R>,
    /// Message/byte totals accumulated during the run.
    pub stats: StatsSnapshot,
}

/// How one rank of a chaos run died.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankDeath {
    /// World rank that died.
    pub rank: usize,
    /// The death was injected by the fault plan (vs. an ordinary panic or
    /// a cascading death while receiving from a dead peer).
    pub injected: bool,
    /// Human-readable cause.
    pub message: String,
}

/// Results of a [`WorldBuilder::run_chaos`] run, which survives rank
/// deaths instead of propagating them.
pub struct ChaosOutput<R> {
    /// Per-rank return values in world-rank order; `None` for ranks that
    /// died.
    pub results: Vec<Option<R>>,
    /// Every rank death, in world-rank order.
    pub deaths: Vec<RankDeath>,
    /// Message/byte totals accumulated during the run.
    pub stats: StatsSnapshot,
    /// The injected-fault trace in deterministic `(src, seq)` order; two
    /// runs of the same workload under the same seed produce equal traces.
    pub trace: Vec<FaultEvent>,
}

impl World {
    /// Run `size` ranks, each executing `f` with its own [`Comm`].
    ///
    /// Panics in any rank propagate after all threads have been joined
    /// (a rank panic generally deadlocks peers blocked on receives from it,
    /// so tests should keep communication patterns total).
    pub fn run<R, F>(size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        Self::builder(size).run(f).results
    }

    /// Start configuring a run (e.g. to attach a [`CostModel`] or a
    /// [`FaultPlan`]).
    pub fn builder(size: usize) -> WorldBuilder {
        WorldBuilder {
            size,
            cost: None,
            coll_algo: CollectiveAlgo::default(),
            fault: None,
            observe: None,
            // `SIMMPI_TRANSPORT=socket` flips every world in the process
            // onto the wire; explicit [`WorldBuilder::transport`] wins.
            transport: TransportKind::from_env(),
            socket: SocketConfig::from_env(),
        }
    }
}

impl WorldBuilder {
    /// Attach a message cost model charged on every delivery.
    pub fn cost_model(mut self, cm: CostModel) -> Self {
        self.cost = Some(cm);
        self
    }

    /// Pin the collective schedule family (A/B knob). The default,
    /// [`CollectiveAlgo::Auto`], picks log-time schedules with
    /// cost-model-driven size switching; [`CollectiveAlgo::Linear`] pins
    /// the O(n) rank-order reference implementations for benchmarking.
    pub fn collective_algo(mut self, algo: CollectiveAlgo) -> Self {
        self.coll_algo = algo;
        self
    }

    /// Attach a seeded fault plan perturbing every send. Plans with kill
    /// directives should be run with [`WorldBuilder::run_chaos`]; under
    /// plain [`WorldBuilder::run`] a killed rank propagates its panic.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Attach an observability registry: every rank thread gets its own
    /// recorder lane, so spans/counters/histograms recorded anywhere in
    /// the stack land in `registry.report()` after the run.
    pub fn observe(mut self, registry: obsv::Registry) -> Self {
        self.observe = Some(registry);
        self
    }

    /// Pin the delivery backend, overriding the `SIMMPI_TRANSPORT`
    /// environment default. A/B tests use this to run the same workload
    /// over [`TransportKind::InProc`] and [`TransportKind::Socket`]
    /// side by side without racing on process-global environment state.
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = kind;
        self
    }

    /// Tune the socket backend (queue bound, receive window, UDS vs TCP).
    /// Only consulted when the transport is [`TransportKind::Socket`].
    pub fn socket_config(mut self, cfg: SocketConfig) -> Self {
        self.socket = cfg;
        self
    }

    fn build_inner(&mut self) -> Arc<WorldInner> {
        assert!(self.size > 0, "world size must be at least 1");
        let fault = self.fault.take().map(|p| FaultState::new(p, self.size));
        let transport = make_transport(self.transport, self.size, self.socket);
        Arc::new(WorldInner::new(self.size, transport, self.cost.take(), self.coll_algo, fault))
    }

    /// Spawn the ranks and block until they all return.
    pub fn run<R, F>(mut self, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        let inner = self.build_inner();
        let observe = self.observe.take();
        let f = &f;
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.size)
                .map(|rank| {
                    let comm = Comm::world(Arc::clone(&inner), rank, self.size);
                    let recorder = observe.as_ref().map(|reg| reg.recorder(rank));
                    let mut builder = std::thread::Builder::new();
                    // Keep stacks modest: sweeps spawn hundreds of ranks.
                    builder = builder.stack_size(2 << 20).name(format!("rank-{rank}"));
                    builder
                        .spawn_scoped(scope, move || {
                            let _obs = recorder.map(obsv::install);
                            f(comm)
                        })
                        .expect("spawn rank thread")
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect::<Vec<R>>()
        });
        inner.transport.shutdown();
        RunOutput { results, stats: inner.stats.snapshot() }
    }

    /// Spawn the ranks and survive rank deaths: a rank that panics —
    /// because the fault plan killed it, or it hit a cascading
    /// [`PeerDied`], or an ordinary panic — is recorded in
    /// [`ChaosOutput::deaths`], marked dead so peers' timed receives fail
    /// fast, and the rest of the world keeps running.
    ///
    /// The run only returns once every rank has returned or died, so the
    /// workload must be written to terminate under the injected faults
    /// (survivors use timeouts; see [`Comm::recv_timeout`]).
    pub fn run_chaos<R, F>(mut self, f: F) -> ChaosOutput<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        silence_injected_panics();
        let inner = self.build_inner();
        let observe = self.observe.take();
        let f = &f;
        let outcomes: Vec<Result<R, RankDeath>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.size)
                .map(|rank| {
                    let comm = Comm::world(Arc::clone(&inner), rank, self.size);
                    let recorder = observe.as_ref().map(|reg| reg.recorder(rank));
                    let inner = Arc::clone(&inner);
                    let mut builder = std::thread::Builder::new();
                    builder = builder.stack_size(2 << 20).name(format!("rank-{rank}"));
                    builder
                        .spawn_scoped(scope, move || {
                            let _obs = recorder.map(obsv::install);
                            let res =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm)));
                            res.map_err(|payload| {
                                inner.mark_dead(rank);
                                describe_death(rank, payload.as_ref())
                            })
                        })
                        .expect("spawn rank thread")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked outside catch_unwind"))
                .collect()
        });
        inner.transport.shutdown();
        let mut results = Vec::with_capacity(self.size);
        let mut deaths = Vec::new();
        for outcome in outcomes {
            match outcome {
                Ok(r) => results.push(Some(r)),
                Err(d) => {
                    results.push(None);
                    deaths.push(d);
                }
            }
        }
        ChaosOutput {
            results,
            deaths,
            stats: inner.stats.snapshot(),
            trace: inner.fault.as_ref().map(|fs| fs.trace()).unwrap_or_default(),
        }
    }
}

/// Keep injected deaths ([`RankKilled`]) and their cascades ([`PeerDied`])
/// off stderr: they are expected, contained by `run_chaos`, and reported
/// through [`ChaosOutput::deaths`] — a "thread panicked" backtrace for
/// each one is pure noise. Installed once, process-wide; every other
/// panic payload still goes to the previous hook.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if !p.is::<RankKilled>() && !p.is::<PeerDied>() {
                prev(info);
            }
        }));
    });
}

/// Classify a rank's panic payload into a [`RankDeath`].
fn describe_death(rank: usize, payload: &(dyn std::any::Any + Send)) -> RankDeath {
    if let Some(k) = payload.downcast_ref::<RankKilled>() {
        return RankDeath {
            rank,
            injected: true,
            message: format!("killed by fault plan at send {}", k.at_send),
        };
    }
    if let Some(p) = payload.downcast_ref::<PeerDied>() {
        return RankDeath {
            rank,
            injected: false,
            message: format!("cascading death: blocking receive from dead rank {}", p.peer),
        };
    }
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unidentified panic".to_string()
    };
    RankDeath { rank, injected: false, message }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.size(), 1);
            42
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn results_are_in_rank_order() {
        let out = World::run(8, |c| c.rank() * 10);
        assert_eq!(out, (0..8).map(|r| r * 10).collect::<Vec<_>>());
    }

    #[test]
    fn stats_count_messages() {
        let out = World::builder(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 0, &[1u8, 2, 3][..]);
            } else {
                c.recv(0.into(), 0.into());
            }
        });
        assert_eq!(out.stats.messages, 1);
        assert_eq!(out.stats.bytes, 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_size_world_rejected() {
        let _ = World::run(0, |_c| ());
    }

    #[test]
    fn chaos_without_faults_behaves_like_run() {
        let out = World::builder(4).run_chaos(|c| c.rank() * 2);
        assert_eq!(out.results, vec![Some(0), Some(2), Some(4), Some(6)]);
        assert!(out.deaths.is_empty());
        assert!(out.trace.is_empty());
    }

    #[test]
    fn chaos_kill_reports_death_and_survivors_fail_fast() {
        use crate::comm::RecvError;
        use crate::fault::{FaultKind, FaultPlan};
        use std::time::{Duration, Instant};
        let out = World::builder(3).fault_plan(FaultPlan::new(11).kill_rank(0, 2)).run_chaos(|c| {
            if c.rank() == 0 {
                c.send_u64s(1, 1, &[10]); // 1st send: delivered
                c.send_u64s(2, 1, &[20]); // 2nd send: the rank dies here
                unreachable!("killed at send 2");
            } else if c.rank() == 1 {
                // The pre-death message stays receivable.
                let v = c
                    .recv_timeout(0.into(), 1.into(), Duration::from_secs(5))
                    .expect("message sent before the death must arrive");
                u64::from_le_bytes(v.payload[..8].try_into().unwrap())
            } else {
                // The dead rank never sent to us: fail fast, not at the
                // deadline.
                let t0 = Instant::now();
                let err = c
                    .recv_timeout(0.into(), 1.into(), Duration::from_secs(30))
                    .expect_err("rank 0 died before its send to rank 2");
                assert_eq!(err, RecvError::PeerDead);
                assert!(t0.elapsed() < Duration::from_secs(10), "must not burn the timeout");
                99
            }
        });
        assert_eq!(out.results, vec![None, Some(10), Some(99)]);
        assert_eq!(out.deaths.len(), 1);
        assert_eq!(out.deaths[0].rank, 0);
        assert!(out.deaths[0].injected);
        assert_eq!(out.trace.len(), 1);
        assert_eq!((out.trace[0].src, out.trace[0].seq), (0, 2));
        assert_eq!(out.trace[0].kind, FaultKind::Killed);
    }

    #[test]
    fn blocking_recv_from_dead_rank_cascades() {
        use crate::fault::FaultPlan;
        let out = World::builder(2).fault_plan(FaultPlan::new(3).kill_rank(0, 1)).run_chaos(|c| {
            if c.rank() == 0 {
                c.send_u64s(1, 1, &[1]);
                unreachable!("killed at send 1");
            } else {
                // A plain blocking receive cannot complete: this rank
                // must die too instead of hanging the run.
                let _ = c.recv(0.into(), 1.into());
                unreachable!("peer died; receive can never complete");
            }
        });
        assert_eq!(out.results, vec![None::<u64>, None]);
        assert_eq!(out.deaths.len(), 2);
        assert!(out.deaths[0].injected);
        assert!(!out.deaths[1].injected);
        assert!(out.deaths[1].message.contains("dead rank 0"));
    }

    #[test]
    fn same_seed_same_trace() {
        use crate::fault::FaultPlan;
        let run = |seed: u64| {
            World::builder(4)
                .fault_plan(FaultPlan::new(seed).delay(0.5, std::time::Duration::from_micros(200)))
                .run_chaos(|c| {
                    let next = (c.rank() + 1) % c.size();
                    let prev = (c.rank() + c.size() - 1) % c.size();
                    for i in 0..20u64 {
                        c.send_u64s(next, 1, &[i]);
                        assert_eq!(c.recv_u64s(prev.into(), 1.into()).1[0], i);
                    }
                })
                .trace
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "identical seed must reproduce the identical trace");
        assert!(!a.is_empty());
        assert_ne!(a, run(43), "different seed should perturb differently");
    }
}
