//! Multi-part message payloads.
//!
//! A [`Payload`] is an ordered rope of refcounted [`Bytes`] parts whose
//! logical content is the concatenation of the parts. It exists so a
//! sender can *lend* sub-slices of buffers it already owns (LowFive's
//! shallow / zero-copy dataset regions) interleaved with small framing
//! headers, and local rank-to-rank delivery hands the receiver those very
//! allocations — no gather on send, no copy in the mailbox.
//!
//! Receivers that need a contiguous view call [`Payload::to_bytes`] /
//! [`Payload::into_bytes`]: free for payloads of at most one part (a
//! refcount bump), a gather-copy otherwise — and that copy is *accounted*,
//! bumping [`obsv::Ctr::BytesCopied`], so the zero-copy serve path can
//! assert it never happens. Parts-aware receivers (the RPC reply path)
//! instead walk the parts in place.

use bytes::{Bytes, BytesMut};

/// An ordered, refcounted, possibly multi-part message payload.
///
/// Equality and the wire format are defined on the *concatenated* byte
/// stream: two payloads with different part boundaries but the same
/// flattened content are interchangeable on the wire.
#[derive(Debug, Clone, Default)]
pub struct Payload {
    parts: Vec<Bytes>,
}

impl Payload {
    /// The empty payload.
    pub fn new() -> Self {
        Payload::default()
    }

    /// Build from explicit parts. Empty parts are dropped (they carry no
    /// bytes and would only slow part-walking receivers down).
    pub fn from_parts(parts: Vec<Bytes>) -> Self {
        let mut p = Payload::new();
        for b in parts {
            p.push(b);
        }
        p
    }

    /// Append one part (no copy; empty parts are dropped).
    pub fn push(&mut self, part: Bytes) {
        if !part.is_empty() {
            self.parts.push(part);
        }
    }

    /// Append every part of `other` (no copy).
    pub fn extend(&mut self, other: Payload) {
        self.parts.extend(other.parts);
    }

    /// Total logical length in bytes (sum over parts).
    pub fn len(&self) -> usize {
        self.parts.iter().map(Bytes::len).sum()
    }

    /// True when the payload carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The parts, in order. Never contains an empty part.
    pub fn parts(&self) -> &[Bytes] {
        &self.parts
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Drop the first `n` logical bytes by slicing parts in place — no
    /// byte is copied.
    ///
    /// # Panics
    /// Panics if `n > self.len()`.
    pub fn advance(&mut self, mut n: usize) {
        let mut keep_from = 0;
        for (i, part) in self.parts.iter_mut().enumerate() {
            if n == 0 {
                keep_from = i;
                break;
            }
            if n >= part.len() {
                n -= part.len();
                keep_from = i + 1;
            } else {
                *part = part.slice(n..);
                n = 0;
                keep_from = i;
                break;
            }
        }
        assert!(n == 0, "advance past end of payload");
        self.parts.drain(..keep_from);
    }

    /// A contiguous view of the whole payload.
    ///
    /// Zero or one part: free (empty / refcount bump). More: a
    /// gather-copy, accounted under [`obsv::Ctr::BytesCopied`].
    pub fn to_bytes(&self) -> Bytes {
        match self.parts.len() {
            0 => Bytes::new(),
            1 => self.parts[0].clone(),
            _ => {
                let total = self.len();
                obsv::counter_add(obsv::Ctr::BytesCopied, total as u64);
                let mut buf = Vec::with_capacity(total);
                for part in &self.parts {
                    buf.extend_from_slice(part);
                }
                Bytes::from(buf)
            }
        }
    }

    /// Consuming variant of [`Payload::to_bytes`].
    pub fn into_bytes(mut self) -> Bytes {
        if self.parts.len() <= 1 {
            self.parts.pop().unwrap_or_default()
        } else {
            self.to_bytes()
        }
    }

    /// Copy the first `dst.len()` logical bytes into `dst` without
    /// flattening. Used by fixed-size header peeks; the copy is bounded by
    /// the header size and not accounted as a payload copy.
    ///
    /// Returns false when the payload is shorter than `dst`.
    pub fn copy_prefix(&self, dst: &mut [u8]) -> bool {
        let mut filled = 0;
        for part in &self.parts {
            if filled == dst.len() {
                break;
            }
            let take = part.len().min(dst.len() - filled);
            dst[filled..filled + take].copy_from_slice(&part[..take]);
            filled += take;
        }
        filled == dst.len()
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Self {
        Payload::from_parts(vec![b])
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from(v).into()
    }
}

impl From<BytesMut> for Payload {
    fn from(b: BytesMut) -> Self {
        b.freeze().into()
    }
}

impl From<&'static [u8]> for Payload {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s).into()
    }
}

impl From<Vec<Bytes>> for Payload {
    fn from(parts: Vec<Bytes>) -> Self {
        Payload::from_parts(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rope(parts: &[&'static [u8]]) -> Payload {
        Payload::from_parts(parts.iter().map(|p| Bytes::from_static(p)).collect())
    }

    #[test]
    fn single_part_to_bytes_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let p = Payload::from(b.clone());
        assert_eq!(p.num_parts(), 1);
        assert_eq!(p.to_bytes().as_ptr(), b.as_ptr(), "one part must not copy");
    }

    #[test]
    fn multi_part_flattens_to_concatenation() {
        let p = rope(&[b"ab", b"", b"cde", b"f"]);
        assert_eq!(p.num_parts(), 3, "empty parts dropped");
        assert_eq!(p.len(), 6);
        assert_eq!(&p.to_bytes()[..], b"abcdef");
        assert_eq!(&p.into_bytes()[..], b"abcdef");
    }

    #[test]
    fn advance_slices_across_parts_without_copying() {
        let first = Bytes::from(vec![9u8; 8]);
        let second = Bytes::from(vec![7u8; 4]);
        let mut p = Payload::from_parts(vec![first, second.clone()]);
        p.advance(8);
        assert_eq!(p.num_parts(), 1);
        assert_eq!(p.to_bytes().as_ptr(), second.as_ptr(), "tail part is shared, not copied");
        let mut q = rope(&[b"abcd", b"efgh"]);
        q.advance(6);
        assert_eq!(&q.to_bytes()[..], b"gh");
        q.advance(2);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        rope(&[b"ab"]).advance(3);
    }

    #[test]
    fn copy_prefix_spans_parts() {
        let p = rope(&[b"ab", b"cd", b"ef"]);
        let mut hdr = [0u8; 5];
        assert!(p.copy_prefix(&mut hdr));
        assert_eq!(&hdr, b"abcde");
        let mut too_long = [0u8; 7];
        assert!(!p.copy_prefix(&mut too_long));
    }
}
