//! Plain-old-data slice casting for zero-copy message payloads.
//!
//! MPI programs move typed buffers as raw bytes; this module provides the
//! minimal, safe-to-use equivalent: a sealed [`Pod`] trait for primitive
//! numeric types whose byte representation is fully defined, plus
//! `bytes_of`/`from_bytes` helpers. Casting a `&[u64]` to `&[u8]` is free;
//! the reverse direction copies only when the source is misaligned.

use bytes::Bytes;

mod sealed {
    pub trait Sealed {}
}

/// Marker for primitive types that can be viewed as raw bytes.
///
/// # Safety contract (upheld by the sealed impls)
/// Implementors have no padding, no invalid bit patterns, and a stable
/// in-memory layout, so any byte sequence of the right length is a valid
/// value and any value can be exposed as bytes.
pub trait Pod: sealed::Sealed + Copy + Send + Sync + 'static {
    /// Size of one element in bytes (same as `size_of::<Self>()`).
    const SIZE: usize;
}

macro_rules! impl_pod {
    ($($t:ty),*) => {$(
        impl sealed::Sealed for $t {}
        impl Pod for $t { const SIZE: usize = std::mem::size_of::<$t>(); }
    )*};
}

impl_pod!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64, usize, isize);

/// View a typed slice as its underlying bytes (zero-copy).
pub fn bytes_of<T: Pod>(slice: &[T]) -> &[u8] {
    // SAFETY: T is Pod (no padding, no invalid representations), and the
    // resulting slice covers exactly the same memory region.
    unsafe { std::slice::from_raw_parts(slice.as_ptr().cast::<u8>(), std::mem::size_of_val(slice)) }
}

/// Copy a typed slice into an owned `Bytes` payload.
pub fn to_bytes<T: Pod>(slice: &[T]) -> Bytes {
    Bytes::copy_from_slice(bytes_of(slice))
}

/// Reinterpret a byte slice as a typed slice.
///
/// Copies into a fresh `Vec` because `Bytes` payloads do not guarantee
/// alignment for `T`.
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of `T::SIZE`.
pub fn from_bytes<T: Pod>(bytes: &[u8]) -> Vec<T> {
    assert!(
        bytes.len().is_multiple_of(T::SIZE),
        "byte length {} is not a multiple of element size {}",
        bytes.len(),
        T::SIZE
    );
    let n = bytes.len() / T::SIZE;
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: we copy exactly n*SIZE bytes into the Vec's allocation and
    // then set the length; T is Pod so any bit pattern is valid.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), bytes.len());
        out.set_len(n);
    }
    out
}

/// Reinterpret a byte slice as a typed slice without copying, when aligned.
///
/// Returns `None` if the pointer is misaligned for `T` or the length is not
/// a multiple of `T::SIZE`; callers fall back to [`from_bytes`].
pub fn try_cast_slice<T: Pod>(bytes: &[u8]) -> Option<&[T]> {
    if !bytes.len().is_multiple_of(T::SIZE)
        || bytes.as_ptr().align_offset(std::mem::align_of::<T>()) != 0
    {
        return None;
    }
    // SAFETY: alignment and length were just checked; T is Pod.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / T::SIZE) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u64() {
        let v = vec![1u64, 2, 3, u64::MAX];
        let b = to_bytes(&v);
        assert_eq!(b.len(), 32);
        assert_eq!(from_bytes::<u64>(&b), v);
    }

    #[test]
    fn roundtrip_f32() {
        let v = vec![1.5f32, -0.25, f32::INFINITY];
        assert_eq!(from_bytes::<f32>(&to_bytes(&v)), v);
    }

    #[test]
    fn bytes_of_is_zero_copy_view() {
        let v = [0x0102030405060708u64];
        let b = bytes_of(&v);
        assert_eq!(b.len(), 8);
        // little-endian on all supported targets
        assert_eq!(b[0], 0x08);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_bytes_rejects_ragged_length() {
        let _ = from_bytes::<u32>(&[1, 2, 3]);
    }

    #[test]
    fn try_cast_respects_alignment() {
        let v = vec![7u64; 4];
        let b = bytes_of(&v);
        assert_eq!(try_cast_slice::<u64>(b).unwrap(), &v[..]);
        // offset by one byte: guaranteed misaligned for u64
        assert!(try_cast_slice::<u64>(&b[1..]).is_none());
    }

    #[test]
    fn empty_slices() {
        let v: Vec<u32> = vec![];
        assert!(to_bytes(&v).is_empty());
        assert!(from_bytes::<u32>(&[]).is_empty());
    }
}
