//! The original delivery path: the sender pushes straight into the
//! destination's mailbox. No threads, no framing, no copies — a
//! multi-part [`crate::Payload`] arrives as the sender's refcounted
//! allocations, which is what makes the zero-copy serve path possible.

use crate::envelope::WireEnvelope;
use crate::mailbox::Mailbox;

use super::{Transport, TransportKind};

pub(crate) struct InProcTransport {
    mailboxes: Vec<Mailbox>,
}

impl InProcTransport {
    pub fn new(size: usize) -> Self {
        InProcTransport { mailboxes: (0..size).map(|_| Mailbox::default()).collect() }
    }
}

impl Transport for InProcTransport {
    fn mailbox(&self, world_rank: usize) -> &Mailbox {
        &self.mailboxes[world_rank]
    }

    fn deliver(&self, world_dest: usize, env: WireEnvelope, front: bool) {
        if front {
            self.mailboxes[world_dest].push_front(env);
        } else {
            self.mailboxes[world_dest].push(env);
        }
    }

    fn try_deliver(
        &self,
        world_dest: usize,
        env: WireEnvelope,
        front: bool,
    ) -> Result<(), WireEnvelope> {
        // Mailboxes are unbounded (MPI buffered-send semantics), so the
        // nonblocking path never refuses.
        self.deliver(world_dest, env, front);
        Ok(())
    }

    fn wake_all(&self) {
        for mb in &self.mailboxes {
            mb.wake();
        }
    }

    fn shutdown(&self) {}

    fn kind(&self) -> TransportKind {
        TransportKind::InProc
    }
}
