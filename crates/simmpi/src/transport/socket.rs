//! Socket backend: envelopes cross a real wire.
//!
//! Topology, per destination rank `d` (all inside one process for tests,
//! but nothing below assumes it):
//!
//! ```text
//! Comm::send ─▶ Link[d] (bounded frame queue) ─▶ writer thread ─▶ socket
//!                                                                   │
//! mailbox[d] ◀─ reader thread (seq check, window, push/push_front) ◀┘
//! ```
//!
//! * One listener per rank (Unix-domain socket in a per-world temp
//!   directory, or TCP on a 127.0.0.1 ephemeral port), connected at world
//!   construction.
//! * One **writer thread** per destination consuming that destination's
//!   bounded [`Link`] queue — the bound is what gives [`crate::Comm`] a
//!   real backpressure signal ([`crate::SendError::WouldBlock`]).
//! * One **reader thread** per destination demuxing frames into the
//!   destination's [`Mailbox`], verifying per-source sequence numbers and
//!   honoring the mailbox receive window ([`Mailbox::wait_below`]) so a
//!   slow receiver backs pressure up the wire.
//!
//! Multi-part payloads are written part by part — no gather copy on the
//! send side (`BytesCopied` stays untouched) — and arrive as `len`
//! contiguous bytes: the wire form *is* the flattened form, so zero-copy
//! lends degrade to exactly one serialize.
//!
//! The fault injector's reorder crosses the wire as the frame header's
//! [`FRONT_FLAG`]; frames stay FIFO on the wire (sequence numbers remain
//! consecutive) and the *reader* applies the front-of-mailbox insertion.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::envelope::WireEnvelope;
use crate::mailbox::Mailbox;
use crate::payload::Payload;

use super::frame::{next_seq, FrameHeader, FRONT_FLAG, HDR_LEN};
use super::{SocketConfig, SocketMode, Transport, TransportKind};

/// Either socket flavor, unified for the reader/writer loops.
enum Conn {
    #[cfg(unix)]
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// One frame awaiting its writer thread.
struct QueuedFrame {
    header: FrameHeader,
    payload: Payload,
}

struct LinkQueue {
    frames: VecDeque<QueuedFrame>,
    /// Next sequence counter per *source* world rank (frames from one
    /// source stay FIFO on the link, so assignment order under this lock
    /// is wire order; the reader verifies).
    next_seq: Vec<u32>,
    closed: bool,
}

/// The bounded send queue feeding one destination's writer thread.
struct Link {
    q: Mutex<LinkQueue>,
    /// Signaled when a frame is queued (writer wakes).
    ready: Condvar,
    /// Signaled when a frame is consumed (blocked senders wake).
    space: Condvar,
    cap: usize,
    /// Next sequence counter the reader *has already pushed into the
    /// mailbox*, per source world rank (the delivered mirror of
    /// [`LinkQueue::next_seq`]). `next_seq[s] != delivered[s]` means frames
    /// from `s` are still in flight — queued, on the wire, or held at the
    /// receive window — which the death-abort predicate must wait out so
    /// messages sent before a kill stay receivable, exactly as in-proc.
    delivered: Vec<AtomicU32>,
}

impl Link {
    fn new(cap: usize, size: usize) -> Self {
        Link {
            q: Mutex::new(LinkQueue {
                frames: VecDeque::new(),
                next_seq: vec![0; size],
                closed: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            cap: cap.max(1),
            delivered: (0..size).map(|_| AtomicU32::new(0)).collect(),
        }
    }
}

/// State shared by rank threads and the backend's reader/writer threads
/// (which outlive the rank scope, hence `Arc` + detached threads joined in
/// [`Transport::shutdown`]).
struct Shared {
    mailboxes: Vec<Mailbox>,
    links: Vec<Link>,
    recv_window: usize,
    closed: AtomicBool,
}

pub(crate) struct SocketTransport {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    uds_dir: Option<PathBuf>,
    done: AtomicBool,
}

impl SocketTransport {
    pub fn new(size: usize, cfg: SocketConfig) -> Self {
        let shared = Arc::new(Shared {
            mailboxes: (0..size).map(|_| Mailbox::default()).collect(),
            links: (0..size).map(|_| Link::new(cfg.queue_cap, size)).collect(),
            recv_window: cfg.recv_window.max(1),
            closed: AtomicBool::new(false),
        });
        let uds_dir = match cfg.mode {
            #[cfg(unix)]
            SocketMode::Unix => Some(fresh_uds_dir()),
            _ => None,
        };
        let mut handles = Vec::with_capacity(2 * size);
        for dest in 0..size {
            let (write_half, read_half) = connect_pair(cfg.mode, uds_dir.as_deref(), dest);
            let sh = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("simmpi-wr-{dest}"))
                    .spawn(move || writer_loop(&sh, dest, write_half))
                    .expect("spawn socket writer"),
            );
            let sh = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("simmpi-rd-{dest}"))
                    .spawn(move || reader_loop(&sh, dest, read_half))
                    .expect("spawn socket reader"),
            );
        }
        SocketTransport {
            shared,
            handles: Mutex::new(handles),
            uds_dir,
            done: AtomicBool::new(false),
        }
    }

    /// Queue a frame on `world_dest`'s link, assigning its sequence
    /// number. Blocking variant waits for space; nonblocking hands the
    /// envelope back when the queue is at capacity.
    fn enqueue(
        &self,
        world_dest: usize,
        env: WireEnvelope,
        front: bool,
        block: bool,
    ) -> Result<(), WireEnvelope> {
        let link = &self.shared.links[world_dest];
        let mut q = link.q.lock();
        while q.frames.len() >= link.cap && !q.closed {
            if !block {
                return Err(env);
            }
            // Bounded wait: `closed` can flip without a queue operation.
            link.space.wait_for(&mut q, Duration::from_millis(50));
        }
        if q.closed {
            // World tear-down: nobody will receive; drop silently, exactly
            // like an envelope in flight when the run ends.
            return Ok(());
        }
        let counter = q.next_seq[env.world_src];
        q.next_seq[env.world_src] = next_seq(counter);
        let header = FrameHeader {
            len: env.payload.len() as u64,
            wire_tag: env.wire_tag,
            src: env.world_src as u32,
            seq: if front { counter | FRONT_FLAG } else { counter },
            sent_ns: env.sent_ns,
        };
        let wire_bytes = HDR_LEN as u64 + header.len;
        q.frames.push_back(QueuedFrame { header, payload: env.payload });
        link.ready.notify_all();
        drop(q);
        // Recorded here, on the sending rank's thread — writer threads
        // have no obsv recorder lane.
        if obsv::active() {
            obsv::counter_add(obsv::Ctr::WireFramesSent, 1);
            obsv::counter_add(obsv::Ctr::WireBytesSent, wire_bytes);
        }
        Ok(())
    }
}

impl Transport for SocketTransport {
    fn mailbox(&self, world_rank: usize) -> &Mailbox {
        &self.shared.mailboxes[world_rank]
    }

    fn deliver(&self, world_dest: usize, env: WireEnvelope, front: bool) {
        let delivered = self.enqueue(world_dest, env, front, true);
        debug_assert!(delivered.is_ok(), "blocking enqueue cannot refuse");
    }

    fn try_deliver(
        &self,
        world_dest: usize,
        env: WireEnvelope,
        front: bool,
    ) -> Result<(), WireEnvelope> {
        self.enqueue(world_dest, env, front, false)
    }

    fn wake_all(&self) {
        for mb in &self.shared.mailboxes {
            mb.wake();
        }
        // Senders parked on a full link queue and writers parked on an
        // empty one re-check external conditions (death, shutdown) that
        // flip without any queue operation — notify them too, so their
        // exit is not quantized to the bounded-wait tick.
        for link in &self.shared.links {
            let _q = link.q.lock();
            link.space.notify_all();
            link.ready.notify_all();
        }
    }

    fn in_flight(&self, world_src: usize, world_dest: usize) -> bool {
        let link = &self.shared.links[world_dest];
        let sent = link.q.lock().next_seq[world_src];
        sent != link.delivered[world_src].load(Ordering::Acquire)
    }

    fn shutdown(&self) {
        if self.done.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.closed.store(true, Ordering::SeqCst);
        for link in &self.shared.links {
            let mut q = link.q.lock();
            q.closed = true;
            link.ready.notify_all();
            link.space.notify_all();
        }
        let handles = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
        if let Some(dir) = &self.uds_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Socket
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A unique, writable directory for this world's Unix socket files.
#[cfg(unix)]
fn fresh_uds_dir() -> PathBuf {
    static WORLD_NO: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "simmpi-{}-{}",
        std::process::id(),
        WORLD_NO.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create UDS socket directory");
    dir
}

/// Bind rank `dest`'s listener, connect the sender side, and accept the
/// receiver side. Listeners have a backlog, so connect-then-accept on one
/// thread cannot deadlock.
fn connect_pair(mode: SocketMode, uds_dir: Option<&std::path::Path>, dest: usize) -> (Conn, Conn) {
    match mode {
        #[cfg(unix)]
        SocketMode::Unix => {
            let path = uds_dir.expect("UDS mode has a socket dir").join(format!("rank-{dest}"));
            let listener = UnixListener::bind(&path).expect("bind rank UDS listener");
            let write_half = UnixStream::connect(&path).expect("connect rank UDS");
            let (read_half, _) = listener.accept().expect("accept rank UDS");
            (Conn::Unix(write_half), Conn::Unix(read_half))
        }
        _ => {
            let _ = uds_dir;
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind rank TCP listener");
            let addr = listener.local_addr().expect("listener addr");
            let write_half = TcpStream::connect(addr).expect("connect rank TCP");
            let (read_half, _) = listener.accept().expect("accept rank TCP");
            write_half.set_nodelay(true).expect("nodelay");
            read_half.set_nodelay(true).expect("nodelay");
            (Conn::Tcp(write_half), Conn::Tcp(read_half))
        }
    }
}

/// Drain `dest`'s link queue onto the socket. Exits once the queue is
/// closed *and* drained (or the peer vanished); dropping the connection
/// EOFs the matching reader.
fn writer_loop(shared: &Shared, dest: usize, mut conn: Conn) {
    let link = &shared.links[dest];
    loop {
        let next = {
            let mut q = link.q.lock();
            loop {
                if let Some(f) = q.frames.pop_front() {
                    link.space.notify_all();
                    break Some(f);
                }
                if q.closed {
                    break None;
                }
                link.ready.wait(&mut q);
            }
        };
        let Some(frame) = next else { break };
        if write_frame(&mut conn, &frame).is_err() {
            break;
        }
    }
}

/// Header, then every payload part in order — the wire is where a
/// multi-part payload flattens, with no intermediate gather buffer.
fn write_frame(conn: &mut Conn, frame: &QueuedFrame) -> std::io::Result<()> {
    conn.write_all(&frame.header.encode())?;
    for part in frame.payload.parts() {
        conn.write_all(part.as_ref())?;
    }
    conn.flush()
}

/// Demux frames arriving for `dest` into its mailbox: verify per-source
/// sequence numbers, honor the receive window, apply front-of-queue
/// (reorder) insertion. Exits on EOF (writer gone).
fn reader_loop(shared: &Shared, dest: usize, mut conn: Conn) {
    let mut expect = vec![0u32; shared.mailboxes.len()];
    let closed = || shared.closed.load(Ordering::Relaxed);
    loop {
        let mut hdr_buf = [0u8; HDR_LEN];
        if conn.read_exact(&mut hdr_buf).is_err() {
            break; // EOF: the writer closed its end.
        }
        let header = FrameHeader::decode(&hdr_buf);
        let src = header.src as usize;
        let mut body = vec![0u8; header.len as usize];
        if conn.read_exact(&mut body).is_err() {
            break;
        }
        assert_eq!(
            header.seq_counter(),
            expect[src],
            "socket frame from rank {src} to rank {dest} out of sequence"
        );
        expect[src] = next_seq(expect[src]);
        // Flow control: a mailbox at its window stops the drain, which
        // backs up the kernel buffer, then the writer, then the sender.
        shared.mailboxes[dest].wait_below(shared.recv_window, &closed);
        let env = WireEnvelope {
            world_src: src,
            wire_tag: header.wire_tag,
            payload: Bytes::from(body).into(),
            sent_ns: header.sent_ns,
        };
        if header.is_front() {
            shared.mailboxes[dest].push_front(env);
        } else {
            shared.mailboxes[dest].push(env);
        }
        // Only after the push: `in_flight` turning false must imply the
        // envelope is already visible in the mailbox (death-abort races).
        shared.links[dest].delivered[src].store(expect[src], Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{make_wire_tag, SrcSel, TagSel};
    use crate::mailbox::Matcher;

    fn env(src: usize, tag: u32, body: &[u8]) -> WireEnvelope {
        WireEnvelope {
            world_src: src,
            wire_tag: make_wire_tag(0, tag),
            payload: Bytes::copy_from_slice(body).into(),
            sent_ns: 0,
        }
    }

    fn pop(t: &SocketTransport, dest: usize, src: usize, tag: u32) -> Vec<u8> {
        let m = Matcher { ctx: 0, src: SrcSel::Rank(src), tag: TagSel::Tag(tag) };
        let wire = t.mailbox(dest).pop_matching_abort(&m, &|| false).expect("delivered");
        wire.payload.to_bytes().as_ref().to_vec()
    }

    fn roundtrip_over(mode: SocketMode) {
        let t = SocketTransport::new(2, SocketConfig { mode, ..SocketConfig::default() });
        t.deliver(1, env(0, 7, b"hello"), false);
        t.deliver(1, env(0, 7, b"world"), false);
        assert_eq!(pop(&t, 1, 0, 7), b"hello");
        assert_eq!(pop(&t, 1, 0, 7), b"world");
        t.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn unix_roundtrip_preserves_order() {
        roundtrip_over(SocketMode::Unix);
    }

    #[test]
    fn tcp_roundtrip_preserves_order() {
        roundtrip_over(SocketMode::Tcp);
    }

    #[test]
    fn multipart_payload_flattens_on_the_wire() {
        let t = SocketTransport::new(2, SocketConfig::default());
        let payload =
            Payload::from_parts(vec![Bytes::from(vec![1u8, 2]), Bytes::from(vec![3u8, 4, 5])]);
        let env = WireEnvelope { world_src: 0, wire_tag: make_wire_tag(0, 9), payload, sent_ns: 0 };
        t.deliver(1, env, false);
        let m = Matcher { ctx: 0, src: SrcSel::Rank(0), tag: TagSel::Tag(9) };
        let wire = t.mailbox(1).pop_matching_abort(&m, &|| false).expect("delivered");
        assert_eq!(wire.payload.num_parts(), 1, "wire form is contiguous");
        assert_eq!(wire.payload.to_bytes().as_ref(), &[1, 2, 3, 4, 5]);
        t.shutdown();
    }

    /// Wait until every frame from rank 0 to rank 1 has been pushed into
    /// the destination mailbox. `in_flight` turning false happens-after
    /// the mailbox push (Release store in the reader), so this makes the
    /// landed-before-overtake ordering deterministic — no wall-clock
    /// sleeps, which flaked under CI scheduling jitter.
    fn drain_in_flight(t: &SocketTransport) {
        while t.in_flight(0, 1) {
            std::thread::yield_now();
        }
    }

    #[test]
    fn front_delivery_overtakes_queued_frames() {
        let t = SocketTransport::new(2, SocketConfig::default());
        t.deliver(1, env(0, 1, b"first"), false);
        t.deliver(1, env(0, 1, b"second"), false);
        // Let both frames land, then overtake them.
        drain_in_flight(&t);
        t.deliver(1, env(0, 1, b"urgent"), true);
        drain_in_flight(&t);
        assert_eq!(pop(&t, 1, 0, 1), b"urgent");
        assert_eq!(pop(&t, 1, 0, 1), b"first");
        assert_eq!(pop(&t, 1, 0, 1), b"second");
        t.shutdown();
    }

    #[test]
    fn bounded_queue_refuses_when_saturated() {
        // recv_window = 1 parks the reader after one delivery; queue_cap =
        // 1 plus ~1 MiB frames (far beyond any kernel socket buffer) then
        // saturate the whole path within a handful of sends.
        let cfg = SocketConfig { queue_cap: 1, recv_window: 1, ..SocketConfig::default() };
        let t = SocketTransport::new(2, cfg);
        let big = vec![0xABu8; 1 << 20];
        let mut refused = false;
        for _ in 0..64 {
            if t.try_deliver(1, env(0, 3, &big), false).is_err() {
                refused = true;
                break;
            }
        }
        assert!(refused, "a 1-frame queue behind a 1-envelope window must fill");
        // Draining the mailbox un-wedges the path end to end.
        let mut drained = 0;
        let m = Matcher { ctx: 0, src: SrcSel::Rank(0), tag: TagSel::Tag(3) };
        while t
            .mailbox(1)
            .pop_matching_deadline(&m, std::time::Instant::now() + Duration::from_secs(5), &|| {
                false
            })
            .is_ok()
        {
            drained += 1;
            if t.try_deliver(1, env(0, 4, b"after-drain"), false).is_ok() {
                break;
            }
        }
        assert!(drained >= 1, "drained {drained} envelopes without freeing space");
        t.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_threads() {
        let t = SocketTransport::new(3, SocketConfig::default());
        t.deliver(2, env(1, 5, b"x"), false);
        assert_eq!(pop(&t, 2, 1, 5), b"x");
        t.shutdown();
        t.shutdown();
        assert!(t.handles.lock().is_empty());
    }
}
