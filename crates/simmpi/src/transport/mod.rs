//! Pluggable channel layer: how a [`crate::WireEnvelope`] gets from the
//! sending rank to the destination mailbox.
//!
//! Everything *above* this trait is backend-independent: fault-injection
//! decisions ([`crate::FaultPlan`]) are taken in `Comm::send_internal`
//! before the envelope reaches the transport, receives match against the
//! per-rank [`Mailbox`] regardless of how envelopes arrived, and liveness
//! is a world-level flag the transport merely wakes receivers for. A
//! backend therefore only owns *delivery*:
//!
//! * [`TransportKind::InProc`] — the original path: the sender pushes
//!   straight into the destination mailbox. Unbounded, no threads, no
//!   copies (multi-part payloads travel as the sender's refcounted
//!   allocations).
//! * [`TransportKind::Socket`] — envelopes are framed
//!   ([`frame::FrameHeader`]) and cross a real Unix-domain or TCP
//!   loopback socket: one bounded writer queue + writer thread per
//!   destination, one reader thread per destination demuxing frames into
//!   that rank's mailbox. Multi-part payloads flatten to their contiguous
//!   wire form (one serialize; the receiver sees a single part).
//!
//! ## What the trait guarantees (and what it does not)
//!
//! * **Per-(src, dest) FIFO** — two envelopes from the same source to the
//!   same destination arrive in send order (unless the fault injector
//!   explicitly reorders with `front`). In-proc: one mailbox queue.
//!   Socket: one FIFO link per destination plus per-source sequence
//!   numbers verified by the reader.
//! * **Liveness wakeups** — [`Transport::wake_all`] wakes every blocked
//!   receiver so death flags and deadlines get re-checked.
//! * **No cross-peer ordering** — envelopes from different sources may
//!   interleave arbitrarily, exactly like MPI.
//! * **Pre-death receivability** — envelopes a rank sent before dying
//!   stay receivable: the death-abort predicate consults
//!   [`Transport::in_flight`] and only fires once the dead peer's frames
//!   have drained into the mailbox (trivially immediate in-proc).
//! * **No delivery-on-death guarantee at tear-down** — envelopes in
//!   flight when the world tears down may be dropped.

pub(crate) mod frame;
mod inproc;
mod socket;

pub(crate) use inproc::InProcTransport;
pub(crate) use socket::SocketTransport;

use crate::envelope::WireEnvelope;
use crate::mailbox::Mailbox;

/// Which backend carries messages between ranks of a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Direct mailbox delivery inside one address space (the default):
    /// unbounded, zero-copy, no extra threads.
    #[default]
    InProc,
    /// Length-prefixed frames over per-rank Unix-domain (or TCP loopback)
    /// sockets; bounded writer queues give sends real backpressure.
    Socket,
}

impl TransportKind {
    /// Backend selected by the `SIMMPI_TRANSPORT` environment variable:
    /// `socket`, `uds`, `unix`, or `tcp` pick [`TransportKind::Socket`];
    /// anything else (or unset) is [`TransportKind::InProc`]. This is how
    /// the CI transport matrix flips whole test binaries onto the wire
    /// without touching call sites.
    pub fn from_env() -> TransportKind {
        match std::env::var("SIMMPI_TRANSPORT") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "socket" | "uds" | "unix" | "tcp" => TransportKind::Socket,
                _ => TransportKind::InProc,
            },
            Err(_) => TransportKind::InProc,
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::InProc => write!(f, "inproc"),
            TransportKind::Socket => write!(f, "socket"),
        }
    }
}

/// Socket flavor for [`TransportKind::Socket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SocketMode {
    /// Unix-domain sockets under a per-world temp directory (primary).
    #[default]
    Unix,
    /// TCP over 127.0.0.1 ephemeral ports (the portable alternative).
    Tcp,
}

/// Tuning for the socket backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocketConfig {
    pub mode: SocketMode,
    /// Frames a destination's writer queue holds before [`Comm::send`]
    /// blocks (and [`Comm::try_send`] reports
    /// [`crate::SendError::WouldBlock`]).
    ///
    /// [`Comm::send`]: crate::Comm::send
    /// [`Comm::try_send`]: crate::Comm::try_send
    pub queue_cap: usize,
    /// Envelopes a destination mailbox may hold before the reader stops
    /// draining the wire — the receive window that turns a slow receiver
    /// into sender-visible backpressure. The default is effectively
    /// unbounded, preserving in-proc's buffered-send semantics.
    pub recv_window: usize,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig { mode: SocketMode::Unix, queue_cap: 4096, recv_window: usize::MAX }
    }
}

impl SocketConfig {
    /// Config from the environment: `SIMMPI_TRANSPORT=tcp` selects
    /// [`SocketMode::Tcp`]; `SIMMPI_SOCKET_QUEUE_CAP` and
    /// `SIMMPI_SOCKET_RECV_WINDOW` override the bounds.
    pub fn from_env() -> SocketConfig {
        let mut cfg = SocketConfig::default();
        if let Ok(v) = std::env::var("SIMMPI_TRANSPORT") {
            if v.eq_ignore_ascii_case("tcp") {
                cfg.mode = SocketMode::Tcp;
            }
        }
        if let Some(cap) = env_usize("SIMMPI_SOCKET_QUEUE_CAP") {
            cfg.queue_cap = cap.max(1);
        }
        if let Some(win) = env_usize("SIMMPI_SOCKET_RECV_WINDOW") {
            cfg.recv_window = win.max(1);
        }
        cfg
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.parse().ok()
}

/// A delivery backend. See the module docs for the contract.
pub(crate) trait Transport: Send + Sync {
    /// The mailbox receives for `world_rank` match against.
    fn mailbox(&self, world_rank: usize) -> &Mailbox;

    /// Deliver `env` to `world_dest`'s mailbox, blocking while the send
    /// path is full. `front` requests front-of-queue insertion (the fault
    /// injector's reorder). In-proc never blocks.
    fn deliver(&self, world_dest: usize, env: WireEnvelope, front: bool);

    /// Nonblocking [`Transport::deliver`]: hands the envelope back when
    /// the send path is full so the caller can surface
    /// [`crate::SendError::WouldBlock`] without losing the message.
    fn try_deliver(
        &self,
        world_dest: usize,
        env: WireEnvelope,
        front: bool,
    ) -> Result<(), WireEnvelope>;

    /// Wake every blocked receiver so external conditions (a peer death, a
    /// deadline) get re-checked.
    fn wake_all(&self);

    /// Are envelopes from `world_src` to `world_dest` still somewhere in
    /// the delivery path (queued, on the wire, or held at the receive
    /// window)? Receives abort on a dead peer only once this turns false,
    /// so messages sent before a kill stay receivable on every backend.
    /// In-proc delivery is synchronous — nothing is ever in flight.
    fn in_flight(&self, _world_src: usize, _world_dest: usize) -> bool {
        false
    }

    /// Tear down backend threads and sockets. Idempotent; called once the
    /// last rank has returned, so undelivered envelopes may be dropped.
    fn shutdown(&self);

    /// Which backend this is (reported by [`crate::Comm::transport_kind`]).
    fn kind(&self) -> TransportKind;
}

/// Construct the backend a [`crate::WorldBuilder`] asked for.
pub(crate) fn make_transport(
    kind: TransportKind,
    size: usize,
    cfg: SocketConfig,
) -> Box<dyn Transport> {
    match kind {
        TransportKind::InProc => Box::new(InProcTransport::new(size)),
        TransportKind::Socket => Box::new(SocketTransport::new(size, cfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_from_env_defaults_to_inproc() {
        // Never set the variable here (tests run in parallel; the env is
        // process-global) — only check the parse of what is present.
        match std::env::var("SIMMPI_TRANSPORT") {
            Err(_) => assert_eq!(TransportKind::from_env(), TransportKind::InProc),
            Ok(v) => {
                let k = TransportKind::from_env();
                let is_socket =
                    ["socket", "uds", "unix", "tcp"].contains(&v.to_ascii_lowercase().as_str());
                assert_eq!(k == TransportKind::Socket, is_socket);
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(TransportKind::InProc.to_string(), "inproc");
        assert_eq!(TransportKind::Socket.to_string(), "socket");
    }
}
