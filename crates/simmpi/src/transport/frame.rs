//! Wire framing for the socket backend.
//!
//! Every message travels as one length-prefixed frame:
//!
//! ```text
//! [len: u64][tag: u64][src: u32][seq: u32][sent_ns: u64]  then `len` payload bytes
//! ```
//!
//! all little-endian (see docs/PROTOCOL.md §"simmpi socket frames"):
//!
//! * `len` — payload byte count (multi-part [`crate::Payload`]s are
//!   written part by part, so they arrive as `len` contiguous bytes:
//!   the wire form *is* the flattened form),
//! * `tag` — the full 64-bit wire tag (`ctx << 32 | user tag`),
//! * `src` — sending world rank,
//! * `seq` — low 31 bits: per-`(src, dest)` frame counter (consecutive,
//!   checked by the receiver); top bit ([`FRONT_FLAG`]): deliver ahead
//!   of everything queued (the fault injector's reorder),
//! * `sent_ns` — sender's `obsv` clock stamp (0 when unobserved; only
//!   meaningful while both endpoints share a clock — zeroed once worlds
//!   span processes).

/// Byte length of the fixed frame header.
pub(crate) const HDR_LEN: usize = 32;

/// Top bit of `seq`: deliver this frame at the *front* of the
/// destination mailbox (fault-injected reorder).
pub(crate) const FRONT_FLAG: u32 = 0x8000_0000;

/// Mask selecting the sequence counter bits of `seq`.
pub(crate) const SEQ_MASK: u32 = FRONT_FLAG - 1;

/// Decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FrameHeader {
    pub len: u64,
    pub wire_tag: u64,
    pub src: u32,
    /// `FRONT_FLAG | counter` — use [`FrameHeader::seq_counter`] /
    /// [`FrameHeader::is_front`] to pick it apart.
    pub seq: u32,
    pub sent_ns: u64,
}

impl FrameHeader {
    pub fn encode(&self) -> [u8; HDR_LEN] {
        let mut b = [0u8; HDR_LEN];
        b[0..8].copy_from_slice(&self.len.to_le_bytes());
        b[8..16].copy_from_slice(&self.wire_tag.to_le_bytes());
        b[16..20].copy_from_slice(&self.src.to_le_bytes());
        b[20..24].copy_from_slice(&self.seq.to_le_bytes());
        b[24..32].copy_from_slice(&self.sent_ns.to_le_bytes());
        b
    }

    pub fn decode(b: &[u8; HDR_LEN]) -> FrameHeader {
        FrameHeader {
            len: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
            wire_tag: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
            src: u32::from_le_bytes(b[16..20].try_into().expect("4 bytes")),
            seq: u32::from_le_bytes(b[20..24].try_into().expect("4 bytes")),
            sent_ns: u64::from_le_bytes(b[24..32].try_into().expect("8 bytes")),
        }
    }

    /// The 31-bit per-`(src, dest)` frame counter.
    pub fn seq_counter(&self) -> u32 {
        self.seq & SEQ_MASK
    }

    /// Was the frame sent with front-of-queue (reorder) delivery?
    pub fn is_front(&self) -> bool {
        self.seq & FRONT_FLAG != 0
    }
}

/// The counter that follows `seq` in the 31-bit sequence space.
pub(crate) fn next_seq(seq: u32) -> u32 {
    (seq + 1) & SEQ_MASK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips() {
        let h = FrameHeader {
            len: 0x0102_0304_0506_0708,
            wire_tag: (7u64 << 32) | 0xBEEF,
            src: 42,
            seq: FRONT_FLAG | 9,
            sent_ns: 123_456_789,
        };
        let enc = h.encode();
        assert_eq!(enc.len(), HDR_LEN);
        let dec = FrameHeader::decode(&enc);
        assert_eq!(dec, h);
        assert!(dec.is_front());
        assert_eq!(dec.seq_counter(), 9);
    }

    #[test]
    fn plain_seq_has_no_front_flag() {
        let h = FrameHeader { len: 0, wire_tag: 0, src: 0, seq: 5, sent_ns: 0 };
        assert!(!h.is_front());
        assert_eq!(h.seq_counter(), 5);
    }

    #[test]
    fn seq_wraps_in_31_bits() {
        assert_eq!(next_seq(0), 1);
        assert_eq!(next_seq(SEQ_MASK), 0);
    }
}
