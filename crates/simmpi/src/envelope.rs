//! Message envelopes and matching selectors.
//!
//! Every in-flight message is an [`Envelope`]: source rank, tag, and
//! payload. Receives match on `(source, tag)` with MPI-style wildcards
//! ([`ANY_SOURCE`], [`ANY_TAG`]).
//!
//! Tags are namespaced by a *context id* so that messages sent on different
//! communicators derived from the same world can never be confused — the
//! same role MPI's hidden per-communicator context plays. User code only
//! sees the 32-bit user tag.

use bytes::Bytes;

use crate::payload::Payload;

/// Full 64-bit wire tag: `(context id << 32) | user tag`.
pub type WireTag = u64;

/// User-visible message tag (low 32 bits of the wire tag).
pub type Tag = u32;

/// Wildcard source selector, analogous to `MPI_ANY_SOURCE`.
pub const ANY_SOURCE: SrcSel = SrcSel::Any;

/// Wildcard tag selector, analogous to `MPI_ANY_TAG`.
pub const ANY_TAG: TagSel = TagSel::Any;

/// Selects which source ranks a receive matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcSel {
    /// Match a message from exactly this rank (communicator-local).
    Rank(usize),
    /// Match a message from any rank.
    Any,
}

impl From<usize> for SrcSel {
    fn from(r: usize) -> Self {
        SrcSel::Rank(r)
    }
}

impl SrcSel {
    pub(crate) fn matches(self, src: usize) -> bool {
        match self {
            SrcSel::Rank(r) => r == src,
            SrcSel::Any => true,
        }
    }
}

/// Selects which tags a receive matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match exactly this tag.
    Tag(Tag),
    /// Match any tag.
    Any,
}

impl From<Tag> for TagSel {
    fn from(t: Tag) -> Self {
        TagSel::Tag(t)
    }
}

impl TagSel {
    /// `Any` deliberately does not match reserved collective tags (top bit
    /// set): a user wildcard receive must never steal a barrier/bcast
    /// message in flight on the same communicator.
    pub(crate) fn matches(self, tag: Tag) -> bool {
        match self {
            TagSel::Tag(t) => t == tag,
            TagSel::Any => tag < 0x8000_0000,
        }
    }
}

/// A delivered message: who sent it, under which tag, and its payload.
///
/// `payload` is contiguous: multi-part messages (see
/// [`Payload`]) are flattened on this path — free for single-part
/// messages, an accounted gather-copy otherwise. Parts-aware receivers
/// use [`PartsEnvelope`] via `Comm::recv_parts` and friends instead.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending rank, in the coordinates of the communicator the receive was
    /// posted on.
    pub src: usize,
    /// User tag the message was sent with.
    pub tag: Tag,
    /// Message body. Cloning is a refcount bump.
    pub payload: Bytes,
}

/// A delivered message with the sender's part structure preserved: the
/// parts the sender lent arrive as the very same refcounted allocations.
#[derive(Debug, Clone)]
pub struct PartsEnvelope {
    /// Sending rank, in the coordinates of the communicator the receive was
    /// posted on.
    pub src: usize,
    /// User tag the message was sent with.
    pub tag: Tag,
    /// Message body as the sender's parts.
    pub payload: Payload,
}

/// Internal representation stored in mailboxes: sources are world ranks and
/// tags carry the communicator context. Payloads keep the sender's part
/// structure end to end; nothing on the delivery path flattens them.
#[derive(Debug)]
pub(crate) struct WireEnvelope {
    pub world_src: usize,
    pub wire_tag: WireTag,
    pub payload: Payload,
    /// `obsv` clock stamp taken at send time, or 0 when the sending
    /// thread had no recorder — lets the receive side attribute
    /// send-to-delivery latency without a second clock.
    pub sent_ns: u64,
}

pub(crate) fn make_wire_tag(ctx: u32, tag: Tag) -> WireTag {
    (u64::from(ctx) << 32) | u64::from(tag)
}

pub(crate) fn split_wire_tag(wire: WireTag) -> (u32, Tag) {
    ((wire >> 32) as u32, (wire & 0xFFFF_FFFF) as Tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_tag_roundtrip() {
        let w = make_wire_tag(3, 0xDEAD_BEEF);
        assert_eq!(split_wire_tag(w), (3, 0xDEAD_BEEF));
    }

    #[test]
    fn selectors_match() {
        assert!(SrcSel::Any.matches(5));
        assert!(SrcSel::Rank(5).matches(5));
        assert!(!SrcSel::Rank(4).matches(5));
        assert!(TagSel::Any.matches(9));
        assert!(TagSel::Tag(9).matches(9));
        assert!(!TagSel::Tag(8).matches(9));
    }

    #[test]
    fn selector_conversions() {
        assert_eq!(SrcSel::from(2), SrcSel::Rank(2));
        assert_eq!(TagSel::from(7), TagSel::Tag(7));
    }
}
