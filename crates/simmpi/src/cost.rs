//! Optional interconnect cost model.
//!
//! Shared-memory thread channels are faster and flatter than a Dragonfly
//! network. Experiments that want to emulate network behavior (e.g. to make
//! the memory-mode weak-scaling curve "rise slowly" like the paper's Fig. 5)
//! can attach a [`CostModel`]: each delivered message charges a fixed
//! latency plus a per-byte cost, slept on the receiving side after the
//! match. The default (no cost model) charges nothing.

use std::time::Duration;

/// Linear latency/bandwidth message cost: `latency + bytes * per_byte_ns`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-message cost.
    pub latency: Duration,
    /// Cost per payload byte, in nanoseconds (fractional values allowed).
    pub per_byte_ns: f64,
}

impl CostModel {
    /// A rough interconnect-like model: 1 µs latency, 10 GB/s bandwidth
    /// (0.1 ns per byte).
    pub fn interconnect() -> Self {
        CostModel { latency: Duration::from_micros(1), per_byte_ns: 0.1 }
    }

    /// Total simulated transfer time for a message of `bytes` payload bytes.
    pub fn delay(&self, bytes: usize) -> Duration {
        let transfer_ns = (self.per_byte_ns * bytes as f64).round() as u64;
        self.latency + Duration::from_nanos(transfer_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_linear_in_bytes() {
        let cm = CostModel { latency: Duration::from_nanos(100), per_byte_ns: 2.0 };
        assert_eq!(cm.delay(0), Duration::from_nanos(100));
        assert_eq!(cm.delay(50), Duration::from_nanos(200));
    }

    #[test]
    fn interconnect_model_is_sane() {
        let cm = CostModel::interconnect();
        // 1 GiB at 10 GB/s ≈ 0.107 s (plus 1 µs latency)
        let d = cm.delay(1 << 30);
        assert!(d > Duration::from_millis(100) && d < Duration::from_millis(120));
    }
}
