//! Optional interconnect cost model and collective algorithm selection.
//!
//! Shared-memory thread channels are faster and flatter than a Dragonfly
//! network. Experiments that want to emulate network behavior (e.g. to make
//! the memory-mode weak-scaling curve "rise slowly" like the paper's Fig. 5)
//! can attach a [`CostModel`]: each delivered message charges a fixed
//! latency plus a per-byte cost, slept on the receiving side after the
//! match. The default (no cost model) charges nothing.
//!
//! The cost model also drives *algorithm selection* for the collectives
//! (see `simmpi::collectives`), mirroring how real MPI implementations
//! switch schedules by message size: payloads below
//! [`CostModel::large_payload_threshold`] are latency-bound and take the
//! log-time tree / recursive-doubling schedules; payloads above it are
//! bandwidth-bound and take the ring / segmented-pipeline variants. The
//! closed-form `modeled_*_ns` functions predict the critical-path latency
//! of each schedule under the model — the scaling figure plots them next
//! to measured wall time, and CI asserts the log-time schedules beat the
//! linear ones at n = 64.

use std::time::Duration;

/// Which collective schedule family a world uses. The default, `Auto`,
/// selects per call: log-time schedules always, plus the size-aware
/// large-payload variants (ring allgather, segmented pipelined broadcast)
/// when a [`CostModel`] is attached and the payload crosses its
/// [`CostModel::large_payload_threshold`]. `Linear` pins the O(n)
/// rank-order reference implementations (the A/B baseline), and `LogTime`
/// pins the small-payload tree / recursive-doubling schedules regardless
/// of payload size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveAlgo {
    /// Cost-model-driven selection (log-time, size-aware). The default.
    #[default]
    Auto,
    /// Linear rank-order reference schedules (A/B baseline).
    Linear,
    /// Force the log-time small-payload schedules, never the ring or
    /// segmented variants — isolates tree-vs-ring in benchmarks.
    LogTime,
}

/// Segment size floor/ceiling for the pipelined broadcast: segments far
/// below a KiB drown in framing, far above a MiB stop pipelining.
const SEGMENT_FLOOR: usize = 64;
const SEGMENT_CEIL: usize = 1 << 20;

/// Fraction of the raw body the wire codecs are assumed to ship for
/// compressible data — the planning estimate [`CostModel::compression_worthwhile`]
/// weighs against the codec's CPU cost (actual ratios are measured, not
/// assumed: the encoder falls back to raw when it fails to shrink).
pub const CODEC_ASSUMED_RATIO: f64 = 0.5;
/// Modeled encoder cost, ns per raw body byte (one streaming RLE pass).
pub const CODEC_ENCODE_NS_PER_BYTE: f64 = 0.15;
/// Modeled decoder cost, ns per raw body byte (one expansion pass).
pub const CODEC_DECODE_NS_PER_BYTE: f64 = 0.15;

/// Linear latency/bandwidth message cost: `latency + bytes * per_byte_ns`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-message cost.
    pub latency: Duration,
    /// Cost per payload byte, in nanoseconds (fractional values allowed).
    pub per_byte_ns: f64,
}

impl CostModel {
    /// A rough interconnect-like model: 1 µs latency, 10 GB/s bandwidth
    /// (0.1 ns per byte).
    pub fn interconnect() -> Self {
        CostModel { latency: Duration::from_micros(1), per_byte_ns: 0.1 }
    }

    /// Total simulated transfer time for a message of `bytes` payload bytes.
    pub fn delay(&self, bytes: usize) -> Duration {
        let transfer_ns = (self.per_byte_ns * bytes as f64).round() as u64;
        self.latency + Duration::from_nanos(transfer_ns)
    }

    /// Payload size (bytes) at which the transfer term equals the fixed
    /// latency — the crossover where a collective stops being
    /// latency-bound and the bandwidth-optimal schedules (ring allgather,
    /// segmented broadcast) start paying off. A pure-latency model
    /// (`per_byte_ns == 0`) never crosses over.
    pub fn large_payload_threshold(&self) -> usize {
        if self.per_byte_ns <= 0.0 {
            return usize::MAX;
        }
        let bytes = self.latency.as_nanos() as f64 / self.per_byte_ns;
        if bytes >= usize::MAX as f64 {
            usize::MAX
        } else {
            (bytes.max(1.0)) as usize
        }
    }

    /// Segment size for the pipelined broadcast: one threshold's worth of
    /// bytes per segment (so segment transfer time ≈ per-hop latency,
    /// the classic pipelining sweet spot), clamped to a sane range.
    pub fn segment_bytes(&self) -> usize {
        self.large_payload_threshold().clamp(SEGMENT_FLOOR, SEGMENT_CEIL)
    }

    /// Modeled CPU cost of compressing *and* decompressing a body of
    /// `bytes` raw bytes, in ns (both ends sit on the transfer's critical
    /// path).
    pub fn codec_ns(&self, bytes: usize) -> f64 {
        (CODEC_ENCODE_NS_PER_BYTE + CODEC_DECODE_NS_PER_BYTE) * bytes as f64
    }

    /// Should a sender bother compressing a body of `bytes` raw bytes
    /// under this link model? Yes iff the payload is bandwidth-bound
    /// (at or past [`CostModel::large_payload_threshold`]) and the
    /// modeled wire time saved — `per_byte_ns × (1 − ratio) × bytes`,
    /// with the planning ratio [`CODEC_ASSUMED_RATIO`] — exceeds the
    /// modeled codec CPU cost. A fast interconnect (0.1 ns/B) never
    /// clears the bar, so in-proc and interconnect-modeled transports
    /// keep the zero-copy raw path; a ~1 GB/s staging link does.
    ///
    /// Senders that have *observed* realized ratios on a link should
    /// prefer [`CostModel::compression_worthwhile_with_ratio`] with a
    /// [`RatioEwma`] estimate: this constant-ratio form is the cold-start
    /// planning rule.
    pub fn compression_worthwhile(&self, bytes: usize) -> bool {
        self.compression_worthwhile_with_ratio(bytes, CODEC_ASSUMED_RATIO)
    }

    /// [`CostModel::compression_worthwhile`] with an explicit compression
    /// `ratio` estimate (`bytes_on_wire / bytes_pre_codec`, lower is
    /// better) instead of the planning constant — the feedback hook for
    /// per-link [`RatioEwma`] estimates of what the codec actually
    /// achieves on this data.
    pub fn compression_worthwhile_with_ratio(&self, bytes: usize, ratio: f64) -> bool {
        bytes >= self.large_payload_threshold()
            && self.per_byte_ns * (1.0 - ratio) * bytes as f64 > self.codec_ns(bytes)
    }

    /// Modeled cost of one delivered message of `bytes` payload, in ns.
    fn msg_ns(&self, bytes: f64) -> f64 {
        self.latency.as_nanos() as f64 + self.per_byte_ns * bytes
    }

    /// Modeled critical-path latency of a gather of `block` bytes per rank
    /// over `n` ranks. Linear: the root performs `n-1` serialized
    /// receives. Tree (binomial): `⌈lg n⌉` rounds; the subtree payload
    /// received in round `k` covers up to `2^k` blocks, so the total is
    /// `⌈lg n⌉·L + (n-1)·m·B` — latency drops from linear to logarithmic
    /// while the byte term stays put.
    pub fn modeled_gather_ns(&self, algo: CollectiveAlgo, n: usize, block: usize) -> f64 {
        let m = block as f64;
        match algo {
            CollectiveAlgo::Linear => (n.saturating_sub(1)) as f64 * self.msg_ns(m),
            _ => {
                let mut total = 0.0;
                let mut mask = 1usize;
                while mask < n {
                    total += self.msg_ns((mask.min(n - mask)) as f64 * m);
                    mask <<= 1;
                }
                total
            }
        }
    }

    /// Modeled critical-path latency of an allgather of `block` bytes per
    /// rank. Linear reference: gather at rank 0 plus a tree broadcast of
    /// the `n·m` concatenation. Log-time: the Bruck dissemination
    /// exchange, `⌈lg n⌉` rounds shipping `min(2^k, n-2^k)` blocks each.
    /// Ring (large payloads): `n-1` rounds of one block each —
    /// bandwidth-optimal, latency-linear.
    pub fn modeled_allgather_ns(&self, algo: CollectiveAlgo, n: usize, block: usize) -> f64 {
        let m = block as f64;
        match algo {
            CollectiveAlgo::Linear => {
                let gather = self.modeled_gather_ns(CollectiveAlgo::Linear, n, block);
                let depth = ceil_log2(n) as f64;
                gather + depth * self.msg_ns(n as f64 * m)
            }
            CollectiveAlgo::LogTime => {
                let mut total = 0.0;
                let mut dist = 1usize;
                while dist < n {
                    total += self.msg_ns(dist.min(n - dist) as f64 * m);
                    dist <<= 1;
                }
                total
            }
            CollectiveAlgo::Auto => {
                if block >= self.large_payload_threshold() {
                    // Ring variant.
                    (n.saturating_sub(1)) as f64 * self.msg_ns(m)
                } else {
                    self.modeled_allgather_ns(CollectiveAlgo::LogTime, n, block)
                }
            }
        }
    }

    /// Modeled completion latency of a personalized all-to-all of `block`
    /// bytes per pair when one sender straggles by `skew_ns` before
    /// sending anything. The linear schedule receives in rank order, so
    /// every rank's whole receive loop queues *behind* the straggler
    /// (head-of-line wait): `skew + (n-1)·msg`. The pairwise any-source
    /// schedule consumes whatever has arrived, overlapping the straggle
    /// with the other `n-2` receives: `max(skew + msg, (n-1)·msg)`.
    pub fn modeled_alltoall_ns(
        &self,
        algo: CollectiveAlgo,
        n: usize,
        block: usize,
        skew_ns: f64,
    ) -> f64 {
        let per = self.msg_ns(block as f64);
        let others = (n.saturating_sub(1)) as f64 * per;
        match algo {
            CollectiveAlgo::Linear => skew_ns + others,
            _ => (skew_ns + per).max(others),
        }
    }

    /// Modeled latency of broadcasting `bytes` from the root. Unsegmented
    /// binomial: depth × one full-payload message. Segmented pipeline
    /// (`Auto` with a large payload): the first segment walks the depth of
    /// the tree, the remaining `k-1` segments stream behind it —
    /// `(depth + k - 1)` segment messages on the critical path.
    pub fn modeled_bcast_ns(&self, algo: CollectiveAlgo, n: usize, bytes: usize) -> f64 {
        let depth = ceil_log2(n) as f64;
        match algo {
            CollectiveAlgo::Auto if bytes >= self.large_payload_threshold() => {
                let seg = self.segment_bytes();
                let nsegs = bytes.div_ceil(seg).max(1) as f64;
                (depth + nsegs - 1.0) * self.msg_ns(seg as f64)
            }
            _ => depth * self.msg_ns(bytes as f64),
        }
    }
}

/// Smoothing factor for [`RatioEwma`]: heavy enough that a handful of
/// frames dominates the cold-start prior, light enough to ride out one
/// outlier frame.
const RATIO_EWMA_ALPHA: f64 = 0.3;

/// Exponentially-weighted moving average of *realized* compression ratios
/// (`bytes_on_wire / bytes_pre_codec`) on one producer→consumer link.
///
/// Until the first observation it reports the planning constant
/// [`CODEC_ASSUMED_RATIO`], so cold-start behavior is identical to
/// [`CostModel::compression_worthwhile`]; each observed frame then pulls
/// the estimate toward what the codec actually achieves on this data, and
/// [`CostModel::compression_worthwhile_with_ratio`] plans with that
/// instead. Incompressible data (ratio ≈ 1) talks the planner out of
/// wasting encode passes; highly compressible data (ratio ≪ 0.5) lowers
/// the byte threshold at which compression starts paying.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RatioEwma {
    estimate: Option<f64>,
}

impl RatioEwma {
    /// A fresh estimator reporting the cold-start planning ratio.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one realized frame ratio (`on_wire / pre_codec`, clamped to
    /// `[0, 1]` — the encoder ships raw rather than expand) into the
    /// estimate.
    pub fn observe(&mut self, ratio: f64) {
        let r = ratio.clamp(0.0, 1.0);
        self.estimate = Some(match self.estimate {
            None => r,
            Some(e) => RATIO_EWMA_ALPHA * r + (1.0 - RATIO_EWMA_ALPHA) * e,
        });
    }

    /// Current ratio estimate; [`CODEC_ASSUMED_RATIO`] before any
    /// observation.
    pub fn ratio(&self) -> f64 {
        self.estimate.unwrap_or(CODEC_ASSUMED_RATIO)
    }

    /// Whether at least one frame has been observed.
    pub fn observed(&self) -> bool {
        self.estimate.is_some()
    }
}

/// `⌈log₂ n⌉` (0 for n ≤ 1): tree depth / dissemination round count.
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Total point-to-point messages a gather of `n` ranks sends. Both the
/// linear and the binomial schedule ship exactly `n-1` messages — the tree
/// win is the *critical path* (see [`critical_path_recvs`]), not the
/// total.
pub fn gather_messages(_algo: CollectiveAlgo, n: usize) -> u64 {
    n.saturating_sub(1) as u64
}

/// Total messages of an allgather. Linear reference: a gather plus a tree
/// broadcast, `2(n-1)`. Bruck dissemination: every rank sends one message
/// per round, `n·⌈lg n⌉` — more wire messages, logarithmic completion.
/// CI bounds the dissemination count at `2·n·⌈lg n⌉`.
pub fn allgather_messages(algo: CollectiveAlgo, n: usize) -> u64 {
    match algo {
        CollectiveAlgo::Linear => 2 * n.saturating_sub(1) as u64,
        _ => n as u64 * u64::from(ceil_log2(n)),
    }
}

/// Total messages of a personalized all-to-all: `n(n-1)` under every
/// schedule — the pairwise win is eliminating the rank-order head-of-line
/// wait, not the message count.
pub fn alltoall_messages(_algo: CollectiveAlgo, n: usize) -> u64 {
    (n * n.saturating_sub(1)) as u64
}

/// The longest chain of receives any single rank must complete in
/// sequence — the serialization the log-time schedules exist to break.
/// Gather: the linear root drains `n-1` messages one after another, the
/// binomial root only `⌈lg n⌉`. Allgather: linear funnels through the
/// rank-0 gather then the broadcast (`(n-1) + ⌈lg n⌉`); dissemination is
/// `⌈lg n⌉` rounds flat. All-to-all: every rank receives `n-1` either
/// way (arrival order just removes the head-of-line wait).
pub fn critical_path_recvs(algo: CollectiveAlgo, op: &str, n: usize) -> u64 {
    let lg = u64::from(ceil_log2(n));
    let linear = n.saturating_sub(1) as u64;
    match (op, algo) {
        ("gather", CollectiveAlgo::Linear) => linear,
        ("gather", _) => lg,
        ("allgather", CollectiveAlgo::Linear) => linear + lg,
        ("allgather", _) => lg,
        ("alltoall", _) => linear,
        _ => panic!("unknown collective op {op:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_linear_in_bytes() {
        let cm = CostModel { latency: Duration::from_nanos(100), per_byte_ns: 2.0 };
        assert_eq!(cm.delay(0), Duration::from_nanos(100));
        assert_eq!(cm.delay(50), Duration::from_nanos(200));
    }

    #[test]
    fn interconnect_model_is_sane() {
        let cm = CostModel::interconnect();
        // 1 GiB at 10 GB/s ≈ 0.107 s (plus 1 µs latency)
        let d = cm.delay(1 << 30);
        assert!(d > Duration::from_millis(100) && d < Duration::from_millis(120));
    }

    #[test]
    fn threshold_is_the_latency_bandwidth_crossover() {
        let cm = CostModel::interconnect();
        // 1 µs / 0.1 ns-per-byte = 10_000 bytes.
        assert_eq!(cm.large_payload_threshold(), 10_000);
        let pure_latency = CostModel { latency: Duration::from_micros(5), per_byte_ns: 0.0 };
        assert_eq!(pure_latency.large_payload_threshold(), usize::MAX);
        assert_eq!(pure_latency.segment_bytes(), SEGMENT_CEIL);
    }

    #[test]
    fn ceil_log2_edges() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
    }

    #[test]
    fn log_time_schedules_beat_linear_at_64_ranks() {
        // The acceptance bar: under the interconnect model at n = 64,
        // every log-time schedule wins on modeled latency, and the
        // critical-path receive chain collapses from O(n) to O(lg n).
        let cm = CostModel::interconnect();
        let n = 64;
        let m = 512;
        assert!(
            cm.modeled_gather_ns(CollectiveAlgo::LogTime, n, m)
                < cm.modeled_gather_ns(CollectiveAlgo::Linear, n, m)
        );
        assert!(
            cm.modeled_allgather_ns(CollectiveAlgo::LogTime, n, m)
                < cm.modeled_allgather_ns(CollectiveAlgo::Linear, n, m)
        );
        let skew = 1e6; // a 1 ms straggler
        assert!(
            cm.modeled_alltoall_ns(CollectiveAlgo::LogTime, n, m, skew)
                < cm.modeled_alltoall_ns(CollectiveAlgo::Linear, n, m, skew)
        );
        assert!(
            critical_path_recvs(CollectiveAlgo::LogTime, "gather", n)
                < critical_path_recvs(CollectiveAlgo::Linear, "gather", n)
        );
        assert!(
            critical_path_recvs(CollectiveAlgo::LogTime, "allgather", n)
                < critical_path_recvs(CollectiveAlgo::Linear, "allgather", n)
        );
    }

    #[test]
    fn dissemination_messages_fit_the_ci_bound() {
        for n in [4usize, 16, 64] {
            let tree = allgather_messages(CollectiveAlgo::LogTime, n);
            assert!(tree <= 2 * n as u64 * u64::from(ceil_log2(n)));
        }
    }

    #[test]
    fn compression_pays_only_on_slow_links() {
        // Fast interconnect: 0.1 ns/B × 0.5 saved < 0.3 ns/B codec cost —
        // never compress, the zero-copy raw path stays untouched.
        let fast = CostModel::interconnect();
        assert!(!fast.compression_worthwhile(1 << 20));
        // ~1 GB/s staging-grade link: 1.0 ns/B × 0.5 saved > 0.3 ns/B.
        let slow = CostModel { latency: Duration::from_micros(2), per_byte_ns: 1.0 };
        assert!(slow.compression_worthwhile(1 << 20));
        // Latency-bound payloads below the crossover never compress.
        assert!(!slow.compression_worthwhile(1000));
        // A pure-latency model (in-proc-like) never compresses anything.
        let pure = CostModel { latency: Duration::from_micros(5), per_byte_ns: 0.0 };
        assert!(!pure.compression_worthwhile(1 << 30));
    }

    #[test]
    fn ratio_ewma_converges_to_realized_ratios() {
        // Cold start: the estimator *is* the planning constant.
        let mut ewma = RatioEwma::new();
        assert!(!ewma.observed());
        assert_eq!(ewma.ratio(), CODEC_ASSUMED_RATIO);

        // Feed a stream of frames that actually compress to 10% — the
        // estimate must converge to the realized ratio within a handful
        // of observations.
        for _ in 0..20 {
            ewma.observe(0.1);
        }
        assert!(ewma.observed());
        assert!((ewma.ratio() - 0.1).abs() < 0.01, "estimate {} far from 0.1", ewma.ratio());

        // And back: incompressible frames (shipped raw, ratio ~1) pull
        // the estimate toward 1 just as fast.
        for _ in 0..20 {
            ewma.observe(1.0);
        }
        assert!((ewma.ratio() - 1.0).abs() < 0.01, "estimate {} far from 1.0", ewma.ratio());

        // Out-of-range observations are clamped, keeping the estimate a
        // valid ratio.
        ewma.observe(7.5);
        assert!(ewma.ratio() <= 1.0);
    }

    #[test]
    fn realized_ratio_feedback_flips_the_planning_decision() {
        // A link where the constant-ratio rule says "compress" …
        let slow = CostModel { latency: Duration::from_micros(2), per_byte_ns: 1.0 };
        let bytes = 1 << 20;
        assert!(slow.compression_worthwhile(bytes));

        // … stops compressing once the EWMA learns the data is nearly
        // incompressible (saved wire time no longer covers codec CPU) …
        let mut ewma = RatioEwma::new();
        for _ in 0..20 {
            ewma.observe(0.95);
        }
        assert!(!slow.compression_worthwhile_with_ratio(bytes, ewma.ratio()));

        // … and a *faster* link that the constant rule writes off starts
        // compressing once the EWMA reports a far better realized ratio:
        // 0.4 ns/B × (1 − 0.5) = 0.2 < 0.3 codec, but × (1 − 0.1) = 0.36.
        let mid = CostModel { latency: Duration::from_micros(2), per_byte_ns: 0.4 };
        assert!(!mid.compression_worthwhile(bytes));
        let mut learned = RatioEwma::new();
        for _ in 0..20 {
            learned.observe(0.1);
        }
        assert!(mid.compression_worthwhile_with_ratio(bytes, learned.ratio()));
    }

    #[test]
    fn segmented_bcast_beats_unsegmented_when_deep_and_large() {
        let cm = CostModel::interconnect();
        // 1 MiB payload, 16 ranks: pipeline wins over depth × full-payload.
        let seg = cm.modeled_bcast_ns(CollectiveAlgo::Auto, 16, 1 << 20);
        let whole = cm.modeled_bcast_ns(CollectiveAlgo::LogTime, 16, 1 << 20);
        assert!(seg < whole, "segmented {seg} vs unsegmented {whole}");
    }
}
