//! Seeded, deterministic fault injection for the transport layer.
//!
//! A [`FaultPlan`] attached to a world (via
//! [`crate::World::builder`] → `fault_plan`) perturbs every send:
//! messages can be **delayed**, **reordered** (delivered ahead of
//! already-queued messages), **dropped once** per `(src, dest, tag)`
//! flow, and a rank can be **killed** at its Nth send.
//!
//! Every decision is a pure function of `(plan seed, world source, world
//! destination, wire tag, per-rank send sequence number)`: each send
//! seeds a fresh ChaCha8 stream from that tuple and draws its fate from
//! it. No shared RNG state means thread scheduling cannot change which
//! messages are hit — re-running the same workload with the same seed
//! reproduces the identical fault trace, which is what makes chaos-test
//! failures replayable.
//!
//! Scope of each fault:
//!
//! * **delay** applies to every message, including collectives — it only
//!   stretches time, never changes matching order between a pair.
//! * **reorder** and **drop** apply to user-tag messages only (tags below
//!   the reserved collective range). Collective flows have no retry
//!   protocol and rely on pairwise FIFO; the faults model transport-level
//!   trouble that the RPC layer's timeouts, call ids, and bounded retry
//!   are expected to absorb.
//! * **kill** unwinds the rank's thread with a [`RankKilled`] panic
//!   payload the moment it attempts its Nth **user-tag** send; use
//!   [`crate::WorldBuilder::run_chaos`] to catch the death, mark the rank
//!   dead for [`crate::Comm::recv_timeout`] callers, and keep the
//!   surviving ranks running. Collective-internal sends don't advance
//!   the kill counter: setup collectives (communicator splits, context
//!   allocation) would otherwise shift every kill point by an
//!   algorithm-dependent amount, and a rank dying mid-collective takes
//!   the whole job down rather than exercising any recovery path. To
//!   place a kill, count the protocol messages the victim sends —
//!   e.g. one RPC reply per request served.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::envelope::{split_wire_tag, WireTag};

/// Kill directive: `rank` dies at its `at_send`-th user-tag send
/// (1-based; collective-internal sends don't count — see the module
/// docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    pub rank: usize,
    pub at_send: u64,
}

/// A seeded description of which faults to inject.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    delay_prob: f64,
    max_delay: Duration,
    reorder_prob: f64,
    drop_prob: f64,
    kills: Vec<KillSpec>,
}

impl FaultPlan {
    /// A plan that injects nothing until faults are enabled on it.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_prob: 0.0,
            max_delay: Duration::ZERO,
            reorder_prob: 0.0,
            drop_prob: 0.0,
            kills: Vec::new(),
        }
    }

    /// The seed all fault decisions derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Delay each message with probability `prob` by a seed-determined
    /// duration in `[0, max]` (slept on the sender before delivery).
    pub fn delay(mut self, prob: f64, max: Duration) -> Self {
        self.delay_prob = prob;
        self.max_delay = max;
        self
    }

    /// Deliver each user-tag message with probability `prob` *ahead of*
    /// everything already queued at the destination, violating pairwise
    /// FIFO for same-`(src, tag)` flows.
    pub fn reorder(mut self, prob: f64) -> Self {
        self.reorder_prob = prob;
        self
    }

    /// Drop a user-tag message with probability `prob`, at most once per
    /// `(src, dest, tag)` flow — so a retry of the lost message always
    /// gets through, and recovery is exercised exactly once per flow.
    pub fn drop_once(mut self, prob: f64) -> Self {
        self.drop_prob = prob;
        self
    }

    /// Kill world rank `rank` at its `at_send`-th user-tag send
    /// (1-based; collective-internal sends don't advance the counter).
    pub fn kill_rank(mut self, rank: usize, at_send: u64) -> Self {
        self.kills.push(KillSpec { rank, at_send });
        self
    }

    /// Does the plan kill any rank?
    pub fn has_kills(&self) -> bool {
        !self.kills.is_empty()
    }
}

/// What was done to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    Delayed(Duration),
    Reordered,
    Dropped,
    Killed,
}

/// One entry of the fault trace. Ordered by `(src, seq)`, which totally
/// orders the trace because `seq` is the per-rank send counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// Sending world rank.
    pub src: usize,
    /// 1-based sequence number of the send on `src`. For
    /// [`FaultKind::Killed`] this is the **user-tag** send sequence the
    /// kill was specified against, not the raw send count.
    pub seq: u64,
    /// Destination world rank. For [`FaultKind::Killed`] this is `src`:
    /// which message a rank was attempting at its Nth send depends on
    /// thread scheduling (ANY_SOURCE servers), so message identity is not
    /// part of the deterministic trace for kills.
    pub dest: usize,
    /// Communicator context the message was sent on (0 for kills).
    pub ctx: u32,
    /// User tag of the message (0 for kills).
    pub tag: u32,
    pub kind: FaultKind,
}

/// Panic payload used when a fault plan kills a rank; `run_chaos`
/// recognizes it to report the death as injected rather than accidental.
#[derive(Debug, Clone, Copy)]
pub struct RankKilled {
    pub rank: usize,
    pub at_send: u64,
}

/// Panic payload of a cascading death: a *blocking* receive was waiting
/// on a specific rank that died, so the receive can never complete and
/// the receiver goes down with it — the behavior of a real MPI job.
/// Ranks that must survive peer deaths use
/// [`crate::Comm::recv_timeout`], which reports
/// [`crate::RecvError::PeerDead`] instead.
#[derive(Debug, Clone, Copy)]
pub struct PeerDied {
    /// The rank whose receive could never complete.
    pub receiver: usize,
    /// The dead rank it was waiting on.
    pub peer: usize,
}

/// The sender's instruction after consulting the plan.
pub(crate) enum SendFate {
    /// Deliver normally (any delay has already been slept).
    Deliver,
    /// Deliver at the front of the destination queue.
    DeliverFront,
    /// Silently discard the message.
    Drop,
    /// The sending rank dies instead of sending.
    Kill(RankKilled),
}

/// Per-run mutable fault state shared by all ranks.
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Per-world-rank send counters (atomic: a rank's helper threads —
    /// e.g. an async serve loop — share its counter).
    send_seq: Vec<AtomicU64>,
    /// Per-world-rank **user-tag** send counters — the sequence kills
    /// are specified against (collective framing excluded).
    user_send_seq: Vec<AtomicU64>,
    /// `(src, dest, wire_tag)` flows that already lost a message.
    dropped: Mutex<HashSet<(usize, usize, WireTag)>>,
    trace: Mutex<Vec<FaultEvent>>,
}

impl FaultState {
    pub fn new(plan: FaultPlan, world_size: usize) -> Self {
        FaultState {
            plan,
            send_seq: (0..world_size).map(|_| AtomicU64::new(0)).collect(),
            user_send_seq: (0..world_size).map(|_| AtomicU64::new(0)).collect(),
            dropped: Mutex::new(HashSet::new()),
            trace: Mutex::new(Vec::new()),
        }
    }

    /// Decide the fate of one send. Sleeps the injected delay in place.
    pub fn pre_send(&self, src: usize, dest: usize, wire_tag: WireTag) -> SendFate {
        let seq = self.send_seq[src].fetch_add(1, Ordering::Relaxed) + 1;
        let (ctx, tag) = split_wire_tag(wire_tag);
        let user_tag = tag < crate::collectives::COLLECTIVE_TAG_BASE;
        let record = |kind: FaultKind| {
            self.trace.lock().push(FaultEvent { src, seq, dest, ctx, tag, kind });
        };

        if user_tag {
            let useq = self.user_send_seq[src].fetch_add(1, Ordering::Relaxed) + 1;
            if self.plan.kills.iter().any(|k| k.rank == src && k.at_send == useq) {
                // A kill is a property of the sender (its Nth user-tag
                // send), not of the message it happened to be attempting:
                // under ANY_SOURCE servers, which destination is current
                // at send N depends on thread scheduling. Recording only
                // sender facts keeps the trace bit-identical across
                // replays of the same seed.
                self.trace.lock().push(FaultEvent {
                    src,
                    seq: useq,
                    dest: src,
                    ctx: 0,
                    tag: 0,
                    kind: FaultKind::Killed,
                });
                return SendFate::Kill(RankKilled { rank: src, at_send: useq });
            }
        }

        // Draw the fates in a fixed order from a stream owned by this
        // message alone, so enabling one fault never re-rolls another.
        let mut rng =
            ChaCha8Rng::seed_from_u64(decision_seed(self.plan.seed, src, dest, wire_tag, seq));
        let roll_drop: f64 = rng.gen();
        let roll_delay: f64 = rng.gen();
        let delay_frac: f64 = rng.gen();
        let roll_reorder: f64 = rng.gen();

        if user_tag
            && roll_drop < self.plan.drop_prob
            && self.dropped.lock().insert((src, dest, wire_tag))
        {
            record(FaultKind::Dropped);
            return SendFate::Drop;
        }
        if roll_delay < self.plan.delay_prob && !self.plan.max_delay.is_zero() {
            let d = self.plan.max_delay.mul_f64(delay_frac);
            record(FaultKind::Delayed(d));
            std::thread::sleep(d);
        }
        if user_tag && roll_reorder < self.plan.reorder_prob {
            record(FaultKind::Reordered);
            return SendFate::DeliverFront;
        }
        SendFate::Deliver
    }

    /// The trace so far, in deterministic `(src, seq)` order.
    pub fn trace(&self) -> Vec<FaultEvent> {
        let mut t = self.trace.lock().clone();
        t.sort_unstable();
        t
    }
}

/// SplitMix64-style finalizer mixing the decision tuple into one seed.
fn decision_seed(seed: u64, src: usize, dest: usize, wire_tag: WireTag, seq: u64) -> u64 {
    let mut s = seed;
    for v in [src as u64, dest as u64, wire_tag, seq] {
        s ^= v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        s = rand::splitmix64(&mut s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::make_wire_tag;

    fn state(plan: FaultPlan) -> FaultState {
        FaultState::new(plan, 4)
    }

    #[test]
    fn no_faults_by_default() {
        let fs = state(FaultPlan::new(1));
        for _ in 0..100 {
            assert!(matches!(fs.pre_send(0, 1, make_wire_tag(0, 7)), SendFate::Deliver));
        }
        assert!(fs.trace().is_empty());
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let plan = FaultPlan::new(99).drop_once(0.3).reorder(0.3);
        let run = || {
            let fs = state(plan.clone());
            for i in 0..50 {
                let _ = fs.pre_send(0, 1, make_wire_tag(0, i));
            }
            fs.trace()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty(), "0.3 probability over 50 sends should fire");
    }

    #[test]
    fn drop_fires_once_per_flow() {
        let fs = state(FaultPlan::new(5).drop_once(1.0));
        assert!(matches!(fs.pre_send(0, 1, make_wire_tag(0, 3)), SendFate::Drop));
        // Same flow again: the retry must pass.
        assert!(matches!(fs.pre_send(0, 1, make_wire_tag(0, 3)), SendFate::Deliver));
        // A different flow gets its own single drop.
        assert!(matches!(fs.pre_send(0, 2, make_wire_tag(0, 3)), SendFate::Drop));
    }

    #[test]
    fn collective_tags_exempt_from_drop_and_reorder() {
        let fs = state(FaultPlan::new(5).drop_once(1.0).reorder(1.0));
        let wire = make_wire_tag(0, crate::collectives::COLLECTIVE_TAG_BASE + 1);
        for _ in 0..10 {
            assert!(matches!(fs.pre_send(0, 1, wire), SendFate::Deliver));
        }
    }

    #[test]
    fn kill_fires_at_exact_send() {
        let fs = state(FaultPlan::new(5).kill_rank(2, 3));
        let wire = make_wire_tag(0, 1);
        assert!(matches!(fs.pre_send(2, 0, wire), SendFate::Deliver));
        assert!(matches!(fs.pre_send(2, 0, wire), SendFate::Deliver));
        match fs.pre_send(2, 0, wire) {
            SendFate::Kill(k) => assert_eq!((k.rank, k.at_send), (2, 3)),
            _ => panic!("third send of rank 2 must kill"),
        }
        // Other ranks are unaffected.
        for _ in 0..5 {
            assert!(matches!(fs.pre_send(1, 0, wire), SendFate::Deliver));
        }
    }

    #[test]
    fn collective_sends_do_not_advance_the_kill_counter() {
        let fs = state(FaultPlan::new(5).kill_rank(2, 2));
        let user = make_wire_tag(0, 1);
        let coll = make_wire_tag(0, crate::collectives::COLLECTIVE_TAG_BASE);
        // A communicator split's worth of collective framing up front
        // must not shift the kill point.
        for _ in 0..7 {
            assert!(matches!(fs.pre_send(2, 0, coll), SendFate::Deliver));
        }
        assert!(matches!(fs.pre_send(2, 0, user), SendFate::Deliver));
        // More collective traffic between user sends changes nothing.
        assert!(matches!(fs.pre_send(2, 0, coll), SendFate::Deliver));
        match fs.pre_send(2, 0, user) {
            SendFate::Kill(k) => assert_eq!((k.rank, k.at_send), (2, 2)),
            _ => panic!("second user send of rank 2 must kill"),
        }
    }

    #[test]
    fn trace_orders_by_src_then_seq() {
        let fs = state(FaultPlan::new(7).drop_once(1.0));
        let _ = fs.pre_send(3, 0, make_wire_tag(0, 1));
        let _ = fs.pre_send(1, 0, make_wire_tag(0, 1));
        let _ = fs.pre_send(1, 0, make_wire_tag(0, 2));
        let t = fs.trace();
        let keys: Vec<(usize, u64)> = t.iter().map(|e| (e.src, e.seq)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
