//! Task worlds: multiple workflow tasks (producer, consumer, staging, …)
//! sharing one rank space.
//!
//! An in situ workflow in the paper is "a collection of programs executing
//! concurrently"; each *task* is an MPI program with its own communicator,
//! and cross-task transport (LowFive, DataSpaces, …) runs over a shared
//! world. [`TaskWorld::run`] reproduces that layout: it partitions `N`
//! world ranks into contiguous tasks per the given [`TaskSpec`]s, gives
//! every rank a task-local communicator plus the world communicator, and
//! exposes rank translation between the two.

use crate::comm::Comm;
use crate::cost::CostModel;
use crate::fault::FaultPlan;
use crate::transport::TransportKind;
use crate::world::{ChaosOutput, RunOutput, World};

/// One task's name and process count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Human-readable task name (e.g. `"producer"`).
    pub name: String,
    /// Number of ranks allocated to the task.
    pub procs: usize,
}

impl TaskSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, procs: usize) -> Self {
        TaskSpec { name: name.into(), procs }
    }
}

/// A rank's view of a task world.
#[derive(Debug, Clone)]
pub struct TaskComm {
    /// Index of this rank's task in the spec list.
    pub task_id: usize,
    /// Name of this rank's task.
    pub task_name: String,
    /// Communicator over this task's ranks only.
    pub local: Comm,
    /// Communicator over all ranks of all tasks.
    pub world: Comm,
    /// Starting world rank of each task (same order as the specs), plus a
    /// final entry equal to the world size.
    pub task_offsets: Vec<usize>,
}

impl TaskComm {
    /// World rank of `local_rank` within task `task_id`.
    pub fn world_rank_of(&self, task_id: usize, local_rank: usize) -> usize {
        let base = self.task_offsets[task_id];
        let end = self.task_offsets[task_id + 1];
        assert!(base + local_rank < end, "local rank {local_rank} out of range for task {task_id}");
        base + local_rank
    }

    /// Number of ranks in task `task_id`.
    pub fn task_size(&self, task_id: usize) -> usize {
        self.task_offsets[task_id + 1] - self.task_offsets[task_id]
    }

    /// Which task owns `world_rank`.
    pub fn task_of_world_rank(&self, world_rank: usize) -> usize {
        debug_assert!(world_rank < *self.task_offsets.last().expect("nonempty"));
        match self.task_offsets.binary_search(&world_rank) {
            Ok(i) if i + 1 < self.task_offsets.len() => i,
            Ok(i) => i - 1, // world_rank == world size can't happen; defensive
            Err(i) => i - 1,
        }
    }

    /// Number of tasks in the world.
    pub fn num_tasks(&self) -> usize {
        self.task_offsets.len() - 1
    }
}

/// Runner that lays tasks out over a single world.
pub struct TaskWorld;

impl TaskWorld {
    /// Run all tasks; each rank executes `f` with its [`TaskComm`].
    /// Results are returned in world-rank order.
    pub fn run<R, F>(specs: &[TaskSpec], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(TaskComm) -> R + Send + Sync,
    {
        Self::run_with(specs, None, f).results
    }

    /// As [`TaskWorld::run`], with an optional cost model, returning
    /// transport statistics too.
    pub fn run_with<R, F>(specs: &[TaskSpec], cost: Option<CostModel>, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(TaskComm) -> R + Send + Sync,
    {
        Self::run_observed(specs, cost, None, f)
    }

    /// As [`TaskWorld::run_with`], recording spans/counters/histograms
    /// into `observe` (one recorder lane per world rank) when given.
    pub fn run_observed<R, F>(
        specs: &[TaskSpec],
        cost: Option<CostModel>,
        observe: Option<&obsv::Registry>,
        f: F,
    ) -> RunOutput<R>
    where
        R: Send,
        F: Fn(TaskComm) -> R + Send + Sync,
    {
        Self::run_observed_on(specs, cost, observe, TransportKind::from_env(), f)
    }

    /// As [`TaskWorld::run_observed`], pinning the delivery backend
    /// explicitly. A/B equivalence tests run the same workload over
    /// [`TransportKind::InProc`] and [`TransportKind::Socket`] with this,
    /// instead of racing on the process-global `SIMMPI_TRANSPORT`
    /// environment variable from parallel test threads.
    pub fn run_observed_on<R, F>(
        specs: &[TaskSpec],
        cost: Option<CostModel>,
        observe: Option<&obsv::Registry>,
        transport: TransportKind,
        f: F,
    ) -> RunOutput<R>
    where
        R: Send,
        F: Fn(TaskComm) -> R + Send + Sync,
    {
        let (offsets, total) = layout(specs);
        let offsets_ref = &offsets;
        let f = &f;
        let mut builder = World::builder(total).transport(transport);
        if let Some(cm) = cost {
            builder = builder.cost_model(cm);
        }
        if let Some(reg) = observe {
            builder = builder.observe(reg.clone());
        }
        builder.run(move |world| dispatch(specs, offsets_ref, world, f))
    }

    /// As [`TaskWorld::run_with`], under a seeded [`FaultPlan`], surviving
    /// rank deaths (see [`crate::WorldBuilder::run_chaos`]).
    pub fn run_chaos<R, F>(
        specs: &[TaskSpec],
        cost: Option<CostModel>,
        plan: FaultPlan,
        f: F,
    ) -> ChaosOutput<R>
    where
        R: Send,
        F: Fn(TaskComm) -> R + Send + Sync,
    {
        Self::run_chaos_observed(specs, cost, plan, None, f)
    }

    /// As [`TaskWorld::run_chaos`], recording spans/counters/histograms
    /// into `observe` when given — the combination the chaos test suites
    /// need to assert recovery counters (failovers, read repairs) from a
    /// fault-injected run's metrics JSON.
    pub fn run_chaos_observed<R, F>(
        specs: &[TaskSpec],
        cost: Option<CostModel>,
        plan: FaultPlan,
        observe: Option<&obsv::Registry>,
        f: F,
    ) -> ChaosOutput<R>
    where
        R: Send,
        F: Fn(TaskComm) -> R + Send + Sync,
    {
        Self::run_chaos_observed_on(specs, cost, plan, observe, TransportKind::from_env(), f)
    }

    /// As [`TaskWorld::run_chaos_observed`], pinning the delivery backend
    /// explicitly (see [`TaskWorld::run_observed_on`]).
    pub fn run_chaos_observed_on<R, F>(
        specs: &[TaskSpec],
        cost: Option<CostModel>,
        plan: FaultPlan,
        observe: Option<&obsv::Registry>,
        transport: TransportKind,
        f: F,
    ) -> ChaosOutput<R>
    where
        R: Send,
        F: Fn(TaskComm) -> R + Send + Sync,
    {
        let (offsets, total) = layout(specs);
        let offsets_ref = &offsets;
        let f = &f;
        let mut builder = World::builder(total).fault_plan(plan).transport(transport);
        if let Some(cm) = cost {
            builder = builder.cost_model(cm);
        }
        if let Some(reg) = observe {
            builder = builder.observe(reg.clone());
        }
        builder.run_chaos(move |world| dispatch(specs, offsets_ref, world, f))
    }
}

/// Task offsets plus total rank count for a spec list.
fn layout(specs: &[TaskSpec]) -> (Vec<usize>, usize) {
    assert!(!specs.is_empty(), "need at least one task");
    assert!(specs.iter().all(|s| s.procs > 0), "every task needs at least one rank");
    let mut offsets = Vec::with_capacity(specs.len() + 1);
    let mut acc = 0usize;
    for s in specs {
        offsets.push(acc);
        acc += s.procs;
    }
    offsets.push(acc);
    (offsets, acc)
}

/// Build one rank's [`TaskComm`] and run the task body.
fn dispatch<R, F>(specs: &[TaskSpec], offsets: &[usize], world: Comm, f: &F) -> R
where
    F: Fn(TaskComm) -> R,
{
    let rank = world.rank();
    let task_id = match offsets.binary_search(&rank) {
        Ok(i) if i < specs.len() => i,
        Ok(i) => i - 1,
        Err(i) => i - 1,
    };
    let local = world.split(task_id, rank);
    f(TaskComm {
        task_id,
        task_name: specs[task_id].name.clone(),
        local,
        world,
        task_offsets: offsets.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::ANY_SOURCE;

    fn specs() -> Vec<TaskSpec> {
        vec![TaskSpec::new("producer", 3), TaskSpec::new("consumer", 2)]
    }

    #[test]
    fn layout_and_translation() {
        TaskWorld::run(&specs(), |tc| {
            assert_eq!(tc.task_offsets, vec![0, 3, 5]);
            assert_eq!(tc.num_tasks(), 2);
            assert_eq!(tc.task_size(0), 3);
            assert_eq!(tc.task_size(1), 2);
            if tc.world.rank() < 3 {
                assert_eq!(tc.task_id, 0);
                assert_eq!(tc.task_name, "producer");
                assert_eq!(tc.local.size(), 3);
                assert_eq!(tc.local.rank(), tc.world.rank());
            } else {
                assert_eq!(tc.task_id, 1);
                assert_eq!(tc.local.size(), 2);
                assert_eq!(tc.local.rank(), tc.world.rank() - 3);
            }
            assert_eq!(tc.world_rank_of(1, 0), 3);
            assert_eq!(tc.task_of_world_rank(0), 0);
            assert_eq!(tc.task_of_world_rank(2), 0);
            assert_eq!(tc.task_of_world_rank(3), 1);
            assert_eq!(tc.task_of_world_rank(4), 1);
        });
    }

    #[test]
    fn cross_task_messaging() {
        TaskWorld::run(&specs(), |tc| {
            if tc.task_id == 0 {
                // Every producer rank sends its world rank to consumer 0.
                let dest = tc.world_rank_of(1, 0);
                tc.world.send_u64s(dest, 9, &[tc.world.rank() as u64]);
            } else if tc.local.rank() == 0 {
                let mut got: Vec<u64> =
                    (0..3).map(|_| tc.world.recv_u64s(ANY_SOURCE, 9.into()).1[0]).collect();
                got.sort_unstable();
                assert_eq!(got, vec![0, 1, 2]);
            }
        });
    }

    #[test]
    fn local_collectives_are_task_scoped() {
        TaskWorld::run(&specs(), |tc| {
            let sum = tc.local.allreduce_one::<u64, _>(1, |a, b| a + b);
            assert_eq!(sum, tc.task_size(tc.task_id) as u64);
        });
    }

    #[test]
    fn three_tasks() {
        let specs =
            vec![TaskSpec::new("sim", 4), TaskSpec::new("staging", 2), TaskSpec::new("viz", 1)];
        let ids = TaskWorld::run(&specs, |tc| tc.task_id);
        assert_eq!(ids, vec![0, 0, 0, 0, 1, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_task_rejected() {
        TaskWorld::run(&[TaskSpec::new("x", 0)], |_tc| ());
    }
}
