//! Collective operations over a [`Comm`].
//!
//! All collectives are built from point-to-point messages on reserved tags
//! (top bit set), so they share the pairwise-FIFO guarantees of the
//! transport. Algorithms are the classic ones: dissemination barrier,
//! binomial-tree broadcast, linear gather/scatter (variable-length payloads
//! make every gather a gatherv). Sizes here are at most a few hundred
//! ranks, so linear collectives at the root are not a bottleneck; the
//! broadcast and barrier are logarithmic because they sit on the critical
//! path of every LowFive file-close synchronization.

use bytes::{BufMut, Bytes, BytesMut};

use crate::comm::Comm;
use crate::envelope::Tag;
use crate::pod::{self, Pod};

/// Tags at or above this value are reserved for collective internals.
pub(crate) const COLLECTIVE_TAG_BASE: Tag = 0x8000_0000;

const TAG_BARRIER: Tag = COLLECTIVE_TAG_BASE; // + round number (≤ 64)
const TAG_BCAST: Tag = COLLECTIVE_TAG_BASE + 0x100;
const TAG_GATHER: Tag = COLLECTIVE_TAG_BASE + 0x101;
const TAG_SCATTER: Tag = COLLECTIVE_TAG_BASE + 0x102;
const TAG_ALLTOALL: Tag = COLLECTIVE_TAG_BASE + 0x103;

impl Comm {
    /// Dissemination barrier: every rank blocks until all ranks arrive.
    pub fn barrier(&self) {
        obsv::counter_add(obsv::Ctr::Collectives, 1);
        let n = self.size();
        if n == 1 {
            return;
        }
        let mut k = 0u32;
        let mut dist = 1usize;
        while dist < n {
            let to = (self.rank() + dist) % n;
            let from = (self.rank() + n - dist) % n;
            self.send_internal(to, TAG_BARRIER + k, Bytes::new().into());
            let _ = self.recv(from.into(), (TAG_BARRIER + k).into());
            dist <<= 1;
            k += 1;
        }
    }

    /// Binomial-tree broadcast. `root` passes `Some(data)`; everyone
    /// receives the broadcast value.
    pub fn bcast_bytes(&self, root: usize, data: Option<Bytes>) -> Bytes {
        obsv::counter_add(obsv::Ctr::Collectives, 1);
        let n = self.size();
        let vrank = (self.rank() + n - root) % n;
        let mut buf = if vrank == 0 {
            data.expect("broadcast root must supply data")
        } else {
            // Find my parent: clear the lowest set bit of vrank.
            let mut mask = 1usize;
            while vrank & mask == 0 {
                mask <<= 1;
            }
            let vparent = vrank & !mask;
            let parent = (vparent + root) % n;
            self.recv(parent.into(), TAG_BCAST.into()).payload
        };
        // Forward to children: vrank + mask for masks above my lowest set
        // bit boundary.
        let mut mask = match vrank {
            0 => {
                // Root forwards on all masks up to n.
                let mut m = 1usize;
                while m < n {
                    m <<= 1;
                }
                m >> 1
            }
            v => {
                let mut m = 1usize;
                while v & m == 0 {
                    m <<= 1;
                }
                m >> 1
            }
        };
        while mask > 0 {
            let vchild = vrank + mask;
            if vchild < n {
                let child = (vchild + root) % n;
                self.send_internal(child, TAG_BCAST, buf.clone().into());
            }
            mask >>= 1;
        }
        // Make `buf` used uniformly.
        if vrank == 0 {
            buf = buf.clone();
        }
        buf
    }

    /// Broadcast a typed value from `root`.
    pub fn bcast_one<T: Pod>(&self, root: usize, value: Option<T>) -> T {
        let payload = value.map(|v| pod::to_bytes(&[v]));
        pod::from_bytes::<T>(&self.bcast_bytes(root, payload))[0]
    }

    /// Gather every rank's payload at `root` (variable lengths allowed).
    /// Returns `Some(vec indexed by rank)` at root, `None` elsewhere.
    pub fn gather_bytes(&self, root: usize, data: Bytes) -> Option<Vec<Bytes>> {
        obsv::counter_add(obsv::Ctr::Collectives, 1);
        if self.rank() != root {
            self.send_internal(root, TAG_GATHER, data.into());
            return None;
        }
        let mut out: Vec<Bytes> = vec![Bytes::new(); self.size()];
        out[root] = data;
        for (r, slot) in out.iter_mut().enumerate() {
            if r == root {
                continue;
            }
            *slot = self.recv(r.into(), TAG_GATHER.into()).payload;
        }
        Some(out)
    }

    /// Scatter one payload to each rank from `root`; returns this rank's
    /// piece. `parts` must be `Some` (length = size) at root.
    pub fn scatter_bytes(&self, root: usize, parts: Option<Vec<Bytes>>) -> Bytes {
        obsv::counter_add(obsv::Ctr::Collectives, 1);
        if self.rank() == root {
            let parts = parts.expect("scatter root must supply parts");
            assert_eq!(parts.len(), self.size(), "scatter needs one part per rank");
            let mut mine = Bytes::new();
            for (r, p) in parts.into_iter().enumerate() {
                if r == root {
                    mine = p;
                } else {
                    self.send_internal(r, TAG_SCATTER, p.into());
                }
            }
            mine
        } else {
            self.recv(root.into(), TAG_SCATTER.into()).payload
        }
    }

    /// Personalized all-to-all: send `parts[i]` to rank `i`, receive one
    /// payload from every rank (variable lengths — `MPI_Alltoallv`).
    /// Returns payloads indexed by source rank.
    pub fn alltoall_bytes(&self, parts: Vec<Bytes>) -> Vec<Bytes> {
        obsv::counter_add(obsv::Ctr::Collectives, 1);
        assert_eq!(parts.len(), self.size(), "one part per rank");
        let mut out: Vec<Bytes> = vec![Bytes::new(); self.size()];
        for (dest, p) in parts.into_iter().enumerate() {
            if dest == self.rank() {
                out[dest] = p;
            } else {
                self.send_internal(dest, TAG_ALLTOALL, p.into());
            }
        }
        for (src, slot) in out.iter_mut().enumerate() {
            if src == self.rank() {
                continue;
            }
            *slot = self.recv(src.into(), TAG_ALLTOALL.into()).payload;
        }
        out
    }

    /// All ranks obtain every rank's payload, indexed by rank.
    pub fn allgather_bytes(&self, data: Bytes) -> Vec<Bytes> {
        let gathered = self.gather_bytes(0, data);
        let framed =
            if self.rank() == 0 { Some(frame(gathered.expect("rank 0 gathered"))) } else { None };
        unframe(&self.bcast_bytes(0, framed))
    }

    /// All-gather a single typed value per rank.
    pub fn allgather_one<T: Pod>(&self, value: T) -> Vec<T> {
        self.allgather_bytes(pod::to_bytes(&[value]))
            .iter()
            .map(|b| pod::from_bytes::<T>(b)[0])
            .collect()
    }

    /// Reduce one typed value per rank with `op`; result at `root`.
    pub fn reduce_one<T: Pod, F: Fn(T, T) -> T>(&self, root: usize, value: T, op: F) -> Option<T> {
        let gathered = self.gather_bytes(root, pod::to_bytes(&[value]))?;
        let mut it = gathered.iter().map(|b| pod::from_bytes::<T>(b)[0]);
        let first = it.next().expect("at least one rank");
        Some(it.fold(first, op))
    }

    /// All-reduce one typed value per rank with `op`.
    pub fn allreduce_one<T: Pod, F: Fn(T, T) -> T>(&self, value: T, op: F) -> T {
        let reduced = self.reduce_one(0, value, op);
        self.bcast_one(0, reduced)
    }

    /// Exclusive prefix sum of `value` over ranks (rank 0 gets 0).
    pub fn exscan_u64(&self, value: u64) -> u64 {
        let all = self.allgather_one::<u64>(value);
        all[..self.rank()].iter().sum()
    }

    /// Element-wise all-reduce of equal-length typed vectors
    /// (`MPI_Allreduce` on an array): every rank gets
    /// `op(v₀[i], v₁[i], …)` per element.
    pub fn allreduce_vec<T: Pod, F: Fn(T, T) -> T>(&self, values: &[T], op: F) -> Vec<T> {
        let gathered = self.allgather_bytes(pod::to_bytes(values));
        let mut acc: Vec<T> = pod::from_bytes(&gathered[0]);
        for b in &gathered[1..] {
            let v: Vec<T> = pod::from_bytes(b);
            assert_eq!(v.len(), acc.len(), "allreduce_vec length mismatch across ranks");
            for (a, x) in acc.iter_mut().zip(v) {
                *a = op(*a, x);
            }
        }
        acc
    }

    /// Combined send and receive (`MPI_Sendrecv`): ship `payload` to
    /// `dest` and return the message received from `src`, deadlock-free
    /// under any pairing because sends are buffered.
    pub fn sendrecv<B: Into<Bytes>>(&self, dest: usize, src: usize, tag: Tag, payload: B) -> Bytes {
        self.send(dest, tag, payload);
        self.recv(src.into(), tag.into()).payload
    }
}

fn frame(parts: Vec<Bytes>) -> Bytes {
    let total: usize = 8 + parts.iter().map(|p| 8 + p.len()).sum::<usize>();
    let mut buf = BytesMut::with_capacity(total);
    buf.put_u64_le(parts.len() as u64);
    for p in &parts {
        buf.put_u64_le(p.len() as u64);
        buf.put_slice(p);
    }
    buf.freeze()
}

fn unframe(data: &Bytes) -> Vec<Bytes> {
    let mut off = 0usize;
    let read_u64 = |off: &mut usize| {
        let v = u64::from_le_bytes(data[*off..*off + 8].try_into().expect("8 bytes"));
        *off += 8;
        v
    };
    let count = read_u64(&mut off) as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let len = read_u64(&mut off) as usize;
        out.push(data.slice(off..off + len));
        off += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn barrier_all_sizes() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            World::run(n, |c| {
                for _ in 0..3 {
                    c.barrier();
                }
            });
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for n in [1usize, 2, 5, 9] {
            for root in 0..n {
                World::run(n, move |c| {
                    let data = if c.rank() == root {
                        Some(Bytes::from(format!("hello-{root}")))
                    } else {
                        None
                    };
                    let got = c.bcast_bytes(root, data);
                    assert_eq!(&got[..], format!("hello-{root}").as_bytes());
                });
            }
        }
    }

    #[test]
    fn gather_preserves_rank_order_and_lengths() {
        World::run(5, |c| {
            let mine = Bytes::from(vec![c.rank() as u8; c.rank() + 1]);
            if let Some(all) = c.gather_bytes(2, mine) {
                assert_eq!(c.rank(), 2);
                for (r, b) in all.iter().enumerate() {
                    assert_eq!(b.len(), r + 1);
                    assert!(b.iter().all(|&x| x == r as u8));
                }
            }
        });
    }

    #[test]
    fn scatter_delivers_each_part() {
        World::run(4, |c| {
            let parts =
                (c.rank() == 1).then(|| (0..4).map(|r| Bytes::from(vec![r as u8; 3])).collect());
            let mine = c.scatter_bytes(1, parts);
            assert_eq!(&mine[..], &[c.rank() as u8; 3]);
        });
    }

    #[test]
    fn allgather_matches_ranks() {
        World::run(6, |c| {
            let all = c.allgather_one::<u64>(c.rank() as u64 * 7);
            assert_eq!(all, (0..6).map(|r| r * 7).collect::<Vec<u64>>());
        });
    }

    #[test]
    fn reductions() {
        World::run(7, |c| {
            let sum = c.allreduce_one::<u64, _>(c.rank() as u64, |a, b| a + b);
            assert_eq!(sum, 21);
            let max = c.allreduce_one::<u64, _>(c.rank() as u64, std::cmp::max);
            assert_eq!(max, 6);
            let min_at_3 = c.reduce_one::<u64, _>(3, c.rank() as u64 + 10, std::cmp::min);
            if c.rank() == 3 {
                assert_eq!(min_at_3, Some(10));
            } else {
                assert!(min_at_3.is_none());
            }
        });
    }

    #[test]
    fn exscan_is_exclusive_prefix_sum() {
        World::run(5, |c| {
            let v = (c.rank() as u64 + 1) * 2; // 2,4,6,8,10
            let pre = c.exscan_u64(v);
            let expect: u64 = (0..c.rank()).map(|r| (r as u64 + 1) * 2).sum();
            assert_eq!(pre, expect);
        });
    }

    #[test]
    fn collectives_on_split_comms() {
        World::run(8, |c| {
            let sub = c.split(c.rank() % 2, c.rank());
            let sum = sub.allreduce_one::<u64, _>(c.rank() as u64, |a, b| a + b);
            let expect: u64 = (0..8).filter(|r| r % 2 == c.rank() % 2).sum::<usize>() as u64;
            assert_eq!(sum, expect);
        });
    }

    #[test]
    fn alltoall_exchanges_personalized_payloads() {
        World::run(5, |c| {
            // parts[d] = [my_rank, d] as bytes.
            let parts: Vec<Bytes> =
                (0..5).map(|d| Bytes::from(vec![c.rank() as u8, d as u8])).collect();
            let got = c.alltoall_bytes(parts);
            for (src, b) in got.iter().enumerate() {
                assert_eq!(&b[..], &[src as u8, c.rank() as u8]);
            }
        });
    }

    #[test]
    fn alltoall_with_empty_parts() {
        World::run(3, |c| {
            let parts: Vec<Bytes> = (0..3)
                .map(|d| if d == 0 { Bytes::new() } else { Bytes::from(vec![d as u8; d]) })
                .collect();
            let got = c.alltoall_bytes(parts);
            // Every source sent me the part destined to my rank: empty for
            // rank 0, `rank` bytes of value `rank` otherwise.
            if c.rank() == 0 {
                assert!(got.iter().all(|b| b.is_empty()));
            } else {
                assert!(got
                    .iter()
                    .all(|b| b.len() == c.rank() && b.iter().all(|&x| x == c.rank() as u8)));
            }
        });
    }

    #[test]
    fn repeated_alltoalls_do_not_cross() {
        World::run(4, |c| {
            for round in 0..10u8 {
                let parts: Vec<Bytes> =
                    (0..4).map(|_| Bytes::from(vec![round, c.rank() as u8])).collect();
                let got = c.alltoall_bytes(parts);
                for (src, b) in got.iter().enumerate() {
                    assert_eq!(&b[..], &[round, src as u8]);
                }
            }
        });
    }

    #[test]
    fn allreduce_vec_elementwise() {
        World::run(4, |c| {
            let mine: Vec<u64> = (0..6).map(|i| (c.rank() as u64 + 1) * (i + 1)).collect();
            let sums = c.allreduce_vec(&mine, |a: u64, b| a + b);
            // Σ_r (r+1)(i+1) = 10(i+1) for 4 ranks.
            assert_eq!(sums, (0..6).map(|i| 10 * (i + 1)).collect::<Vec<u64>>());
            let maxs = c.allreduce_vec(&mine, std::cmp::max::<u64>);
            assert_eq!(maxs, (0..6).map(|i| 4 * (i + 1)).collect::<Vec<u64>>());
        });
    }

    #[test]
    fn sendrecv_ring_shift() {
        World::run(5, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            let got = c.sendrecv(next, prev, 3, Bytes::from(vec![c.rank() as u8]));
            assert_eq!(&got[..], &[prev as u8]);
        });
    }

    #[test]
    fn frame_roundtrip() {
        let parts = vec![Bytes::from_static(b"a"), Bytes::new(), Bytes::from_static(b"xyz")];
        let framed = frame(parts.clone());
        assert_eq!(unframe(&framed), parts);
    }

    #[test]
    fn bcast_large_payload() {
        World::run(4, |c| {
            let data = (c.rank() == 0).then(|| Bytes::from(vec![0xAB; 1 << 20]));
            let got = c.bcast_bytes(0, data);
            assert_eq!(got.len(), 1 << 20);
            assert!(got.iter().all(|&b| b == 0xAB));
        });
    }
}
