//! Collective operations over a [`Comm`].
//!
//! All collectives are built from point-to-point messages on reserved tags
//! (top bit set), so they share the pairwise-FIFO guarantees of the
//! transport. Every operation exists in two schedule families, selected by
//! the world's [`CollectiveAlgo`] knob (see [`crate::WorldBuilder::
//! collective_algo`]):
//!
//! * **Linear** — the O(n) rank-order reference schedules: the root loops
//!   over ranks with blocking in-order receives. Kept as the A/B baseline
//!   and the byte-identity oracle for the proptests.
//! * **Log-time** (`Auto` / `LogTime`) — binomial-tree gather / scatter /
//!   reduce, Bruck-dissemination allgather, recursive-doubling allreduce
//!   and exclusive scan, and a pairwise-exchange all-to-all that completes
//!   receives in *arrival order* (any-source) instead of rank order, so a
//!   straggling sender no longer head-of-line-blocks every receiver.
//!
//! Under `Auto` with a [`crate::CostModel`] attached, payloads past the
//! model's latency/bandwidth crossover additionally switch to the
//! bandwidth-optimal variants: a ring allgather and a segmented, pipelined
//! broadcast (segments stream down the tree with transfer overlapping
//! forwarding). Selection mirrors what production MPI implementations do
//! by message size.
//!
//! Results are byte-identical across schedule families (for reductions:
//! whenever the operator is commutative and associative in the
//! mathematical sense, e.g. integer sum/min/max — the usual MPI
//! requirement); `tests/proptest_collectives.rs` pins this across world
//! geometry, payload shapes, and fault seeds.
//!
//! Tree interior nodes aggregate subtree payloads as multi-part
//! [`Payload`] frames (a small length header plus the original refcounted
//! blocks), so no data byte is copied on the way up or down the tree.

use bytes::{BufMut, Bytes, BytesMut};

use crate::comm::Comm;
use crate::cost::CollectiveAlgo;
use crate::envelope::Tag;
use crate::payload::Payload;
use crate::pod::{self, Pod};

/// Tags at or above this value are reserved for collective internals.
pub(crate) const COLLECTIVE_TAG_BASE: Tag = 0x8000_0000;

const TAG_BARRIER: Tag = COLLECTIVE_TAG_BASE; // + round number (≤ 64)
const TAG_BCAST: Tag = COLLECTIVE_TAG_BASE + 0x100;
const TAG_GATHER: Tag = COLLECTIVE_TAG_BASE + 0x101;
const TAG_SCATTER: Tag = COLLECTIVE_TAG_BASE + 0x102;
const TAG_ALLTOALL_LINEAR: Tag = COLLECTIVE_TAG_BASE + 0x103;
const TAG_RING: Tag = COLLECTIVE_TAG_BASE + 0x104;
const TAG_REDUCE: Tag = COLLECTIVE_TAG_BASE + 0x105;
const TAG_ALLREDUCE_FOLD: Tag = COLLECTIVE_TAG_BASE + 0x106;
const TAG_ALLREDUCE_OUT: Tag = COLLECTIVE_TAG_BASE + 0x107;
/// Any-source all-to-all: + (epoch mod 256), see [`Comm::next_coll_epoch`].
const TAG_ALLTOALL_BASE: Tag = COLLECTIVE_TAG_BASE + 0x200;
const TAG_ALLGATHER: Tag = COLLECTIVE_TAG_BASE + 0x300; // + round (≤ 64)
const TAG_ALLREDUCE: Tag = COLLECTIVE_TAG_BASE + 0x340; // + round (≤ 64)
const TAG_EXSCAN: Tag = COLLECTIVE_TAG_BASE + 0x380; // + round (≤ 64)

/// Length of the broadcast wire header: `[nsegs u64][total_len u64]`.
const BCAST_HDR: usize = 16;

/// Counter bump + payload/latency histograms around one collective call.
struct CollTimer {
    start_ns: Option<u64>,
}

fn coll_timer(ctr: obsv::Ctr, bytes: usize) -> CollTimer {
    obsv::counter_add(ctr, 1);
    if obsv::active() {
        obsv::hist_record(obsv::Hist::CollBytes, bytes as u64);
        CollTimer { start_ns: Some(obsv::clock::now_ns()) }
    } else {
        CollTimer { start_ns: None }
    }
}

impl Drop for CollTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start_ns {
            obsv::hist_record(
                obsv::Hist::CollLatencyNs,
                obsv::clock::now_ns().saturating_sub(start),
            );
        }
    }
}

impl Comm {
    /// True when this world pins the linear reference schedules.
    fn linear(&self) -> bool {
        self.coll_algo() == CollectiveAlgo::Linear
    }

    /// Payload size at which `Auto` switches to the bandwidth-optimal
    /// variants (ring allgather, segmented broadcast). `usize::MAX` — no
    /// switch — without a cost model or outside `Auto`.
    fn large_threshold(&self) -> usize {
        match (self.coll_algo(), self.cost_model()) {
            (CollectiveAlgo::Auto, Some(cm)) => cm.large_payload_threshold(),
            _ => usize::MAX,
        }
    }

    /// Dissemination barrier: every rank blocks until all ranks arrive.
    pub fn barrier(&self) {
        let _t = coll_timer(obsv::Ctr::CollBarrier, 0);
        let n = self.size();
        if n == 1 {
            return;
        }
        let mut k = 0u32;
        let mut dist = 1usize;
        while dist < n {
            let to = (self.rank() + dist) % n;
            let from = (self.rank() + n - dist) % n;
            self.send_internal(to, TAG_BARRIER + k, Bytes::new().into());
            let _ = self.recv(from.into(), (TAG_BARRIER + k).into());
            dist <<= 1;
            k += 1;
        }
    }

    /// Binomial-tree broadcast. `root` passes `Some(data)`; everyone
    /// receives the broadcast value. Large payloads (under `Auto` with a
    /// cost model) are cut into fixed-size segments pipelined down the
    /// tree: an interior node forwards segment `s` to all children while
    /// segment `s+1` is still in flight from its parent.
    pub fn bcast_bytes(&self, root: usize, data: Option<Bytes>) -> Bytes {
        let _t = coll_timer(obsv::Ctr::CollBcast, data.as_ref().map_or(0, Bytes::len));
        let seg = match (self.coll_algo(), self.cost_model()) {
            (CollectiveAlgo::Auto, Some(cm)) => cm.segment_bytes(),
            _ => usize::MAX,
        };
        self.bcast_inner(root, data, seg)
    }

    /// The broadcast engine. `seg` is the segment size; `usize::MAX`
    /// means "never segment" (the wire still carries the 16-byte header,
    /// with `nsegs = 1`). The same binomial tree routes both shapes, so
    /// the linear/log A/B and the segmented path share one code path for
    /// parent/child bookkeeping.
    fn bcast_inner(&self, root: usize, data: Option<Bytes>, seg: usize) -> Bytes {
        let n = self.size();
        let vrank = (self.rank() + n - root) % n;
        if n == 1 {
            return data.expect("broadcast root must supply data");
        }
        // Forwarding masks: the root covers every bit below the tree top;
        // an interior node covers the bits below its lowest set bit.
        let top = if vrank == 0 {
            let mut m = 1usize;
            while m < n {
                m <<= 1;
            }
            m >> 1
        } else {
            (vrank & vrank.wrapping_neg()) >> 1
        };

        if vrank == 0 {
            let buf = data.expect("broadcast root must supply data");
            let nsegs = if buf.len() > seg { buf.len().div_ceil(seg) } else { 1 };
            let seg_len = buf.len().div_ceil(nsegs).max(1);
            let mut hdr = BytesMut::with_capacity(BCAST_HDR);
            hdr.put_u64_le(nsegs as u64);
            hdr.put_u64_le(buf.len() as u64);
            let hdr = hdr.freeze();
            for s in 0..nsegs {
                let lo = s * seg_len;
                let hi = buf.len().min(lo + seg_len);
                // Every child gets the same refcounted slice — a clone is
                // a refcount bump, never a copy of the payload bytes.
                let chunk = buf.slice(lo..hi);
                let mut mask = top;
                while mask > 0 {
                    if mask < n {
                        let child = (mask + root) % n;
                        let payload = if s == 0 {
                            let mut p = Payload::from(hdr.clone());
                            p.push(chunk.clone());
                            p
                        } else {
                            chunk.clone().into()
                        };
                        self.send_internal(child, TAG_BCAST, payload);
                    }
                    mask >>= 1;
                }
            }
            buf
        } else {
            let parent = ((vrank - (vrank & vrank.wrapping_neg())) + root) % n;
            let mut first = self.recv_parts(parent.into(), TAG_BCAST.into()).payload;
            let mut hdrb = [0u8; BCAST_HDR];
            assert!(first.copy_prefix(&mut hdrb), "broadcast wire header");
            let nsegs = u64::from_le_bytes(hdrb[..8].try_into().expect("8 bytes")) as usize;
            let total = u64::from_le_bytes(hdrb[8..].try_into().expect("8 bytes")) as usize;
            first.advance(BCAST_HDR);
            let hdr = Bytes::copy_from_slice(&hdrb);
            let mut assembled = (nsegs > 1).then(|| BytesMut::with_capacity(total));
            let mut whole = Bytes::new();
            for s in 0..nsegs {
                let chunk = if s == 0 {
                    std::mem::take(&mut first)
                } else {
                    self.recv_parts(parent.into(), TAG_BCAST.into()).payload
                };
                // Forward this segment before touching the next one:
                // children stream concurrently with our own receives.
                let mut mask = top;
                while mask > 0 {
                    if vrank + mask < n {
                        let child = (vrank + mask + root) % n;
                        let payload = if s == 0 {
                            let mut p = Payload::from(hdr.clone());
                            p.extend(chunk.clone());
                            p
                        } else {
                            chunk.clone()
                        };
                        self.send_internal(child, TAG_BCAST, payload);
                    }
                    mask >>= 1;
                }
                match &mut assembled {
                    Some(buf) => {
                        for part in chunk.parts() {
                            buf.put_slice(part);
                        }
                    }
                    None => whole = chunk.into_bytes(),
                }
            }
            assembled.map(BytesMut::freeze).unwrap_or(whole)
        }
    }

    /// Broadcast a typed value from `root`.
    pub fn bcast_one<T: Pod>(&self, root: usize, value: Option<T>) -> T {
        let payload = value.map(|v| pod::to_bytes(&[v]));
        pod::from_bytes::<T>(&self.bcast_bytes(root, payload))[0]
    }

    /// Gather every rank's payload at `root` (variable lengths allowed).
    /// Returns `Some(vec indexed by rank)` at root, `None` elsewhere.
    ///
    /// Log-time schedule: a binomial tree. Interior nodes aggregate their
    /// subtree's blocks into one framed message, so the root completes in
    /// `⌈lg n⌉` receives instead of `n-1`.
    pub fn gather_bytes(&self, root: usize, data: Bytes) -> Option<Vec<Bytes>> {
        let _t = coll_timer(obsv::Ctr::CollGather, data.len());
        if self.linear() {
            self.gather_linear(root, data)
        } else {
            self.gather_tree(root, data)
        }
    }

    fn gather_linear(&self, root: usize, data: Bytes) -> Option<Vec<Bytes>> {
        if self.rank() != root {
            self.send_internal(root, TAG_GATHER, data.into());
            return None;
        }
        let mut out: Vec<Bytes> = vec![Bytes::new(); self.size()];
        out[root] = data;
        for (r, slot) in out.iter_mut().enumerate() {
            if r == root {
                continue;
            }
            *slot = self.recv(r.into(), TAG_GATHER.into()).payload;
        }
        Some(out)
    }

    fn gather_tree(&self, root: usize, data: Bytes) -> Option<Vec<Bytes>> {
        let n = self.size();
        let vrank = (self.rank() + n - root) % n;
        // Invariant: `blocks[i]` is the payload of vrank `vrank + i`; a
        // subtree is always a contiguous vrank range.
        let mut blocks: Vec<Bytes> = vec![data];
        let mut mask = 1usize;
        while mask < n {
            if vrank & mask != 0 {
                let parent = (vrank - mask + root) % n;
                self.send_internal(parent, TAG_GATHER, frame_blocks(&blocks));
                return None;
            }
            let vchild = vrank + mask;
            if vchild < n {
                let child = (vchild + root) % n;
                let env = self.recv_parts(child.into(), TAG_GATHER.into());
                blocks.extend(unframe_blocks(env.payload));
            }
            mask <<= 1;
        }
        debug_assert_eq!(vrank, 0, "only the root survives every round");
        let mut out = vec![Bytes::new(); n];
        for (vr, b) in blocks.into_iter().enumerate() {
            out[(vr + root) % n] = b;
        }
        Some(out)
    }

    /// Scatter one payload to each rank from `root`; returns this rank's
    /// piece. `parts` must be `Some` (length = size) at root.
    ///
    /// Log-time schedule: the gather tree run in reverse — the root ships
    /// each child its whole framed subtree, halving at every level.
    pub fn scatter_bytes(&self, root: usize, parts: Option<Vec<Bytes>>) -> Bytes {
        let _t = coll_timer(
            obsv::Ctr::CollScatter,
            parts.as_ref().map_or(0, |p| p.iter().map(Bytes::len).sum()),
        );
        if self.linear() {
            self.scatter_linear(root, parts)
        } else {
            self.scatter_tree(root, parts)
        }
    }

    fn scatter_linear(&self, root: usize, parts: Option<Vec<Bytes>>) -> Bytes {
        if self.rank() == root {
            let parts = parts.expect("scatter root must supply parts");
            assert_eq!(parts.len(), self.size(), "scatter needs one part per rank");
            let mut mine = Bytes::new();
            for (r, p) in parts.into_iter().enumerate() {
                if r == root {
                    mine = p;
                } else {
                    self.send_internal(r, TAG_SCATTER, p.into());
                }
            }
            mine
        } else {
            self.recv(root.into(), TAG_SCATTER.into()).payload
        }
    }

    fn scatter_tree(&self, root: usize, parts: Option<Vec<Bytes>>) -> Bytes {
        let n = self.size();
        let vrank = (self.rank() + n - root) % n;
        // `blocks[i]` is the payload destined for vrank `vrank + i`.
        let (mut blocks, mut mask) = if vrank == 0 {
            let parts = parts.expect("scatter root must supply parts");
            assert_eq!(parts.len(), n, "scatter needs one part per rank");
            let mut v = vec![Bytes::new(); n];
            for (r, p) in parts.into_iter().enumerate() {
                v[(r + n - root) % n] = p;
            }
            let mut top = 1usize;
            while top < n {
                top <<= 1;
            }
            (v, top >> 1)
        } else {
            let lowbit = vrank & vrank.wrapping_neg();
            let parent = (vrank - lowbit + root) % n;
            let env = self.recv_parts(parent.into(), TAG_SCATTER.into());
            (unframe_blocks(env.payload), lowbit >> 1)
        };
        while mask > 0 {
            if vrank + mask < n && blocks.len() > mask {
                let child = (vrank + mask + root) % n;
                self.send_internal(child, TAG_SCATTER, frame_blocks(&blocks[mask..]));
                blocks.truncate(mask);
            }
            mask >>= 1;
        }
        debug_assert_eq!(blocks.len(), 1, "one block left: this rank's piece");
        blocks.swap_remove(0)
    }

    /// Personalized all-to-all: send `parts[i]` to rank `i`, receive one
    /// payload from every rank (variable lengths — `MPI_Alltoallv`).
    /// Returns payloads indexed by source rank.
    ///
    /// Log-time schedule: a pairwise-exchange send order (round `r`
    /// targets rank `me + r`), with receives completed in **arrival
    /// order** via any-source matching — a straggling sender delays only
    /// its own payload, not the whole receive loop. Each call is tagged
    /// with a per-communicator epoch so a fast rank's next exchange can
    /// never satisfy a slow rank's current one.
    pub fn alltoall_bytes(&self, parts: Vec<Bytes>) -> Vec<Bytes> {
        let _t = coll_timer(obsv::Ctr::CollAlltoall, parts.iter().map(Bytes::len).sum());
        assert_eq!(parts.len(), self.size(), "one part per rank");
        if self.linear() {
            self.alltoall_linear(parts)
        } else {
            self.alltoall_pairwise(parts)
        }
    }

    fn alltoall_linear(&self, parts: Vec<Bytes>) -> Vec<Bytes> {
        let mut out: Vec<Bytes> = vec![Bytes::new(); self.size()];
        for (dest, p) in parts.into_iter().enumerate() {
            if dest == self.rank() {
                out[dest] = p;
            } else {
                self.send_internal(dest, TAG_ALLTOALL_LINEAR, p.into());
            }
        }
        for (src, slot) in out.iter_mut().enumerate() {
            if src == self.rank() {
                continue;
            }
            *slot = self.recv(src.into(), TAG_ALLTOALL_LINEAR.into()).payload;
        }
        out
    }

    fn alltoall_pairwise(&self, mut parts: Vec<Bytes>) -> Vec<Bytes> {
        let n = self.size();
        let me = self.rank();
        let tag = TAG_ALLTOALL_BASE + (self.next_coll_epoch() & 0xFF);
        let mut out: Vec<Bytes> = vec![Bytes::new(); n];
        out[me] = std::mem::take(&mut parts[me]);
        // Staggered pairwise schedule: in round r every rank targets
        // rank me+r, so no destination is hammered by all senders at once.
        for round in 1..n {
            let dest = (me + round) % n;
            self.send_internal(dest, tag, std::mem::take(&mut parts[dest]).into());
        }
        for _ in 1..n {
            let env = self.recv_parts_collective_any(tag.into());
            out[env.src] = env.payload.into_bytes();
        }
        out
    }

    /// All ranks obtain every rank's payload, indexed by rank.
    ///
    /// Log-time schedule: Bruck dissemination — `⌈lg n⌉` rounds, doubling
    /// the shipped block set each round. Large payloads (under `Auto`
    /// with a cost model) switch to the bandwidth-optimal ring: `n-1`
    /// rounds of exactly one block, nothing ever sent twice.
    pub fn allgather_bytes(&self, data: Bytes) -> Vec<Bytes> {
        let _t = coll_timer(obsv::Ctr::CollAllgather, data.len());
        let n = self.size();
        if n == 1 {
            return vec![data];
        }
        if self.linear() {
            let gathered = self.gather_linear(0, data);
            let framed = if self.rank() == 0 {
                Some(frame(gathered.expect("rank 0 gathered")))
            } else {
                None
            };
            return unframe(&self.bcast_inner(0, framed, usize::MAX));
        }
        // Algorithm selection must be symmetric across ranks, but payload
        // lengths may be ragged — agree on the maximum first (a handful
        // of 8-byte exchanges, negligible against a large-payload ring).
        let thr = self.large_threshold();
        let use_ring =
            thr != usize::MAX && self.allreduce_rd(data.len() as u64, std::cmp::max) >= thr as u64;
        if use_ring {
            self.allgather_ring(data)
        } else {
            self.allgather_bruck(data)
        }
    }

    fn allgather_bruck(&self, data: Bytes) -> Vec<Bytes> {
        let n = self.size();
        let me = self.rank();
        // `blocks[j]` is the payload of rank `me + j` (mod n).
        let mut blocks: Vec<Bytes> = vec![data];
        let mut dist = 1usize;
        let mut round: Tag = 0;
        while dist < n {
            let cnt = dist.min(n - dist);
            let dest = (me + n - dist) % n;
            let src = (me + dist) % n;
            self.send_internal(dest, TAG_ALLGATHER + round, frame_blocks(&blocks[..cnt]));
            let env = self.recv_parts(src.into(), (TAG_ALLGATHER + round).into());
            blocks.extend(unframe_blocks(env.payload));
            dist <<= 1;
            round += 1;
        }
        debug_assert_eq!(blocks.len(), n);
        let mut out = vec![Bytes::new(); n];
        for (j, b) in blocks.into_iter().enumerate() {
            out[(me + j) % n] = b;
        }
        out
    }

    fn allgather_ring(&self, data: Bytes) -> Vec<Bytes> {
        let n = self.size();
        let me = self.rank();
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        let mut out = vec![Bytes::new(); n];
        out[me] = data;
        let mut cur = me;
        for _ in 1..n {
            self.send_internal(next, TAG_RING, out[cur].clone().into());
            let env = self.recv(prev.into(), TAG_RING.into());
            cur = (cur + n - 1) % n;
            out[cur] = env.payload;
        }
        out
    }

    /// All-gather a single typed value per rank.
    pub fn allgather_one<T: Pod>(&self, value: T) -> Vec<T> {
        self.allgather_bytes(pod::to_bytes(&[value]))
            .iter()
            .map(|b| pod::from_bytes::<T>(b)[0])
            .collect()
    }

    /// Reduce one typed value per rank with `op`; result at `root`.
    ///
    /// `op` must be commutative and associative (the MPI reduction
    /// contract): the log-time binomial tree combines subtrees in a
    /// different order than the linear rank-order fold.
    pub fn reduce_one<T: Pod, F: Fn(T, T) -> T>(&self, root: usize, value: T, op: F) -> Option<T> {
        let _t = coll_timer(obsv::Ctr::CollReduce, std::mem::size_of::<T>());
        if self.linear() {
            self.reduce_linear(root, value, op)
        } else {
            self.reduce_tree(root, value, op)
        }
    }

    fn reduce_linear<T: Pod, F: Fn(T, T) -> T>(&self, root: usize, value: T, op: F) -> Option<T> {
        let gathered = self.gather_linear(root, pod::to_bytes(&[value]))?;
        let mut it = gathered.iter().map(|b| pod::from_bytes::<T>(b)[0]);
        let first = it.next().expect("at least one rank");
        Some(it.fold(first, op))
    }

    fn reduce_tree<T: Pod, F: Fn(T, T) -> T>(&self, root: usize, value: T, op: F) -> Option<T> {
        let n = self.size();
        let vrank = (self.rank() + n - root) % n;
        let mut acc = value;
        let mut mask = 1usize;
        while mask < n {
            if vrank & mask != 0 {
                let parent = (vrank - mask + root) % n;
                self.send_internal(parent, TAG_REDUCE, pod::to_bytes(&[acc]).into());
                return None;
            }
            if vrank + mask < n {
                let child = (vrank + mask + root) % n;
                let env = self.recv(child.into(), TAG_REDUCE.into());
                acc = op(acc, pod::from_bytes::<T>(&env.payload)[0]);
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// All-reduce one typed value per rank with `op` (same commutative +
    /// associative contract as [`Comm::reduce_one`]).
    ///
    /// Log-time schedule: recursive doubling — `⌈lg n⌉` exchange rounds,
    /// every rank finishing with the result, no broadcast needed. Ranks
    /// past the largest power of two fold into a partner first and get
    /// the result shipped back.
    pub fn allreduce_one<T: Pod, F: Fn(T, T) -> T>(&self, value: T, op: F) -> T {
        let _t = coll_timer(obsv::Ctr::CollReduce, std::mem::size_of::<T>());
        if self.linear() {
            let reduced = self.reduce_linear(0, value, op);
            let payload = reduced.map(|v| pod::to_bytes(&[v]));
            pod::from_bytes::<T>(&self.bcast_inner(0, payload, usize::MAX))[0]
        } else {
            self.allreduce_rd(value, op)
        }
    }

    fn allreduce_rd<T: Pod, F: Fn(T, T) -> T>(&self, value: T, op: F) -> T {
        let n = self.size();
        if n == 1 {
            return value;
        }
        let me = self.rank();
        let p = 1usize << (usize::BITS - 1 - n.leading_zeros()); // largest pow2 ≤ n
        let extras = n - p;
        let mut acc = value;
        if me >= p {
            // Fold into the partner below the power-of-two boundary, then
            // wait for the finished result.
            self.send_internal(me - p, TAG_ALLREDUCE_FOLD, pod::to_bytes(&[acc]).into());
            let env = self.recv((me - p).into(), TAG_ALLREDUCE_OUT.into());
            return pod::from_bytes::<T>(&env.payload)[0];
        }
        if me < extras {
            let env = self.recv((me + p).into(), TAG_ALLREDUCE_FOLD.into());
            acc = op(acc, pod::from_bytes::<T>(&env.payload)[0]);
        }
        let mut dist = 1usize;
        let mut k: Tag = 0;
        while dist < p {
            let peer = me ^ dist;
            self.send_internal(peer, TAG_ALLREDUCE + k, pod::to_bytes(&[acc]).into());
            let env = self.recv(peer.into(), (TAG_ALLREDUCE + k).into());
            acc = op(acc, pod::from_bytes::<T>(&env.payload)[0]);
            dist <<= 1;
            k += 1;
        }
        if me < extras {
            self.send_internal(me + p, TAG_ALLREDUCE_OUT, pod::to_bytes(&[acc]).into());
        }
        acc
    }

    /// Exclusive prefix sum of `value` over ranks (rank 0 gets 0).
    ///
    /// Log-time schedule: recursive-doubling scan — in round `k` rank `r`
    /// ships its running total to `r + 2^k` and folds the total arriving
    /// from `r - 2^k`, finishing in `⌈lg n⌉` rounds instead of
    /// allgathering every value.
    pub fn exscan_u64(&self, value: u64) -> u64 {
        let _t = coll_timer(obsv::Ctr::CollExscan, std::mem::size_of::<u64>());
        if self.linear() {
            let all = self.allgather_linear_u64(value);
            all[..self.rank()].iter().sum()
        } else {
            let n = self.size();
            let me = self.rank();
            let mut have = value; // inclusive running total of (me-2^k, me]
            let mut result = 0u64; // exclusive prefix accumulated so far
            let mut dist = 1usize;
            let mut k: Tag = 0;
            while dist < n {
                if me + dist < n {
                    self.send_internal(me + dist, TAG_EXSCAN + k, pod::to_bytes(&[have]).into());
                }
                if me >= dist {
                    let env = self.recv((me - dist).into(), (TAG_EXSCAN + k).into());
                    let v = pod::from_bytes::<u64>(&env.payload)[0];
                    result += v;
                    have += v;
                }
                dist <<= 1;
                k += 1;
            }
            result
        }
    }

    /// Linear-reference allgather of one u64 (used by the linear exscan
    /// so its counter accounting matches the old composition).
    fn allgather_linear_u64(&self, value: u64) -> Vec<u64> {
        let gathered = self.gather_linear(0, pod::to_bytes(&[value]));
        let framed =
            if self.rank() == 0 { Some(frame(gathered.expect("rank 0 gathered"))) } else { None };
        unframe(&self.bcast_inner(0, framed, usize::MAX))
            .iter()
            .map(|b| pod::from_bytes::<u64>(b)[0])
            .collect()
    }

    /// Element-wise all-reduce of equal-length typed vectors
    /// (`MPI_Allreduce` on an array): every rank gets
    /// `op(v₀[i], v₁[i], …)` per element.
    pub fn allreduce_vec<T: Pod, F: Fn(T, T) -> T>(&self, values: &[T], op: F) -> Vec<T> {
        let gathered = self.allgather_bytes(pod::to_bytes(values));
        let mut acc: Vec<T> = pod::from_bytes(&gathered[0]);
        for b in &gathered[1..] {
            let v: Vec<T> = pod::from_bytes(b);
            assert_eq!(v.len(), acc.len(), "allreduce_vec length mismatch across ranks");
            for (a, x) in acc.iter_mut().zip(v) {
                *a = op(*a, x);
            }
        }
        acc
    }

    /// Combined send and receive (`MPI_Sendrecv`): ship `payload` to
    /// `dest` and return the message received from `src`, deadlock-free
    /// under any pairing because sends are buffered.
    pub fn sendrecv<B: Into<Bytes>>(&self, dest: usize, src: usize, tag: Tag, payload: B) -> Bytes {
        self.send(dest, tag, payload);
        self.recv(src.into(), tag.into()).payload
    }
}

/// Flatten a block list into one contiguous buffer:
/// `[count u64][len u64, bytes]...` — the legacy frame used by the linear
/// allgather's broadcast leg, where the concatenation is sent as a whole.
fn frame(parts: Vec<Bytes>) -> Bytes {
    let total: usize = 8 + parts.iter().map(|p| 8 + p.len()).sum::<usize>();
    let mut buf = BytesMut::with_capacity(total);
    buf.put_u64_le(parts.len() as u64);
    for p in &parts {
        buf.put_u64_le(p.len() as u64);
        buf.put_slice(p);
    }
    buf.freeze()
}

fn unframe(data: &Bytes) -> Vec<Bytes> {
    let mut off = 0usize;
    let read_u64 = |off: &mut usize| {
        let v = u64::from_le_bytes(data[*off..*off + 8].try_into().expect("8 bytes"));
        *off += 8;
        v
    };
    let count = read_u64(&mut off) as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let len = read_u64(&mut off) as usize;
        out.push(data.slice(off..off + len));
        off += len;
    }
    out
}

/// Frame a block list as a multi-part [`Payload`]: one header part
/// (`[count u64][len u64]...`) followed by every non-empty block as its
/// own refcounted part — no payload byte is copied. The tree collectives
/// aggregate subtrees with this frame.
fn frame_blocks(blocks: &[Bytes]) -> Payload {
    let mut hdr = BytesMut::with_capacity(8 + 8 * blocks.len());
    hdr.put_u64_le(blocks.len() as u64);
    for b in blocks {
        hdr.put_u64_le(b.len() as u64);
    }
    let mut p: Payload = hdr.freeze().into();
    for b in blocks {
        p.push(b.clone());
    }
    p
}

/// Inverse of [`frame_blocks`]. Over the in-proc transport the delivered
/// parts *are* the sender's blocks (empty blocks were dropped on send and
/// are restored from the length table), so unframing is pure bookkeeping.
/// Over a wire transport the payload arrives in its contiguous flattened
/// form; blocks are then sub-slices of one buffer. Both paths are
/// zero-copy — a slice of a refcounted buffer is a refcount bump.
fn unframe_blocks(mut p: Payload) -> Vec<Bytes> {
    let mut cnt = [0u8; 8];
    assert!(p.copy_prefix(&mut cnt), "framed block count");
    let count = u64::from_le_bytes(cnt) as usize;
    let hdr_len = 8 + 8 * count;
    let mut hdr = vec![0u8; hdr_len];
    assert!(p.copy_prefix(&mut hdr), "framed block lengths");
    p.advance(hdr_len);
    let len_at = |i: usize| {
        let at = 8 + 8 * i;
        u64::from_le_bytes(hdr[at..at + 8].try_into().expect("8 bytes")) as usize
    };
    let aligned = p.parts().iter().map(Bytes::len).eq((0..count).map(len_at).filter(|&l| l != 0));
    let mut out = Vec::with_capacity(count);
    if aligned {
        let mut parts = p.parts().iter();
        for i in 0..count {
            if len_at(i) == 0 {
                out.push(Bytes::new());
            } else {
                out.push(parts.next().expect("one part per non-empty block").clone());
            }
        }
    } else {
        // Contiguous (wire) form: one part holding every block in order.
        // `into_bytes` is free here — flattening already happened on the
        // wire — and each block is a shared sub-slice.
        let data = p.into_bytes();
        let mut off = 0;
        for i in 0..count {
            let len = len_at(i);
            out.push(data.slice(off..off + len));
            off += len;
        }
        assert_eq!(off, data.len(), "frame table covers the delivered bytes");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::world::World;
    use std::time::Duration;

    /// Every algorithm knob a correctness test should pass under.
    const ALGOS: [CollectiveAlgo; 3] =
        [CollectiveAlgo::Auto, CollectiveAlgo::Linear, CollectiveAlgo::LogTime];

    fn run_all_algos<F>(n: usize, f: F)
    where
        F: Fn(crate::comm::Comm) + Send + Sync + Copy,
    {
        for algo in ALGOS {
            World::builder(n).collective_algo(algo).run(f);
        }
    }

    #[test]
    fn barrier_all_sizes() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            World::run(n, |c| {
                for _ in 0..3 {
                    c.barrier();
                }
            });
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for n in [1usize, 2, 5, 9] {
            for root in 0..n {
                run_all_algos(n, move |c| {
                    let data = if c.rank() == root {
                        Some(Bytes::from(format!("hello-{root}")))
                    } else {
                        None
                    };
                    let got = c.bcast_bytes(root, data);
                    assert_eq!(&got[..], format!("hello-{root}").as_bytes());
                });
            }
        }
    }

    #[test]
    fn gather_preserves_rank_order_and_lengths() {
        run_all_algos(5, |c| {
            let mine = Bytes::from(vec![c.rank() as u8; c.rank() + 1]);
            if let Some(all) = c.gather_bytes(2, mine) {
                assert_eq!(c.rank(), 2);
                for (r, b) in all.iter().enumerate() {
                    assert_eq!(b.len(), r + 1);
                    assert!(b.iter().all(|&x| x == r as u8));
                }
            }
        });
    }

    #[test]
    fn gather_from_every_root_every_size() {
        for n in [1usize, 2, 3, 4, 6, 7, 8, 9] {
            for root in 0..n {
                run_all_algos(n, move |c| {
                    let mine = Bytes::from(vec![c.rank() as u8; (c.rank() * 3) % 5]);
                    let got = c.gather_bytes(root, mine);
                    if c.rank() == root {
                        let all = got.expect("root result");
                        for (r, b) in all.iter().enumerate() {
                            assert_eq!(b.len(), (r * 3) % 5, "rank {r} length");
                            assert!(b.iter().all(|&x| x == r as u8));
                        }
                    } else {
                        assert!(got.is_none());
                    }
                });
            }
        }
    }

    #[test]
    fn scatter_delivers_each_part() {
        run_all_algos(4, |c| {
            let parts =
                (c.rank() == 1).then(|| (0..4).map(|r| Bytes::from(vec![r as u8; 3])).collect());
            let mine = c.scatter_bytes(1, parts);
            assert_eq!(&mine[..], &[c.rank() as u8; 3]);
        });
    }

    #[test]
    fn scatter_from_every_root_every_size() {
        for n in [1usize, 2, 3, 5, 8, 9] {
            for root in 0..n {
                run_all_algos(n, move |c| {
                    let parts = (c.rank() == root)
                        .then(|| (0..n).map(|r| Bytes::from(vec![r as u8; r % 4])).collect());
                    let mine = c.scatter_bytes(root, parts);
                    assert_eq!(&mine[..], &vec![c.rank() as u8; c.rank() % 4][..]);
                });
            }
        }
    }

    #[test]
    fn allgather_matches_ranks() {
        run_all_algos(6, |c| {
            let all = c.allgather_one::<u64>(c.rank() as u64 * 7);
            assert_eq!(all, (0..6).map(|r| r * 7).collect::<Vec<u64>>());
        });
    }

    #[test]
    fn allgather_ring_large_payloads() {
        // A cost model with a tiny crossover forces the ring variant
        // under Auto; results must be identical to the other schedules.
        let cm = CostModel { latency: Duration::from_nanos(100), per_byte_ns: 1.0 };
        assert!(cm.large_payload_threshold() < 512);
        World::builder(5).cost_model(cm).run(|c| {
            let mine = Bytes::from(vec![c.rank() as u8; 512 + c.rank()]);
            let all = c.allgather_bytes(mine);
            for (r, b) in all.iter().enumerate() {
                assert_eq!(b.len(), 512 + r);
                assert!(b.iter().all(|&x| x == r as u8));
            }
        });
    }

    #[test]
    fn reductions() {
        run_all_algos(7, |c| {
            let sum = c.allreduce_one::<u64, _>(c.rank() as u64, |a, b| a + b);
            assert_eq!(sum, 21);
            let max = c.allreduce_one::<u64, _>(c.rank() as u64, std::cmp::max);
            assert_eq!(max, 6);
            let min_at_3 = c.reduce_one::<u64, _>(3, c.rank() as u64 + 10, std::cmp::min);
            if c.rank() == 3 {
                assert_eq!(min_at_3, Some(10));
            } else {
                assert!(min_at_3.is_none());
            }
        });
    }

    #[test]
    fn allreduce_every_size() {
        for n in 1usize..10 {
            run_all_algos(n, move |c| {
                let sum = c.allreduce_one::<u64, _>(c.rank() as u64 + 1, |a, b| a + b);
                assert_eq!(sum, (n * (n + 1) / 2) as u64);
            });
        }
    }

    #[test]
    fn exscan_is_exclusive_prefix_sum() {
        for n in [1usize, 2, 3, 5, 7, 8] {
            run_all_algos(n, |c| {
                let v = (c.rank() as u64 + 1) * 2; // 2,4,6,8,…
                let pre = c.exscan_u64(v);
                let expect: u64 = (0..c.rank()).map(|r| (r as u64 + 1) * 2).sum();
                assert_eq!(pre, expect);
            });
        }
    }

    #[test]
    fn collectives_on_split_comms() {
        run_all_algos(8, |c| {
            let sub = c.split(c.rank() % 2, c.rank());
            let sum = sub.allreduce_one::<u64, _>(c.rank() as u64, |a, b| a + b);
            let expect: u64 = (0..8).filter(|r| r % 2 == c.rank() % 2).sum::<usize>() as u64;
            assert_eq!(sum, expect);
        });
    }

    #[test]
    fn alltoall_exchanges_personalized_payloads() {
        run_all_algos(5, |c| {
            // parts[d] = [my_rank, d] as bytes.
            let parts: Vec<Bytes> =
                (0..5).map(|d| Bytes::from(vec![c.rank() as u8, d as u8])).collect();
            let got = c.alltoall_bytes(parts);
            for (src, b) in got.iter().enumerate() {
                assert_eq!(&b[..], &[src as u8, c.rank() as u8]);
            }
        });
    }

    #[test]
    fn alltoall_with_empty_parts() {
        run_all_algos(3, |c| {
            let parts: Vec<Bytes> = (0..3)
                .map(|d| if d == 0 { Bytes::new() } else { Bytes::from(vec![d as u8; d]) })
                .collect();
            let got = c.alltoall_bytes(parts);
            // Every source sent me the part destined to my rank: empty for
            // rank 0, `rank` bytes of value `rank` otherwise.
            if c.rank() == 0 {
                assert!(got.iter().all(|b| b.is_empty()));
            } else {
                assert!(got
                    .iter()
                    .all(|b| b.len() == c.rank() && b.iter().all(|&x| x == c.rank() as u8)));
            }
        });
    }

    #[test]
    fn repeated_alltoalls_do_not_cross() {
        run_all_algos(4, |c| {
            for round in 0..10u8 {
                let parts: Vec<Bytes> =
                    (0..4).map(|_| Bytes::from(vec![round, c.rank() as u8])).collect();
                let got = c.alltoall_bytes(parts);
                for (src, b) in got.iter().enumerate() {
                    assert_eq!(&b[..], &[round, src as u8]);
                }
            }
        });
    }

    #[test]
    fn allreduce_vec_elementwise() {
        run_all_algos(4, |c| {
            let mine: Vec<u64> = (0..6).map(|i| (c.rank() as u64 + 1) * (i + 1)).collect();
            let sums = c.allreduce_vec(&mine, |a: u64, b| a + b);
            // Σ_r (r+1)(i+1) = 10(i+1) for 4 ranks.
            assert_eq!(sums, (0..6).map(|i| 10 * (i + 1)).collect::<Vec<u64>>());
            let maxs = c.allreduce_vec(&mine, std::cmp::max::<u64>);
            assert_eq!(maxs, (0..6).map(|i| 4 * (i + 1)).collect::<Vec<u64>>());
        });
    }

    #[test]
    fn sendrecv_ring_shift() {
        World::run(5, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            let got = c.sendrecv(next, prev, 3, Bytes::from(vec![c.rank() as u8]));
            assert_eq!(&got[..], &[prev as u8]);
        });
    }

    #[test]
    fn frame_roundtrip() {
        let parts = vec![Bytes::from_static(b"a"), Bytes::new(), Bytes::from_static(b"xyz")];
        let framed = frame(parts.clone());
        assert_eq!(unframe(&framed), parts);
    }

    #[test]
    fn frame_blocks_roundtrip_is_zero_copy() {
        let a = Bytes::from(vec![1u8; 5]);
        let blocks = vec![a.clone(), Bytes::new(), Bytes::from_static(b"xyz")];
        let framed = frame_blocks(&blocks);
        assert_eq!(framed.num_parts(), 3, "header + two non-empty blocks");
        let back = unframe_blocks(framed);
        assert_eq!(back, blocks);
        assert_eq!(back[0].as_ptr(), a.as_ptr(), "blocks are shared, not copied");
    }

    #[test]
    fn bcast_large_payload() {
        run_all_algos(4, |c| {
            let data = (c.rank() == 0).then(|| Bytes::from(vec![0xAB; 1 << 20]));
            let got = c.bcast_bytes(0, data);
            assert_eq!(got.len(), 1 << 20);
            assert!(got.iter().all(|&b| b == 0xAB));
        });
    }

    #[test]
    fn bcast_pipelines_large_payloads_into_segments() {
        // 100-byte crossover → a 1000-byte payload travels as several
        // segment messages, and every rank still reassembles it exactly.
        let cm = CostModel { latency: Duration::from_nanos(1000), per_byte_ns: 10.0 };
        assert_eq!(cm.large_payload_threshold(), 100);
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let out = World::builder(6).cost_model(cm).run(move |c| {
            let data = (c.rank() == 2).then(|| Bytes::from(payload.clone()));
            let got = c.bcast_bytes(2, data);
            assert_eq!(&got[..], &expect[..]);
        });
        // More messages than an unsegmented bcast (5 edges) proves the
        // payload was actually segmented.
        assert!(out.stats.messages > 5, "expected segment traffic, saw {}", out.stats.messages);
    }

    #[test]
    fn tree_gather_root_critical_path_is_logarithmic() {
        // With a latency-only cost model, wall time is dominated by the
        // longest serialized receive chain: 15 × L linear vs 4 × L-ish
        // tree. Compare the two schedules end to end.
        let lat = Duration::from_millis(2);
        let time = |algo: CollectiveAlgo| {
            let t0 = std::time::Instant::now();
            World::builder(16)
                .cost_model(CostModel { latency: lat, per_byte_ns: 0.0 })
                .collective_algo(algo)
                .run(|c| {
                    c.gather_bytes(0, Bytes::from(vec![c.rank() as u8; 64]));
                });
            t0.elapsed()
        };
        let linear = time(CollectiveAlgo::Linear);
        let tree = time(CollectiveAlgo::LogTime);
        assert!(
            tree < linear,
            "binomial gather ({tree:?}) must beat the linear root drain ({linear:?})"
        );
    }

    #[test]
    fn pairwise_alltoall_tolerates_a_straggler() {
        // Rank 0 sleeps before sending; arrival-order receives let every
        // other rank drain its peers meanwhile. All payloads still land.
        run_all_algos(5, |c| {
            if c.rank() == 0 {
                std::thread::sleep(Duration::from_millis(20));
            }
            let parts: Vec<Bytes> =
                (0..5).map(|d| Bytes::from(vec![c.rank() as u8, d as u8])).collect();
            let got = c.alltoall_bytes(parts);
            for (src, b) in got.iter().enumerate() {
                assert_eq!(&b[..], &[src as u8, c.rank() as u8]);
            }
        });
    }

    #[test]
    fn tree_equals_linear_byte_identical_smoke() {
        // The proptest suite sweeps this exhaustively; keep one explicit
        // pin here so `cargo test -p simmpi --lib` already checks A/B.
        let run = |algo: CollectiveAlgo| {
            World::builder(6)
                .collective_algo(algo)
                .run(|c| {
                    let me = c.rank();
                    let mine = Bytes::from(vec![me as u8; me + 2]);
                    let g = c.gather_bytes(1, mine.clone());
                    let ag = c.allgather_bytes(mine.clone());
                    let a2a = c.alltoall_bytes(vec![mine; 6]);
                    let ex = c.exscan_u64(me as u64 + 1);
                    let red = c.allreduce_one::<u64, _>(me as u64, |a, b| a + b);
                    (g, ag, a2a, ex, red)
                })
                .results
        };
        let a = run(CollectiveAlgo::Linear);
        let b = run(CollectiveAlgo::LogTime);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.0, rb.0, "gather");
            assert_eq!(ra.1, rb.1, "allgather");
            assert_eq!(ra.2, rb.2, "alltoall");
            assert_eq!(ra.3, rb.3, "exscan");
            assert_eq!(ra.4, rb.4, "allreduce");
        }
    }
}
