//! Transport statistics: global message/byte counters.
//!
//! Benchmarks in the paper reason about how much data actually moves (e.g.
//! "only the intersection of producer and consumer subdomains is
//! transported"). These counters let tests and benches assert that.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters shared by all ranks of a [`crate::World`].
#[derive(Default, Debug)]
pub struct TransportStats {
    msgs: AtomicU64,
    bytes: AtomicU64,
}

/// Point-in-time copy of [`TransportStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total point-to-point messages delivered (collectives included).
    pub messages: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
}

impl TransportStats {
    pub(crate) fn record_send(&self, payload_len: usize) {
        // Relaxed: counters are independent and only read after the world
        // joins (or for approximate live reporting).
        self.msgs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(payload_len as u64, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            messages: self.msgs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let s = TransportStats::default();
        s.record_send(10);
        s.record_send(5);
        let snap = s.snapshot();
        assert_eq!(snap.messages, 2);
        assert_eq!(snap.bytes, 15);
    }
}
