//! Communicators: rank identity, point-to-point messaging, and splitting.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use crate::cost::{CollectiveAlgo, CostModel};
use crate::envelope::{make_wire_tag, Envelope, PartsEnvelope, SrcSel, Tag, TagSel, WireEnvelope};
use crate::mailbox::Matcher;
use crate::payload::Payload;
use crate::pod::{self, Pod};
use crate::stats::StatsSnapshot;
use crate::world::WorldInner;

/// A communicator: a rank's handle onto a group of ranks.
///
/// Cloning a `Comm` is cheap (Arc bumps) but note a clone still refers to
/// the *same* rank; to talk on an independent channel use [`Comm::dup`].
#[derive(Clone)]
pub struct Comm {
    inner: Arc<WorldInner>,
    /// Context id namespacing this communicator's messages.
    ctx: u32,
    /// This rank's index within the communicator.
    rank: usize,
    /// Member world ranks, indexed by communicator-local rank.
    members: Arc<Vec<usize>>,
    /// Inverse of `members`, indexed by world rank.
    local_of_world: Arc<Vec<Option<usize>>>,
    /// Collective invocation counter, shared by clones of this rank's
    /// handle. Collectives are program-ordered per communicator, so every
    /// member's counter agrees at each call; the any-source all-to-all
    /// folds it into its tag so a fast rank's *next* exchange can never be
    /// confused with a slow rank's current one.
    coll_seq: Arc<AtomicU32>,
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("ctx", &self.ctx)
            .field("rank", &self.rank)
            .field("size", &self.members.len())
            .finish()
    }
}

impl Comm {
    pub(crate) fn world(inner: Arc<WorldInner>, rank: usize, size: usize) -> Self {
        let members: Vec<usize> = (0..size).collect();
        let local_of_world: Vec<Option<usize>> = (0..size).map(Some).collect();
        Comm {
            inner,
            ctx: 0,
            rank,
            members: Arc::new(members),
            local_of_world: Arc::new(local_of_world),
            coll_seq: Arc::new(AtomicU32::new(0)),
        }
    }

    pub(crate) fn derived(
        inner: Arc<WorldInner>,
        ctx: u32,
        rank: usize,
        members: Vec<usize>,
    ) -> Self {
        let world_size = inner.size;
        let mut local_of_world = vec![None; world_size];
        for (local, &w) in members.iter().enumerate() {
            local_of_world[w] = Some(local);
        }
        Comm {
            inner,
            ctx,
            rank,
            members: Arc::new(members),
            local_of_world: Arc::new(local_of_world),
            coll_seq: Arc::new(AtomicU32::new(0)),
        }
    }

    /// The collective schedule family this world was built with.
    pub(crate) fn coll_algo(&self) -> CollectiveAlgo {
        self.inner.coll_algo
    }

    /// The attached cost model, if any. Drives size-aware collective
    /// selection internally, and lets upper layers (the LowFive wire
    /// codecs) weigh modeled link cost against codec cost.
    pub fn cost_model(&self) -> Option<CostModel> {
        self.inner.cost
    }

    /// Next collective epoch on this communicator (per-rank program order).
    pub(crate) fn next_coll_epoch(&self) -> u32 {
        self.coll_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// This rank's index within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's index in the underlying world.
    pub fn world_rank(&self) -> usize {
        self.members[self.rank]
    }

    /// Translate a communicator-local rank to its world rank.
    pub fn to_world_rank(&self, local: usize) -> usize {
        self.members[local]
    }

    /// Translate a world rank to a local rank, if it is a member.
    pub fn to_local_rank(&self, world: usize) -> Option<usize> {
        self.local_of_world.get(world).copied().flatten()
    }

    /// Snapshot run-wide transport statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Which delivery backend this world runs on.
    pub fn transport_kind(&self) -> crate::transport::TransportKind {
        self.inner.transport.kind()
    }

    // ---------------------------------------------------------------
    // Point-to-point
    // ---------------------------------------------------------------

    /// Send `payload` to local rank `dest` under `tag`. Never blocks
    /// (buffered semantics, like `MPI_Bsend` with unlimited buffer).
    ///
    /// # Panics
    /// Panics if `tag` has the top bit set (reserved for collectives) or
    /// `dest` is out of range.
    pub fn send<B: Into<Bytes>>(&self, dest: usize, tag: Tag, payload: B) {
        assert!(tag < crate::collectives::COLLECTIVE_TAG_BASE, "tag {tag:#x} is reserved");
        self.send_internal(dest, tag, payload.into().into());
    }

    /// Send a multi-part [`Payload`]: every part travels as the sender's
    /// refcounted allocation, so lending sub-slices of live buffers costs
    /// no copy. The receiver sees the concatenated stream (or the parts,
    /// via [`Comm::recv_parts`]).
    ///
    /// # Panics
    /// Panics if `tag` has the top bit set (reserved for collectives) or
    /// `dest` is out of range.
    pub fn send_parts(&self, dest: usize, tag: Tag, payload: Payload) {
        assert!(tag < crate::collectives::COLLECTIVE_TAG_BASE, "tag {tag:#x} is reserved");
        self.send_internal(dest, tag, payload);
    }

    /// Everything backend-independent that precedes delivery: the fault
    /// injector's verdict (taken *here*, before the transport, so drops,
    /// reorders, and kills — and the fault trace — are identical on every
    /// backend) and the wire envelope. `None` means the send was dropped.
    fn prepare_send(
        &self,
        dest: usize,
        tag: Tag,
        payload: Payload,
    ) -> Option<(usize, WireEnvelope, bool)> {
        let world_dest = self.members[dest];
        let world_src = self.members[self.rank];
        let wire_tag = make_wire_tag(self.ctx, tag);
        let mut front = false;
        if let Some(fs) = &self.inner.fault {
            match fs.pre_send(world_src, world_dest, wire_tag) {
                crate::fault::SendFate::Deliver => {}
                crate::fault::SendFate::DeliverFront => front = true,
                crate::fault::SendFate::Drop => return None,
                crate::fault::SendFate::Kill(k) => std::panic::panic_any(k),
            }
        }
        let sent_ns = if obsv::active() { obsv::clock::now_ns() } else { 0 };
        Some((world_dest, WireEnvelope { world_src, wire_tag, payload, sent_ns }, front))
    }

    /// Accounting for a payload the transport accepted. Fires only after
    /// delivery, so a fault drop records nothing and a `WouldBlock`
    /// refusal records nothing — stats count what actually went out.
    fn record_sent(&self, len: usize) {
        self.inner.stats.record_send(len);
        // Observability mirrors TransportStats exactly: both fire after
        // fault drops, so histogram sums and StatsSnapshot agree by
        // construction (cross-checked in tests/obsv_accounting.rs).
        if obsv::active() {
            obsv::counter_add(obsv::Ctr::MsgsSent, 1);
            obsv::counter_add(obsv::Ctr::BytesSent, len as u64);
            obsv::hist_record(obsv::Hist::MsgSize, len as u64);
        }
    }

    pub(crate) fn send_internal(&self, dest: usize, tag: Tag, payload: Payload) {
        let Some((world_dest, env, front)) = self.prepare_send(dest, tag, payload) else {
            return;
        };
        let len = env.payload.len();
        self.inner.transport.deliver(world_dest, env, front);
        self.record_sent(len);
    }

    fn try_send_internal(&self, dest: usize, tag: Tag, payload: Payload) -> Result<(), SendError> {
        let Some((world_dest, env, front)) = self.prepare_send(dest, tag, payload) else {
            return Ok(()); // a fault drop is a completed send, not a refusal
        };
        let len = env.payload.len();
        match self.inner.transport.try_deliver(world_dest, env, front) {
            Ok(()) => {
                self.record_sent(len);
                Ok(())
            }
            Err(_env) => Err(SendError::WouldBlock),
        }
    }

    /// Nonblocking [`Comm::send`]: refuses with [`SendError::WouldBlock`]
    /// instead of blocking when the backend's bounded send path is full.
    /// The in-proc backend is unbounded and never refuses; the socket
    /// backend refuses once the destination's writer queue is at
    /// capacity — the backpressure signal `send` can only express by
    /// blocking.
    ///
    /// A refused send is not delivered (and not counted); callers retry
    /// or shed load. Note a fault-plan verdict consumed by a refused
    /// attempt is not replayed on the retry.
    pub fn try_send<B: Into<Bytes>>(
        &self,
        dest: usize,
        tag: Tag,
        payload: B,
    ) -> Result<(), SendError> {
        assert!(tag < crate::collectives::COLLECTIVE_TAG_BASE, "tag {tag:#x} is reserved");
        self.try_send_internal(dest, tag, payload.into().into())
    }

    /// Nonblocking [`Comm::send_parts`]; see [`Comm::try_send`].
    pub fn try_send_parts(&self, dest: usize, tag: Tag, payload: Payload) -> Result<(), SendError> {
        assert!(tag < crate::collectives::COLLECTIVE_TAG_BASE, "tag {tag:#x} is reserved");
        self.try_send_internal(dest, tag, payload)
    }

    /// Nonblocking send. Identical to [`Comm::send`] because sends are
    /// always buffered; provided so ported MPI code reads naturally.
    pub fn isend<B: Into<Bytes>>(&self, dest: usize, tag: Tag, payload: B) {
        self.send(dest, tag, payload);
    }

    /// Send a typed slice (copied into the message).
    pub fn send_slice<T: Pod>(&self, dest: usize, tag: Tag, data: &[T]) {
        self.send(dest, tag, pod::to_bytes(data));
    }

    /// Convenience alias for `send_slice::<u64>`.
    pub fn send_u64s(&self, dest: usize, tag: Tag, data: &[u64]) {
        self.send_slice(dest, tag, data);
    }

    fn matcher(&self, src: SrcSel, tag: TagSel) -> Matcher {
        let world_src = match src {
            SrcSel::Rank(local) => SrcSel::Rank(self.members[local]),
            SrcSel::Any => SrcSel::Any,
        };
        Matcher { ctx: self.ctx, src: world_src, tag }
    }

    fn localize_parts(&self, wire: WireEnvelope) -> PartsEnvelope {
        if let Some(cm) = &self.inner.cost {
            std::thread::sleep(cm.delay(wire.payload.len()));
        }
        if wire.sent_ns != 0 {
            obsv::hist_record(
                obsv::Hist::MsgLatencyNs,
                obsv::clock::now_ns().saturating_sub(wire.sent_ns),
            );
        }
        let (_, tag) = crate::envelope::split_wire_tag(wire.wire_tag);
        let src = self.local_of_world[wire.world_src]
            .expect("message arrived from a non-member world rank on this context");
        PartsEnvelope { src, tag, payload: wire.payload }
    }

    fn localize(&self, wire: WireEnvelope) -> Envelope {
        let pe = self.localize_parts(wire);
        // Flattening is free for single-part messages; a multi-part
        // message on this legacy path is gathered (and the copy counted).
        Envelope { src: pe.src, tag: pe.tag, payload: pe.payload.into_bytes() }
    }

    /// Is the given communicator-local rank still alive? Ranks only die
    /// under a fault plan ([`crate::FaultPlan::kill_rank`]) or by
    /// panicking inside [`crate::World`]'s chaos runner.
    pub fn peer_alive(&self, local: usize) -> bool {
        !self.inner.dead[self.members[local]].load(Ordering::Relaxed)
    }

    /// Predicate for receives: the awaited source is known dead *and* has
    /// nothing left in the delivery path toward this rank — messages sent
    /// before a kill stay receivable on every transport backend. A
    /// wildcard receive never aborts (any rank might still send).
    fn peer_dead(&self, m: &Matcher) -> impl Fn() -> bool + '_ {
        let src = m.src;
        let me = self.members[self.rank];
        move || match src {
            SrcSel::Rank(w) => {
                self.inner.dead[w].load(Ordering::Relaxed) && !self.inner.transport.in_flight(w, me)
            }
            SrcSel::Any => false,
        }
    }

    /// Blocking receive matching `(src, tag)`.
    ///
    /// If the awaited specific source rank dies (chaos runs) with no
    /// matching message queued, the receive can never complete; this rank
    /// then panics with a [`crate::PeerDied`] payload — the cascading
    /// failure a real MPI job experiences — rather than hanging forever.
    pub fn recv(&self, src: SrcSel, tag: TagSel) -> Envelope {
        let m = self.matcher(src, tag);
        match self.my_mailbox().pop_matching_abort(&m, &self.peer_dead(&m)) {
            Ok(wire) => self.localize(wire),
            Err(()) => std::panic::panic_any(crate::fault::PeerDied {
                receiver: self.members[self.rank],
                peer: match m.src {
                    SrcSel::Rank(w) => w,
                    SrcSel::Any => unreachable!("wildcard receives never abort"),
                },
            }),
        }
    }

    /// Blocking receive with a deadline. Returns
    /// [`RecvError::TimedOut`] if no matching message arrives in time and
    /// [`RecvError::PeerDead`] as soon as the awaited specific source rank
    /// is known dead (with nothing matching queued) — so callers fail fast
    /// instead of burning the whole timeout on a peer that cannot reply.
    pub fn recv_timeout(
        &self,
        src: SrcSel,
        tag: TagSel,
        timeout: std::time::Duration,
    ) -> Result<Envelope, RecvError> {
        let m = self.matcher(src, tag);
        let deadline = std::time::Instant::now() + timeout;
        let wire = self.my_mailbox().pop_matching_deadline(&m, deadline, &self.peer_dead(&m))?;
        Ok(self.localize(wire))
    }

    /// Nonblocking receive: returns a matching message if one is queued.
    pub fn try_recv(&self, src: SrcSel, tag: TagSel) -> Option<Envelope> {
        let m = self.matcher(src, tag);
        let wire = self.my_mailbox().try_pop_matching(&m)?;
        Some(self.localize(wire))
    }

    /// As [`Comm::recv`], but the sender's part structure is preserved:
    /// no flatten, no copy — the receiver holds the sender's refcounted
    /// allocations. This is the receive the zero-copy RPC reply path uses.
    pub fn recv_parts(&self, src: SrcSel, tag: TagSel) -> PartsEnvelope {
        let m = self.matcher(src, tag);
        match self.my_mailbox().pop_matching_abort(&m, &self.peer_dead(&m)) {
            Ok(wire) => self.localize_parts(wire),
            Err(()) => std::panic::panic_any(crate::fault::PeerDied {
                receiver: self.members[self.rank],
                peer: match m.src {
                    SrcSel::Rank(w) => w,
                    SrcSel::Any => unreachable!("wildcard receives never abort"),
                },
            }),
        }
    }

    /// Any-source receive for collective internals: unlike a user wildcard
    /// receive (which never aborts — any rank might still send), a
    /// collective cannot complete once *any* member dies, so this receive
    /// aborts with [`crate::PeerDied`] as soon as some member is known
    /// dead with nothing matching queued. Keeps chaos runs from hanging
    /// inside the arrival-order all-to-all.
    pub(crate) fn recv_parts_collective_any(&self, tag: TagSel) -> PartsEnvelope {
        let m = self.matcher(SrcSel::Any, tag);
        let me = self.members[self.rank];
        let any_member_dead = || {
            self.members.iter().any(|&w| {
                self.inner.dead[w].load(Ordering::Relaxed) && !self.inner.transport.in_flight(w, me)
            })
        };
        match self.my_mailbox().pop_matching_abort(&m, &any_member_dead) {
            Ok(wire) => self.localize_parts(wire),
            Err(()) => std::panic::panic_any(crate::fault::PeerDied {
                receiver: self.members[self.rank],
                peer: self
                    .members
                    .iter()
                    .copied()
                    .find(|&w| self.inner.dead[w].load(Ordering::Relaxed))
                    .unwrap_or(self.members[self.rank]),
            }),
        }
    }

    /// As [`Comm::recv_timeout`], preserving the sender's part structure.
    pub fn recv_timeout_parts(
        &self,
        src: SrcSel,
        tag: TagSel,
        timeout: std::time::Duration,
    ) -> Result<PartsEnvelope, RecvError> {
        let m = self.matcher(src, tag);
        let deadline = std::time::Instant::now() + timeout;
        let wire = self.my_mailbox().pop_matching_deadline(&m, deadline, &self.peer_dead(&m))?;
        Ok(self.localize_parts(wire))
    }

    /// Post a receive to complete later (`MPI_Irecv` analogue). Matching
    /// happens when the request is waited/tested, which is equivalent under
    /// buffered sends.
    pub fn irecv(&self, src: SrcSel, tag: TagSel) -> RecvRequest {
        RecvRequest { comm: self.clone(), src, tag }
    }

    /// Receive a typed vector; returns `(source local rank, data)`.
    pub fn recv_vec<T: Pod>(&self, src: SrcSel, tag: TagSel) -> (usize, Vec<T>) {
        let env = self.recv(src, tag);
        (env.src, pod::from_bytes(&env.payload))
    }

    /// Convenience alias for `recv_vec::<u64>`.
    pub fn recv_u64s(&self, src: SrcSel, tag: TagSel) -> (usize, Vec<u64>) {
        self.recv_vec(src, tag)
    }

    /// Blocking probe: `(source local rank, tag, payload length)` of the
    /// next matching message, without consuming it.
    pub fn probe(&self, src: SrcSel, tag: TagSel) -> (usize, Tag, usize) {
        let m = self.matcher(src, tag);
        let (world_src, tag, len) = self.my_mailbox().wait_matching(&m);
        (self.local_of_world[world_src].expect("non-member source"), tag, len)
    }

    /// Nonblocking probe.
    pub fn iprobe(&self, src: SrcSel, tag: TagSel) -> Option<(usize, Tag, usize)> {
        let m = self.matcher(src, tag);
        let (world_src, tag, len) = self.my_mailbox().peek_matching(&m)?;
        Some((self.local_of_world[world_src].expect("non-member source"), tag, len))
    }

    fn my_mailbox(&self) -> &crate::mailbox::Mailbox {
        self.inner.transport.mailbox(self.members[self.rank])
    }

    // ---------------------------------------------------------------
    // Communicator management
    // ---------------------------------------------------------------

    /// Partition the communicator by `color`; ranks with equal color form a
    /// new communicator ordered by `(key, parent rank)`. Collective over
    /// all ranks of `self`.
    pub fn split(&self, color: usize, key: usize) -> Comm {
        // Gather (color, key) from everyone.
        let all: Vec<(usize, usize)> = self
            .allgather_bytes(pod::to_bytes(&[color as u64, key as u64]))
            .iter()
            .map(|b| {
                let v = pod::from_bytes::<u64>(b);
                (v[0] as usize, v[1] as usize)
            })
            .collect();

        // Deterministically enumerate distinct colors in sorted order.
        let mut colors: Vec<usize> = all.iter().map(|&(c, _)| c).collect();
        colors.sort_unstable();
        colors.dedup();

        // Parent rank 0 allocates a contiguous block of context ids and
        // broadcasts the base so every new communicator gets a unique,
        // agreed-upon context.
        let base = if self.rank == 0 {
            let b = self.inner.next_ctx.fetch_add(colors.len() as u32, Ordering::Relaxed);
            self.bcast_bytes(0, Some(pod::to_bytes(&[u64::from(b)])));
            b
        } else {
            pod::from_bytes::<u64>(&self.bcast_bytes(0, None))[0] as u32
        };

        let color_idx = colors.binary_search(&color).expect("own color present");
        let ctx = base + color_idx as u32;

        // Members of my color, ordered by (key, parent rank), as world ranks.
        let mut group: Vec<(usize, usize)> = all
            .iter()
            .enumerate()
            .filter(|&(_, &(c, _))| c == color)
            .map(|(parent_rank, &(_, k))| (k, parent_rank))
            .collect();
        group.sort_unstable();
        let members: Vec<usize> = group.iter().map(|&(_, pr)| self.members[pr]).collect();
        let my_local = group
            .iter()
            .position(|&(_, pr)| pr == self.rank)
            .expect("calling rank is in its own color group");

        Comm::derived(Arc::clone(&self.inner), ctx, my_local, members)
    }

    /// Duplicate the communicator onto a fresh context (same members, same
    /// ranks, isolated message namespace). Collective.
    pub fn dup(&self) -> Comm {
        self.split(0, self.rank)
    }
}

/// Why a nonblocking send did not go out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The backend's bounded send path is full; retry after draining.
    /// Only the socket backend ever reports this — in-proc sends are
    /// unbounded, preserving the original buffered-send semantics.
    WouldBlock,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::WouldBlock => write!(f, "send queue full (would block)"),
        }
    }
}

impl std::error::Error for SendError {}

/// Why a timed receive completed without a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The deadline passed with no matching message.
    TimedOut,
    /// The awaited specific source rank died with no matching message
    /// queued; it can never reply.
    PeerDead,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::TimedOut => write!(f, "receive timed out"),
            RecvError::PeerDead => write!(f, "peer rank died"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Handle for a posted receive; complete it with [`RecvRequest::wait`] or
/// poll it with [`RecvRequest::test`].
pub struct RecvRequest {
    comm: Comm,
    src: SrcSel,
    tag: TagSel,
}

impl RecvRequest {
    /// Block until the receive completes.
    pub fn wait(self) -> Envelope {
        self.comm.recv(self.src, self.tag)
    }

    /// Complete the receive if a matching message has arrived.
    pub fn test(&self) -> Option<Envelope> {
        self.comm.try_recv(self.src, self.tag)
    }
}

#[cfg(test)]
mod tests {
    use crate::envelope::{ANY_SOURCE, ANY_TAG};
    use crate::world::World;

    #[test]
    fn send_recv_roundtrip() {
        World::run(2, |c| {
            if c.rank() == 0 {
                c.send_slice(1, 3, &[1.5f64, 2.5]);
            } else {
                let (src, v) = c.recv_vec::<f64>(0.into(), 3.into());
                assert_eq!(src, 0);
                assert_eq!(v, vec![1.5, 2.5]);
            }
        });
    }

    #[test]
    fn tag_selectivity() {
        World::run(2, |c| {
            if c.rank() == 0 {
                c.send_u64s(1, 10, &[10]);
                c.send_u64s(1, 20, &[20]);
            } else {
                // Receive out of send order by tag.
                let (_, v20) = c.recv_u64s(ANY_SOURCE, 20.into());
                let (_, v10) = c.recv_u64s(ANY_SOURCE, 10.into());
                assert_eq!((v10[0], v20[0]), (10, 20));
            }
        });
    }

    #[test]
    fn any_source_any_tag() {
        World::run(4, |c| {
            if c.rank() == 0 {
                let mut seen: Vec<u64> =
                    (0..3).map(|_| c.recv_u64s(ANY_SOURCE, ANY_TAG).1[0]).collect();
                seen.sort_unstable();
                assert_eq!(seen, vec![1, 2, 3]);
            } else {
                c.send_u64s(0, c.rank() as u32, &[c.rank() as u64]);
            }
        });
    }

    #[test]
    fn pairwise_fifo_order() {
        World::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..100u64 {
                    c.send_u64s(1, 1, &[i]);
                }
            } else {
                for i in 0..100u64 {
                    assert_eq!(c.recv_u64s(0.into(), 1.into()).1[0], i);
                }
            }
        });
    }

    #[test]
    fn irecv_and_iprobe() {
        World::run(2, |c| {
            if c.rank() == 0 {
                c.barrier();
                c.send_u64s(1, 5, &[99]);
            } else {
                assert!(c.iprobe(ANY_SOURCE, ANY_TAG).is_none());
                let req = c.irecv(0.into(), 5.into());
                assert!(req.test().is_none());
                c.barrier();
                let env = req.wait();
                assert_eq!(env.src, 0);
                assert_eq!(env.tag, 5);
            }
        });
    }

    #[test]
    fn multipart_send_delivers_sender_allocations() {
        use crate::payload::Payload;
        // Structure preservation is an in-proc property: the socket backend
        // flattens parts on the wire (byte identity across backends is pinned
        // by the conformance suite), so this test must not follow
        // SIMMPI_TRANSPORT.
        crate::world::World::builder(2).transport(crate::transport::TransportKind::InProc).run(
            |c| {
                if c.rank() == 0 {
                    let head = bytes::Bytes::from(vec![1u8, 2]);
                    let lent = bytes::Bytes::from(vec![3u8, 4, 5]);
                    c.send_parts(1, 9, Payload::from_parts(vec![head, lent]));
                    // A second copy for the legacy receive path.
                    let head = bytes::Bytes::from(vec![1u8, 2]);
                    let lent = bytes::Bytes::from(vec![3u8, 4, 5]);
                    c.send_parts(1, 9, Payload::from_parts(vec![head, lent]));
                } else {
                    // Parts-aware receive: structure preserved, nothing copied.
                    let env = c.recv_parts(0.into(), 9.into());
                    assert_eq!(env.payload.num_parts(), 2);
                    assert_eq!(&env.payload.to_bytes()[..], &[1, 2, 3, 4, 5]);
                    // Legacy receive: flattened to the concatenated stream.
                    let env = c.recv(0.into(), 9.into());
                    assert_eq!(&env.payload[..], &[1, 2, 3, 4, 5]);
                }
            },
        );
    }

    #[test]
    fn probe_reports_length_without_consuming() {
        World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 2, bytes::Bytes::from(vec![0u8; 17]));
            } else {
                let (src, tag, len) = c.probe(ANY_SOURCE, ANY_TAG);
                assert_eq!((src, tag, len), (0, 2, 17));
                let env = c.recv(ANY_SOURCE, ANY_TAG);
                assert_eq!(env.payload.len(), 17);
            }
        });
    }

    #[test]
    fn split_builds_disjoint_comms() {
        World::run(6, |c| {
            // Colors: even ranks vs odd ranks.
            let sub = c.split(c.rank() % 2, c.rank());
            assert_eq!(sub.size(), 3);
            assert_eq!(sub.rank(), c.rank() / 2);
            assert_eq!(sub.to_world_rank(sub.rank()), c.rank());
            // Messages on sub do not leak: exchange within the subgroup.
            let next = (sub.rank() + 1) % sub.size();
            sub.send_u64s(next, 0, &[c.rank() as u64]);
            let (_, v) = sub.recv_u64s(ANY_SOURCE, 0.into());
            // Received from a same-parity rank.
            assert_eq!(v[0] % 2, (c.rank() % 2) as u64);
        });
    }

    #[test]
    fn split_respects_key_ordering() {
        World::run(4, |c| {
            // Reverse ordering via key.
            let sub = c.split(0, 100 - c.rank());
            assert_eq!(sub.rank(), c.size() - 1 - c.rank());
        });
    }

    #[test]
    fn dup_isolates_messages() {
        World::run(2, |c| {
            let d = c.dup();
            if c.rank() == 0 {
                c.send_u64s(1, 1, &[111]);
                d.send_u64s(1, 1, &[222]);
            } else {
                // Receive on the dup first: must get the dup's message even
                // though the world message arrived first.
                let (_, vd) = d.recv_u64s(0.into(), 1.into());
                let (_, vc) = c.recv_u64s(0.into(), 1.into());
                assert_eq!((vc[0], vd[0]), (111, 222));
            }
        });
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn reserved_tags_rejected() {
        // The per-rank panic ("tag is reserved") surfaces as a join failure.
        World::run(1, |c| c.send_u64s(0, 0x8000_0000, &[0]));
    }
}
