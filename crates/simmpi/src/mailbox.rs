//! Per-rank mailbox: an unbounded matched queue with condition-variable
//! wakeups.
//!
//! Following the channel-construction patterns in *Rust Atomics and Locks*
//! (ch. 5), the mailbox is a `Mutex<VecDeque>` plus a `Condvar`. Receivers
//! scan the queue for the first envelope matching `(context, source, tag)`;
//! if none matches they wait. Senders push and `notify_all` (several
//! receivers with different selectors may be parked — e.g. a serve loop and
//! a collective helper are never concurrent in our usage, but correctness
//! must not depend on that).

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

use crate::envelope::{split_wire_tag, SrcSel, TagSel, WireEnvelope};

#[derive(Default)]
pub(crate) struct Mailbox {
    queue: Mutex<VecDeque<WireEnvelope>>,
    available: Condvar,
    /// Notified whenever a receive removes an envelope — the socket
    /// backend's reader waits on this to keep a destination's queue under
    /// its receive window (flow control back onto the wire).
    drained: Condvar,
}

/// Matching key used by receives: the communicator context plus user-level
/// selectors. Source selection happens on *world* ranks (the caller
/// translates communicator-local selectors before matching).
#[derive(Clone, Copy)]
pub(crate) struct Matcher {
    pub ctx: u32,
    pub src: SrcSel, // in world-rank coordinates
    pub tag: TagSel,
}

impl Matcher {
    fn matches(&self, env: &WireEnvelope) -> bool {
        let (ctx, tag) = split_wire_tag(env.wire_tag);
        ctx == self.ctx && self.src.matches(env.world_src) && self.tag.matches(tag)
    }
}

impl Mailbox {
    /// Deliver an envelope (never blocks; queues are unbounded, matching
    /// MPI buffered-send semantics).
    pub fn push(&self, env: WireEnvelope) {
        self.queue.lock().push_back(env);
        self.available.notify_all();
    }

    /// Deliver an envelope *ahead of* everything already queued — the
    /// fault injector's reorder: a later message overtakes earlier ones,
    /// including same-`(src, tag)` traffic.
    pub fn push_front(&self, env: WireEnvelope) {
        self.queue.lock().push_front(env);
        self.available.notify_all();
    }

    /// Wake every blocked receiver so it can re-check external conditions
    /// (a peer death, a deadline, shutdown). Taking the lock first
    /// guarantees no receiver misses the wakeup between its check and its
    /// wait. Both condvars are notified: a reader parked in
    /// [`Mailbox::wait_below`] waits on `drained`, and its `closed` flag
    /// flips without any queue operation — without this notify its exit
    /// would be quantized to the bounded-wait tick.
    pub fn wake(&self) {
        let _q = self.queue.lock();
        self.available.notify_all();
        self.drained.notify_all();
    }

    /// Block until an envelope matching `m` is available and remove it.
    #[cfg(test)]
    pub fn pop_matching(&self, m: &Matcher) -> WireEnvelope {
        self.pop_matching_abort(m, &|| false).expect("abort predicate is constant false")
    }

    /// As [`Mailbox::pop_matching`], but gives up if `aborted()` turns
    /// true while nothing matches. A queued match always wins over an
    /// abort: messages a peer sent before dying stay receivable.
    pub fn pop_matching_abort(
        &self,
        m: &Matcher,
        aborted: &dyn Fn() -> bool,
    ) -> Result<WireEnvelope, ()> {
        let mut q = self.queue.lock();
        loop {
            if let Some(i) = q.iter().position(|e| m.matches(e)) {
                let env = q.remove(i).expect("index verified by position()");
                self.drained.notify_all();
                return Ok(env);
            }
            if aborted() {
                return Err(());
            }
            // Bounded wait: `aborted` can flip without a queue operation
            // (e.g. a dead peer's last in-flight frame landing on another
            // tag just before its delivered-counter store), so re-check it
            // periodically.
            self.available.wait_for(&mut q, std::time::Duration::from_millis(50));
        }
    }

    /// Block until an envelope matching `m` arrives, the deadline passes,
    /// or `aborted()` turns true (with no match queued). A queued match
    /// always wins over an abort: messages a peer sent before dying stay
    /// receivable.
    pub fn pop_matching_deadline(
        &self,
        m: &Matcher,
        deadline: std::time::Instant,
        aborted: &dyn Fn() -> bool,
    ) -> Result<WireEnvelope, crate::comm::RecvError> {
        let mut q = self.queue.lock();
        loop {
            if let Some(i) = q.iter().position(|e| m.matches(e)) {
                let env = q.remove(i).expect("index verified by position()");
                self.drained.notify_all();
                return Ok(env);
            }
            if aborted() {
                return Err(crate::comm::RecvError::PeerDead);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(crate::comm::RecvError::TimedOut);
            }
            // Capped below the deadline so `aborted` flips that arrive
            // without a queue operation still get re-checked promptly.
            self.available
                .wait_for(&mut q, (deadline - now).min(std::time::Duration::from_millis(50)));
        }
    }

    /// Remove a matching envelope if one is queued (nonblocking).
    pub fn try_pop_matching(&self, m: &Matcher) -> Option<WireEnvelope> {
        let mut q = self.queue.lock();
        let i = q.iter().position(|e| m.matches(e))?;
        let env = q.remove(i);
        self.drained.notify_all();
        env
    }

    /// Block until fewer than `limit` envelopes are queued, the closed
    /// flag turns true, or (defensively) a bounded wait elapses. Used by
    /// the socket backend's reader to stop draining the wire once the
    /// destination rank falls behind — what turns a full mailbox into
    /// sender-visible backpressure.
    pub fn wait_below(&self, limit: usize, closed: &dyn Fn() -> bool) {
        let mut q = self.queue.lock();
        while q.len() >= limit && !closed() {
            // Bounded wait: `closed` can flip without a queue operation
            // (shutdown, rank death), so re-check it periodically.
            self.drained.wait_for(&mut q, std::time::Duration::from_millis(50));
        }
    }

    /// Nonblocking probe: report `(world_src, tag, len)` of the first
    /// matching queued envelope without removing it.
    pub fn peek_matching(&self, m: &Matcher) -> Option<(usize, u32, usize)> {
        let q = self.queue.lock();
        q.iter().find(|e| m.matches(e)).map(|e| {
            let (_, tag) = split_wire_tag(e.wire_tag);
            (e.world_src, tag, e.payload.len())
        })
    }

    /// Blocking probe: wait until a matching envelope is queued and report
    /// its `(world_src, tag, len)` without removing it.
    pub fn wait_matching(&self, m: &Matcher) -> (usize, u32, usize) {
        let mut q = self.queue.lock();
        loop {
            if let Some(e) = q.iter().find(|e| m.matches(e)) {
                let (_, tag) = split_wire_tag(e.wire_tag);
                return (e.world_src, tag, e.payload.len());
            }
            self.available.wait(&mut q);
        }
    }

    /// Number of queued (undelivered) envelopes, for diagnostics.
    /// (The socket reader's window check reads the queue length under its
    /// own lock in [`Mailbox::wait_below`] rather than through this.)
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{make_wire_tag, ANY_SOURCE, ANY_TAG};
    use bytes::Bytes;

    fn env(src: usize, ctx: u32, tag: u32, body: &[u8]) -> WireEnvelope {
        WireEnvelope {
            world_src: src,
            wire_tag: make_wire_tag(ctx, tag),
            payload: Bytes::copy_from_slice(body).into(),
            sent_ns: 0,
        }
    }

    #[test]
    fn matches_in_fifo_order_per_selector() {
        let mb = Mailbox::default();
        mb.push(env(0, 0, 1, b"a"));
        mb.push(env(0, 0, 1, b"b"));
        let m = Matcher { ctx: 0, src: ANY_SOURCE, tag: 1.into() };
        assert_eq!(&mb.pop_matching(&m).payload.to_bytes()[..], b"a");
        assert_eq!(&mb.pop_matching(&m).payload.to_bytes()[..], b"b");
    }

    #[test]
    fn skips_non_matching_context() {
        let mb = Mailbox::default();
        mb.push(env(0, 9, 1, b"other-comm"));
        mb.push(env(0, 0, 1, b"mine"));
        let m = Matcher { ctx: 0, src: ANY_SOURCE, tag: ANY_TAG };
        assert_eq!(&mb.pop_matching(&m).payload.to_bytes()[..], b"mine");
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn try_pop_returns_none_when_empty() {
        let mb = Mailbox::default();
        let m = Matcher { ctx: 0, src: ANY_SOURCE, tag: ANY_TAG };
        assert!(mb.try_pop_matching(&m).is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mb = Mailbox::default();
        mb.push(env(3, 0, 7, b"xyz"));
        let m = Matcher { ctx: 0, src: 3.into(), tag: 7.into() };
        assert_eq!(mb.peek_matching(&m), Some((3, 7, 3)));
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        use std::sync::Arc;
        let mb = Arc::new(Mailbox::default());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || {
            let m = Matcher { ctx: 0, src: ANY_SOURCE, tag: 5.into() };
            mb2.pop_matching(&m)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.push(env(1, 0, 5, b"wake"));
        assert_eq!(&t.join().unwrap().payload.to_bytes()[..], b"wake");
    }
}
