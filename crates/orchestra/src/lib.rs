//! # orchestra — Henson-style workflow orchestration
//!
//! In the paper's cosmology experiment, "the Python script, which uses
//! Henson to orchestrate this experiment, first creates the
//! DistMetadataVol plugin, to ensure that the data exchange is performed
//! in situ, and then calls Nyx and Reeber … no changes were required
//! neither to Nyx, nor to Reeber."
//!
//! [`Workflow`] is that script: declare tasks (name, rank count, body) and
//! links (producer → consumer with a file pattern); `run` lays the tasks
//! out over one rank space, builds each rank's [`lowfive::DistMetadataVol`]
//! from the link topology, installs it in the thread-scoped VOL registry,
//! and invokes the task body. Task bodies call
//! [`minih5::H5::open_default`] and remain oblivious to whether their
//! "files" hit storage or stream to a peer task — the zero-code-change
//! deployment, reproduced.
//!
//! ```
//! use minih5::{Datatype, Dataspace, H5};
//! use orchestra::Workflow;
//!
//! // Unmodified "simulation" and "analysis" code: plain H5 calls.
//! let mut wf = Workflow::new();
//! wf.task("sim", 2, |tc| {
//!     let h5 = H5::open_default();
//!     let f = h5.create_file("out.h5").unwrap();
//!     let d = f
//!         .create_dataset("x", Datatype::UInt64, Dataspace::simple(&[8]))
//!         .unwrap();
//!     let lo = tc.local.rank() as u64 * 4;
//!     d.write_selection(
//!         &minih5::Selection::block(&[lo], &[4]),
//!         &(lo..lo + 4).collect::<Vec<u64>>(),
//!     )
//!     .unwrap();
//!     f.close().unwrap();
//! });
//! wf.task("viz", 1, |_tc| {
//!     let h5 = H5::open_default();
//!     let f = h5.open_file("out.h5").unwrap();
//!     let d = f.open_dataset("x").unwrap();
//!     assert_eq!(d.read_all::<u64>().unwrap(), (0..8).collect::<Vec<u64>>());
//!     f.close().unwrap();
//! });
//! wf.link("sim", "viz", "*.h5");
//! wf.run();
//! ```

use std::sync::Arc;

use lowfive::{DistVolBuilder, LowFiveProps};
use minih5::vol::set_thread_vol;
use minih5::Vol;
use simmpi::{TaskComm, TaskSpec, TaskWorld};

/// A boxed task body, as bound to config-declared tasks.
pub type TaskBody = Arc<dyn Fn(&TaskComm) + Send + Sync>;

struct TaskDef {
    name: String,
    procs: usize,
    body: TaskBody,
}

struct LinkDef {
    producer: String,
    consumer: String,
    pattern: String,
}

/// A declarative in situ workflow: tasks plus producer→consumer links.
#[derive(Default)]
pub struct Workflow {
    tasks: Vec<TaskDef>,
    links: Vec<LinkDef>,
    props: LowFiveProps,
    overlap: bool,
    observe: Option<obsv::Registry>,
}

impl Workflow {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a task with `procs` ranks running `body`.
    ///
    /// # Panics
    /// Panics if the name is already taken.
    pub fn task(
        &mut self,
        name: &str,
        procs: usize,
        body: impl Fn(&TaskComm) + Send + Sync + 'static,
    ) -> &mut Self {
        assert!(self.tasks.iter().all(|t| t.name != name), "duplicate task name {name:?}");
        self.tasks.push(TaskDef { name: name.to_string(), procs, body: Arc::new(body) });
        self
    }

    /// Declare that files matching `pattern` written by `producer` flow in
    /// situ to `consumer`.
    pub fn link(&mut self, producer: &str, consumer: &str, pattern: &str) -> &mut Self {
        self.links.push(LinkDef {
            producer: producer.to_string(),
            consumer: consumer.to_string(),
            pattern: pattern.to_string(),
        });
        self
    }

    /// Set LowFive transport properties applied to every task's plugin.
    pub fn props(&mut self, props: LowFiveProps) -> &mut Self {
        self.props = props;
        self
    }

    /// Enable overlap mode: producers serve snapshots from a background
    /// thread and keep computing (see
    /// [`lowfive::DistVolBuilder::async_serve`]); the runner drains
    /// outstanding sessions when each task body returns.
    pub fn overlap(&mut self, on: bool) -> &mut Self {
        self.overlap = on;
        self
    }

    /// Record spans, counters, and histograms into `registry` while the
    /// workflow runs: every rank gets a recorder lane, each task body runs
    /// under a [`obsv::Phase::Task`] span tagged with its task id, and the
    /// transport layers below (LowFive, RPC, simmpi) report into the same
    /// lanes. Export the result with [`obsv::Registry::report`] after
    /// [`Workflow::run`] returns.
    pub fn observe(&mut self, registry: obsv::Registry) -> &mut Self {
        self.observe = Some(registry);
        self
    }

    /// Build the workflow wiring from a config file, binding task bodies
    /// by name — the external-wiring style ADIOS uses for its data model.
    ///
    /// Format (order-insensitive, `#` comments):
    ///
    /// ```text
    /// [task sim]
    /// procs = 4
    ///
    /// [task viz]
    /// procs = 1
    ///
    /// [link]
    /// from = sim
    /// to = viz
    /// pattern = *.h5
    /// ```
    ///
    /// # Panics
    /// Panics on malformed config or a task without a bound body.
    pub fn from_config(
        config: &str,
        mut bodies: std::collections::HashMap<String, TaskBody>,
    ) -> Workflow {
        enum Section {
            None,
            Task,
            Link,
        }
        let mut wf = Workflow::new();
        let mut section = Section::None;
        let mut pending_task: Option<(String, Option<usize>)> = None;
        let mut pending_link: Option<(Option<String>, Option<String>, Option<String>)> = None;
        let mut flush_task = |wf: &mut Workflow, t: &mut Option<(String, Option<usize>)>| {
            if let Some((name, procs)) = t.take() {
                let procs = procs.unwrap_or_else(|| panic!("task {name:?} missing `procs`"));
                let body = bodies
                    .remove(&name)
                    .unwrap_or_else(|| panic!("no body bound for task {name:?}"));
                wf.tasks.push(TaskDef { name, procs, body });
            }
        };
        fn flush_link(
            wf: &mut Workflow,
            l: &mut Option<(Option<String>, Option<String>, Option<String>)>,
        ) {
            if let Some((from, to, pattern)) = l.take() {
                wf.links.push(LinkDef {
                    producer: from.expect("link missing `from`"),
                    consumer: to.expect("link missing `to`"),
                    pattern: pattern.expect("link missing `pattern`"),
                });
            }
        }
        for raw in config.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(head) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                flush_task(&mut wf, &mut pending_task);
                flush_link(&mut wf, &mut pending_link);
                if let Some(name) = head.strip_prefix("task ") {
                    section = Section::Task;
                    pending_task = Some((name.trim().to_string(), None));
                } else if head.trim() == "link" {
                    section = Section::Link;
                    pending_link = Some((None, None, None));
                } else {
                    panic!("unknown section {head:?}");
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .unwrap_or_else(|| panic!("malformed line {line:?}"));
            match (&section, key) {
                (Section::Task, "procs") => {
                    let t = pending_task.as_mut().expect("inside a task section");
                    t.1 = Some(
                        value
                            .parse()
                            .unwrap_or_else(|_| panic!("task {}: bad procs {value:?}", t.0)),
                    );
                }
                (Section::Link, "from") => {
                    pending_link.as_mut().expect("inside link").0 = Some(value.to_string())
                }
                (Section::Link, "to") => {
                    pending_link.as_mut().expect("inside link").1 = Some(value.to_string())
                }
                (Section::Link, "pattern") => {
                    pending_link.as_mut().expect("inside link").2 = Some(value.to_string())
                }
                _ => panic!("unexpected key {key:?} in this section"),
            }
        }
        flush_task(&mut wf, &mut pending_task);
        flush_link(&mut wf, &mut pending_link);
        assert!(
            bodies.is_empty(),
            "bodies bound for unknown tasks: {:?}",
            bodies.keys().collect::<Vec<_>>()
        );
        wf
    }

    /// Helper to box a task body for [`Workflow::from_config`].
    pub fn body(f: impl Fn(&TaskComm) + Send + Sync + 'static) -> TaskBody {
        Arc::new(f)
    }

    fn task_index(&self, name: &str) -> usize {
        self.tasks
            .iter()
            .position(|t| t.name == name)
            .unwrap_or_else(|| panic!("unknown task {name:?} in link"))
    }

    /// Execute the workflow; returns when every task completes.
    pub fn run(&self) {
        // Validate links before spawning anything.
        for l in &self.links {
            let _ = self.task_index(&l.producer);
            let _ = self.task_index(&l.consumer);
        }
        let specs: Vec<TaskSpec> =
            self.tasks.iter().map(|t| TaskSpec::new(t.name.clone(), t.procs)).collect();
        TaskWorld::run_observed(&specs, None, self.observe.as_ref(), |tc| {
            // Build this rank's plugin from the link topology.
            let mut builder = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(self.props.clone())
                .async_serve(self.overlap);
            let mut any_link = false;
            for l in &self.links {
                let p = self.task_index(&l.producer);
                let c = self.task_index(&l.consumer);
                let ranks_of = |tid: usize| -> Vec<usize> {
                    (0..tc.task_size(tid)).map(|r| tc.world_rank_of(tid, r)).collect()
                };
                if p == tc.task_id {
                    builder = builder.produce(&l.pattern, ranks_of(c));
                    any_link = true;
                }
                if c == tc.task_id {
                    builder = builder.consume(&l.pattern, ranks_of(p));
                    any_link = true;
                }
            }
            let body = Arc::clone(&self.tasks[tc.task_id].body);
            // The Task span covers the body *and* the drain: overlap-mode
            // serve time a producer spends after its body returns is still
            // that task's work.
            let sp = obsv::span_tagged(obsv::Phase::Task, tc.task_id as u64);
            obsv::counter_add(obsv::Ctr::TasksStarted, 1);
            if any_link || !self.links.is_empty() {
                let dist = builder.build();
                let vol: Arc<dyn Vol> = dist.clone();
                let _guard = set_thread_vol(vol);
                body(&tc);
                // Finish any asynchronous serve sessions before the task
                // exits (no-op in synchronous mode).
                dist.drain();
            } else {
                body(&tc);
            }
            obsv::counter_add(obsv::Ctr::TasksFinished, 1);
            drop(sp);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minih5::{Dataspace, Datatype, Selection, H5};
    use parking_lot::Mutex;

    #[test]
    fn pipeline_of_three_tasks() {
        // sim → filter → sink: filter consumes "raw.h5" and produces
        // "filtered.h5" (a task that is both consumer and producer).
        let mut wf = Workflow::new();
        wf.task("sim", 2, |tc| {
            let h5 = H5::open_default();
            let f = h5.create_file("raw.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[8])).unwrap();
            let lo = tc.local.rank() as u64 * 4;
            d.write_selection(&Selection::block(&[lo], &[4]), &(lo..lo + 4).collect::<Vec<u64>>())
                .unwrap();
            f.close().unwrap();
        });
        wf.task("filter", 1, |_tc| {
            let h5 = H5::open_default();
            let fin = h5.open_file("raw.h5").unwrap();
            let x = fin.open_dataset("x").unwrap().read_all::<u64>().unwrap();
            fin.close().unwrap();
            let fout = h5.create_file("filtered.h5").unwrap();
            let d = fout.create_dataset("x2", Datatype::UInt64, Dataspace::simple(&[8])).unwrap();
            let doubled: Vec<u64> = x.iter().map(|v| v * 2).collect();
            d.write_all(&doubled).unwrap();
            fout.close().unwrap();
        });
        wf.task("sink", 1, |_tc| {
            let h5 = H5::open_default();
            let f = h5.open_file("filtered.h5").unwrap();
            let got = f.open_dataset("x2").unwrap().read_all::<u64>().unwrap();
            assert_eq!(got, (0..8).map(|v| v * 2).collect::<Vec<u64>>());
            f.close().unwrap();
        });
        wf.link("sim", "filter", "raw.h5");
        wf.link("filter", "sink", "filtered.h5");
        wf.run();
    }

    #[test]
    fn results_visible_via_shared_state() {
        let sum = Arc::new(Mutex::new(0u64));
        let sum2 = Arc::clone(&sum);
        let mut wf = Workflow::new();
        wf.task("p", 1, |_tc| {
            let h5 = H5::open_default();
            let f = h5.create_file("s.h5").unwrap();
            let d = f.create_dataset("v", Datatype::UInt64, Dataspace::simple(&[4])).unwrap();
            d.write_all(&[1u64, 2, 3, 4]).unwrap();
            f.close().unwrap();
        });
        wf.task("c", 1, move |_tc| {
            let h5 = H5::open_default();
            let f = h5.open_file("s.h5").unwrap();
            let v = f.open_dataset("v").unwrap().read_all::<u64>().unwrap();
            *sum2.lock() += v.iter().sum::<u64>();
            f.close().unwrap();
        });
        wf.link("p", "c", "*");
        wf.run();
        assert_eq!(*sum.lock(), 10);
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn bad_link_is_rejected() {
        let mut wf = Workflow::new();
        wf.task("only", 1, |_| {});
        wf.link("only", "ghost", "*");
        wf.run();
    }

    #[test]
    #[should_panic(expected = "duplicate task name")]
    fn duplicate_names_rejected() {
        let mut wf = Workflow::new();
        wf.task("t", 1, |_| {});
        wf.task("t", 1, |_| {});
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;
    use minih5::{Dataspace, Datatype, H5};
    use std::collections::HashMap;

    const CONFIG: &str = r#"
# A two-stage workflow declared externally, ADIOS-style.
[task sim]
procs = 2

[task viz]
procs = 1

[link]
from = sim
to = viz
pattern = cfg-*.h5
"#;

    #[test]
    fn config_declared_workflow_runs() {
        let mut bodies: HashMap<String, TaskBody> = HashMap::new();
        bodies.insert(
            "sim".into(),
            Workflow::body(|tc| {
                let h5 = H5::open_default();
                let f = h5.create_file("cfg-1.h5").unwrap();
                let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[4])).unwrap();
                let lo = tc.local.rank() as u64 * 2;
                d.write_selection(&minih5::Selection::block(&[lo], &[2]), &[lo, lo + 1]).unwrap();
                f.close().unwrap();
            }),
        );
        bodies.insert(
            "viz".into(),
            Workflow::body(|_tc| {
                let h5 = H5::open_default();
                let f = h5.open_file("cfg-1.h5").unwrap();
                let got = f.open_dataset("x").unwrap().read_all::<u64>().unwrap();
                assert_eq!(got, vec![0, 1, 2, 3]);
                f.close().unwrap();
            }),
        );
        let wf = Workflow::from_config(CONFIG, bodies);
        wf.run();
    }

    #[test]
    #[should_panic(expected = "no body bound")]
    fn config_with_unbound_task_panics() {
        let _ = Workflow::from_config(CONFIG, HashMap::new());
    }

    #[test]
    #[should_panic(expected = "missing `procs`")]
    fn config_task_without_procs_panics() {
        let mut bodies: HashMap<String, TaskBody> = HashMap::new();
        bodies.insert("t".into(), Workflow::body(|_| {}));
        let _ = Workflow::from_config("[task t]\n", bodies);
    }

    #[test]
    fn overlap_mode_through_workflow() {
        let mut wf = Workflow::new();
        wf.overlap(true);
        wf.task("p", 1, |_tc| {
            let h5 = H5::open_default();
            for s in 0..3 {
                let f = h5.create_file(&format!("ov{s}.h5")).unwrap();
                let d = f.create_dataset("x", Datatype::UInt32, Dataspace::simple(&[2])).unwrap();
                d.write_all(&[s as u32, s as u32 + 1]).unwrap();
                f.close().unwrap(); // returns immediately in overlap mode
            }
            // The runner drains outstanding sessions after this body.
        });
        wf.task("c", 1, |_tc| {
            let h5 = H5::open_default();
            for s in 0..3 {
                let f = h5.open_file(&format!("ov{s}.h5")).unwrap();
                let got = f.open_dataset("x").unwrap().read_all::<u32>().unwrap();
                assert_eq!(got, vec![s as u32, s as u32 + 1]);
                f.close().unwrap();
            }
        });
        wf.link("p", "c", "ov*.h5");
        wf.run();
    }
}
