//! Failure injection: errors must propagate cleanly across the transport
//! instead of wedging producers or consumers.

use std::sync::Arc;

use lowfive::{DistVolBuilder, LowFiveProps, MetadataVol};
use minih5::{Dataspace, Datatype, H5Error, Ownership, Selection, Vol, H5};
use simmpi::{TaskComm, TaskSpec, TaskWorld};

fn world_ranks(tc: &TaskComm, task_id: usize) -> Vec<usize> {
    (0..tc.task_size(task_id)).map(|r| tc.world_rank_of(task_id, r)).collect()
}

fn pair_vols(tc: &TaskComm) -> Arc<dyn Vol> {
    let producers = world_ranks(tc, 0);
    let consumers = world_ranks(tc, 1);
    if tc.task_id == 0 {
        DistVolBuilder::new(tc.world.clone(), tc.local.clone()).produce("*", consumers).build()
    } else {
        DistVolBuilder::new(tc.world.clone(), tc.local.clone()).consume("*", producers).build()
    }
}

/// A consumer asking for a dataset that does not exist gets a clean error
/// (shipped across the wire), and the workflow still terminates.
#[test]
fn remote_missing_dataset_propagates_error() {
    let specs = [TaskSpec::new("p", 2), TaskSpec::new("c", 1)];
    TaskWorld::run(&specs, |tc| {
        let h5 = H5::with_vol(pair_vols(&tc));
        if tc.task_id == 0 {
            let f = h5.create_file("e.h5").unwrap();
            let d = f.create_dataset("real", Datatype::UInt64, Dataspace::simple(&[4])).unwrap();
            let s = tc.local.rank() as u64 * 2;
            d.write_selection(&Selection::block(&[s], &[2]), &[s, s + 1]).unwrap();
            f.close().unwrap();
        } else {
            let f = h5.open_file("e.h5").unwrap();
            // Missing path is a NotFound from the local (imported) tree.
            assert!(matches!(f.open_dataset("ghost"), Err(H5Error::NotFound(_))));
            // The real dataset still works afterwards.
            let d = f.open_dataset("real").unwrap();
            assert_eq!(d.read_all::<u64>().unwrap(), vec![0, 1, 2, 3]);
            f.close().unwrap();
        }
    });
}

/// Selections that do not fit the remote dataspace fail on the consumer
/// without poisoning the session.
#[test]
fn remote_invalid_selection_rejected() {
    let specs = [TaskSpec::new("p", 1), TaskSpec::new("c", 1)];
    TaskWorld::run(&specs, |tc| {
        let h5 = H5::with_vol(pair_vols(&tc));
        if tc.task_id == 0 {
            let f = h5.create_file("sel.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt32, Dataspace::simple(&[4])).unwrap();
            d.write_all(&[1u32, 2, 3, 4]).unwrap();
            f.close().unwrap();
        } else {
            let f = h5.open_file("sel.h5").unwrap();
            let d = f.open_dataset("x").unwrap();
            // Out-of-bounds selection.
            assert!(matches!(
                d.read_selection::<u32>(&Selection::block(&[2], &[4])),
                Err(H5Error::ShapeMismatch(_))
            ));
            // Wrong element type.
            assert!(d.read_selection::<u64>(&Selection::all()).is_err());
            // Valid read still succeeds afterwards.
            assert_eq!(d.read_all::<u32>().unwrap(), vec![1, 2, 3, 4]);
            f.close().unwrap();
        }
    });
}

/// Every mutation on a consumed file is rejected read-only.
#[test]
fn consumed_files_are_fully_read_only() {
    let specs = [TaskSpec::new("p", 1), TaskSpec::new("c", 1)];
    TaskWorld::run(&specs, |tc| {
        let h5 = H5::with_vol(pair_vols(&tc));
        if tc.task_id == 0 {
            let f = h5.create_file("ro.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt8, Dataspace::simple(&[2])).unwrap();
            d.write_all(&[1u8, 2]).unwrap();
            f.close().unwrap();
        } else {
            let f = h5.open_file("ro.h5").unwrap();
            assert!(f.create_group("g").is_err());
            assert!(f.create_dataset("y", Datatype::UInt8, Dataspace::simple(&[1])).is_err());
            assert!(f
                .create_dataset_chunked("z", Datatype::UInt8, Dataspace::simple(&[2]), &[1])
                .is_err());
            assert!(f.set_attr("a", 1u32).is_err());
            let d = f.open_dataset("x").unwrap();
            assert!(d.write_all(&[9u8, 9]).is_err());
            assert!(d.extend(&[4]).is_err());
            f.close().unwrap();
        }
    });
}

/// Using a closed handle is an InvalidHandle error, not a panic.
#[test]
fn closed_handles_rejected_cleanly() {
    let vol = Arc::new(MetadataVol::over_native(LowFiveProps::new()));
    let f = vol.file_create("h.h5").unwrap();
    let d = vol.dataset_create(f, "x", &Datatype::UInt8, &Dataspace::simple(&[1])).unwrap();
    vol.file_close(f).unwrap();
    assert!(matches!(vol.list(f), Err(H5Error::InvalidHandle(_))));
    // Dataset handle survives (tree outlives the file handle), but a
    // second close of the file is invalid.
    assert!(vol.dataset_meta(d).is_ok());
    assert!(matches!(vol.file_close(f), Err(H5Error::InvalidHandle(_))));
}

/// Consumer-side open of a file nobody produces fails (pattern mismatch
/// falls through to storage and reports the I/O error) rather than
/// hanging.
#[test]
fn open_of_unproduced_file_fails_fast() {
    let specs = [TaskSpec::new("p", 1), TaskSpec::new("c", 1)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("data-*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("data-*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let f = h5.create_file("data-1").unwrap();
            f.create_dataset("x", Datatype::UInt8, Dataspace::simple(&[1]))
                .unwrap()
                .write_all(&[7u8])
                .unwrap();
            f.close().unwrap();
        } else {
            // "other" does not match the consume pattern → storage path →
            // immediate I/O error (no such file on disk).
            assert!(matches!(h5.open_file("/nonexistent/other"), Err(H5Error::Io(_))));
            // The produced file still arrives.
            let f = h5.open_file("data-1").unwrap();
            assert_eq!(f.open_dataset("x").unwrap().read_all::<u8>().unwrap(), vec![7]);
            f.close().unwrap();
        }
    });
}

/// Oversized and undersized write buffers are rejected with
/// ShapeMismatch by every layer.
#[test]
fn buffer_size_validation_everywhere() {
    let vol = Arc::new(MetadataVol::over_native(LowFiveProps::new()));
    let f = vol.file_create("sz.h5").unwrap();
    let d = vol.dataset_create(f, "x", &Datatype::UInt32, &Dataspace::simple(&[4])).unwrap();
    for bad in [0usize, 1, 15, 17, 64] {
        let r = vol.dataset_write(
            d,
            &Selection::all(),
            bytes::Bytes::from(vec![0u8; bad]),
            Ownership::Deep,
        );
        assert!(matches!(r, Err(H5Error::ShapeMismatch(_))), "len {bad} accepted");
    }
    assert!(vol
        .dataset_write(d, &Selection::all(), bytes::Bytes::from(vec![0u8; 16]), Ownership::Deep)
        .is_ok());
    vol.file_close(f).unwrap();
}
