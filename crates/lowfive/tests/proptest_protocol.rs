//! Decoder-robustness properties for the wire protocol: every `dec_*`
//! must answer hostile bytes with `Err`, never a panic — and never a
//! silently-wrong value where the framing makes that detectable.
//!
//! Three attack shapes, over every frame kind the protocol defines:
//!
//! * **truncation** at every possible cut — exhaustive, not sampled,
//!   since frames are tiny;
//! * **trailing garbage** after a valid frame — rejected by the
//!   `expect_eof` discipline (a decoder that ignores leftover bytes
//!   would silently mask interleaving bugs upstream);
//! * **random byte flips** — sampled by proptest; the decode may
//!   succeed (most fields carry no checksum) but must never panic.
//!
//! Plus the codec identity: `encode_coded` → `decode_coded_payload` is
//! the identity on arbitrary bodies, under every codec and any
//! multi-part split of the input.

use bytes::Bytes;
use lowfive::protocol::*;
use minih5::format::FileMeta;
use minih5::{BBox, Selection};
use proptest::prelude::*;
use simmpi::Payload;

/// A frame-kind fixture: `(name, valid frame, decoder)`.
type Frame = (&'static str, Bytes, fn(&[u8]) -> bool);

/// Every structured frame kind. The result-wrapper and raw-codec frames
/// are deliberately absent — their bodies are opaque by design, so
/// "leftover bytes" is not a concept they can check.
fn frames() -> Vec<Frame> {
    let bb = BBox::new(vec![1, 2], vec![3, 4]);
    let sel = Selection::block(&[0, 0], &[2, 2]);
    let step = StepNextReply::Step { seq: 9, file: "s@s1".into(), gen: 2, pub_ns: 77 };
    vec![
        ("metadata_req", enc_metadata_req("a.h5", CAP_ALL), |b| dec_metadata_req(b).is_ok()),
        ("codec_offer", enc_codec_offer("a.h5", CAP_RLE | CAP_RAW), |b| dec_codec_offer(b).is_ok()),
        ("intersect_req", enc_intersect_req("f.h5", "g/d", &bb), |b| dec_intersect_req(b).is_ok()),
        ("data_req", enc_data_req("f.h5", "d", &sel), |b| dec_data_req(b).is_ok()),
        (
            "data_req_batch",
            enc_data_req_batch("f.h5", &[("d".into(), sel.clone()), ("e".into(), sel.clone())]),
            |b| dec_data_req_batch(b).is_ok(),
        ),
        ("done_req", enc_done_req("f.h5"), |b| dec_done_req(b).is_ok()),
        ("metadata_reply", enc_metadata_reply(7, CAP_ALL, &FileMeta::default()), |b| {
            dec_metadata_reply(b).is_ok()
        }),
        ("intersect_reply", enc_intersect_reply(3, &[1, 2, 5]), |b| dec_intersect_reply(b).is_ok()),
        ("data_reply", enc_data_reply(4, &[(0, 3), (10, 2)], &[1, 2, 3, 4, 5]), |b| {
            dec_data_reply(b).is_ok()
        }),
        (
            "data_reply_batch",
            enc_data_reply_batch(4, &[(vec![(0, 2)], Bytes::from_static(&[9, 9]))]),
            |b| dec_data_reply_batch(b).is_ok(),
        ),
        (
            "index_bundle",
            enc_index_bundle(&[("f.h5".into(), "d".into(), 7, BBox::new(vec![0], vec![4]))]),
            |b| dec_index_bundle(b).is_ok(),
        ),
        ("step_sub_req", enc_step_sub_req("sim.h5", CAP_ALL), |b| dec_step_sub_req(b).is_ok()),
        ("step_sub_reply", enc_step_sub_reply(2, 5, false, CAP_RAW), |b| {
            dec_step_sub_reply(b).is_ok()
        }),
        ("step_next_req", enc_step_next_req("sim.h5", 3, 1, 0), |b| dec_step_next_req(b).is_ok()),
        ("step_next_reply", enc_step_next_reply(&step), |b| dec_step_next_reply(b).is_ok()),
        ("step_ack_req", enc_step_ack_req("sim.h5", 11), |b| dec_step_ack_req(b).is_ok()),
        // A *compressed* coded frame is structured (length header + pair
        // stream), so truncation and padding are detectable — unlike its
        // raw sibling, whose body is opaque.
        ("rle_coded", encode_coded(Payload::from(vec![7u8; 64]), CODEC_RLE).to_bytes(), |b| {
            dec_coded(&Bytes::copy_from_slice(b), CAP_ALL).is_ok()
        }),
    ]
}

#[test]
fn every_frame_decodes_whole() {
    for (name, frame, dec) in frames() {
        assert!(dec(&frame), "{name}: the untouched frame must decode");
    }
}

#[test]
fn every_truncation_is_rejected() {
    for (name, frame, dec) in frames() {
        for cut in 0..frame.len() {
            assert!(!dec(&frame[..cut]), "{name}: truncation to {cut}/{} bytes", frame.len());
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    for (name, frame, dec) in frames() {
        for pad in [&[0u8][..], &[0xFF], &[1, 2], &[0xAB, 0xCD, 0xEF, 0x01]] {
            let mut b = frame.to_vec();
            b.extend_from_slice(pad);
            assert!(!dec(&b), "{name}: {} trailing bytes accepted", pad.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Arbitrary single-byte corruption never panics a decoder. The
    /// decode may still succeed — most fields carry no checksum — but
    /// it must fail *cleanly* when it fails.
    #[test]
    fn byte_flips_never_panic(
        which in 0usize..17,
        pos in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let all = frames();
        let (_, frame, dec) = &all[which % all.len()];
        let mut b = frame.to_vec();
        let i = (pos as usize) % b.len();
        b[i] ^= xor;
        let _ = dec(&b);
    }

    /// Corrupting a *compressed* frame may shrink or grow the expansion,
    /// but the declared-length discipline catches every size mismatch:
    /// a flip in the RLE pair stream either errs or expands to exactly
    /// the declared length — never to a differently-sized body.
    #[test]
    fn rle_expansion_length_is_pinned(
        body in proptest::collection::vec(0u8..4, 16..200),
        pos in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let coded = encode_coded(Payload::from(body.clone()), CODEC_RLE).to_bytes();
        if coded[0] != CODEC_RLE {
            return; // fell back to raw: nothing structured to corrupt
        }
        let mut b = coded.to_vec();
        let i = (pos as usize) % b.len();
        b[i] ^= xor;
        if let Ok(back) = dec_coded(&Bytes::from(b.clone()), CAP_ALL) {
            // The frame still declared *some* length and the expansion
            // matched it; a silent size change is impossible.
            let declared = u64::from_le_bytes(b[1..9].try_into().unwrap());
            prop_assert_eq!(back.len() as u64, declared);
        }
    }

    /// encode → decode is the identity for every codec, on any body and
    /// any two-part split (the encoder walks parts, the decoder fuses
    /// them back).
    #[test]
    fn codec_roundtrip_is_identity(
        body in proptest::collection::vec(any::<u8>(), 0..300),
        split in any::<u64>(),
        codec in 0u8..3,
    ) {
        let cut = (split as usize) % (body.len() + 1);
        let mut p = Payload::new();
        p.push(Bytes::copy_from_slice(&body[..cut]));
        p.push(Bytes::copy_from_slice(&body[cut..]));
        let coded = encode_coded(p, codec);
        let back = decode_coded_payload(coded.clone(), CAP_ALL).unwrap();
        prop_assert_eq!(&back.to_bytes()[..], &body[..]);
        let back = dec_coded(&coded.to_bytes(), CAP_ALL).unwrap();
        prop_assert_eq!(&back[..], &body[..]);
    }
}
