//! Zero-copy serve path and generation-tagged consumer caches.
//!
//! The serve loop answers data queries with *borrowed* sub-slices of the
//! producer's shallow regions (no staging copy), and every reply carries
//! the file's generation so a consumer holding cached metadata/owner
//! lookups can detect an in-place rewrite and refetch. These tests pin:
//!
//! - read → in-place rewrite → read returns the *new* bytes, on both the
//!   pipelined (batched) and serial fetch paths;
//! - a query box that intersects nothing served returns fill values
//!   (canonical empty-bbox handling end to end);
//! - a fully shallow producer serves a consumer with zero dataset-payload
//!   memcpys (`BytesCopied == 0`), while the deep (copy) mode counts them;
//! - a dropped zero-copy reply is retransmitted by the bounded RPC retry
//!   without corrupting the producer's lent buffer (no aliasing, no
//!   double-free — the region is refcounted, not owned by the wire).

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use lowfive::{DistVolBuilder, LowFiveProps};
use minih5::{Dataspace, Datatype, Ownership, Selection, Vol, H5};
use obsv::{Ctr, Registry};
use simmpi::{FaultKind, FaultPlan, TaskComm, TaskSpec, TaskWorld};

fn world_ranks(tc: &TaskComm, task_id: usize) -> Vec<usize> {
    (0..tc.task_size(task_id)).map(|r| tc.world_rank_of(task_id, r)).collect()
}

const N: u64 = 64;
const HALF: u64 = N / 2;

/// Shared body for the staleness regression: two producers write their
/// halves, the consumer reads the whole dataset while *keeping the file
/// open*, the producers rewrite their halves in place (same geometry,
/// new values, generation bump), and the consumer's second read through
/// the still-open handle must observe the new values.
///
/// World barriers order the phases; async serve keeps the producers'
/// serve loop answering across the rewrite.
fn rewrite_in_place(pipelined: bool) {
    let specs = [TaskSpec::new("producer", 2), TaskSpec::new("consumer", 1)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let mut props = LowFiveProps::new();
        props.set_fetch_pipeline("*", pipelined);
        let vol = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*", consumers.clone())
                .async_serve(true)
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
        if tc.task_id == 0 {
            let p = tc.local.rank() as u64;
            let lo = p * HALF;
            let sel = Selection::block(&[lo], &[HALF]);
            let f = h5.create_file("rw.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[N])).unwrap();
            let vals: Vec<u64> = (lo..lo + HALF).collect();
            d.write_selection(&sel, &vals).unwrap();
            f.close().unwrap(); // async: returns immediately, serve thread answers
            tc.world.barrier(); // consumer finished its first read
                                // In-place rewrite through a re-opened handle: same geometry,
                                // new values. This bumps the file generation; the close of a
                                // non-created handle must not re-serve.
            let f = h5.open_file("rw.h5").unwrap();
            let d = f.open_dataset("x").unwrap();
            let vals: Vec<u64> = (lo..lo + HALF).map(|i| i + 7777).collect();
            d.write_selection(&sel, &vals).unwrap();
            f.close().unwrap();
            tc.world.barrier(); // rewrite visible before the second read
            vol.drain();
        } else {
            let f = h5.open_file("rw.h5").unwrap();
            let d = f.open_dataset("x").unwrap();
            let first: Vec<u64> = d.read_all().unwrap();
            let want: Vec<u64> = (0..N).collect();
            assert_eq!(first, want, "first read sees the original snapshot");
            tc.world.barrier(); // let the producers rewrite
            tc.world.barrier();
            // Cached owner lookups are now stale; the generation tag in
            // the data replies must force an invalidate+refetch, so the
            // same open handle observes the rewritten bytes.
            let second: Vec<u64> = d.read_all().unwrap();
            let want: Vec<u64> = (0..N).map(|i| i + 7777).collect();
            assert_eq!(second, want, "second read must see the in-place rewrite");
            f.close().unwrap();
        }
    });
}

#[test]
fn in_place_rewrite_is_observed_pipelined() {
    rewrite_in_place(true);
}

#[test]
fn in_place_rewrite_is_observed_serial() {
    rewrite_in_place(false);
}

/// A consumer query box that intersects no written region: the redirect
/// finds no owners, no data RPC is issued, and the read returns fill
/// zeros — exercising the canonical empty-bbox path on the serve side.
#[test]
fn disjoint_query_returns_fill() {
    let specs = [TaskSpec::new("producer", 1), TaskSpec::new("consumer", 1)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let f = h5.create_file("gap.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[32])).unwrap();
            // Only [0, 8) is ever written.
            let vals: Vec<u64> = (0..8).map(|i| i + 1).collect();
            d.write_selection(&Selection::block(&[0], &[8]), &vals).unwrap();
            f.close().unwrap();
        } else {
            let f = h5.open_file("gap.h5").unwrap();
            let d = f.open_dataset("x").unwrap();
            // Disjoint from every written region: all fill.
            let hole: Vec<u64> = d.read_selection(&Selection::block(&[16], &[8])).unwrap();
            assert_eq!(hole, vec![0u64; 8]);
            // Straddling: written prefix, fill suffix.
            let edge: Vec<u64> = d.read_selection(&Selection::block(&[4], &[8])).unwrap();
            assert_eq!(edge, vec![5, 6, 7, 8, 0, 0, 0, 0]);
            f.close().unwrap();
        }
    });
}

/// Run one producer→consumer exchange under an observed registry and
/// return the total `BytesCopied` across all ranks. `shallow` toggles
/// the zero-copy rule for every dataset.
fn bytes_copied_for(shallow: bool) -> u64 {
    const M: u64 = 1 << 12;
    let reg = Registry::new();
    let specs = [TaskSpec::new("producer", 1), TaskSpec::new("consumer", 1)];
    TaskWorld::run_observed(&specs, None, Some(&reg), |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let mut props = LowFiveProps::new();
        props.set_zerocopy("*", "*", shallow);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let f = h5.create_file("ab.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[M])).unwrap();
            let vals: Vec<u64> = (0..M).collect();
            let raw: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
            d.write_bytes(&Selection::block(&[0], &[M]), Bytes::from(raw), Ownership::Shallow)
                .unwrap();
            f.close().unwrap();
        } else {
            let f = h5.open_file("ab.h5").unwrap();
            let d = f.open_dataset("x").unwrap();
            let got: Vec<u64> = d.read_all().unwrap();
            assert_eq!(got, (0..M).collect::<Vec<_>>());
            f.close().unwrap();
        }
    });
    reg.report().counter(Ctr::BytesCopied)
}

/// The tentpole A/B: a fully shallow serve moves the dataset payload
/// from producer region to consumer buffer with zero intermediate
/// memcpys, while forcing deep regions pays one copy per served byte.
#[test]
fn shallow_serve_copies_no_payload_bytes() {
    assert_eq!(bytes_copied_for(true), 0, "shallow serve must be copy-free");
    let deep = bytes_copied_for(false);
    assert!(deep >= (1 << 12) * 8, "deep serve must count its staging copies, got {deep}");
}

/// Chaos: every (src, dest, tag) flow loses its first message — including
/// the first zero-copy data reply, whose parts borrow the producer's
/// region. The bounded RPC retry must retransmit (re-lending the same
/// refcounted buffer) and the consumer must still assemble exact bytes,
/// while the producer's original buffer survives unscathed.
#[test]
fn dropped_reply_retry_keeps_lent_buffer_intact() {
    const M: u64 = 512;
    let raw: Vec<u8> = (0..M).flat_map(|v| (v * 3 + 1).to_le_bytes()).collect();
    let lent = Bytes::from(raw);
    let lent_ref = &lent;
    let specs = [TaskSpec::new("producer", 1), TaskSpec::new("consumer", 1)];
    let plan = FaultPlan::new(0x5EED).drop_once(1.0);
    let out = TaskWorld::run_chaos(&specs, None, plan, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let mut props = LowFiveProps::new();
        props.set_zerocopy("*", "*", true);
        props.set_rpc_timeout("*", Some(Duration::from_millis(250)));
        props.set_rpc_retries("*", 20);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let f = h5.create_file("chaos.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[M])).unwrap();
            d.write_bytes(&Selection::block(&[0], &[M]), lent_ref.clone(), Ownership::Shallow)
                .unwrap();
            f.close().unwrap(); // serves, retransmitting dropped replies
                                // The wire only ever borrowed the region: our handle still
                                // sees every original byte.
            let expect: Vec<u8> = (0..M).flat_map(|v| (v * 3 + 1).to_le_bytes()).collect();
            assert_eq!(lent_ref.as_ref(), &expect[..], "lent buffer mutated by the serve path");
        } else {
            let f = h5.open_file("chaos.h5").unwrap();
            let d = f.open_dataset("x").unwrap();
            let got: Vec<u64> = d.read_all().unwrap();
            assert_eq!(got, (0..M).map(|v| v * 3 + 1).collect::<Vec<_>>());
            f.close().unwrap();
        }
    });
    assert!(out.deaths.is_empty(), "drop-once plan must not kill ranks: {:?}", out.deaths);
    assert!(out.results.iter().all(Option::is_some), "every rank must finish");
    assert!(
        out.trace.iter().any(|e| matches!(e.kind, FaultKind::Dropped)),
        "plan must actually have dropped a message"
    );
}
