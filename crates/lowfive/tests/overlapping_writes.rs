//! Semantics of overlapping writes through the transport.
//!
//! Within one producer rank, later writes win (HDF5 program order).
//! Across ranks, overlapping writes are unordered (as in parallel HDF5),
//! but every element must come from *some* write — never garbage, never
//! fill — and disjoint elements must be exact.

use std::sync::Arc;

use lowfive::DistVolBuilder;
use minih5::{Dataspace, Datatype, Selection, Vol, H5};
use simmpi::{TaskComm, TaskSpec, TaskWorld};

fn world_ranks(tc: &TaskComm, task_id: usize) -> Vec<usize> {
    (0..tc.task_size(task_id)).map(|r| tc.world_rank_of(task_id, r)).collect()
}

#[test]
fn same_rank_overlaps_resolve_in_program_order() {
    let specs = [TaskSpec::new("p", 1), TaskSpec::new("c", 1)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone()).produce("*", consumers).build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone()).consume("*", producers).build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let f = h5.create_file("ow.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt8, Dataspace::simple(&[8])).unwrap();
            d.write_all(&[1u8; 8]).unwrap();
            d.write_selection(&Selection::block(&[2], &[4]), &[2u8; 4]).unwrap();
            d.write_selection(&Selection::block(&[4], &[2]), &[3u8; 2]).unwrap();
            f.close().unwrap();
        } else {
            let f = h5.open_file("ow.h5").unwrap();
            let got = f.open_dataset("x").unwrap().read_all::<u8>().unwrap();
            assert_eq!(got, vec![1, 1, 2, 2, 3, 3, 1, 1]);
            f.close().unwrap();
        }
    });
}

#[test]
fn cross_rank_overlaps_yield_one_of_the_writes() {
    const N: u64 = 32;
    let specs = [TaskSpec::new("p", 2), TaskSpec::new("c", 1)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone()).produce("*", consumers).build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone()).consume("*", producers).build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            // Rank 0 writes [0, 20) with 100+i; rank 1 writes [12, 32)
            // with 200+i: overlap on [12, 20).
            let f = h5.create_file("xr.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[N])).unwrap();
            if tc.local.rank() == 0 {
                let vals: Vec<u64> = (0..20).map(|i| 100 + i).collect();
                d.write_selection(&Selection::block(&[0], &[20]), &vals).unwrap();
            } else {
                let vals: Vec<u64> = (12..32).map(|i| 200 + i).collect();
                d.write_selection(&Selection::block(&[12], &[20]), &vals).unwrap();
            }
            f.close().unwrap();
        } else {
            let f = h5.open_file("xr.h5").unwrap();
            let got = f.open_dataset("x").unwrap().read_all::<u64>().unwrap();
            for (i, &v) in got.iter().enumerate() {
                let i = i as u64;
                match i {
                    0..=11 => assert_eq!(v, 100 + i, "rank-0-only region"),
                    12..=19 => assert!(
                        v == 100 + i || v == 200 + i,
                        "overlap element {i} = {v} is neither write"
                    ),
                    _ => assert_eq!(v, 200 + i, "rank-1-only region"),
                }
            }
            f.close().unwrap();
        }
    });
}
