//! Multi-rank integration tests for the distributed metadata VOL:
//! redistribution correctness across producer/consumer decomposition
//! mismatches, fan-in, fan-out, and combined file+memory modes.
//!
//! Validation follows the paper's scheme: "the values of the grid points
//! and particles encode their global position … so that the consumer can
//! validate that data have been correctly redistributed."

use std::sync::Arc;

use lowfive::{DistVolBuilder, LowFiveProps};
use minih5::{Dataspace, Datatype, Selection, Vol, H5};
use simmpi::{TaskComm, TaskSpec, TaskWorld};

fn world_ranks(tc: &TaskComm, task_id: usize) -> Vec<usize> {
    (0..tc.task_size(task_id)).map(|r| tc.world_rank_of(task_id, r)).collect()
}

/// The paper's Figure 3: a 2-d grid written row-decomposed by 6 producer
/// ranks, read column-decomposed by 4 consumer ranks.
#[test]
fn fig3_row_to_column_redistribution() {
    const ROWS: u64 = 24;
    const COLS: u64 = 16;
    let specs = [TaskSpec::new("producer", 6), TaskSpec::new("consumer", 4)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            // Producer: rows [4r, 4r+4).
            let f = h5.create_file("fig3.h5").unwrap();
            let d = f
                .create_dataset("grid", Datatype::UInt64, Dataspace::simple(&[ROWS, COLS]))
                .unwrap();
            let r0 = tc.local.rank() as u64 * (ROWS / 6);
            let my_rows = ROWS / 6;
            let sel = Selection::block(&[r0, 0], &[my_rows, COLS]);
            let vals: Vec<u64> =
                (0..my_rows * COLS).map(|i| (r0 + i / COLS) * COLS + (i % COLS)).collect();
            d.write_selection(&sel, &vals).unwrap();
            f.close().unwrap();
        } else {
            // Consumer: columns [4c, 4c+4).
            let f = h5.open_file("fig3.h5").unwrap();
            let d = f.open_dataset("grid").unwrap();
            let c0 = tc.local.rank() as u64 * (COLS / 4);
            let my_cols = COLS / 4;
            let sel = Selection::block(&[0, c0], &[ROWS, my_cols]);
            let got: Vec<u64> = d.read_selection(&sel).unwrap();
            let expect: Vec<u64> =
                (0..ROWS).flat_map(|r| (c0..c0 + my_cols).map(move |c| r * COLS + c)).collect();
            assert_eq!(got, expect);
            f.close().unwrap();
        }
    });
}

/// 1-d particle list: contiguous chunks redistributed between unequal
/// process counts, with a 3-float compound element.
#[test]
fn particles_redistribution() {
    const PER_PROD: u64 = 1000;
    let specs = [TaskSpec::new("producer", 3), TaskSpec::new("consumer", 2)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let total = 3 * PER_PROD;
        let ptype = Datatype::vector(Datatype::Float32, 3);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let f = h5.create_file("particles.h5").unwrap();
            let g = f.create_group("group2").unwrap();
            let d =
                g.create_dataset("particles", ptype.clone(), Dataspace::simple(&[total])).unwrap();
            let start = tc.local.rank() as u64 * PER_PROD;
            // Particle i = (i, i+0.5, -(i as f32)).
            let mut buf: Vec<f32> = Vec::with_capacity((PER_PROD * 3) as usize);
            for i in start..start + PER_PROD {
                buf.extend_from_slice(&[i as f32, i as f32 + 0.5, -(i as f32)]);
            }
            let bytes: Vec<u8> = buf.iter().flat_map(|x| x.to_le_bytes()).collect();
            d.write_bytes(
                &Selection::block(&[start], &[PER_PROD]),
                bytes.into(),
                minih5::Ownership::Shallow,
            )
            .unwrap();
            f.close().unwrap();
        } else {
            let f = h5.open_file("particles.h5").unwrap();
            let d = f.open_dataset("group2/particles").unwrap();
            let (dt, sp) = d.meta().unwrap();
            assert_eq!(dt, ptype);
            assert_eq!(sp.npoints(), total);
            // Consumer halves.
            let half = total / 2;
            let start = tc.local.rank() as u64 * half;
            let raw = d.read_bytes(&Selection::block(&[start], &[half])).unwrap();
            assert_eq!(raw.len() as u64, half * 12);
            for j in 0..half {
                let i = start + j;
                let off = (j * 12) as usize;
                let x = f32::from_le_bytes(raw[off..off + 4].try_into().unwrap());
                let y = f32::from_le_bytes(raw[off + 4..off + 8].try_into().unwrap());
                let z = f32::from_le_bytes(raw[off + 8..off + 12].try_into().unwrap());
                assert_eq!(x, i as f32, "particle {i} x");
                assert_eq!(y, i as f32 + 0.5, "particle {i} y");
                assert_eq!(z, -(i as f32), "particle {i} z");
            }
            f.close().unwrap();
        }
    });
}

/// Fan-out: one producer task, two consumer tasks, both read everything.
#[test]
fn fan_out_two_consumer_tasks() {
    const N: u64 = 64;
    let specs =
        [TaskSpec::new("producer", 2), TaskSpec::new("analysis", 2), TaskSpec::new("viz", 1)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let all_consumers: Vec<usize> =
            world_ranks(&tc, 1).into_iter().chain(world_ranks(&tc, 2)).collect();
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*", all_consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let f = h5.create_file("fan.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[N])).unwrap();
            let half = N / 2;
            let start = tc.local.rank() as u64 * half;
            let vals: Vec<u64> = (start..start + half).collect();
            d.write_selection(&Selection::block(&[start], &[half]), &vals).unwrap();
            f.close().unwrap();
        } else {
            let f = h5.open_file("fan.h5").unwrap();
            let d = f.open_dataset("x").unwrap();
            assert_eq!(d.read_all::<u64>().unwrap(), (0..N).collect::<Vec<u64>>());
            f.close().unwrap();
        }
    });
}

/// Fan-in: two producer tasks with different files, one consumer reads
/// both through separate links.
#[test]
fn fan_in_two_producer_tasks() {
    const N: u64 = 32;
    let specs =
        [TaskSpec::new("sim-a", 2), TaskSpec::new("sim-b", 3), TaskSpec::new("consumer", 2)];
    TaskWorld::run(&specs, |tc| {
        let prod_a = world_ranks(&tc, 0);
        let prod_b = world_ranks(&tc, 1);
        let consumers = world_ranks(&tc, 2);
        let vol: Arc<dyn Vol> = match tc.task_id {
            0 => DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("a.h5", consumers.clone())
                .build(),
            1 => DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("b.h5", consumers.clone())
                .build(),
            _ => DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("a.h5", prod_a.clone())
                .consume("b.h5", prod_b.clone())
                .build(),
        };
        let h5 = H5::with_vol(vol);
        match tc.task_id {
            0 | 1 => {
                let (name, mult) = if tc.task_id == 0 { ("a.h5", 1u64) } else { ("b.h5", 100) };
                let n_ranks = tc.local.size() as u64;
                let f = h5.create_file(name).unwrap();
                let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[N])).unwrap();
                // Near-equal contiguous chunks.
                let r = tc.local.rank() as u64;
                let start = N * r / n_ranks;
                let end = N * (r + 1) / n_ranks;
                let vals: Vec<u64> = (start..end).map(|i| i * mult).collect();
                d.write_selection(&Selection::block(&[start], &[end - start]), &vals).unwrap();
                f.close().unwrap();
            }
            _ => {
                let fa = h5.open_file("a.h5").unwrap();
                let da = fa.open_dataset("x").unwrap();
                assert_eq!(da.read_all::<u64>().unwrap(), (0..N).collect::<Vec<u64>>());
                fa.close().unwrap();
                let fb = h5.open_file("b.h5").unwrap();
                let db = fb.open_dataset("x").unwrap();
                assert_eq!(
                    db.read_all::<u64>().unwrap(),
                    (0..N).map(|i| i * 100).collect::<Vec<u64>>()
                );
                fb.close().unwrap();
            }
        }
    });
}

/// Combined mode: data go both in memory to the consumer AND to a real
/// file on disk (paper: "combining the two modes").
#[test]
fn combined_memory_and_file_mode() {
    const N: u64 = 16;
    let dir = std::env::temp_dir().join("lowfive-dist-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("combined.nh5").to_str().unwrap().to_string();
    let specs = [TaskSpec::new("producer", 2), TaskSpec::new("consumer", 1)];
    let path2 = path.clone();
    TaskWorld::run(&specs, move |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let mut props = LowFiveProps::new();
        props.set_passthrough("*", true); // memory stays on
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props.clone())
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let f = h5.create_file(&path2).unwrap();
            let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[N])).unwrap();
            let half = N / 2;
            let start = tc.local.rank() as u64 * half;
            let vals: Vec<u64> = (start..start + half).collect();
            d.write_selection(&Selection::block(&[start], &[half]), &vals).unwrap();
            f.close().unwrap();
        } else {
            let f = h5.open_file(&path2).unwrap();
            let d = f.open_dataset("x").unwrap();
            assert_eq!(d.read_all::<u64>().unwrap(), (0..N).collect::<Vec<u64>>());
            f.close().unwrap();
        }
    });
    // After the workflow, the checkpoint is on disk and readable by plain
    // native HDF5-style I/O.
    let h5 = H5::native();
    let f = h5.open_file(&path).unwrap();
    let d = f.open_dataset("x").unwrap();
    assert_eq!(d.read_all::<u64>().unwrap(), (0..N).collect::<Vec<u64>>());
    f.close().unwrap();
}

/// Attributes and group structure travel with the metadata.
#[test]
fn metadata_attributes_and_listing() {
    let specs = [TaskSpec::new("producer", 2), TaskSpec::new("consumer", 2)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let f = h5.create_file("meta.h5").unwrap();
            f.set_attr("step", 42u32).unwrap();
            let g = f.create_group("group1").unwrap();
            let d = g.create_dataset("grid", Datatype::UInt64, Dataspace::simple(&[4])).unwrap();
            d.set_attr("resolution", 2.5f64).unwrap();
            let vals: Vec<u64> = if tc.local.rank() == 0 { vec![0, 1] } else { vec![2, 3] };
            let start = tc.local.rank() as u64 * 2;
            d.write_selection(&Selection::block(&[start], &[2]), &vals).unwrap();
            f.close().unwrap();
        } else {
            let f = h5.open_file("meta.h5").unwrap();
            assert_eq!(f.attr::<u32>("step").unwrap(), 42);
            let names: Vec<String> = f.list().unwrap().into_iter().map(|(n, _)| n).collect();
            assert_eq!(names, vec!["group1".to_string()]);
            let d = f.open_dataset("group1/grid").unwrap();
            assert_eq!(d.attr::<f64>("resolution").unwrap(), 2.5);
            assert_eq!(d.read_all::<u64>().unwrap(), vec![0, 1, 2, 3]);
            // Writes to a consumed file are rejected.
            assert!(d.write_all(&[9u64, 9, 9, 9]).is_err());
            f.close().unwrap();
        }
    });
}

/// Several timesteps: the producer writes and serves one file per step;
/// the consumer reads them in order.
#[test]
fn multiple_timesteps_sequentially() {
    const STEPS: usize = 3;
    const N: u64 = 12;
    let specs = [TaskSpec::new("producer", 3), TaskSpec::new("consumer", 1)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("step*.h5", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("step*.h5", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        for step in 0..STEPS {
            let name = format!("step{step}.h5");
            if tc.task_id == 0 {
                let f = h5.create_file(&name).unwrap();
                let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[N])).unwrap();
                let chunk = N / 3;
                let start = tc.local.rank() as u64 * chunk;
                let vals: Vec<u64> =
                    (start..start + chunk).map(|i| i + 1000 * step as u64).collect();
                d.write_selection(&Selection::block(&[start], &[chunk]), &vals).unwrap();
                f.close().unwrap();
            } else {
                let f = h5.open_file(&name).unwrap();
                let d = f.open_dataset("x").unwrap();
                let expect: Vec<u64> = (0..N).map(|i| i + 1000 * step as u64).collect();
                assert_eq!(d.read_all::<u64>().unwrap(), expect);
                f.close().unwrap();
            }
        }
    });
}

/// A consumer reading a sub-selection only transfers what intersects it
/// (the AMR-motivation from the introduction: unneeded data never move).
#[test]
fn partial_read_moves_less_data() {
    const N: u64 = 4096;
    let specs = [TaskSpec::new("producer", 4), TaskSpec::new("consumer", 1)];
    let results = TaskWorld::run_with(&specs, None, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let f = h5.create_file("partial.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[N])).unwrap();
            let chunk = N / 4;
            let start = tc.local.rank() as u64 * chunk;
            let vals: Vec<u64> = (start..start + chunk).collect();
            d.write_selection(&Selection::block(&[start], &[chunk]), &vals).unwrap();
            f.close().unwrap();
            0u64
        } else {
            let f = h5.open_file("partial.h5").unwrap();
            let d = f.open_dataset("x").unwrap();
            // Read only 64 of 4096 elements, entirely inside producer 0's
            // chunk.
            let got: Vec<u64> = d.read_selection(&Selection::block(&[100], &[64])).unwrap();
            assert_eq!(got, (100..164).collect::<Vec<u64>>());
            f.close().unwrap();
            0u64
        }
    });
    // Total transported bytes should be far below the dataset size: the
    // dataset is 32 KiB; the read moved 512 bytes of payload plus
    // metadata/control traffic.
    assert!(
        results.stats.bytes < (N * 8) / 4,
        "moved {} bytes for a 512-byte read",
        results.stats.bytes
    );
}

/// Empty selections and datasets nobody wrote still behave.
#[test]
fn empty_and_unwritten_datasets() {
    let specs = [TaskSpec::new("producer", 2), TaskSpec::new("consumer", 1)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let f = h5.create_file("empty.h5").unwrap();
            // Dataset created but never written.
            f.create_dataset("ghost", Datatype::UInt64, Dataspace::simple(&[8])).unwrap();
            f.close().unwrap();
        } else {
            let f = h5.open_file("empty.h5").unwrap();
            let d = f.open_dataset("ghost").unwrap();
            // Unwritten elements read as the fill value (zero).
            assert_eq!(d.read_all::<u64>().unwrap(), vec![0u64; 8]);
            // Zero-sized read.
            let none: Vec<u64> = d.read_selection(&Selection::block(&[0], &[0])).unwrap();
            assert!(none.is_empty());
            f.close().unwrap();
        }
    });
}

/// 3-d grid with a genuinely 3-d common decomposition (8 producers → 2×2×2
/// blocks), consumers slabbed along a different axis.
#[test]
fn grid_3d_redistribution() {
    const D: u64 = 16;
    let specs = [TaskSpec::new("producer", 8), TaskSpec::new("consumer", 3)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            // Producer r writes the 2x2x2 octant given by its bits.
            let f = h5.create_file("g3.h5").unwrap();
            let d =
                f.create_dataset("grid", Datatype::UInt64, Dataspace::simple(&[D, D, D])).unwrap();
            let r = tc.local.rank() as u64;
            let h = D / 2;
            let (ox, oy, oz) = ((r >> 2 & 1) * h, (r >> 1 & 1) * h, (r & 1) * h);
            let sel = Selection::block(&[ox, oy, oz], &[h, h, h]);
            let mut vals = Vec::with_capacity((h * h * h) as usize);
            for x in ox..ox + h {
                for y in oy..oy + h {
                    for z in oz..oz + h {
                        vals.push(x * D * D + y * D + z);
                    }
                }
            }
            d.write_selection(&sel, &vals).unwrap();
            f.close().unwrap();
        } else {
            // Consumer r reads x-slabs split 3 ways (uneven).
            let f = h5.open_file("g3.h5").unwrap();
            let d = f.open_dataset("grid").unwrap();
            let r = tc.local.rank() as u64;
            let x0 = D * r / 3;
            let x1 = D * (r + 1) / 3;
            let sel = Selection::block(&[x0, 0, 0], &[x1 - x0, D, D]);
            let got: Vec<u64> = d.read_selection(&sel).unwrap();
            let mut expect = Vec::with_capacity(got.len());
            for x in x0..x1 {
                for y in 0..D {
                    for z in 0..D {
                        expect.push(x * D * D + y * D + z);
                    }
                }
            }
            assert_eq!(got, expect);
            f.close().unwrap();
        }
    });
}

/// Metadata-broadcast open (§V-C extension): a collective file_open on
/// the consumer task yields the same data with fewer metadata round
/// trips.
#[test]
fn metadata_broadcast_open() {
    const N: u64 = 48;
    let specs = [TaskSpec::new("producer", 3), TaskSpec::new("consumer", 4)];
    let out = simmpi::TaskWorld::run_with(&specs, None, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let mut props = LowFiveProps::new();
        props.set_metadata_broadcast("*", true);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let f = h5.create_file("bm.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[N])).unwrap();
            let chunk = N / 3;
            let start = tc.local.rank() as u64 * chunk;
            let vals: Vec<u64> = (start..start + chunk).collect();
            d.write_selection(&Selection::block(&[start], &[chunk]), &vals).unwrap();
            f.close().unwrap();
        } else {
            // Collective open across the consumer task.
            let f = h5.open_file("bm.h5").unwrap();
            let d = f.open_dataset("x").unwrap();
            assert_eq!(d.read_all::<u64>().unwrap(), (0..N).collect::<Vec<u64>>());
            f.close().unwrap();
        }
    });
    // With broadcast, exactly one M_METADATA request reaches the
    // producers regardless of the consumer count (plus the task-local
    // broadcast messages, which are cheaper intra-task traffic).
    assert!(out.stats.messages > 0);
}

/// Chunked + extensible datasets through the in-memory metadata layer:
/// producers append timesteps; chunk shape is metadata.
#[test]
fn chunked_extensible_through_metadata_vol() {
    use lowfive::MetadataVol;
    use minih5::space::UNLIMITED;
    let vol = Arc::new(MetadataVol::over_native(LowFiveProps::new()));
    let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
    let f = h5.create_file("mem-chunked.h5").unwrap();
    let d = f
        .create_dataset_chunked(
            "t",
            Datatype::UInt64,
            Dataspace::extensible(&[1, 2], &[UNLIMITED, 2]),
            &[1, 2],
        )
        .unwrap();
    d.write_all(&[1u64, 2]).unwrap();
    d.extend(&[3, 2]).unwrap();
    d.write_selection(&Selection::block(&[1, 0], &[2, 2]), &[3u64, 4, 5, 6]).unwrap();
    assert_eq!(d.read_all::<u64>().unwrap(), vec![1, 2, 3, 4, 5, 6]);
    assert_eq!(d.chunk().unwrap(), Some(vec![1, 2]));
    f.close().unwrap();
}

/// An extensible dataset travels in situ: the consumer sees the extent
/// as of file close, including appended rows, and chunk metadata.
#[test]
fn extensible_dataset_redistributed() {
    use minih5::space::UNLIMITED;
    const COLS: u64 = 8;
    let specs = [TaskSpec::new("producer", 2), TaskSpec::new("consumer", 1)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let f = h5.create_file("series.h5").unwrap();
            let d = f
                .create_dataset_chunked(
                    "t",
                    Datatype::UInt64,
                    Dataspace::extensible(&[2, COLS], &[UNLIMITED, COLS]),
                    &[2, COLS],
                )
                .unwrap();
            // Initial rows: each producer writes one.
            let r = tc.local.rank() as u64;
            let vals: Vec<u64> = (0..COLS).map(|c| r * COLS + c).collect();
            d.write_selection(&Selection::block(&[r, 0], &[1, COLS]), &vals).unwrap();
            // Collective append of two more rows.
            d.extend(&[4, COLS]).unwrap();
            let vals2: Vec<u64> = (0..COLS).map(|c| (2 + r) * COLS + c).collect();
            d.write_selection(&Selection::block(&[2 + r, 0], &[1, COLS]), &vals2).unwrap();
            f.close().unwrap();
        } else {
            let f = h5.open_file("series.h5").unwrap();
            let d = f.open_dataset("t").unwrap();
            let (_, sp) = d.meta().unwrap();
            assert_eq!(sp.dims(), &[4, COLS]);
            assert_eq!(d.chunk().unwrap(), Some(vec![2, COLS]));
            assert_eq!(d.read_all::<u64>().unwrap(), (0..4 * COLS).collect::<Vec<u64>>());
            f.close().unwrap();
        }
    });
}

/// The transport profiler (paper §V-C: finer-grain communication
/// profiling) accounts every phase on both sides.
#[test]
fn transport_profile_accounts_phases() {
    const N: u64 = 256;
    let specs = [TaskSpec::new("producer", 2), TaskSpec::new("consumer", 2)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
        if tc.task_id == 0 {
            let f = h5.create_file("prof.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[N])).unwrap();
            let half = N / 2;
            let s = tc.local.rank() as u64 * half;
            d.write_selection(
                &Selection::block(&[s], &[half]),
                &(s..s + half).collect::<Vec<u64>>(),
            )
            .unwrap();
            f.close().unwrap();
            let p = vol.profile();
            assert_eq!(p.serve_sessions, 1);
            assert!(p.index_seconds >= 0.0 && p.index_boxes >= 1);
            assert!(p.serve_seconds > 0.0);
            // Two consumers asked for data; at least one data request
            // landed on each producer (x-split matches halves).
            assert!(p.data_requests >= 1, "{p:?}");
            assert!(p.bytes_served > 0);
            // Reset works.
            vol.reset_profile();
            assert_eq!(vol.profile(), lowfive::TransportProfile::default());
        } else {
            let f = h5.open_file("prof.h5").unwrap();
            let d = f.open_dataset("x").unwrap();
            let half = N / 2;
            let s = tc.local.rank() as u64 * half;
            let got: Vec<u64> = d.read_selection(&Selection::block(&[s], &[half])).unwrap();
            assert_eq!(got.len() as u64, half);
            f.close().unwrap();
            let p = vol.profile();
            assert!(p.open_seconds > 0.0);
            assert!(p.redirect_seconds > 0.0);
            assert!(p.fetch_seconds > 0.0);
            assert!(p.bytes_fetched >= half * 8, "{p:?}");
            assert_eq!(p.serve_sessions, 0);
        }
    });
}

/// Overlap mode (paper §V-C: "consume data as soon as it is available,
/// and overlap reading and writing"): with async serve, the producer's
/// file_close returns before the consumer has finished reading, and the
/// producer computes snapshot t+1 while snapshot t is being served.
#[test]
fn async_serve_overlaps_compute_with_reads() {
    use std::time::{Duration, Instant};
    const STEPS: usize = 3;
    const N: u64 = 1 << 14;
    let specs = [TaskSpec::new("producer", 2), TaskSpec::new("consumer", 1)];
    let overlaps = TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("snap*", consumers.clone())
                .async_serve(true)
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("snap*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
        let mut result = 0u64;
        if tc.task_id == 0 {
            let t0 = Instant::now();
            let mut close_times = Vec::new();
            for s in 0..STEPS {
                let f = h5.create_file(&format!("snap{s}")).unwrap();
                let d = f.create_dataset("x", Datatype::UInt64, Dataspace::simple(&[N])).unwrap();
                let half = N / 2;
                let lo = tc.local.rank() as u64 * half;
                let vals: Vec<u64> = (lo..lo + half).map(|i| i + 1000 * s as u64).collect();
                d.write_selection(&Selection::block(&[lo], &[half]), &vals).unwrap();
                f.close().unwrap(); // returns without waiting for the consumer
                close_times.push(t0.elapsed());
                // "Compute" the next step while the serve thread works.
                std::thread::sleep(Duration::from_millis(5));
            }
            vol.drain();
            // All closes must have returned before the drain completed the
            // last session; in synchronous mode close(s) would block ~as
            // long as the consumer's slow reads.
            result = close_times.iter().map(|d| d.as_millis() as u64).sum();
        } else {
            for s in 0..STEPS {
                let f = h5.open_file(&format!("snap{s}")).unwrap();
                let d = f.open_dataset("x").unwrap();
                // Slow consumer: the producer should NOT be blocked by us.
                std::thread::sleep(Duration::from_millis(30));
                let got: Vec<u64> = d.read_all().unwrap();
                assert_eq!(got[0], 1000 * s as u64);
                assert_eq!(got[N as usize - 1], N - 1 + 1000 * s as u64);
                f.close().unwrap();
            }
        }
        result
    });
    // Producer rank 0's summed close-return times: with overlap, all
    // STEPS closes return within ~STEPS*(write + 5ms compute), far less
    // than the consumer's ~STEPS*30ms serialized reads would force in
    // synchronous mode. Generous bound to avoid flakiness on slow CI.
    assert!(
        overlaps[0] < 80,
        "closes took {} ms total; async serve should not block on the slow consumer",
        overlaps[0]
    );
}

/// drain() with no outstanding sessions and sync-mode drain are no-ops.
#[test]
fn drain_is_idempotent() {
    let specs = [TaskSpec::new("producer", 1), TaskSpec::new("consumer", 1)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*", consumers.clone())
                .async_serve(true)
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
        if tc.task_id == 0 {
            vol.drain(); // nothing running yet
            let f = h5.create_file("d.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt8, Dataspace::simple(&[1])).unwrap();
            d.write_all(&[7u8]).unwrap();
            f.close().unwrap();
            vol.drain();
            vol.drain(); // second drain is a no-op
        } else {
            let f = h5.open_file("d.h5").unwrap();
            assert_eq!(f.open_dataset("x").unwrap().read_all::<u8>().unwrap(), vec![7]);
            f.close().unwrap();
        }
    });
}

/// A producer re-opening and closing its own output (read-only) must not
/// trigger a second serve session (which would deadlock: consumers have
/// already said done).
#[test]
fn producer_reopen_close_does_not_reserve() {
    let specs = [TaskSpec::new("producer", 1), TaskSpec::new("consumer", 1)];
    TaskWorld::run(&specs, |tc| {
        let producers = world_ranks(&tc, 0);
        let consumers = world_ranks(&tc, 1);
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let f = h5.create_file("ro-reopen.h5").unwrap();
            let d = f.create_dataset("x", Datatype::UInt8, Dataspace::simple(&[4])).unwrap();
            d.write_all(&[1u8, 2, 3, 4]).unwrap();
            f.close().unwrap(); // serves the consumer
                                // Re-open our own in-memory output and read it back locally.
            let f = h5.open_file("ro-reopen.h5").unwrap();
            let d = f.open_dataset("x").unwrap();
            assert_eq!(d.read_all::<u8>().unwrap(), vec![1, 2, 3, 4]);
            // This close must NOT serve again (no consumer will report
            // done a second time) — a hang here is the regression.
            f.close().unwrap();
        } else {
            let f = h5.open_file("ro-reopen.h5").unwrap();
            assert_eq!(f.open_dataset("x").unwrap().read_all::<u8>().unwrap(), vec![1, 2, 3, 4]);
            f.close().unwrap();
        }
    });
}
