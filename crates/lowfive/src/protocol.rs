//! Wire protocol of the index–serve–query redistribution.
//!
//! Five RPC methods run between consumer ranks (clients) and producer
//! ranks (servers) over the world communicator:
//!
//! * `M_METADATA` — fetch the serialized metadata tree of a file
//!   (consumer `file_open`),
//! * `M_INTERSECT` — the *redirect* query of Algorithm 3 step 1: which
//!   producer ranks hold data intersecting this bounding box,
//! * `M_DATA` — the data query of Algorithm 3 step 2: returns the
//!   intersection of the producer's local regions with the consumer's
//!   selection as contiguous segments, each tagged with its element offset
//!   in the **consumer's** packed buffer, so the consumer applies a reply
//!   with straight `memcpy`s,
//! * `M_DATA_BATCH` — the pipelined form of `M_DATA`: one frame per
//!   producer carrying **all** `(dataset, selection)` pairs the consumer
//!   wants from that producer for one file, answered with one
//!   [`DataReply`] per entry in a single reply,
//! * `M_DONE` — consumer `file_close` notification; producers exit their
//!   serve loop when every consumer has reported done.
//!
//! Three more methods carry the step-streaming control plane (see
//! `crate::stream` and the repository's `docs/STREAMING.md`):
//!
//! * `M_STEP_SUB` — subscribe to a step series: returns the retained
//!   window bounds so a late joiner can catch up from the step index,
//! * `M_STEP_NEXT` — poll for the next step matching a subscribe policy;
//!   the *announce* reply names the step's slot file and generation,
//! * `M_STEP_ACK` — cumulative consumption acknowledgement (`cursor`
//!   covers every step below it), multicast to all producer ranks so the
//!   bounded step queues retire entries in lockstep.
//!
//! One more method carries codec negotiation (see `## Codec prefix`):
//!
//! * `M_CODEC_OFFER` — a consumer rank advertises its codec capability
//!   bitmask for a file to a producer rank it did not handshake with
//!   (fire-and-forget; a lost offer merely leaves that pair on `Raw`).
//!
//! The index exchange among producers (Algorithm 1) uses a plain tagged
//! message (`TAG_INDEX`) on the producer task's local communicator.
//!
//! ## Codec prefix
//!
//! The ok body of every data-bearing reply (`M_DATA`, `M_DATA_BATCH`,
//! `M_STEP_NEXT`) is wrapped in a one-byte codec prefix: `[codec u8]`
//! followed by the body, verbatim for [`CODEC_RAW`] or compressed for
//! [`CODEC_RLE`] / [`CODEC_DELTA_RLE`]. Which codecs a sender may use
//! toward a given consumer is negotiated at open/subscribe time as a
//! capability bitmask (`CAP_*`) intersected across both sides; an
//! unnegotiated pair falls through to `Raw`. Encoding walks a reply's
//! borrowed parts in place and keeps the raw lent parts whenever
//! compression would not shrink the body, so the zero-copy lend path
//! survives incompressible payloads untouched.
//!
//! ## Generation tags
//!
//! Every reply a producer serves — metadata, redirect, data — and every
//! index-bundle entry carries the file's *generation*: a counter the
//! producer bumps on each write to (or truncation of) the file. Consumers
//! key their caches on it; a reply carrying a newer generation than the
//! cached one proves the cache stale and forces invalidation, so an
//! in-place rewrite between consumer reads is observed instead of served
//! from a stale cache.
//!
//! ## Borrowed-slice reply framing
//!
//! Data replies can be assembled as multi-part [`Payload`]s through
//! [`ReplyFrame`]: contiguous header runs (counts, segment tables,
//! length prefixes) accumulate in a [`Writer`] and are flushed as small
//! parts, while dataset bytes are *lent* as refcounted sub-slices of the
//! producer's shallow regions. The flattened byte stream of such a frame
//! is byte-identical to the contiguous encoders below, so either side may
//! use either representation. Consumers walk the parts in place with a
//! [`PayloadReader`] and scatter straight into the destination buffer —
//! the only copy on the whole path is that final placement.
//!
//! The byte-level layout of every frame is specified in the repository's
//! `docs/PROTOCOL.md`; the encoder/decoder pairs in this module are the
//! normative implementation, and each carries a round-trip doctest.

use bytes::Bytes;
use minih5::codec::{Reader, Writer};
use minih5::format::FileMeta;
use minih5::{BBox, H5Error, H5Result, Selection};
use simmpi::Payload;

/// Fetch the serialized [`FileMeta`] tree of a file.
pub const M_METADATA: u32 = 1;
/// Redirect query: which producer ranks hold data intersecting a bbox.
pub const M_INTERSECT: u32 = 2;
/// Data query: one selection, one [`DataReply`].
pub const M_DATA: u32 = 3;
/// Consumer `file_close` notification (no reply expected).
pub const M_DONE: u32 = 4;
/// Producer-internal: ask the async serve loop to drain and exit.
pub const M_SHUTDOWN: u32 = 5;
/// Batched data query: all of a consumer's selections for one producer
/// in a single frame, answered in a single reply.
pub const M_DATA_BATCH: u32 = 6;
/// Subscribe to a step series: returns the retained window bounds.
pub const M_STEP_SUB: u32 = 7;
/// Poll for the next step of a series under a subscribe policy.
pub const M_STEP_NEXT: u32 = 8;
/// Cumulative step-consumption acknowledgement (multicast to producers).
pub const M_STEP_ACK: u32 = 9;
/// Consumer → producer codec-capability advertisement (no reply).
pub const M_CODEC_OFFER: u32 = 10;

/// Tag for the producer-local index exchange (Algorithm 1).
pub const TAG_INDEX: u32 = 0x7F10_0001;

// ---------------------------------------------------------------------
// Wire codecs
// ---------------------------------------------------------------------

/// Codec id: body ships verbatim after the prefix byte.
pub const CODEC_RAW: u8 = 0;
/// Codec id: byte run-length encoding (`[raw_len u64][(count, byte)*]`).
pub const CODEC_RLE: u8 = 1;
/// Codec id: wrapping byte-delta transform at an 8-byte element lag
/// (see `DELTA_LAG`), then RLE over the deltas — smooth grid fields of
/// `u64`/`f64` elements turn into long zero runs.
pub const CODEC_DELTA_RLE: u8 = 2;

/// Capability bit: can receive [`CODEC_RAW`] (always set in practice).
pub const CAP_RAW: u64 = 1 << CODEC_RAW;
/// Capability bit: can receive [`CODEC_RLE`].
pub const CAP_RLE: u64 = 1 << CODEC_RLE;
/// Capability bit: can receive [`CODEC_DELTA_RLE`].
pub const CAP_DELTA_RLE: u64 = 1 << CODEC_DELTA_RLE;
/// Every capability this build understands.
pub const CAP_ALL: u64 = CAP_RAW | CAP_RLE | CAP_DELTA_RLE;

/// Sender-side wire-codec policy for data-bearing reply bodies, set per
/// file pattern via `LowFiveProps::set_wire_codec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCodec {
    /// Let the sender's cost model decide per frame: compress only when
    /// the modeled link cost of the saved bytes exceeds the modeled
    /// codec cost (in-proc transport therefore always ships raw).
    #[default]
    Auto,
    /// Never compress; bodies ship through the zero-copy lend path.
    Raw,
    /// Prefer byte run-length encoding when it shrinks the body.
    Rle,
    /// Prefer delta-then-RLE when it shrinks the body.
    DeltaRle,
}

impl WireCodec {
    /// The capability bitmask this policy advertises in the metadata /
    /// step-subscribe handshake (raw is always acceptable).
    pub fn caps(self) -> u64 {
        match self {
            WireCodec::Auto => CAP_ALL,
            WireCodec::Raw => CAP_RAW,
            WireCodec::Rle => CAP_RAW | CAP_RLE,
            WireCodec::DeltaRle => CAP_RAW | CAP_DELTA_RLE,
        }
    }
}

/// The compressing codec a sender should try under a negotiated `mask`
/// ([`CODEC_RAW`] when the mask permits nothing better).
pub fn preferred_codec(mask: u64) -> u8 {
    if mask & CAP_DELTA_RLE != 0 {
        CODEC_DELTA_RLE
    } else if mask & CAP_RLE != 0 {
        CODEC_RLE
    } else {
        CODEC_RAW
    }
}

/// Wrap a reply body in the one-byte codec prefix, compressing with
/// `codec` when that actually shrinks the frame. The raw fallback keeps
/// the body's borrowed parts untouched (the prefix is its own tiny
/// part), so lent slices stay zero-copy end to end.
///
/// ```
/// use bytes::Bytes;
/// use lowfive::protocol::{decode_coded_payload, encode_coded, CAP_ALL, CODEC_RLE};
/// use simmpi::Payload;
/// let body = Payload::from(vec![7u8; 100]);
/// let coded = encode_coded(body, CODEC_RLE);
/// assert!(coded.len() < 101, "100 repeated bytes must compress");
/// let back = decode_coded_payload(coded, CAP_ALL).unwrap();
/// assert_eq!(&back.to_bytes()[..], &[7u8; 100][..]);
/// ```
pub fn encode_coded(body: Payload, codec: u8) -> Payload {
    let compressed = match codec {
        CODEC_RLE => rle_encode(body.parts(), false, CODEC_RLE),
        CODEC_DELTA_RLE => rle_encode(body.parts(), true, CODEC_DELTA_RLE),
        _ => None,
    };
    match compressed {
        Some(out) => Payload::from(out),
        None => {
            let mut p = Payload::from(vec![CODEC_RAW]);
            p.extend(body);
            p
        }
    }
}

/// Strip the codec prefix off a contiguous coded body, expanding
/// compressed frames. `allowed` is the receiver's own advertised
/// capability mask — a codec outside it is a framing error, since the
/// sender may only use what this receiver offered.
pub fn dec_coded(b: &Bytes, allowed: u64) -> H5Result<Bytes> {
    let Some(&codec) = b.first() else {
        return Err(H5Error::Format("empty coded frame".into()));
    };
    check_codec_allowed(codec, allowed)?;
    match codec {
        CODEC_RAW => Ok(b.slice(1..)),
        codec => rle_decode(&[b.slice(1..)], codec == CODEC_DELTA_RLE),
    }
}

/// Parts-preserving [`dec_coded`]: a raw body just sheds its prefix byte
/// (in-place `advance`, borrowed parts intact); a compressed body is
/// expanded into a single fresh part.
pub fn decode_coded_payload(mut p: Payload, allowed: u64) -> H5Result<Payload> {
    let mut d = [0u8; 1];
    if !p.copy_prefix(&mut d) {
        return Err(H5Error::Format("empty coded frame".into()));
    }
    check_codec_allowed(d[0], allowed)?;
    p.advance(1);
    match d[0] {
        CODEC_RAW => Ok(p),
        codec => Ok(Payload::from(rle_decode(p.parts(), codec == CODEC_DELTA_RLE)?)),
    }
}

fn check_codec_allowed(codec: u8, allowed: u64) -> H5Result<()> {
    if codec > CODEC_DELTA_RLE {
        return Err(H5Error::Format(format!("unknown wire codec {codec}")));
    }
    if allowed & (1u64 << codec) == 0 {
        return Err(H5Error::Format(format!("codec {codec} was not negotiated")));
    }
    Ok(())
}

/// The delta transform's lag: each byte is differenced against the byte
/// one *element* back, not its immediate neighbor. The transport's
/// dataset bodies are dominated by 8-byte (`u64`/`f64`) elements, and a
/// smooth field — consecutive elements near-equal — then deltas to long
/// zero runs, which a lag-1 byte delta would destroy (the element
/// period re-introduces a nonzero delta every 8 bytes). The same trick
/// as PNG's `Sub` filter at bpp stride, or HDF5's shuffle+delta.
const DELTA_LAG: usize = 8;

/// Run-length encode the concatenation of `parts` (after a wrapping
/// lag-[`DELTA_LAG`] delta transform when `delta`), prefix byte and
/// `raw_len` header included. Returns `None` unless the result is
/// strictly smaller than the raw alternative (`1 + raw_len` bytes) — the
/// caller then ships the original parts untouched.
fn rle_encode(parts: &[Bytes], delta: bool, codec: u8) -> Option<Vec<u8>> {
    let raw_len: usize = parts.iter().map(|p| p.len()).sum();
    let limit = raw_len + 1;
    let mut out = Vec::with_capacity(64.min(limit));
    out.push(codec);
    out.extend_from_slice(&(raw_len as u64).to_le_bytes());
    let mut ring = [0u8; DELTA_LAG];
    let mut pos = 0usize;
    let mut run: Option<(u8, usize)> = None;
    for &b in parts.iter().flat_map(|p| p.iter()) {
        let v = if delta {
            let d = b.wrapping_sub(ring[pos]);
            ring[pos] = b;
            pos = (pos + 1) % DELTA_LAG;
            d
        } else {
            b
        };
        match &mut run {
            Some((val, count)) if *val == v && *count < 255 => *count += 1,
            _ => {
                if let Some((val, count)) = run.take() {
                    out.push(count as u8);
                    out.push(val);
                    // Incompressible input can only grow from here; bail
                    // before ballooning to 2x the raw body.
                    if out.len() + 2 >= limit {
                        return None;
                    }
                }
                run = Some((v, 1));
            }
        }
    }
    if let Some((val, count)) = run {
        out.push(count as u8);
        out.push(val);
    }
    (out.len() < limit).then_some(out)
}

/// Expand an RLE (or delta-RLE) body. Every declared quantity is checked
/// against the bytes actually present before allocating: the pair stream
/// must be even, runs must be non-empty, and the expansion must land on
/// `raw_len` exactly.
fn rle_decode(parts: &[Bytes], delta: bool) -> H5Result<Bytes> {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    if total < 8 || !(total - 8).is_multiple_of(2) {
        return Err(H5Error::Format(format!("malformed rle frame: {total} bytes")));
    }
    let mut it = parts.iter().flat_map(|p| p.iter().copied());
    let mut hdr = [0u8; 8];
    for b in hdr.iter_mut() {
        *b = it.next().expect("length checked above");
    }
    let raw_len = u64::from_le_bytes(hdr);
    let pairs = (total - 8) / 2;
    if raw_len as u128 > (pairs as u128) * 255 {
        return Err(H5Error::Format(format!(
            "rle declared length {raw_len} exceeds {pairs} run pairs"
        )));
    }
    let mut out = Vec::with_capacity(raw_len as usize);
    let mut ring = [0u8; DELTA_LAG];
    let mut pos = 0usize;
    for _ in 0..pairs {
        let count = it.next().expect("length checked above");
        let byte = it.next().expect("length checked above");
        if count == 0 {
            return Err(H5Error::Format("zero-length rle run".into()));
        }
        if out.len() + count as usize > raw_len as usize {
            return Err(H5Error::Format(format!("rle runs overflow declared length {raw_len}")));
        }
        if delta {
            for _ in 0..count {
                let b = byte.wrapping_add(ring[pos]);
                ring[pos] = b;
                pos = (pos + 1) % DELTA_LAG;
                out.push(b);
            }
        } else {
            out.extend(std::iter::repeat_n(byte, count as usize));
        }
    }
    if out.len() as u64 != raw_len {
        return Err(H5Error::Format(format!(
            "rle expanded to {} bytes, declared {raw_len}",
            out.len()
        )));
    }
    Ok(Bytes::from(out))
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Encode a metadata request (`M_METADATA`): the file name plus the
/// consumer's codec-capability bitmask (`CAP_*` bits) — the producer
/// intersects it with its own and replies with the negotiated mask.
///
/// ```
/// use lowfive::protocol::{enc_metadata_req, dec_metadata_req, CAP_ALL};
/// let frame = enc_metadata_req("a.h5", CAP_ALL);
/// assert_eq!(dec_metadata_req(&frame).unwrap(), ("a.h5".into(), CAP_ALL));
/// ```
pub fn enc_metadata_req(file: &str, caps: u64) -> Bytes {
    let mut w = Writer::new();
    w.put_str(file);
    w.put_u64(caps);
    w.finish()
}

/// Decode a metadata request into `(file, consumer codec caps)`.
pub fn dec_metadata_req(b: &[u8]) -> H5Result<(String, u64)> {
    let mut r = Reader::new(b);
    let file = r.get_str()?;
    let caps = r.get_u64()?;
    expect_eof(&r)?;
    Ok((file, caps))
}

/// Encode a codec offer (`M_CODEC_OFFER`): a consumer rank advertising
/// its capability bitmask for `file` to a producer it did not handshake
/// with directly. Same body as a metadata request; sent as a
/// fire-and-forget notification.
pub fn enc_codec_offer(file: &str, caps: u64) -> Bytes {
    enc_metadata_req(file, caps)
}

/// Decode a codec offer into `(file, consumer codec caps)`.
pub fn dec_codec_offer(b: &[u8]) -> H5Result<(String, u64)> {
    dec_metadata_req(b)
}

/// Encode a redirect query (`M_INTERSECT`): which producer ranks hold
/// data of `file:dset` intersecting bounding box `bb`.
///
/// ```
/// use lowfive::protocol::{enc_intersect_req, dec_intersect_req};
/// use minih5::BBox;
/// let bb = BBox::new(vec![1, 2], vec![3, 4]);
/// let frame = enc_intersect_req("f.h5", "g/d", &bb);
/// assert_eq!(dec_intersect_req(&frame).unwrap(), ("f.h5".into(), "g/d".into(), bb));
/// ```
pub fn enc_intersect_req(file: &str, dset: &str, bb: &BBox) -> Bytes {
    let mut w = Writer::new();
    w.put_str(file);
    w.put_str(dset);
    w.put(bb);
    w.finish()
}

/// Decode a redirect query into `(file, dataset path, bbox)`.
pub fn dec_intersect_req(b: &[u8]) -> H5Result<(String, String, BBox)> {
    let mut r = Reader::new(b);
    let out = (r.get_str()?, r.get_str()?, r.get()?);
    expect_eof(&r)?;
    Ok(out)
}

/// Encode a single data query (`M_DATA`): one selection of one dataset.
///
/// ```
/// use lowfive::protocol::{enc_data_req, dec_data_req};
/// use minih5::Selection;
/// let sel = Selection::block(&[0, 0], &[2, 2]);
/// let (f, d, s) = dec_data_req(&enc_data_req("f.h5", "grid", &sel)).unwrap();
/// assert_eq!((f.as_str(), d.as_str()), ("f.h5", "grid"));
/// assert_eq!(s, sel);
/// ```
pub fn enc_data_req(file: &str, dset: &str, sel: &Selection) -> Bytes {
    let mut w = Writer::new();
    w.put_str(file);
    w.put_str(dset);
    w.put(sel);
    w.finish()
}

/// Decode a single data query into `(file, dataset path, selection)`.
pub fn dec_data_req(b: &[u8]) -> H5Result<(String, String, Selection)> {
    let mut r = Reader::new(b);
    let out = (r.get_str()?, r.get_str()?, r.get()?);
    expect_eof(&r)?;
    Ok(out)
}

/// Encode a batched data query (`M_DATA_BATCH`): every `(dataset,
/// selection)` pair the consumer wants from one producer for `file`.
///
/// Each entry is answered independently — the reply carries one
/// [`DataReply`] per entry, in entry order, with segment offsets relative
/// to *that entry's* packed buffer (identical semantics to a lone
/// `M_DATA` round-trip, which is what makes batching transparent).
///
/// ```
/// use lowfive::protocol::{enc_data_req_batch, dec_data_req_batch};
/// use minih5::Selection;
/// let entries = vec![
///     ("grid".to_string(), Selection::block(&[0, 0], &[4, 4])),
///     ("particles".to_string(), Selection::all()),
/// ];
/// let frame = enc_data_req_batch("step0.h5", &entries);
/// let (file, back) = dec_data_req_batch(&frame).unwrap();
/// assert_eq!(file, "step0.h5");
/// assert_eq!(back, entries);
/// ```
pub fn enc_data_req_batch(file: &str, entries: &[(String, Selection)]) -> Bytes {
    let mut w = Writer::new();
    w.put_str(file);
    w.put_u64(entries.len() as u64);
    for (dset, sel) in entries {
        w.put_str(dset);
        w.put(sel);
    }
    w.finish()
}

/// Decode a batched data query. Rejects frames whose declared entry
/// count could not possibly fit in the remaining bytes, so a corrupt
/// length prefix fails cleanly instead of ballooning an allocation.
pub fn dec_data_req_batch(b: &[u8]) -> H5Result<(String, Vec<(String, Selection)>)> {
    let mut r = Reader::new(b);
    let file = r.get_str()?;
    let n = checked_count(r.get_u64()?, 9, &r)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push((r.get_str()?, r.get()?));
    }
    expect_eof(&r)?;
    Ok((file, entries))
}

/// Encode an `M_DONE` notification: just the filename.
pub fn enc_done_req(file: &str) -> Bytes {
    let mut w = Writer::new();
    w.put_str(file);
    w.finish()
}

/// Decode an `M_DONE` notification into the filename.
pub fn dec_done_req(b: &[u8]) -> H5Result<String> {
    let mut r = Reader::new(b);
    let file = r.get_str()?;
    expect_eof(&r)?;
    Ok(file)
}

/// Guard a wire-declared element count against the bytes actually left
/// in the frame: `n` elements of at least `unit` bytes each must fit in
/// `r.remaining()`. Returns the count as `usize` or a [`H5Error::Format`].
fn checked_count(n: u64, unit: usize, r: &Reader) -> H5Result<usize> {
    if (n as u128) * (unit as u128) > r.remaining() as u128 {
        return Err(H5Error::Format(format!(
            "declared count {n} exceeds frame ({} bytes left)",
            r.remaining()
        )));
    }
    Ok(n as usize)
}

/// Assert a decoder consumed its whole frame: leftover bytes mean a
/// mis-framed (or padded) message that must not decode silently.
fn expect_eof(r: &Reader) -> H5Result<()> {
    if r.remaining() != 0 {
        return Err(H5Error::Format(format!("{} trailing bytes", r.remaining())));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

/// Error-kind codes carried in the err branch of [`enc_result`], so the
/// variants that change a consumer's control flow survive the wire (and
/// the metadata-broadcast rebroadcast) instead of collapsing into a
/// generic string.
const EK_GENERIC: u8 = 0;
const EK_NOT_FOUND: u8 = 1;
const EK_PEER_UNAVAILABLE: u8 = 2;

/// Replies carry an ok/err discriminant so protocol errors propagate to
/// the consumer instead of deadlocking it. The err branch is
/// `[kind u8][message str]`.
///
/// ```
/// use bytes::Bytes;
/// use lowfive::protocol::{enc_result, dec_result};
/// use minih5::H5Error;
/// let ok = enc_result(Ok(Bytes::from_static(b"payload")));
/// assert_eq!(&dec_result(&ok).unwrap()[..], b"payload");
/// let err = enc_result(Err(H5Error::PeerUnavailable("rank 1 dead".into())));
/// assert!(matches!(dec_result(&err).unwrap_err(), H5Error::PeerUnavailable(_)));
/// ```
pub fn enc_result(r: H5Result<Bytes>) -> Bytes {
    let mut w = Writer::new();
    match r {
        Ok(body) => {
            w.put_u8(1);
            w.put_raw(&body);
        }
        Err(e) => {
            w.put_u8(0);
            let (kind, msg) = match &e {
                H5Error::NotFound(n) => (EK_NOT_FOUND, n.clone()),
                H5Error::PeerUnavailable(m) => (EK_PEER_UNAVAILABLE, m.clone()),
                other => (EK_GENERIC, other.to_string()),
            };
            w.put_u8(kind);
            w.put_str(&msg);
        }
    }
    w.finish()
}

/// Unwrap a [`enc_result`]-framed reply body.
pub fn dec_result(b: &Bytes) -> H5Result<Bytes> {
    let mut r = Reader::new(b);
    match r.get_u8()? {
        1 => Ok(b.slice(1..)),
        0 => {
            let kind = r.get_u8()?;
            let msg = r.get_str()?;
            Err(match kind {
                EK_NOT_FOUND => H5Error::NotFound(msg),
                EK_PEER_UNAVAILABLE => H5Error::PeerUnavailable(msg),
                _ => H5Error::Vol(format!("remote error: {msg}")),
            })
        }
        t => Err(H5Error::Format(format!("bad reply discriminant {t}"))),
    }
}

/// Parts-preserving [`enc_result`]: the ok discriminant becomes its own
/// one-byte part and the body's parts follow untouched, so a zero-copy
/// reply stays zero-copy through the result wrapper. Flattened, the frame
/// is identical to `enc_result`'s.
pub fn enc_result_payload(r: H5Result<Payload>) -> Payload {
    match r {
        Ok(body) => {
            let mut p = Payload::from(vec![1u8]);
            p.extend(body);
            p
        }
        Err(e) => enc_result(Err(e)).into(),
    }
}

/// Unwrap a result-framed reply delivered as a [`Payload`] without
/// flattening the ok body: a one-byte prefix peek plus an in-place
/// `advance`. Error frames are small and single-part; decoding them
/// reuses [`dec_result`].
pub fn dec_result_payload(mut p: Payload) -> H5Result<Payload> {
    let mut d = [0u8; 1];
    if !p.copy_prefix(&mut d) {
        return Err(H5Error::Format("empty reply frame".into()));
    }
    match d[0] {
        1 => {
            p.advance(1);
            Ok(p)
        }
        0 => match dec_result(&p.into_bytes()) {
            Ok(_) => unreachable!("discriminant 0 is the err branch"),
            Err(e) => Err(e),
        },
        t => Err(H5Error::Format(format!("bad reply discriminant {t}"))),
    }
}

/// Encode a metadata reply: the file's generation, the negotiated codec
/// mask (consumer caps ∩ producer caps), then the serialized
/// [`FileMeta`] tree.
pub fn enc_metadata_reply(gen: u64, codec_mask: u64, meta: &FileMeta) -> Bytes {
    let mut w = Writer::new();
    w.put_u64(gen);
    w.put_u64(codec_mask);
    w.put(meta);
    w.finish()
}

/// Decode a metadata reply into `(generation, negotiated codec mask,
/// tree)`.
pub fn dec_metadata_reply(b: &[u8]) -> H5Result<(u64, u64, FileMeta)> {
    let mut r = Reader::new(b);
    let gen = r.get_u64()?;
    let mask = r.get_u64()?;
    let meta = r.get()?;
    expect_eof(&r)?;
    Ok((gen, mask, meta))
}

/// Encode a redirect reply: the file's generation, then the world ranks
/// owning intersecting data.
///
/// ```
/// use lowfive::protocol::{enc_intersect_reply, dec_intersect_reply};
/// assert_eq!(dec_intersect_reply(&enc_intersect_reply(3, &[0, 2])).unwrap(), (3, vec![0, 2]));
/// ```
pub fn enc_intersect_reply(gen: u64, ranks: &[u64]) -> Bytes {
    let mut w = Writer::new();
    w.put_u64(gen);
    w.put_u64s(ranks);
    w.finish()
}

/// Decode a redirect reply into `(generation, owner world ranks)`.
pub fn dec_intersect_reply(b: &[u8]) -> H5Result<(u64, Vec<u64>)> {
    let mut r = Reader::new(b);
    let out = (r.get_u64()?, r.get_u64s()?);
    expect_eof(&r)?;
    Ok(out)
}

/// A data reply: `segs` are `(element offset in the consumer's packed
/// buffer, element length)`, and `blob` is the concatenated payload in
/// segment order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataReply {
    /// Generation of the served file at reply time.
    pub gen: u64,
    /// `(element offset, element length)` pairs addressing the
    /// consumer's packed destination buffer.
    pub segs: Vec<(u64, u64)>,
    /// Concatenated segment payloads, in `segs` order.
    pub blob: Bytes,
}

/// Encode a single data reply (`M_DATA`).
///
/// ```
/// use lowfive::protocol::{enc_data_reply, dec_data_reply};
/// let segs = vec![(0u64, 3u64), (10, 2)];
/// let blob = [1u8, 2, 3, 4, 5];
/// let reply = dec_data_reply(&enc_data_reply(1, &segs, &blob)).unwrap();
/// assert_eq!(reply.gen, 1);
/// assert_eq!(reply.segs, segs);
/// assert_eq!(&reply.blob[..], &blob[..]);
/// ```
pub fn enc_data_reply(gen: u64, segs: &[(u64, u64)], blob: &[u8]) -> Bytes {
    let mut w = Writer::new();
    put_data_reply(&mut w, gen, segs, blob);
    w.finish()
}

/// Decode a single data reply. A corrupt segment count that cannot fit
/// in the frame is rejected up front.
pub fn dec_data_reply(b: &[u8]) -> H5Result<DataReply> {
    let mut r = Reader::new(b);
    let reply = get_data_reply(&mut r)?;
    expect_eof(&r)?;
    Ok(reply)
}

fn put_data_reply(w: &mut Writer, gen: u64, segs: &[(u64, u64)], blob: &[u8]) {
    w.put_u64(gen);
    w.put_u64(segs.len() as u64);
    for &(off, len) in segs {
        w.put_u64(off);
        w.put_u64(len);
    }
    w.put_bytes(blob);
}

fn get_data_reply(r: &mut Reader) -> H5Result<DataReply> {
    let gen = r.get_u64()?;
    let n = checked_count(r.get_u64()?, 16, r)?;
    let mut segs = Vec::with_capacity(n);
    for _ in 0..n {
        segs.push((r.get_u64()?, r.get_u64()?));
    }
    let blob = Bytes::copy_from_slice(r.get_bytes()?);
    Ok(DataReply { gen, segs, blob })
}

/// Encode a batched data reply (`M_DATA_BATCH`): one `(segs, blob)`
/// body per request entry, concatenated in entry order. Every entry
/// carries the serving file's generation.
///
/// ```
/// use bytes::Bytes;
/// use lowfive::protocol::{enc_data_reply_batch, dec_data_reply_batch};
/// let parts = vec![
///     (vec![(0u64, 2u64)], Bytes::from_static(&[7, 8])),
///     (vec![], Bytes::new()), // an entry may intersect nothing
/// ];
/// let replies = dec_data_reply_batch(&enc_data_reply_batch(2, &parts)).unwrap();
/// assert_eq!(replies.len(), 2);
/// assert_eq!(replies[0].gen, 2);
/// assert_eq!(replies[0].segs, parts[0].0);
/// assert_eq!(replies[0].blob, parts[0].1);
/// assert!(replies[1].segs.is_empty());
/// ```
pub fn enc_data_reply_batch(gen: u64, parts: &[(Vec<(u64, u64)>, Bytes)]) -> Bytes {
    let mut w = Writer::new();
    w.put_u64(parts.len() as u64);
    for (segs, blob) in parts {
        put_data_reply(&mut w, gen, segs, blob);
    }
    w.finish()
}

/// Decode a batched data reply into one [`DataReply`] per entry.
/// Both the entry count and each entry's segment count are validated
/// against the bytes actually present.
pub fn dec_data_reply_batch(b: &[u8]) -> H5Result<Vec<DataReply>> {
    let mut r = Reader::new(b);
    let n = checked_count(r.get_u64()?, 24, &r)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_data_reply(&mut r)?);
    }
    expect_eof(&r)?;
    Ok(out)
}

// ---------------------------------------------------------------------
// Zero-copy reply framing
// ---------------------------------------------------------------------

/// Builder for multi-part reply frames: header fields accumulate in a
/// contiguous run, dataset bytes are *lent* as refcounted parts. The
/// flattened frame is byte-identical to what the contiguous encoders
/// above produce, so a `ReplyFrame`-built reply decodes with the same
/// decoders once flattened — or, without flattening, with a
/// [`PayloadReader`].
///
/// ```
/// use bytes::Bytes;
/// use lowfive::protocol::{dec_data_reply, enc_data_reply, ReplyFrame};
/// let region = Bytes::from(vec![1u8, 2, 3, 4, 5]);
/// let mut f = ReplyFrame::new();
/// f.put_u64(1); // gen
/// f.put_u64(1); // one segment
/// f.put_u64(0); // off
/// f.put_u64(3); // len
/// f.put_u64(3); // blob length prefix
/// f.lend(region.slice(1..4)); // borrowed, not copied
/// let flat = f.finish().into_bytes();
/// assert_eq!(&flat[..], &enc_data_reply(1, &[(0, 3)], &[2, 3, 4])[..]);
/// assert_eq!(&dec_data_reply(&flat).unwrap().blob[..], &[2, 3, 4]);
/// ```
#[derive(Default)]
pub struct ReplyFrame {
    hdr: Writer,
    parts: Payload,
}

impl ReplyFrame {
    /// An empty frame.
    pub fn new() -> Self {
        ReplyFrame::default()
    }

    /// Append a header field to the current contiguous run.
    pub fn put_u64(&mut self, v: u64) {
        self.hdr.put_u64(v);
    }

    /// Append a length-prefix for the blob that follows via [`lend`]
    /// calls (`lend` itself adds no framing).
    ///
    /// [`lend`]: ReplyFrame::lend
    pub fn put_blob_len(&mut self, len: u64) {
        self.hdr.put_u64(len);
    }

    /// Lend a borrowed slice into the frame: the pending header run is
    /// flushed as its own part and `b` joins the frame as the very same
    /// refcounted allocation — no byte of `b` is copied.
    pub fn lend(&mut self, b: Bytes) {
        self.flush_hdr();
        self.parts.push(b);
    }

    fn flush_hdr(&mut self) {
        if !self.hdr.is_empty() {
            self.parts.push(self.hdr.take());
        }
    }

    /// Total logical length framed so far.
    pub fn len(&self) -> usize {
        self.hdr.len() + self.parts.len()
    }

    /// Has nothing been framed yet?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish the frame as a multi-part payload.
    pub fn finish(mut self) -> Payload {
        self.flush_hdr();
        self.parts
    }
}

/// Decoding cursor over a multi-part reply [`Payload`], used by the
/// consumer to walk a reply *in place*: scalar reads peek a few bytes
/// across part boundaries (bounded, uncounted copies), and
/// [`PayloadReader::copy_into`] scatters blob bytes straight into the
/// caller's destination buffer — the single unavoidable copy of the
/// zero-copy fetch path.
pub struct PayloadReader {
    p: Payload,
}

impl PayloadReader {
    /// Start reading `p` from its first byte.
    pub fn new(p: Payload) -> Self {
        PayloadReader { p }
    }

    /// Read one byte off the front of the payload.
    pub fn get_u8(&mut self) -> H5Result<u8> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Ok(b[0])
    }

    /// Read a little-endian `u64` off the front of the payload.
    pub fn get_u64(&mut self) -> H5Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Copy exactly `dst.len()` bytes off the front of the payload into
    /// `dst` and advance past them.
    pub fn copy_into(&mut self, dst: &mut [u8]) -> H5Result<()> {
        self.read_exact(dst)
    }

    /// Skip `n` bytes (part-slicing, no copy).
    pub fn skip(&mut self, n: usize) -> H5Result<()> {
        if n > self.p.len() {
            return Err(self.truncated(n));
        }
        self.p.advance(n);
        Ok(())
    }

    /// Bytes remaining past the cursor.
    pub fn remaining(&self) -> usize {
        self.p.len()
    }

    fn read_exact(&mut self, dst: &mut [u8]) -> H5Result<()> {
        if !self.p.copy_prefix(dst) {
            return Err(self.truncated(dst.len()));
        }
        self.p.advance(dst.len());
        Ok(())
    }

    fn truncated(&self, need: usize) -> H5Error {
        H5Error::Format(format!(
            "truncated reply payload: need {need} bytes, have {}",
            self.p.len()
        ))
    }
}

/// A decoded data-reply header: `(generation, segments, blob length in
/// bytes)`.
pub type DataReplyHeader = (u64, Vec<(u64, u64)>, usize);

/// Read one data-reply header off a [`PayloadReader`], leaving the cursor
/// at the first blob byte. The caller scatters `blob_len` bytes via
/// [`PayloadReader::copy_into`] (or skips them) before reading the next
/// entry of a batch. Counts are validated against the bytes actually
/// present, exactly like the contiguous decoders.
pub fn get_data_reply_header(pr: &mut PayloadReader) -> H5Result<DataReplyHeader> {
    let gen = pr.get_u64()?;
    let n = pr.get_u64()?;
    if (n as u128) * 16 > pr.remaining() as u128 {
        return Err(H5Error::Format(format!(
            "declared count {n} exceeds frame ({} bytes left)",
            pr.remaining()
        )));
    }
    let mut segs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        segs.push((pr.get_u64()?, pr.get_u64()?));
    }
    let blob_len = pr.get_u64()? as usize;
    if blob_len > pr.remaining() {
        return Err(H5Error::Format(format!(
            "declared blob length {blob_len} exceeds frame ({} bytes left)",
            pr.remaining()
        )));
    }
    Ok((gen, segs, blob_len))
}

// ---------------------------------------------------------------------
// Index exchange payloads (producer-local)
// ---------------------------------------------------------------------

/// One producer's contribution to another producer's index: per dataset,
/// the bounding boxes of the regions the sender holds that fall in the
/// receiver's block of the common decomposition, each tagged with the
/// sender's generation of the file at index time.
///
/// ```
/// use lowfive::protocol::{enc_index_bundle, dec_index_bundle};
/// use minih5::BBox;
/// let entries =
///     vec![("f.h5".to_string(), "grid".to_string(), 1, BBox::new(vec![0], vec![5]))];
/// assert_eq!(dec_index_bundle(&enc_index_bundle(&entries)).unwrap(), entries);
/// ```
pub fn enc_index_bundle(entries: &[(String, String, u64, BBox)]) -> Bytes {
    let mut w = Writer::new();
    w.put_u64(entries.len() as u64);
    for (file, dset, gen, bb) in entries {
        w.put_str(file);
        w.put_str(dset);
        w.put_u64(*gen);
        w.put(bb);
    }
    w.finish()
}

/// Decode an index bundle.
pub fn dec_index_bundle(b: &[u8]) -> H5Result<Vec<(String, String, u64, BBox)>> {
    let mut r = Reader::new(b);
    let n = checked_count(r.get_u64()?, 25, &r)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((r.get_str()?, r.get_str()?, r.get_u64()?, r.get()?));
    }
    expect_eof(&r)?;
    Ok(out)
}

// ---------------------------------------------------------------------
// Step streaming (M_STEP_SUB / M_STEP_NEXT / M_STEP_ACK)
// ---------------------------------------------------------------------

/// Wire codes of the subscribe policies carried in `M_STEP_NEXT`
/// requests. `crate::stream::StepPolicy` maps onto these; the skip
/// bound rides next to the code so the frame shape is fixed.
pub const STEP_POLICY_EVERY: u8 = 0;
/// Wire code: deliver the newest retained step at or past the cursor.
pub const STEP_POLICY_LATEST: u8 = 1;
/// Wire code: deliver in order but allow skipping up to `n` steps ahead.
pub const STEP_POLICY_SKIP_OK: u8 = 2;

/// Encode a step-subscribe request (`M_STEP_SUB`): the series name plus
/// the subscriber's codec-capability bitmask (`CAP_*` bits).
///
/// ```
/// use lowfive::protocol::{enc_step_sub_req, dec_step_sub_req, CAP_RAW};
/// let frame = enc_step_sub_req("sim.h5", CAP_RAW);
/// assert_eq!(dec_step_sub_req(&frame).unwrap(), ("sim.h5".into(), CAP_RAW));
/// ```
pub fn enc_step_sub_req(series: &str, caps: u64) -> Bytes {
    let mut w = Writer::new();
    w.put_str(series);
    w.put_u64(caps);
    w.finish()
}

/// Decode a step-subscribe request into `(series, subscriber caps)`.
pub fn dec_step_sub_req(b: &[u8]) -> H5Result<(String, u64)> {
    let mut r = Reader::new(b);
    let series = r.get_str()?;
    let caps = r.get_u64()?;
    expect_eof(&r)?;
    Ok((series, caps))
}

/// Encode a step-subscribe reply: the retained window start (the oldest
/// step a late joiner can still catch up from), the next sequence number
/// the producer will publish, whether the series has ended, and the
/// negotiated codec mask (subscriber caps ∩ producer caps) governing
/// this pair's step-next reply bodies.
///
/// ```
/// use lowfive::protocol::{enc_step_sub_reply, dec_step_sub_reply, CAP_RAW};
/// let frame = enc_step_sub_reply(3, 7, false, CAP_RAW);
/// assert_eq!(dec_step_sub_reply(&frame).unwrap(), (3, 7, false, CAP_RAW));
/// ```
pub fn enc_step_sub_reply(window_start: u64, next_seq: u64, ended: bool, codec_mask: u64) -> Bytes {
    let mut w = Writer::new();
    w.put_u64(window_start);
    w.put_u64(next_seq);
    w.put_u8(ended as u8);
    w.put_u64(codec_mask);
    w.finish()
}

/// Decode a step-subscribe reply into `(window_start, next_seq, ended,
/// negotiated codec mask)`.
pub fn dec_step_sub_reply(b: &[u8]) -> H5Result<(u64, u64, bool, u64)> {
    let mut r = Reader::new(b);
    let out = (r.get_u64()?, r.get_u64()?, r.get_u8()? != 0, r.get_u64()?);
    expect_eof(&r)?;
    Ok(out)
}

/// Encode a step-next request (`M_STEP_NEXT`): the series, the caller's
/// cumulative cursor (every step below it is consumed), the policy wire
/// code, and the skip bound (meaningful for [`STEP_POLICY_SKIP_OK`],
/// zero otherwise).
///
/// ```
/// use lowfive::protocol::{enc_step_next_req, dec_step_next_req, STEP_POLICY_SKIP_OK};
/// let frame = enc_step_next_req("sim.h5", 4, STEP_POLICY_SKIP_OK, 2);
/// assert_eq!(dec_step_next_req(&frame).unwrap(), ("sim.h5".into(), 4, STEP_POLICY_SKIP_OK, 2));
/// ```
pub fn enc_step_next_req(series: &str, cursor: u64, policy: u8, skip: u64) -> Bytes {
    let mut w = Writer::new();
    w.put_str(series);
    w.put_u64(cursor);
    w.put_u8(policy);
    w.put_u64(skip);
    w.finish()
}

/// Decode a step-next request into `(series, cursor, policy code, skip)`.
pub fn dec_step_next_req(b: &[u8]) -> H5Result<(String, u64, u8, u64)> {
    let mut r = Reader::new(b);
    let out = (r.get_str()?, r.get_u64()?, r.get_u8()?, r.get_u64()?);
    expect_eof(&r)?;
    Ok(out)
}

/// One `M_STEP_NEXT` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepNextReply {
    /// Nothing at or past the cursor is retained yet; poll again.
    Pending,
    /// A step *announce*: the chosen step and where to read it.
    Step {
        /// Sequence number of the announced step.
        seq: u64,
        /// Slot filename holding the step's datasets (open it like any
        /// consumed file).
        file: String,
        /// The producer's generation of the slot file at publish time; a
        /// later read observing a different generation proves the slot
        /// was recycled underneath the announce (drop-oldest mode only).
        gen: u64,
        /// Publish timestamp, `obsv::clock::now_ns` domain (threads share
        /// one process clock, so consumers can histogram step latency).
        pub_ns: u64,
    },
    /// The series ended and nothing at or past the cursor remains; `head`
    /// is the final next-sequence value to acknowledge.
    Ended {
        /// One past the last published sequence number.
        head: u64,
    },
}

const STEP_NEXT_PENDING: u8 = 0;
const STEP_NEXT_STEP: u8 = 1;
const STEP_NEXT_ENDED: u8 = 2;

/// Encode a step-next reply.
///
/// ```
/// use lowfive::protocol::{enc_step_next_reply, dec_step_next_reply, StepNextReply};
/// for reply in [
///     StepNextReply::Pending,
///     StepNextReply::Step { seq: 5, file: "sim.h5@s1".into(), gen: 2, pub_ns: 99 },
///     StepNextReply::Ended { head: 6 },
/// ] {
///     assert_eq!(dec_step_next_reply(&enc_step_next_reply(&reply)).unwrap(), reply);
/// }
/// ```
pub fn enc_step_next_reply(reply: &StepNextReply) -> Bytes {
    let mut w = Writer::new();
    match reply {
        StepNextReply::Pending => w.put_u8(STEP_NEXT_PENDING),
        StepNextReply::Step { seq, file, gen, pub_ns } => {
            w.put_u8(STEP_NEXT_STEP);
            w.put_u64(*seq);
            w.put_str(file);
            w.put_u64(*gen);
            w.put_u64(*pub_ns);
        }
        StepNextReply::Ended { head } => {
            w.put_u8(STEP_NEXT_ENDED);
            w.put_u64(*head);
        }
    }
    w.finish()
}

/// Decode a step-next reply.
pub fn dec_step_next_reply(b: &[u8]) -> H5Result<StepNextReply> {
    let mut r = Reader::new(b);
    let reply = match r.get_u8()? {
        STEP_NEXT_PENDING => StepNextReply::Pending,
        STEP_NEXT_STEP => {
            let seq = r.get_u64()?;
            let file = r.get_str()?;
            let gen = r.get_u64()?;
            let pub_ns = r.get_u64()?;
            StepNextReply::Step { seq, file, gen, pub_ns }
        }
        STEP_NEXT_ENDED => StepNextReply::Ended { head: r.get_u64()? },
        t => return Err(H5Error::Format(format!("bad step-next discriminant {t}"))),
    };
    expect_eof(&r)?;
    Ok(reply)
}

/// Encode a step-ack request (`M_STEP_ACK`): the series and the caller's
/// cumulative cursor. Acks are idempotent max-merges on the producer, so
/// a retransmit (lost ack under a retry policy) is harmless.
///
/// ```
/// use lowfive::protocol::{enc_step_ack_req, dec_step_ack_req};
/// assert_eq!(dec_step_ack_req(&enc_step_ack_req("sim.h5", 12)).unwrap(), ("sim.h5".into(), 12));
/// ```
pub fn enc_step_ack_req(series: &str, cursor: u64) -> Bytes {
    let mut w = Writer::new();
    w.put_str(series);
    w.put_u64(cursor);
    w.finish()
}

/// Decode a step-ack request into `(series, cursor)`.
pub fn dec_step_ack_req(b: &[u8]) -> H5Result<(String, u64)> {
    let mut r = Reader::new(b);
    let out = (r.get_str()?, r.get_u64()?);
    expect_eof(&r)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let frame = enc_metadata_req("a.h5", CAP_ALL);
        assert_eq!(dec_metadata_req(&frame).unwrap(), ("a.h5".into(), CAP_ALL));
        assert_eq!(dec_done_req(&enc_done_req("a.h5")).unwrap(), "a.h5");
        let bb = BBox::new(vec![1, 2], vec![3, 4]);
        let (f, d, b2) = dec_intersect_req(&enc_intersect_req("f", "g/d", &bb)).unwrap();
        assert_eq!((f.as_str(), d.as_str()), ("f", "g/d"));
        assert_eq!(b2, bb);
        let sel = Selection::block(&[0, 0], &[2, 2]);
        let (_, _, s2) = dec_data_req(&enc_data_req("f", "d", &sel)).unwrap();
        assert_eq!(s2, sel);
    }

    #[test]
    fn result_wrapper() {
        let ok = enc_result(Ok(Bytes::from_static(b"payload")));
        assert_eq!(&dec_result(&ok).unwrap()[..], b"payload");
        let err = enc_result(Err(H5Error::NotFound("x".into())));
        let e = dec_result(&err).unwrap_err();
        assert!(matches!(&e, H5Error::NotFound(n) if n == "x"), "kind survives: {e}");
        assert!(e.to_string().contains("object not found: x"));
    }

    #[test]
    fn result_wrapper_preserves_peer_unavailable() {
        let err = enc_result(Err(H5Error::PeerUnavailable("producer rank 1 dead".into())));
        let e = dec_result(&err).unwrap_err();
        assert!(matches!(&e, H5Error::PeerUnavailable(m) if m.contains("rank 1")), "{e}");
        // Generic kinds still collapse into Vol with the remote marker.
        let err = enc_result(Err(H5Error::Format("bad".into())));
        let e = dec_result(&err).unwrap_err();
        assert!(matches!(&e, H5Error::Vol(m) if m.contains("remote error")), "{e}");
    }

    #[test]
    fn data_reply_roundtrip() {
        let segs = vec![(0u64, 3u64), (10, 2)];
        let blob = vec![1u8, 2, 3, 4, 5];
        let enc = enc_data_reply(4, &segs, &blob);
        let dec = dec_data_reply(&enc).unwrap();
        assert_eq!(dec.gen, 4);
        assert_eq!(dec.segs, segs);
        assert_eq!(&dec.blob[..], &blob[..]);
    }

    #[test]
    fn index_bundle_roundtrip() {
        let entries = vec![
            ("f.h5".to_string(), "g/grid".to_string(), 1, BBox::new(vec![0], vec![5])),
            ("f.h5".to_string(), "g/p".to_string(), 2, BBox::new(vec![5], vec![9])),
        ];
        let back = dec_index_bundle(&enc_index_bundle(&entries)).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn empty_data_reply() {
        let dec = dec_data_reply(&enc_data_reply(0, &[], &[])).unwrap();
        assert!(dec.segs.is_empty());
        assert!(dec.blob.is_empty());
    }

    #[test]
    fn reply_frame_flattens_to_contiguous_encoding() {
        // A two-entry batch built from borrowed slices must flatten to
        // exactly what the contiguous encoder produces for the same data.
        let region = Bytes::from((0u8..32).collect::<Vec<u8>>());
        let entries: Vec<(Vec<(u64, u64)>, Bytes)> = vec![
            (vec![(0, 4), (8, 4)], {
                let mut v = region.slice(0..4).to_vec();
                v.extend_from_slice(&region.slice(16..20));
                Bytes::from(v)
            }),
            (vec![], Bytes::new()),
        ];
        let contiguous = enc_data_reply_batch(7, &entries);

        let mut f = ReplyFrame::new();
        f.put_u64(2); // entries
        f.put_u64(7); // gen
        f.put_u64(2); // segs
        for &(off, len) in &entries[0].0 {
            f.put_u64(off);
            f.put_u64(len);
        }
        f.put_blob_len(8);
        f.lend(region.slice(0..4));
        f.lend(region.slice(16..20));
        f.put_u64(7); // gen
        f.put_u64(0); // segs
        f.put_blob_len(0);
        let payload = f.finish();
        assert!(payload.num_parts() > 1, "borrowed slices stay separate parts");
        assert_eq!(&payload.to_bytes()[..], &contiguous[..]);
    }

    #[test]
    fn payload_reader_walks_parts_in_place() {
        let region = Bytes::from(vec![10u8, 11, 12, 13, 14, 15]);
        let mut f = ReplyFrame::new();
        f.put_u64(3); // gen
        f.put_u64(1); // one seg
        f.put_u64(2); // off
        f.put_u64(4); // len
        f.put_blob_len(4);
        f.lend(region.slice(1..5));
        let mut pr = PayloadReader::new(f.finish());
        let (gen, segs, blob_len) = get_data_reply_header(&mut pr).unwrap();
        assert_eq!(gen, 3);
        assert_eq!(segs, vec![(2, 4)]);
        assert_eq!(blob_len, 4);
        let mut dst = [0u8; 4];
        pr.copy_into(&mut dst).unwrap();
        assert_eq!(dst, [11, 12, 13, 14]);
        assert_eq!(pr.remaining(), 0);
        assert!(pr.get_u64().is_err(), "reading past the end must fail cleanly");
    }

    #[test]
    fn payload_reader_rejects_corrupt_counts() {
        // Absurd segment count.
        let mut f = ReplyFrame::new();
        f.put_u64(0); // gen
        f.put_u64(u64::MAX / 16); // segs
        let mut pr = PayloadReader::new(f.finish());
        assert!(get_data_reply_header(&mut pr).is_err());

        // Blob length pointing past the end of the frame.
        let mut f = ReplyFrame::new();
        f.put_u64(0); // gen
        f.put_u64(0); // segs
        f.put_blob_len(9);
        f.lend(Bytes::from_static(&[1])); // only one byte present
        let mut pr = PayloadReader::new(f.finish());
        assert!(get_data_reply_header(&mut pr).is_err());
    }

    #[test]
    fn result_payload_wrapper() {
        // Ok: the body's parts survive the wrapper untouched.
        let region = Bytes::from(vec![5u8, 6, 7, 8]);
        let mut body = Payload::new();
        body.push(region.slice(0..2));
        body.push(region.slice(2..4));
        let framed = enc_result_payload(Ok(body));
        assert_eq!(framed.num_parts(), 3);
        let back = dec_result_payload(framed.clone()).unwrap();
        assert_eq!(back.num_parts(), 2);
        assert_eq!(back.parts()[0].as_ptr(), region.as_ptr(), "part is borrowed, not copied");
        // Flattened, it matches the contiguous wrapper.
        assert_eq!(&framed.to_bytes()[..], &enc_result(Ok(Bytes::from_static(&[5, 6, 7, 8])))[..]);

        // Err: kinds survive the payload path too.
        let err = enc_result_payload(Err(H5Error::PeerUnavailable("rank 2 dead".into())));
        let e = dec_result_payload(err).unwrap_err();
        assert!(matches!(&e, H5Error::PeerUnavailable(m) if m.contains("rank 2")), "{e}");

        // Empty frame.
        assert!(dec_result_payload(Payload::new()).is_err());
    }

    #[test]
    fn data_req_batch_roundtrip() {
        let entries = vec![
            ("g/grid".to_string(), Selection::block(&[0, 4], &[8, 4])),
            ("g/particles".to_string(), Selection::all()),
            ("g/grid".to_string(), Selection::points(2, &[&[1, 1], &[2, 3]])),
        ];
        let (file, back) = dec_data_req_batch(&enc_data_req_batch("s.h5", &entries)).unwrap();
        assert_eq!(file, "s.h5");
        assert_eq!(back, entries);

        let (file, back) = dec_data_req_batch(&enc_data_req_batch("empty.h5", &[])).unwrap();
        assert_eq!(file, "empty.h5");
        assert!(back.is_empty());
    }

    #[test]
    fn data_reply_batch_roundtrip() {
        let parts = vec![
            (vec![(0u64, 3u64), (10, 2)], Bytes::from_static(&[1, 2, 3, 4, 5])),
            (vec![], Bytes::new()),
            (vec![(7, 1)], Bytes::from_static(&[9])),
        ];
        let replies = dec_data_reply_batch(&enc_data_reply_batch(5, &parts)).unwrap();
        assert_eq!(replies.len(), 3);
        for (reply, (segs, blob)) in replies.iter().zip(&parts) {
            assert_eq!(reply.gen, 5);
            assert_eq!(&reply.segs, segs);
            assert_eq!(&reply.blob, blob);
        }
        assert!(dec_data_reply_batch(&enc_data_reply_batch(5, &[])).unwrap().is_empty());
    }

    #[test]
    fn malformed_batch_frames_are_rejected() {
        // Truncated mid-entry: a valid two-entry request cut short.
        let entries =
            vec![("a".to_string(), Selection::all()), ("b".to_string(), Selection::all())];
        let good = enc_data_req_batch("f", &entries);
        for cut in 1..good.len() {
            assert!(dec_data_req_batch(&good[..cut]).is_err(), "cut at {cut} must fail");
        }

        // Absurd declared entry count must be rejected before allocating.
        let mut w = Writer::new();
        w.put_str("f");
        w.put_u64(u64::MAX / 2);
        let huge = w.finish();
        let e = dec_data_req_batch(&huge).unwrap_err();
        assert!(matches!(e, H5Error::Format(_)), "{e}");

        // Same for the reply's outer count and an inner segment count.
        let mut w = Writer::new();
        w.put_u64(u64::MAX / 16);
        let e = dec_data_reply_batch(&w.finish()).unwrap_err();
        assert!(matches!(e, H5Error::Format(_)), "{e}");

        let mut w = Writer::new();
        w.put_u64(1); // one entry...
        w.put_u64(0); // ...at generation 0...
        w.put_u64(u64::MAX / 16); // ...claiming absurdly many segments
        let e = dec_data_reply_batch(&w.finish()).unwrap_err();
        assert!(matches!(e, H5Error::Format(_)), "{e}");

        // Truncated reply blob: entry declares 4 payload bytes, frame has 1.
        let mut w = Writer::new();
        w.put_u64(1);
        w.put_u64(0); // gen
        w.put_u64(1);
        w.put_u64(0);
        w.put_u64(4); // seg (off=0, len=4)
        w.put_u64(4); // blob length prefix
        w.put_raw(&[0xAB]); // but only one byte present
        assert!(dec_data_reply_batch(&w.finish()).is_err());
    }

    #[test]
    fn decoders_reject_trailing_garbage() {
        let mut padded = enc_step_ack_req("s", 3).to_vec();
        padded.push(0xFF);
        let e = dec_step_ack_req(&padded).unwrap_err();
        assert!(matches!(&e, H5Error::Format(m) if m.contains("trailing")), "{e}");

        let mut padded = enc_step_next_reply(&StepNextReply::Pending).to_vec();
        padded.extend_from_slice(&[1, 2, 3]);
        assert!(dec_step_next_reply(&padded).is_err());

        let mut padded = enc_data_reply(1, &[(0, 1)], &[9]).to_vec();
        padded.push(0);
        assert!(dec_data_reply(&padded).is_err());
    }

    #[test]
    fn codec_roundtrips_preserve_bytes() {
        // Grid-like data: monotone u64 little-endian values — long zero
        // runs in the delta stream.
        let grid: Vec<u8> = (0u64..512).flat_map(|v| v.to_le_bytes()).collect();
        for codec in [CODEC_RAW, CODEC_RLE, CODEC_DELTA_RLE] {
            let coded = encode_coded(Payload::from(grid.clone()), codec);
            let back = decode_coded_payload(coded.clone(), CAP_ALL).unwrap();
            assert_eq!(&back.to_bytes()[..], &grid[..], "codec {codec}");
            let back = dec_coded(&coded.to_bytes(), CAP_ALL).unwrap();
            assert_eq!(&back[..], &grid[..], "codec {codec} contiguous");
        }
        // Little-endian position encoding leaves 6-7 high zero bytes per
        // element, which fold into single runs: plain RLE must beat raw
        // by a clear margin on this shape.
        let rle = encode_coded(Payload::from(grid.clone()), CODEC_RLE);
        assert!(rle.len() <= grid.len() * 2 / 3, "rle {} of {}", rle.len(), grid.len());
        // Delta-RLE earns its keep on *smooth* fields — consecutive
        // elements near-equal, so the delta stream is almost all zeros —
        // where plain RLE sees no runs at all.
        let smooth: Vec<u8> = (0u64..512).flat_map(|v| (1000 + v / 16).to_le_bytes()).collect();
        let delta = encode_coded(Payload::from(smooth.clone()), CODEC_DELTA_RLE);
        assert!(delta.len() < smooth.len() / 4, "delta {} of {}", delta.len(), smooth.len());
        let back = decode_coded_payload(delta, CAP_ALL).unwrap();
        assert_eq!(&back.to_bytes()[..], &smooth[..]);
    }

    #[test]
    fn incompressible_bodies_keep_their_lent_parts() {
        // A pseudo-random body cannot shrink under RLE: the encoder must
        // fall back to raw and ship the original borrowed parts.
        let mut v = Vec::with_capacity(1024);
        let mut x = 0x9E3779B9u32;
        for _ in 0..1024 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            v.push((x >> 24) as u8);
        }
        let region = Bytes::from(v);
        let mut body = Payload::new();
        body.push(region.slice(0..512));
        body.push(region.slice(512..1024));
        let coded = encode_coded(body, CODEC_RLE);
        assert_eq!(coded.num_parts(), 3, "prefix + the two original parts");
        assert_eq!(coded.parts()[1].as_ptr(), region.as_ptr(), "part still borrowed");
        let back = decode_coded_payload(coded, CAP_RAW).unwrap();
        assert_eq!(back.parts()[0].as_ptr(), region.as_ptr(), "raw decode is in-place");
    }

    #[test]
    fn codec_decoders_reject_malformed_frames() {
        // Codec id outside the negotiated mask.
        let coded = encode_coded(Payload::from(vec![7u8; 100]), CODEC_RLE);
        assert!(coded.len() < 100, "compresses");
        assert!(dec_coded(&coded.to_bytes(), CAP_RAW).is_err(), "unnegotiated codec");
        // Unknown codec id.
        assert!(dec_coded(&Bytes::from_static(&[9, 0, 0]), CAP_ALL).is_err());
        // Empty frame.
        assert!(dec_coded(&Bytes::new(), CAP_ALL).is_err());
        assert!(decode_coded_payload(Payload::new(), CAP_ALL).is_err());
        // Odd pair stream.
        let mut bad = vec![CODEC_RLE];
        bad.extend_from_slice(&5u64.to_le_bytes());
        bad.extend_from_slice(&[5, 1, 7]); // one and a half pairs
        assert!(dec_coded(&Bytes::from(bad), CAP_ALL).is_err());
        // Declared length no run set can reach (balloon guard).
        let mut bad = vec![CODEC_RLE];
        bad.extend_from_slice(&u64::MAX.to_le_bytes());
        bad.extend_from_slice(&[255, 1]);
        assert!(dec_coded(&Bytes::from(bad), CAP_ALL).is_err());
        // Zero-length run.
        let mut bad = vec![CODEC_RLE];
        bad.extend_from_slice(&1u64.to_le_bytes());
        bad.extend_from_slice(&[0, 1, 1, 2]);
        assert!(dec_coded(&Bytes::from(bad), CAP_ALL).is_err());
        // Runs that do not land exactly on the declared length.
        let mut bad = vec![CODEC_RLE];
        bad.extend_from_slice(&3u64.to_le_bytes());
        bad.extend_from_slice(&[2, 1]);
        assert!(dec_coded(&Bytes::from(bad), CAP_ALL).is_err());
    }

    #[test]
    fn preferred_codec_follows_mask() {
        assert_eq!(preferred_codec(CAP_ALL), CODEC_DELTA_RLE);
        assert_eq!(preferred_codec(CAP_RAW | CAP_RLE), CODEC_RLE);
        assert_eq!(preferred_codec(CAP_RAW), CODEC_RAW);
        assert_eq!(preferred_codec(0), CODEC_RAW);
        assert_eq!(WireCodec::Auto.caps(), CAP_ALL);
        assert_eq!(WireCodec::Raw.caps(), CAP_RAW);
        assert_eq!(WireCodec::Rle.caps(), CAP_RAW | CAP_RLE);
        assert_eq!(WireCodec::DeltaRle.caps(), CAP_RAW | CAP_DELTA_RLE);
    }
}
