//! Wire protocol of the index–serve–query redistribution.
//!
//! Four RPC methods run between consumer ranks (clients) and producer
//! ranks (servers) over the world communicator:
//!
//! * `M_METADATA` — fetch the serialized metadata tree of a file
//!   (consumer `file_open`),
//! * `M_INTERSECT` — the *redirect* query of Algorithm 3 step 1: which
//!   producer ranks hold data intersecting this bounding box,
//! * `M_DATA` — the data query of Algorithm 3 step 2: returns the
//!   intersection of the producer's local regions with the consumer's
//!   selection as contiguous segments, each tagged with its element offset
//!   in the **consumer's** packed buffer, so the consumer applies a reply
//!   with straight `memcpy`s,
//! * `M_DONE` — consumer `file_close` notification; producers exit their
//!   serve loop when every consumer has reported done.
//!
//! The index exchange among producers (Algorithm 1) uses a plain tagged
//! message (`TAG_INDEX`) on the producer task's local communicator.

use bytes::Bytes;
use minih5::codec::{Decode, Encode, Reader, Writer};
use minih5::format::FileMeta;
use minih5::{BBox, H5Error, H5Result, Selection};

pub const M_METADATA: u32 = 1;
pub const M_INTERSECT: u32 = 2;
pub const M_DATA: u32 = 3;
pub const M_DONE: u32 = 4;
/// Producer-internal: ask the async serve loop to drain and exit.
pub const M_SHUTDOWN: u32 = 5;

/// Tag for the producer-local index exchange (Algorithm 1).
pub const TAG_INDEX: u32 = 0x7F10_0001;

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

pub fn enc_metadata_req(file: &str) -> Bytes {
    let mut w = Writer::new();
    w.put_str(file);
    w.finish()
}

pub fn dec_metadata_req(b: &[u8]) -> H5Result<String> {
    Reader::new(b).get_str()
}

pub fn enc_intersect_req(file: &str, dset: &str, bb: &BBox) -> Bytes {
    let mut w = Writer::new();
    w.put_str(file);
    w.put_str(dset);
    w.put(bb);
    w.finish()
}

pub fn dec_intersect_req(b: &[u8]) -> H5Result<(String, String, BBox)> {
    let mut r = Reader::new(b);
    Ok((r.get_str()?, r.get_str()?, r.get()?))
}

pub fn enc_data_req(file: &str, dset: &str, sel: &Selection) -> Bytes {
    let mut w = Writer::new();
    w.put_str(file);
    w.put_str(dset);
    w.put(sel);
    w.finish()
}

pub fn dec_data_req(b: &[u8]) -> H5Result<(String, String, Selection)> {
    let mut r = Reader::new(b);
    Ok((r.get_str()?, r.get_str()?, r.get()?))
}

pub fn enc_done_req(file: &str) -> Bytes {
    enc_metadata_req(file)
}

pub fn dec_done_req(b: &[u8]) -> H5Result<String> {
    dec_metadata_req(b)
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

/// Error-kind codes carried in the err branch of [`enc_result`], so the
/// variants that change a consumer's control flow survive the wire (and
/// the metadata-broadcast rebroadcast) instead of collapsing into a
/// generic string.
const EK_GENERIC: u8 = 0;
const EK_NOT_FOUND: u8 = 1;
const EK_PEER_UNAVAILABLE: u8 = 2;

/// Replies carry an ok/err discriminant so protocol errors propagate to
/// the consumer instead of deadlocking it. The err branch is
/// `[kind u8][message str]`.
pub fn enc_result(r: H5Result<Bytes>) -> Bytes {
    let mut w = Writer::new();
    match r {
        Ok(body) => {
            w.put_u8(1);
            w.put_raw(&body);
        }
        Err(e) => {
            w.put_u8(0);
            let (kind, msg) = match &e {
                H5Error::NotFound(n) => (EK_NOT_FOUND, n.clone()),
                H5Error::PeerUnavailable(m) => (EK_PEER_UNAVAILABLE, m.clone()),
                other => (EK_GENERIC, other.to_string()),
            };
            w.put_u8(kind);
            w.put_str(&msg);
        }
    }
    w.finish()
}

pub fn dec_result(b: &Bytes) -> H5Result<Bytes> {
    let mut r = Reader::new(b);
    match r.get_u8()? {
        1 => Ok(b.slice(1..)),
        0 => {
            let kind = r.get_u8()?;
            let msg = r.get_str()?;
            Err(match kind {
                EK_NOT_FOUND => H5Error::NotFound(msg),
                EK_PEER_UNAVAILABLE => H5Error::PeerUnavailable(msg),
                _ => H5Error::Vol(format!("remote error: {msg}")),
            })
        }
        t => Err(H5Error::Format(format!("bad reply discriminant {t}"))),
    }
}

pub fn enc_metadata_reply(meta: &FileMeta) -> Bytes {
    meta.to_bytes()
}

pub fn dec_metadata_reply(b: &[u8]) -> H5Result<FileMeta> {
    FileMeta::from_bytes(b)
}

pub fn enc_intersect_reply(ranks: &[u64]) -> Bytes {
    let mut w = Writer::new();
    w.put_u64s(ranks);
    w.finish()
}

pub fn dec_intersect_reply(b: &[u8]) -> H5Result<Vec<u64>> {
    Reader::new(b).get_u64s()
}

/// A data reply: `segs` are `(element offset in the consumer's packed
/// buffer, element length)`, and `blob` is the concatenated payload in
/// segment order.
pub struct DataReply {
    pub segs: Vec<(u64, u64)>,
    pub blob: Bytes,
}

pub fn enc_data_reply(segs: &[(u64, u64)], blob: &[u8]) -> Bytes {
    let mut w = Writer::new();
    w.put_u64(segs.len() as u64);
    for &(off, len) in segs {
        w.put_u64(off);
        w.put_u64(len);
    }
    w.put_bytes(blob);
    w.finish()
}

pub fn dec_data_reply(b: &[u8]) -> H5Result<DataReply> {
    let mut r = Reader::new(b);
    let n = r.get_u64()? as usize;
    let mut segs = Vec::with_capacity(n);
    for _ in 0..n {
        segs.push((r.get_u64()?, r.get_u64()?));
    }
    let blob = Bytes::copy_from_slice(r.get_bytes()?);
    Ok(DataReply { segs, blob })
}

// ---------------------------------------------------------------------
// Index exchange payloads (producer-local)
// ---------------------------------------------------------------------

/// One producer's contribution to another producer's index: per dataset,
/// the bounding boxes of the regions the sender holds that fall in the
/// receiver's block of the common decomposition.
pub fn enc_index_bundle(entries: &[(String, String, BBox)]) -> Bytes {
    let mut w = Writer::new();
    w.put_u64(entries.len() as u64);
    for (file, dset, bb) in entries {
        w.put_str(file);
        w.put_str(dset);
        w.put(bb);
    }
    w.finish()
}

pub fn dec_index_bundle(b: &[u8]) -> H5Result<Vec<(String, String, BBox)>> {
    let mut r = Reader::new(b);
    let n = r.get_u64()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((r.get_str()?, r.get_str()?, r.get()?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        assert_eq!(dec_metadata_req(&enc_metadata_req("a.h5")).unwrap(), "a.h5");
        let bb = BBox::new(vec![1, 2], vec![3, 4]);
        let (f, d, b2) = dec_intersect_req(&enc_intersect_req("f", "g/d", &bb)).unwrap();
        assert_eq!((f.as_str(), d.as_str()), ("f", "g/d"));
        assert_eq!(b2, bb);
        let sel = Selection::block(&[0, 0], &[2, 2]);
        let (_, _, s2) = dec_data_req(&enc_data_req("f", "d", &sel)).unwrap();
        assert_eq!(s2, sel);
    }

    #[test]
    fn result_wrapper() {
        let ok = enc_result(Ok(Bytes::from_static(b"payload")));
        assert_eq!(&dec_result(&ok).unwrap()[..], b"payload");
        let err = enc_result(Err(H5Error::NotFound("x".into())));
        let e = dec_result(&err).unwrap_err();
        assert!(matches!(&e, H5Error::NotFound(n) if n == "x"), "kind survives: {e}");
        assert!(e.to_string().contains("object not found: x"));
    }

    #[test]
    fn result_wrapper_preserves_peer_unavailable() {
        let err = enc_result(Err(H5Error::PeerUnavailable("producer rank 1 dead".into())));
        let e = dec_result(&err).unwrap_err();
        assert!(matches!(&e, H5Error::PeerUnavailable(m) if m.contains("rank 1")), "{e}");
        // Generic kinds still collapse into Vol with the remote marker.
        let err = enc_result(Err(H5Error::Format("bad".into())));
        let e = dec_result(&err).unwrap_err();
        assert!(matches!(&e, H5Error::Vol(m) if m.contains("remote error")), "{e}");
    }

    #[test]
    fn data_reply_roundtrip() {
        let segs = vec![(0u64, 3u64), (10, 2)];
        let blob = vec![1u8, 2, 3, 4, 5];
        let enc = enc_data_reply(&segs, &blob);
        let dec = dec_data_reply(&enc).unwrap();
        assert_eq!(dec.segs, segs);
        assert_eq!(&dec.blob[..], &blob[..]);
    }

    #[test]
    fn index_bundle_roundtrip() {
        let entries = vec![
            ("f.h5".to_string(), "g/grid".to_string(), BBox::new(vec![0], vec![5])),
            ("f.h5".to_string(), "g/p".to_string(), BBox::new(vec![5], vec![9])),
        ];
        assert_eq!(dec_index_bundle(&enc_index_bundle(&entries)).unwrap().len(), 2);
    }

    #[test]
    fn empty_data_reply() {
        let dec = dec_data_reply(&enc_data_reply(&[], &[])).unwrap();
        assert!(dec.segs.is_empty());
        assert!(dec.blob.is_empty());
    }
}
