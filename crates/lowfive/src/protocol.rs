//! Wire protocol of the index–serve–query redistribution.
//!
//! Five RPC methods run between consumer ranks (clients) and producer
//! ranks (servers) over the world communicator:
//!
//! * `M_METADATA` — fetch the serialized metadata tree of a file
//!   (consumer `file_open`),
//! * `M_INTERSECT` — the *redirect* query of Algorithm 3 step 1: which
//!   producer ranks hold data intersecting this bounding box,
//! * `M_DATA` — the data query of Algorithm 3 step 2: returns the
//!   intersection of the producer's local regions with the consumer's
//!   selection as contiguous segments, each tagged with its element offset
//!   in the **consumer's** packed buffer, so the consumer applies a reply
//!   with straight `memcpy`s,
//! * `M_DATA_BATCH` — the pipelined form of `M_DATA`: one frame per
//!   producer carrying **all** `(dataset, selection)` pairs the consumer
//!   wants from that producer for one file, answered with one
//!   [`DataReply`] per entry in a single reply,
//! * `M_DONE` — consumer `file_close` notification; producers exit their
//!   serve loop when every consumer has reported done.
//!
//! The index exchange among producers (Algorithm 1) uses a plain tagged
//! message (`TAG_INDEX`) on the producer task's local communicator.
//!
//! The byte-level layout of every frame is specified in the repository's
//! `docs/PROTOCOL.md`; the encoder/decoder pairs in this module are the
//! normative implementation, and each carries a round-trip doctest.

use bytes::Bytes;
use minih5::codec::{Decode, Encode, Reader, Writer};
use minih5::format::FileMeta;
use minih5::{BBox, H5Error, H5Result, Selection};

/// Fetch the serialized [`FileMeta`] tree of a file.
pub const M_METADATA: u32 = 1;
/// Redirect query: which producer ranks hold data intersecting a bbox.
pub const M_INTERSECT: u32 = 2;
/// Data query: one selection, one [`DataReply`].
pub const M_DATA: u32 = 3;
/// Consumer `file_close` notification (no reply expected).
pub const M_DONE: u32 = 4;
/// Producer-internal: ask the async serve loop to drain and exit.
pub const M_SHUTDOWN: u32 = 5;
/// Batched data query: all of a consumer's selections for one producer
/// in a single frame, answered in a single reply.
pub const M_DATA_BATCH: u32 = 6;

/// Tag for the producer-local index exchange (Algorithm 1).
pub const TAG_INDEX: u32 = 0x7F10_0001;

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Encode a metadata request (`M_METADATA`): just the file name.
///
/// ```
/// use lowfive::protocol::{enc_metadata_req, dec_metadata_req};
/// assert_eq!(dec_metadata_req(&enc_metadata_req("a.h5")).unwrap(), "a.h5");
/// ```
pub fn enc_metadata_req(file: &str) -> Bytes {
    let mut w = Writer::new();
    w.put_str(file);
    w.finish()
}

/// Decode a metadata request.
pub fn dec_metadata_req(b: &[u8]) -> H5Result<String> {
    Reader::new(b).get_str()
}

/// Encode a redirect query (`M_INTERSECT`): which producer ranks hold
/// data of `file:dset` intersecting bounding box `bb`.
///
/// ```
/// use lowfive::protocol::{enc_intersect_req, dec_intersect_req};
/// use minih5::BBox;
/// let bb = BBox::new(vec![1, 2], vec![3, 4]);
/// let frame = enc_intersect_req("f.h5", "g/d", &bb);
/// assert_eq!(dec_intersect_req(&frame).unwrap(), ("f.h5".into(), "g/d".into(), bb));
/// ```
pub fn enc_intersect_req(file: &str, dset: &str, bb: &BBox) -> Bytes {
    let mut w = Writer::new();
    w.put_str(file);
    w.put_str(dset);
    w.put(bb);
    w.finish()
}

/// Decode a redirect query into `(file, dataset path, bbox)`.
pub fn dec_intersect_req(b: &[u8]) -> H5Result<(String, String, BBox)> {
    let mut r = Reader::new(b);
    Ok((r.get_str()?, r.get_str()?, r.get()?))
}

/// Encode a single data query (`M_DATA`): one selection of one dataset.
///
/// ```
/// use lowfive::protocol::{enc_data_req, dec_data_req};
/// use minih5::Selection;
/// let sel = Selection::block(&[0, 0], &[2, 2]);
/// let (f, d, s) = dec_data_req(&enc_data_req("f.h5", "grid", &sel)).unwrap();
/// assert_eq!((f.as_str(), d.as_str()), ("f.h5", "grid"));
/// assert_eq!(s, sel);
/// ```
pub fn enc_data_req(file: &str, dset: &str, sel: &Selection) -> Bytes {
    let mut w = Writer::new();
    w.put_str(file);
    w.put_str(dset);
    w.put(sel);
    w.finish()
}

/// Decode a single data query into `(file, dataset path, selection)`.
pub fn dec_data_req(b: &[u8]) -> H5Result<(String, String, Selection)> {
    let mut r = Reader::new(b);
    Ok((r.get_str()?, r.get_str()?, r.get()?))
}

/// Encode a batched data query (`M_DATA_BATCH`): every `(dataset,
/// selection)` pair the consumer wants from one producer for `file`.
///
/// Each entry is answered independently — the reply carries one
/// [`DataReply`] per entry, in entry order, with segment offsets relative
/// to *that entry's* packed buffer (identical semantics to a lone
/// `M_DATA` round-trip, which is what makes batching transparent).
///
/// ```
/// use lowfive::protocol::{enc_data_req_batch, dec_data_req_batch};
/// use minih5::Selection;
/// let entries = vec![
///     ("grid".to_string(), Selection::block(&[0, 0], &[4, 4])),
///     ("particles".to_string(), Selection::all()),
/// ];
/// let frame = enc_data_req_batch("step0.h5", &entries);
/// let (file, back) = dec_data_req_batch(&frame).unwrap();
/// assert_eq!(file, "step0.h5");
/// assert_eq!(back, entries);
/// ```
pub fn enc_data_req_batch(file: &str, entries: &[(String, Selection)]) -> Bytes {
    let mut w = Writer::new();
    w.put_str(file);
    w.put_u64(entries.len() as u64);
    for (dset, sel) in entries {
        w.put_str(dset);
        w.put(sel);
    }
    w.finish()
}

/// Decode a batched data query. Rejects frames whose declared entry
/// count could not possibly fit in the remaining bytes, so a corrupt
/// length prefix fails cleanly instead of ballooning an allocation.
pub fn dec_data_req_batch(b: &[u8]) -> H5Result<(String, Vec<(String, Selection)>)> {
    let mut r = Reader::new(b);
    let file = r.get_str()?;
    let n = checked_count(r.get_u64()?, 9, &r)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push((r.get_str()?, r.get()?));
    }
    Ok((file, entries))
}

pub fn enc_done_req(file: &str) -> Bytes {
    enc_metadata_req(file)
}

pub fn dec_done_req(b: &[u8]) -> H5Result<String> {
    dec_metadata_req(b)
}

/// Guard a wire-declared element count against the bytes actually left
/// in the frame: `n` elements of at least `unit` bytes each must fit in
/// `r.remaining()`. Returns the count as `usize` or a [`H5Error::Format`].
fn checked_count(n: u64, unit: usize, r: &Reader) -> H5Result<usize> {
    if (n as u128) * (unit as u128) > r.remaining() as u128 {
        return Err(H5Error::Format(format!(
            "declared count {n} exceeds frame ({} bytes left)",
            r.remaining()
        )));
    }
    Ok(n as usize)
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

/// Error-kind codes carried in the err branch of [`enc_result`], so the
/// variants that change a consumer's control flow survive the wire (and
/// the metadata-broadcast rebroadcast) instead of collapsing into a
/// generic string.
const EK_GENERIC: u8 = 0;
const EK_NOT_FOUND: u8 = 1;
const EK_PEER_UNAVAILABLE: u8 = 2;

/// Replies carry an ok/err discriminant so protocol errors propagate to
/// the consumer instead of deadlocking it. The err branch is
/// `[kind u8][message str]`.
///
/// ```
/// use bytes::Bytes;
/// use lowfive::protocol::{enc_result, dec_result};
/// use minih5::H5Error;
/// let ok = enc_result(Ok(Bytes::from_static(b"payload")));
/// assert_eq!(&dec_result(&ok).unwrap()[..], b"payload");
/// let err = enc_result(Err(H5Error::PeerUnavailable("rank 1 dead".into())));
/// assert!(matches!(dec_result(&err).unwrap_err(), H5Error::PeerUnavailable(_)));
/// ```
pub fn enc_result(r: H5Result<Bytes>) -> Bytes {
    let mut w = Writer::new();
    match r {
        Ok(body) => {
            w.put_u8(1);
            w.put_raw(&body);
        }
        Err(e) => {
            w.put_u8(0);
            let (kind, msg) = match &e {
                H5Error::NotFound(n) => (EK_NOT_FOUND, n.clone()),
                H5Error::PeerUnavailable(m) => (EK_PEER_UNAVAILABLE, m.clone()),
                other => (EK_GENERIC, other.to_string()),
            };
            w.put_u8(kind);
            w.put_str(&msg);
        }
    }
    w.finish()
}

/// Unwrap a [`enc_result`]-framed reply body.
pub fn dec_result(b: &Bytes) -> H5Result<Bytes> {
    let mut r = Reader::new(b);
    match r.get_u8()? {
        1 => Ok(b.slice(1..)),
        0 => {
            let kind = r.get_u8()?;
            let msg = r.get_str()?;
            Err(match kind {
                EK_NOT_FOUND => H5Error::NotFound(msg),
                EK_PEER_UNAVAILABLE => H5Error::PeerUnavailable(msg),
                _ => H5Error::Vol(format!("remote error: {msg}")),
            })
        }
        t => Err(H5Error::Format(format!("bad reply discriminant {t}"))),
    }
}

/// Encode a metadata reply: the file's serialized [`FileMeta`] tree.
pub fn enc_metadata_reply(meta: &FileMeta) -> Bytes {
    meta.to_bytes()
}

/// Decode a metadata reply.
pub fn dec_metadata_reply(b: &[u8]) -> H5Result<FileMeta> {
    FileMeta::from_bytes(b)
}

/// Encode a redirect reply: the world ranks owning intersecting data.
///
/// ```
/// use lowfive::protocol::{enc_intersect_reply, dec_intersect_reply};
/// assert_eq!(dec_intersect_reply(&enc_intersect_reply(&[0, 2])).unwrap(), vec![0, 2]);
/// ```
pub fn enc_intersect_reply(ranks: &[u64]) -> Bytes {
    let mut w = Writer::new();
    w.put_u64s(ranks);
    w.finish()
}

/// Decode a redirect reply into owner world ranks.
pub fn dec_intersect_reply(b: &[u8]) -> H5Result<Vec<u64>> {
    Reader::new(b).get_u64s()
}

/// A data reply: `segs` are `(element offset in the consumer's packed
/// buffer, element length)`, and `blob` is the concatenated payload in
/// segment order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataReply {
    /// `(element offset, element length)` pairs addressing the
    /// consumer's packed destination buffer.
    pub segs: Vec<(u64, u64)>,
    /// Concatenated segment payloads, in `segs` order.
    pub blob: Bytes,
}

/// Encode a single data reply (`M_DATA`).
///
/// ```
/// use lowfive::protocol::{enc_data_reply, dec_data_reply};
/// let segs = vec![(0u64, 3u64), (10, 2)];
/// let blob = [1u8, 2, 3, 4, 5];
/// let reply = dec_data_reply(&enc_data_reply(&segs, &blob)).unwrap();
/// assert_eq!(reply.segs, segs);
/// assert_eq!(&reply.blob[..], &blob[..]);
/// ```
pub fn enc_data_reply(segs: &[(u64, u64)], blob: &[u8]) -> Bytes {
    let mut w = Writer::new();
    put_data_reply(&mut w, segs, blob);
    w.finish()
}

/// Decode a single data reply. A corrupt segment count that cannot fit
/// in the frame is rejected up front.
pub fn dec_data_reply(b: &[u8]) -> H5Result<DataReply> {
    let mut r = Reader::new(b);
    get_data_reply(&mut r)
}

fn put_data_reply(w: &mut Writer, segs: &[(u64, u64)], blob: &[u8]) {
    w.put_u64(segs.len() as u64);
    for &(off, len) in segs {
        w.put_u64(off);
        w.put_u64(len);
    }
    w.put_bytes(blob);
}

fn get_data_reply(r: &mut Reader) -> H5Result<DataReply> {
    let n = checked_count(r.get_u64()?, 16, r)?;
    let mut segs = Vec::with_capacity(n);
    for _ in 0..n {
        segs.push((r.get_u64()?, r.get_u64()?));
    }
    let blob = Bytes::copy_from_slice(r.get_bytes()?);
    Ok(DataReply { segs, blob })
}

/// Encode a batched data reply (`M_DATA_BATCH`): one `(segs, blob)`
/// body per request entry, concatenated in entry order.
///
/// ```
/// use bytes::Bytes;
/// use lowfive::protocol::{enc_data_reply_batch, dec_data_reply_batch};
/// let parts = vec![
///     (vec![(0u64, 2u64)], Bytes::from_static(&[7, 8])),
///     (vec![], Bytes::new()), // an entry may intersect nothing
/// ];
/// let replies = dec_data_reply_batch(&enc_data_reply_batch(&parts)).unwrap();
/// assert_eq!(replies.len(), 2);
/// assert_eq!(replies[0].segs, parts[0].0);
/// assert_eq!(replies[0].blob, parts[0].1);
/// assert!(replies[1].segs.is_empty());
/// ```
pub fn enc_data_reply_batch(parts: &[(Vec<(u64, u64)>, Bytes)]) -> Bytes {
    let mut w = Writer::new();
    w.put_u64(parts.len() as u64);
    for (segs, blob) in parts {
        put_data_reply(&mut w, segs, blob);
    }
    w.finish()
}

/// Decode a batched data reply into one [`DataReply`] per entry.
/// Both the entry count and each entry's segment count are validated
/// against the bytes actually present.
pub fn dec_data_reply_batch(b: &[u8]) -> H5Result<Vec<DataReply>> {
    let mut r = Reader::new(b);
    let n = checked_count(r.get_u64()?, 16, &r)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_data_reply(&mut r)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Index exchange payloads (producer-local)
// ---------------------------------------------------------------------

/// One producer's contribution to another producer's index: per dataset,
/// the bounding boxes of the regions the sender holds that fall in the
/// receiver's block of the common decomposition.
///
/// ```
/// use lowfive::protocol::{enc_index_bundle, dec_index_bundle};
/// use minih5::BBox;
/// let entries = vec![("f.h5".to_string(), "grid".to_string(), BBox::new(vec![0], vec![5]))];
/// assert_eq!(dec_index_bundle(&enc_index_bundle(&entries)).unwrap(), entries);
/// ```
pub fn enc_index_bundle(entries: &[(String, String, BBox)]) -> Bytes {
    let mut w = Writer::new();
    w.put_u64(entries.len() as u64);
    for (file, dset, bb) in entries {
        w.put_str(file);
        w.put_str(dset);
        w.put(bb);
    }
    w.finish()
}

/// Decode an index bundle.
pub fn dec_index_bundle(b: &[u8]) -> H5Result<Vec<(String, String, BBox)>> {
    let mut r = Reader::new(b);
    let n = checked_count(r.get_u64()?, 17, &r)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((r.get_str()?, r.get_str()?, r.get()?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        assert_eq!(dec_metadata_req(&enc_metadata_req("a.h5")).unwrap(), "a.h5");
        let bb = BBox::new(vec![1, 2], vec![3, 4]);
        let (f, d, b2) = dec_intersect_req(&enc_intersect_req("f", "g/d", &bb)).unwrap();
        assert_eq!((f.as_str(), d.as_str()), ("f", "g/d"));
        assert_eq!(b2, bb);
        let sel = Selection::block(&[0, 0], &[2, 2]);
        let (_, _, s2) = dec_data_req(&enc_data_req("f", "d", &sel)).unwrap();
        assert_eq!(s2, sel);
    }

    #[test]
    fn result_wrapper() {
        let ok = enc_result(Ok(Bytes::from_static(b"payload")));
        assert_eq!(&dec_result(&ok).unwrap()[..], b"payload");
        let err = enc_result(Err(H5Error::NotFound("x".into())));
        let e = dec_result(&err).unwrap_err();
        assert!(matches!(&e, H5Error::NotFound(n) if n == "x"), "kind survives: {e}");
        assert!(e.to_string().contains("object not found: x"));
    }

    #[test]
    fn result_wrapper_preserves_peer_unavailable() {
        let err = enc_result(Err(H5Error::PeerUnavailable("producer rank 1 dead".into())));
        let e = dec_result(&err).unwrap_err();
        assert!(matches!(&e, H5Error::PeerUnavailable(m) if m.contains("rank 1")), "{e}");
        // Generic kinds still collapse into Vol with the remote marker.
        let err = enc_result(Err(H5Error::Format("bad".into())));
        let e = dec_result(&err).unwrap_err();
        assert!(matches!(&e, H5Error::Vol(m) if m.contains("remote error")), "{e}");
    }

    #[test]
    fn data_reply_roundtrip() {
        let segs = vec![(0u64, 3u64), (10, 2)];
        let blob = vec![1u8, 2, 3, 4, 5];
        let enc = enc_data_reply(&segs, &blob);
        let dec = dec_data_reply(&enc).unwrap();
        assert_eq!(dec.segs, segs);
        assert_eq!(&dec.blob[..], &blob[..]);
    }

    #[test]
    fn index_bundle_roundtrip() {
        let entries = vec![
            ("f.h5".to_string(), "g/grid".to_string(), BBox::new(vec![0], vec![5])),
            ("f.h5".to_string(), "g/p".to_string(), BBox::new(vec![5], vec![9])),
        ];
        assert_eq!(dec_index_bundle(&enc_index_bundle(&entries)).unwrap().len(), 2);
    }

    #[test]
    fn empty_data_reply() {
        let dec = dec_data_reply(&enc_data_reply(&[], &[])).unwrap();
        assert!(dec.segs.is_empty());
        assert!(dec.blob.is_empty());
    }

    #[test]
    fn data_req_batch_roundtrip() {
        let entries = vec![
            ("g/grid".to_string(), Selection::block(&[0, 4], &[8, 4])),
            ("g/particles".to_string(), Selection::all()),
            ("g/grid".to_string(), Selection::points(2, &[&[1, 1], &[2, 3]])),
        ];
        let (file, back) = dec_data_req_batch(&enc_data_req_batch("s.h5", &entries)).unwrap();
        assert_eq!(file, "s.h5");
        assert_eq!(back, entries);

        let (file, back) = dec_data_req_batch(&enc_data_req_batch("empty.h5", &[])).unwrap();
        assert_eq!(file, "empty.h5");
        assert!(back.is_empty());
    }

    #[test]
    fn data_reply_batch_roundtrip() {
        let parts = vec![
            (vec![(0u64, 3u64), (10, 2)], Bytes::from_static(&[1, 2, 3, 4, 5])),
            (vec![], Bytes::new()),
            (vec![(7, 1)], Bytes::from_static(&[9])),
        ];
        let replies = dec_data_reply_batch(&enc_data_reply_batch(&parts)).unwrap();
        assert_eq!(replies.len(), 3);
        for (reply, (segs, blob)) in replies.iter().zip(&parts) {
            assert_eq!(&reply.segs, segs);
            assert_eq!(&reply.blob, blob);
        }
        assert!(dec_data_reply_batch(&enc_data_reply_batch(&[])).unwrap().is_empty());
    }

    #[test]
    fn malformed_batch_frames_are_rejected() {
        // Truncated mid-entry: a valid two-entry request cut short.
        let entries =
            vec![("a".to_string(), Selection::all()), ("b".to_string(), Selection::all())];
        let good = enc_data_req_batch("f", &entries);
        for cut in 1..good.len() {
            assert!(dec_data_req_batch(&good[..cut]).is_err(), "cut at {cut} must fail");
        }

        // Absurd declared entry count must be rejected before allocating.
        let mut w = Writer::new();
        w.put_str("f");
        w.put_u64(u64::MAX / 2);
        let huge = w.finish();
        let e = dec_data_req_batch(&huge).unwrap_err();
        assert!(matches!(e, H5Error::Format(_)), "{e}");

        // Same for the reply's outer count and an inner segment count.
        let mut w = Writer::new();
        w.put_u64(u64::MAX / 16);
        let e = dec_data_reply_batch(&w.finish()).unwrap_err();
        assert!(matches!(e, H5Error::Format(_)), "{e}");

        let mut w = Writer::new();
        w.put_u64(1); // one entry...
        w.put_u64(u64::MAX / 16); // ...claiming absurdly many segments
        let e = dec_data_reply_batch(&w.finish()).unwrap_err();
        assert!(matches!(e, H5Error::Format(_)), "{e}");

        // Truncated reply blob: entry declares 4 payload bytes, frame has 1.
        let mut w = Writer::new();
        w.put_u64(1);
        w.put_u64(1);
        w.put_u64(0);
        w.put_u64(4); // seg (off=0, len=4)
        w.put_u64(4); // blob length prefix
        w.put_raw(&[0xAB]); // but only one byte present
        assert!(dec_data_reply_batch(&w.finish()).is_err());
    }
}
