//! The metadata VOL layer: an in-memory replica of the HDF5 hierarchy.
//!
//! Paper §III-A(b): "we redefine most of the functions in the base layer
//! with their in-memory metadata counterparts … we manage our own tree of
//! HDF5 objects (files, groups, datasets, attributes, etc.) that replicates
//! the user's HDF5 data model."
//!
//! Every operation can simultaneously target the in-memory tree
//! (*memory mode*) and the wrapped storage connector (*passthrough*),
//! per the [`LowFiveProps`] rules, so a producer can stream data to a
//! consumer while also checkpointing to disk — the paper's "combining the
//! two modes".

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use minih5::format::{export_meta, FileMeta};
use minih5::tree::DataRegion;
use minih5::{
    Dataspace, Datatype, H5Error, H5Result, Hierarchy, NodeId, ObjId, ObjKind, Ownership,
    Selection, Vol,
};

use crate::base::BaseVol;
use crate::props::LowFiveProps;

#[derive(Clone)]
struct Entry {
    /// Node in the in-memory tree, when memory mode is on for the file.
    mem: Option<NodeId>,
    /// Handle in the wrapped storage connector, when passthrough is on.
    file: Option<ObjId>,
    /// Owning file name.
    filename: Arc<str>,
    /// Path relative to the file root (empty for the file itself).
    path: String,
    /// True if this handle comes from `file_create` (a write session);
    /// false for re-opens. The distributed layer serves only after a
    /// write session closes.
    created: bool,
}

#[derive(Default)]
struct MetaState {
    hier: Hierarchy,
    entries: HashMap<ObjId, Entry>,
    next: ObjId,
    /// Per-file write generation: bumped on every mutation of the
    /// in-memory tree (create/truncate, region write, extend, attribute
    /// write). Served to consumers in every reply so their caches can
    /// detect an in-place rewrite between reads.
    gens: HashMap<String, u64>,
}

impl MetaState {
    fn bump_gen(&mut self, file: &str) {
        *self.gens.entry(file.to_string()).or_insert(0) += 1;
    }
}

impl MetaState {
    fn mint(&mut self) -> ObjId {
        self.next += 1;
        self.next
    }

    fn entry(&self, id: ObjId) -> H5Result<&Entry> {
        self.entries.get(&id).ok_or(H5Error::InvalidHandle(id))
    }
}

/// The in-memory metadata connector (wraps a base/storage layer).
pub struct MetadataVol {
    base: BaseVol,
    props: LowFiveProps,
    state: Mutex<MetaState>,
}

impl MetadataVol {
    /// Build over an explicit storage connector.
    pub fn new(inner: Arc<dyn Vol>, props: LowFiveProps) -> Self {
        MetadataVol { base: BaseVol::new(inner), props, state: Mutex::default() }
    }

    /// Build over a serial native storage connector.
    pub fn over_native(props: LowFiveProps) -> Self {
        MetadataVol::new(Arc::new(minih5::native::NativeVol::serial()), props)
    }

    /// The active properties.
    pub fn props(&self) -> &LowFiveProps {
        &self.props
    }

    /// Run `f` with read access to the in-memory hierarchy.
    pub fn with_hier<R>(&self, f: impl FnOnce(&Hierarchy) -> R) -> R {
        f(&self.state.lock().hier)
    }

    /// Filename owning a handle.
    pub fn filename_of(&self, id: ObjId) -> H5Result<String> {
        Ok(self.state.lock().entry(id)?.filename.to_string())
    }

    /// Whether the handle belongs to a `file_create` (write) session.
    pub fn was_created(&self, id: ObjId) -> H5Result<bool> {
        Ok(self.state.lock().entry(id)?.created)
    }

    /// Current write generation of an in-memory file (0 if never
    /// mutated). Every reply the distributed layer sends for the file
    /// carries this tag, so consumer caches can detect in-place rewrites.
    pub fn generation(&self, name: &str) -> u64 {
        self.state.lock().gens.get(name).copied().unwrap_or(0)
    }

    /// Serialize the metadata tree of an in-memory file (for shipping to
    /// consumers).
    pub fn file_meta(&self, name: &str) -> H5Result<FileMeta> {
        let st = self.state.lock();
        let root = st.hier.file(name).ok_or_else(|| H5Error::NotFound(name.to_string()))?;
        Ok(export_meta(&st.hier, root, None))
    }

    /// Paths of all datasets in an in-memory file, in creation order.
    pub fn datasets_of_file(&self, name: &str) -> H5Result<Vec<String>> {
        Ok(self.file_meta(name)?.datasets.into_iter().map(|d| d.path).collect())
    }

    /// Type and space of a dataset by `(file, path)`.
    pub fn dataset_meta_by_path(&self, file: &str, path: &str) -> H5Result<(Datatype, Dataspace)> {
        let st = self.state.lock();
        let root = st.hier.file(file).ok_or_else(|| H5Error::NotFound(file.to_string()))?;
        let node = st.hier.resolve(root, path)?;
        st.hier.dataset_meta(node)
    }

    /// The regions recorded for a dataset (clones share the region bytes).
    pub fn dataset_regions(&self, file: &str, path: &str) -> H5Result<Vec<DataRegion>> {
        let st = self.state.lock();
        let root = st.hier.file(file).ok_or_else(|| H5Error::NotFound(file.to_string()))?;
        let node = st.hier.resolve(root, path)?;
        Ok(st.hier.regions(node)?.to_vec())
    }

    fn child_path(parent: &str, name: &str) -> String {
        if parent.is_empty() {
            name.to_string()
        } else {
            format!("{parent}/{name}")
        }
    }
}

impl Vol for MetadataVol {
    fn vol_name(&self) -> &'static str {
        "lowfive-metadata"
    }

    fn file_create(&self, name: &str) -> H5Result<ObjId> {
        let mem = self.props.memory_for(name);
        let pass = self.props.passthrough_for(name);
        // With both modes off there is nowhere to put the data.
        if !mem && !pass {
            return Err(H5Error::Vol(format!("both memory and passthrough disabled for {name}")));
        }
        let file_id = if pass { Some(self.base.file_create(name)?) } else { None };
        let mut st = self.state.lock();
        let mem_node = if mem {
            // Re-creating a file truncates: drop the old tree entry.
            if st.hier.file(name).is_some() {
                st.hier.remove_file(name)?;
            }
            let node = st.hier.create_file(name)?;
            st.bump_gen(name);
            Some(node)
        } else {
            None
        };
        let id = st.mint();
        st.entries.insert(
            id,
            Entry {
                mem: mem_node,
                file: file_id,
                filename: Arc::from(name),
                path: String::new(),
                created: true,
            },
        );
        Ok(id)
    }

    fn file_open(&self, name: &str) -> H5Result<ObjId> {
        let mut st = self.state.lock();
        // Prefer the in-memory tree (e.g. a producer re-opening its own
        // output); fall back to storage.
        if let Some(root) = st.hier.file(name) {
            let id = st.mint();
            st.entries.insert(
                id,
                Entry {
                    mem: Some(root),
                    file: None,
                    filename: Arc::from(name),
                    path: String::new(),
                    created: false,
                },
            );
            return Ok(id);
        }
        drop(st);
        let file_id = self.base.file_open(name)?;
        let mut st = self.state.lock();
        let id = st.mint();
        st.entries.insert(
            id,
            Entry {
                mem: None,
                file: Some(file_id),
                filename: Arc::from(name),
                path: String::new(),
                created: false,
            },
        );
        Ok(id)
    }

    fn file_close(&self, file: ObjId) -> H5Result<()> {
        let entry = {
            let mut st = self.state.lock();
            let e = st.entry(file)?.clone();
            st.entries.remove(&file);
            e
        };
        if let Some(fid) = entry.file {
            self.base.file_close(fid)?;
        }
        // The in-memory tree deliberately survives close: that is what the
        // distributed layer serves to consumers afterwards.
        Ok(())
    }

    fn group_create(&self, parent: ObjId, name: &str) -> H5Result<ObjId> {
        let (p_entry, file_child) = {
            let st = self.state.lock();
            let e = st.entry(parent)?.clone();
            (e, None::<ObjId>)
        };
        let _ = file_child;
        let file_id = match p_entry.file {
            Some(pf) => Some(self.base.group_create(pf, name)?),
            None => None,
        };
        let mut st = self.state.lock();
        let mem_node = match p_entry.mem {
            Some(pn) => Some(st.hier.create_group(pn, name)?),
            None => None,
        };
        let id = st.mint();
        st.entries.insert(
            id,
            Entry {
                mem: mem_node,
                file: file_id,
                filename: p_entry.filename.clone(),
                path: Self::child_path(&p_entry.path, name),
                created: p_entry.created,
            },
        );
        Ok(id)
    }

    fn open_path(&self, parent: ObjId, path: &str) -> H5Result<ObjId> {
        let p_entry = self.state.lock().entry(parent)?.clone();
        let file_id = match p_entry.file {
            Some(pf) => Some(self.base.open_path(pf, path)?),
            None => None,
        };
        let mut st = self.state.lock();
        let mem_node = match p_entry.mem {
            Some(pn) => Some(st.hier.resolve(pn, path)?),
            None => None,
        };
        let id = st.mint();
        let joined = path
            .split('/')
            .filter(|s| !s.is_empty())
            .fold(p_entry.path.clone(), |acc, part| Self::child_path(&acc, part));
        st.entries.insert(
            id,
            Entry {
                mem: mem_node,
                file: file_id,
                filename: p_entry.filename.clone(),
                path: joined,
                created: p_entry.created,
            },
        );
        Ok(id)
    }

    fn dataset_create(
        &self,
        parent: ObjId,
        name: &str,
        dtype: &Datatype,
        space: &Dataspace,
    ) -> H5Result<ObjId> {
        let p_entry = self.state.lock().entry(parent)?.clone();
        let file_id = match p_entry.file {
            Some(pf) => Some(self.base.dataset_create(pf, name, dtype, space)?),
            None => None,
        };
        let mut st = self.state.lock();
        let mem_node = match p_entry.mem {
            Some(pn) => Some(st.hier.create_dataset(pn, name, dtype.clone(), space.clone())?),
            None => None,
        };
        let id = st.mint();
        st.entries.insert(
            id,
            Entry {
                mem: mem_node,
                file: file_id,
                filename: p_entry.filename.clone(),
                path: Self::child_path(&p_entry.path, name),
                created: p_entry.created,
            },
        );
        Ok(id)
    }

    fn dataset_create_chunked(
        &self,
        parent: ObjId,
        name: &str,
        dtype: &Datatype,
        space: &Dataspace,
        chunk: &[u64],
    ) -> H5Result<ObjId> {
        let p_entry = self.state.lock().entry(parent)?.clone();
        let file_id = match p_entry.file {
            Some(pf) => Some(self.base.dataset_create_chunked(pf, name, dtype, space, chunk)?),
            None => None,
        };
        let mut st = self.state.lock();
        let mem_node = match p_entry.mem {
            Some(pn) => Some(st.hier.create_dataset_chunked(
                pn,
                name,
                dtype.clone(),
                space.clone(),
                chunk.to_vec(),
            )?),
            None => None,
        };
        let id = st.mint();
        st.entries.insert(
            id,
            Entry {
                mem: mem_node,
                file: file_id,
                filename: p_entry.filename.clone(),
                path: Self::child_path(&p_entry.path, name),
                created: p_entry.created,
            },
        );
        Ok(id)
    }

    fn dataset_extend(&self, dset: ObjId, new_dims: &[u64]) -> H5Result<()> {
        let e = self.state.lock().entry(dset)?.clone();
        if let Some(f) = e.file {
            self.base.dataset_extend(f, new_dims)?;
        }
        if let Some(node) = e.mem {
            let mut st = self.state.lock();
            st.hier.extend_dataset(node, new_dims)?;
            st.bump_gen(&e.filename);
        }
        Ok(())
    }

    fn dataset_chunk(&self, dset: ObjId) -> H5Result<Option<Vec<u64>>> {
        let e = self.state.lock().entry(dset)?.clone();
        if let Some(node) = e.mem {
            return self.state.lock().hier.dataset_chunk(node);
        }
        match e.file {
            Some(f) => self.base.dataset_chunk(f),
            None => Err(H5Error::InvalidHandle(dset)),
        }
    }

    fn dataset_meta(&self, dset: ObjId) -> H5Result<(Datatype, Dataspace)> {
        let e = self.state.lock().entry(dset)?.clone();
        if let Some(node) = e.mem {
            return self.state.lock().hier.dataset_meta(node);
        }
        match e.file {
            Some(f) => self.base.dataset_meta(f),
            None => Err(H5Error::InvalidHandle(dset)),
        }
    }

    fn dataset_write(
        &self,
        dset: ObjId,
        file_sel: &Selection,
        data: Bytes,
        ownership: Ownership,
    ) -> H5Result<()> {
        let e = self.state.lock().entry(dset)?.clone();
        if let Some(f) = e.file {
            self.base.dataset_write(f, file_sel, data.clone(), ownership)?;
        }
        if let Some(node) = e.mem {
            let own = self.props.ownership_for(&e.filename, &e.path, ownership);
            let mut st = self.state.lock();
            st.hier.write_region(node, file_sel.clone(), data, own)?;
            st.bump_gen(&e.filename);
        }
        Ok(())
    }

    fn dataset_read(&self, dset: ObjId, file_sel: &Selection) -> H5Result<Bytes> {
        let e = self.state.lock().entry(dset)?.clone();
        if let Some(node) = e.mem {
            return self.state.lock().hier.read_region(node, file_sel);
        }
        match e.file {
            Some(f) => self.base.dataset_read(f, file_sel),
            None => Err(H5Error::InvalidHandle(dset)),
        }
    }

    fn attr_write(&self, obj: ObjId, name: &str, dtype: &Datatype, data: Bytes) -> H5Result<()> {
        let e = self.state.lock().entry(obj)?.clone();
        if let Some(f) = e.file {
            self.base.attr_write(f, name, dtype, data.clone())?;
        }
        if let Some(node) = e.mem {
            let mut st = self.state.lock();
            st.hier.set_attr(node, name, dtype.clone(), data);
            st.bump_gen(&e.filename);
        }
        Ok(())
    }

    fn attr_read(&self, obj: ObjId, name: &str) -> H5Result<(Datatype, Bytes)> {
        let e = self.state.lock().entry(obj)?.clone();
        if let Some(node) = e.mem {
            return self.state.lock().hier.attr(node, name);
        }
        match e.file {
            Some(f) => self.base.attr_read(f, name),
            None => Err(H5Error::InvalidHandle(obj)),
        }
    }

    fn list(&self, obj: ObjId) -> H5Result<Vec<(String, ObjKind)>> {
        let e = self.state.lock().entry(obj)?.clone();
        if let Some(node) = e.mem {
            return Ok(self.state.lock().hier.children_of(node));
        }
        match e.file {
            Some(f) => self.base.list(f),
            None => Err(H5Error::InvalidHandle(obj)),
        }
    }

    fn obj_kind(&self, obj: ObjId) -> H5Result<ObjKind> {
        let e = self.state.lock().entry(obj)?.clone();
        if let Some(node) = e.mem {
            return Ok(self.state.lock().hier.node(node).obj_kind());
        }
        match e.file {
            Some(f) => self.base.obj_kind(f),
            None => Err(H5Error::InvalidHandle(obj)),
        }
    }

    fn object_close(&self, obj: ObjId) -> H5Result<()> {
        let e = {
            let mut st = self.state.lock();
            match st.entries.remove(&obj) {
                Some(e) => e,
                None => return Ok(()),
            }
        };
        if let Some(f) = e.file {
            self.base.object_close(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minih5::H5;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("lowfive-meta-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    fn memory_h5(props: LowFiveProps) -> (H5, Arc<MetadataVol>) {
        let vol = Arc::new(MetadataVol::over_native(props));
        (H5::with_vol(vol.clone() as Arc<dyn Vol>), vol)
    }

    #[test]
    fn memory_mode_never_touches_disk() {
        let (h5, _vol) = memory_h5(LowFiveProps::new());
        // The "filename" does not exist on disk and never will.
        let f = h5.create_file("purely/in/memory.h5").unwrap();
        let d = f.create_dataset("d", Datatype::UInt64, Dataspace::simple(&[4])).unwrap();
        d.write_all(&[1u64, 2, 3, 4]).unwrap();
        assert_eq!(d.read_all::<u64>().unwrap(), vec![1, 2, 3, 4]);
        f.close().unwrap();
        assert!(!std::path::Path::new("purely").exists());
    }

    #[test]
    fn tree_survives_close_for_serving() {
        let (h5, vol) = memory_h5(LowFiveProps::new());
        let f = h5.create_file("mem.h5").unwrap();
        let g = f.create_group("group1").unwrap();
        let d = g.create_dataset("grid", Datatype::UInt64, Dataspace::simple(&[8])).unwrap();
        d.write_all(&(0..8).collect::<Vec<u64>>()).unwrap();
        f.close().unwrap();
        let meta = vol.file_meta("mem.h5").unwrap();
        assert_eq!(meta.groups, vec!["group1".to_string()]);
        assert_eq!(meta.datasets.len(), 1);
        assert_eq!(meta.datasets[0].path, "group1/grid");
        let regions = vol.dataset_regions("mem.h5", "group1/grid").unwrap();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].data.len(), 64);
    }

    #[test]
    fn combined_mode_writes_both_targets() {
        let path = tmp("combined.nh5");
        let mut props = LowFiveProps::new();
        props.set_passthrough("*", true); // memory stays on by default
        let (h5, vol) = memory_h5(props);
        let f = h5.create_file(&path).unwrap();
        let d = f.create_dataset("d", Datatype::UInt32, Dataspace::simple(&[3])).unwrap();
        d.write_all(&[7u32, 8, 9]).unwrap();
        f.close().unwrap();
        // On disk, readable by plain native.
        let plain = H5::native();
        let f2 = plain.open_file(&path).unwrap();
        assert_eq!(f2.open_dataset("d").unwrap().read_all::<u32>().unwrap(), vec![7, 8, 9]);
        f2.close().unwrap();
        // And in memory.
        assert_eq!(vol.dataset_regions(&path, "d").unwrap().len(), 1);
    }

    #[test]
    fn file_only_mode_skips_memory() {
        let path = tmp("fileonly.nh5");
        let mut props = LowFiveProps::new();
        props.set_memory("*", false).set_passthrough("*", true);
        let (h5, vol) = memory_h5(props);
        let f = h5.create_file(&path).unwrap();
        let d = f.create_dataset("d", Datatype::UInt8, Dataspace::simple(&[2])).unwrap();
        d.write_all(&[1u8, 2]).unwrap();
        f.close().unwrap();
        assert!(vol.file_meta(&path).is_err());
        // Reading back goes through storage.
        let f = h5.open_file(&path).unwrap();
        assert_eq!(f.open_dataset("d").unwrap().read_all::<u8>().unwrap(), vec![1, 2]);
        f.close().unwrap();
    }

    #[test]
    fn both_modes_off_is_an_error() {
        let mut props = LowFiveProps::new();
        props.set_memory("*", false);
        let (h5, _vol) = memory_h5(props);
        assert!(h5.create_file("nowhere.h5").is_err());
    }

    #[test]
    fn zerocopy_rule_produces_shallow_regions() {
        let mut props = LowFiveProps::new();
        props.set_zerocopy("*", "grid", true);
        let (h5, vol) = memory_h5(props);
        let f = h5.create_file("z.h5").unwrap();
        let d = f.create_dataset("grid", Datatype::UInt8, Dataspace::simple(&[4])).unwrap();
        let buf = Bytes::from(vec![1u8, 2, 3, 4]);
        d.write_bytes(&Selection::all(), buf.clone(), Ownership::Deep).unwrap();
        let regions = vol.dataset_regions("z.h5", "grid").unwrap();
        assert_eq!(regions[0].ownership, Ownership::Shallow);
        assert_eq!(regions[0].data.as_ptr(), buf.as_ptr());
        f.close().unwrap();
    }

    #[test]
    fn recreating_a_file_truncates_the_tree() {
        let (h5, vol) = memory_h5(LowFiveProps::new());
        let f = h5.create_file("t.h5").unwrap();
        f.create_dataset("old", Datatype::UInt8, Dataspace::simple(&[1])).unwrap();
        f.close().unwrap();
        let f = h5.create_file("t.h5").unwrap();
        f.create_dataset("new", Datatype::UInt8, Dataspace::simple(&[1])).unwrap();
        f.close().unwrap();
        let names = vol.datasets_of_file("t.h5").unwrap();
        assert_eq!(names, vec!["new".to_string()]);
    }

    #[test]
    fn partial_writes_assemble_on_read() {
        let (h5, _vol) = memory_h5(LowFiveProps::new());
        let f = h5.create_file("p.h5").unwrap();
        let d = f.create_dataset("d", Datatype::UInt64, Dataspace::simple(&[2, 4])).unwrap();
        // Two ranks' worth of row writes (simulated serially).
        d.write_selection(&Selection::block(&[0, 0], &[1, 4]), &[0u64, 1, 2, 3]).unwrap();
        d.write_selection(&Selection::block(&[1, 0], &[1, 4]), &[4u64, 5, 6, 7]).unwrap();
        assert_eq!(d.read_all::<u64>().unwrap(), (0..8).collect::<Vec<u64>>());
        let col = d.read_selection::<u64>(&Selection::block(&[0, 2], &[2, 1])).unwrap();
        assert_eq!(col, vec![2, 6]);
        f.close().unwrap();
    }
}
