//! # lowfive — in situ data transport for HPC workflows
//!
//! A from-scratch Rust reproduction of **LowFive** (Peterka et al.,
//! IPDPS 2023): a data transport layer, structured as an HDF5 Virtual
//! Object Layer plugin, that lets the tasks of an in situ workflow
//! exchange datasets directly over message passing — or through ordinary
//! files, or both at once — with no change to code that already speaks the
//! HDF5 API.
//!
//! The three VOL layers mirror the paper's class hierarchy (§III-A):
//!
//! | paper class | here | role |
//! |---|---|---|
//! | base VOL | [`BaseVol`] | catch everything, pass through to storage |
//! | metadata VOL | [`MetadataVol`] | in-memory replica of the HDF5 hierarchy, deep/shallow data regions |
//! | distributed metadata VOL | [`DistMetadataVol`] | producer/consumer transport with index–serve–query redistribution |
//!
//! Data redistribution from *n* producer ranks to *m* consumer ranks
//! follows Algorithms 1–3 of the paper exactly: producers agree on a
//! *common decomposition* of each dataset (block counts from
//! [`diyblk::factor_count`]), **index** their written regions by the
//! blocks they intersect, then **serve**; consumers **query** in two
//! steps (redirect, then fetch), and data travel as maximal contiguous
//! runs — never element by element.
//!
//! ## Quick start (single producer / single consumer)
//!
//! ```
//! use std::sync::Arc;
//! use lowfive::DistVolBuilder;
//! use minih5::{Datatype, Dataspace, Selection, Vol, H5};
//! use simmpi::{TaskSpec, TaskWorld};
//!
//! // 3 producer ranks, 1 consumer rank.
//! let specs = [TaskSpec::new("producer", 3), TaskSpec::new("consumer", 1)];
//! TaskWorld::run(&specs, |tc| {
//!     let producers: Vec<usize> = (0..3).collect();
//!     let consumers = vec![3];
//!     let vol: Arc<dyn Vol> = if tc.task_id == 0 {
//!         DistVolBuilder::new(tc.world.clone(), tc.local.clone())
//!             .produce("*.h5", consumers.clone())
//!             .build()
//!     } else {
//!         DistVolBuilder::new(tc.world.clone(), tc.local.clone())
//!             .consume("*.h5", producers.clone())
//!             .build()
//!     };
//!     let h5 = H5::with_vol(vol);
//!     if tc.task_id == 0 {
//!         // Each producer rank writes 4 elements of a 12-element vector.
//!         let f = h5.create_file("demo.h5").unwrap();
//!         let d = f
//!             .create_dataset("x", Datatype::UInt64, Dataspace::simple(&[12]))
//!             .unwrap();
//!         let base = tc.local.rank() as u64 * 4;
//!         let vals: Vec<u64> = (base..base + 4).collect();
//!         d.write_selection(&Selection::block(&[base], &[4]), &vals).unwrap();
//!         f.close().unwrap(); // indexes, then serves the consumer
//!     } else {
//!         let f = h5.open_file("demo.h5").unwrap();
//!         let d = f.open_dataset("x").unwrap();
//!         assert_eq!(d.read_all::<u64>().unwrap(), (0..12).collect::<Vec<u64>>());
//!         f.close().unwrap(); // releases the producers
//!     }
//! });
//! ```

// The zero-copy transport path hands refcounted buffers around by
// value; a stray `.clone()` there silently reintroduces the copy this
// crate exists to avoid, so redundant clones are a hard error.
#![deny(clippy::redundant_clone)]
// This crate is the workspace's public API surface; every exported item
// carries rustdoc (promoted to an error by the CI docs job).
#![warn(missing_docs)]

pub mod base;
pub mod dist;
pub mod metadata;
pub mod props;
pub mod protocol;
pub mod stream;

pub use base::BaseVol;
pub use dist::{DistMetadataVol, DistVolBuilder, Link, LinkDir, TransportProfile};
pub use metadata::MetadataVol;
pub use props::{glob_match, BackPressure, LowFiveProps, ServeWorkers};
pub use protocol::WireCodec;
pub use stream::{Step, StepPolicy, StepPublisher, StepSubscription};
