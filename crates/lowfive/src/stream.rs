//! Step-based streaming on top of the VOL: ADIOS-SST-style
//! publish/subscribe of timestep sequences.
//!
//! The base transport exchanges whole files — a producer closes a file,
//! consumers read it, everyone moves on. Iterative workflows want the
//! *series* shape instead: the producer emits snapshot after snapshot of
//! the same logical output, and consumers follow along at their own pace.
//! This module adds that shape without changing the data path at all:
//!
//! * A **series** is a logical name (say `"sim.h5"`). Each published step
//!   is an ordinary HDF5 file written through the VOL into a rotating
//!   *slot* (`sim.h5@s0`, `sim.h5@s1`, …, wrapping after
//!   `queue depth + 2` slots), so indexing, serving, zero-copy reads,
//!   and generation tags all apply to steps unmodified.
//! * A [`StepPublisher`] appends step announces to a bounded in-memory
//!   queue on every producer rank; [`StepPublisher::publish`] applies the
//!   series' back-pressure mode ([`BackPressure::Block`] waits for the
//!   slowest consumer, [`BackPressure::DropOldest`] evicts the oldest
//!   unconsumed step and keeps going).
//! * A [`StepSubscription`] polls its home producer with a
//!   [`StepPolicy`] — every step in order, always the latest, or in-order
//!   with a bounded skip — and acknowledges consumption cumulatively to
//!   *all* producer ranks (piggybacked on the poll for the home rank). A
//!   late joiner starts from the oldest step the window still retains
//!   (`M_STEP_SUB` returns the window bounds).
//!
//! The control plane is three RPC methods served by the overlap-mode
//! serve thread (`M_STEP_SUB`, `M_STEP_NEXT`, `M_STEP_ACK` — byte
//! formats in [`crate::protocol`] and `docs/PROTOCOL.md`; lifecycle
//! diagrams in `docs/STREAMING.md`). Streaming therefore **requires**
//! overlap mode ([`crate::DistVolBuilder::async_serve`]): a producer
//! blocked in a synchronous serve loop could never publish the next step.
//!
//! ## Ordering contract
//!
//! On a multi-rank producer task, every rank must create the publisher,
//! write/close the slot files, and call [`StepPublisher::publish`] /
//! [`StepPublisher::finish`] in lockstep (the same sequence on every
//! rank), exactly like any other collective. Slot-file closes already
//! synchronize the ranks (the index exchange is an all-to-all), so by the
//! time any rank announces step *n*, every producer rank serves it.
//!
//! ## Back-pressure and slot reuse
//!
//! With `queue depth = c`, slots rotate through `c + 2` filenames, and a
//! step's slot is recreated (truncated, bumping the file generation) only
//! once the step `c + 2` sequence numbers ahead is being written. Under
//! [`BackPressure::Block`] a step leaves the window only after every
//! consumer acknowledged it, so the slot a producer truncates is always
//! fully consumed — the mode is lossless. Under
//! [`BackPressure::DropOldest`] an evicted step's slot can be truncated
//! while a straggling consumer still holds its announce; the read stays
//! memory-safe (it observes the recycled file), and the consumer can
//! *detect* the tear by comparing the generation its home producer
//! reported during the read against the announced one — see
//! [`StepSubscription::is_torn`].
//!
//! ## Example
//!
//! One producer rank streams three steps to one consumer:
//!
//! ```
//! use std::sync::Arc;
//! use lowfive::{DistVolBuilder, StepPolicy, StepPublisher, StepSubscription};
//! use minih5::{Dataspace, Datatype, Selection, Vol, H5};
//! use simmpi::{TaskSpec, TaskWorld};
//!
//! let specs = [TaskSpec::new("producer", 1), TaskSpec::new("consumer", 1)];
//! TaskWorld::run(&specs, |tc| {
//!     if tc.task_id == 0 {
//!         let vol = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
//!             .produce("sim.h5@s*", vec![1])
//!             .async_serve(true) // streaming requires overlap mode
//!             .build();
//!         let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
//!         let publisher = StepPublisher::new(vol.clone(), "sim.h5").unwrap();
//!         for t in 0..3u64 {
//!             let f = h5.create_file(&publisher.step_file()).unwrap();
//!             let d = f
//!                 .create_dataset("x", Datatype::UInt64, Dataspace::simple(&[4]))
//!                 .unwrap();
//!             d.write_selection(&Selection::block(&[0], &[4]), &[t, t, t, t]).unwrap();
//!             f.close().unwrap();
//!             publisher.publish().unwrap();
//!         }
//!         assert!(publisher.finish(None), "all steps consumed");
//!         vol.drain();
//!     } else {
//!         let vol = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
//!             .consume("sim.h5@s*", vec![0])
//!             .build();
//!         let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
//!         let mut sub = StepSubscription::new(vol, "sim.h5", StepPolicy::EveryStep).unwrap();
//!         let mut seen = Vec::new();
//!         while let Some(step) = sub.next_step().unwrap() {
//!             let f = h5.open_file(&step.file).unwrap();
//!             let d = f.open_dataset("x").unwrap();
//!             seen.push(d.read_all::<u64>().unwrap()[0]);
//!             f.close().unwrap();
//!         }
//!         assert_eq!(seen, vec![0, 1, 2]);
//!     }
//! });
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use minih5::{H5Error, H5Result};

use crate::dist::DistMetadataVol;
use crate::props::BackPressure;
use crate::protocol::*;

/// How a [`StepSubscription`] walks a series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepPolicy {
    /// Deliver every retained step in sequence order. Combined with
    /// [`BackPressure::Block`] this is lossless: the consumer sees the
    /// exact sequence the producer published.
    EveryStep,
    /// Always deliver the newest retained step at or past the cursor,
    /// skipping anything older (a dashboard following a simulation).
    LatestStep,
    /// Deliver in order, but allow jumping up to `n` steps ahead of the
    /// cursor when the consumer has fallen behind: the newest retained
    /// step within `cursor + n` is chosen, or the oldest available one
    /// if even that range has been outrun.
    SkipOk(u64),
}

impl StepPolicy {
    /// The `(code, skip)` pair carried in `M_STEP_NEXT` requests.
    fn wire(self) -> (u8, u64) {
        match self {
            StepPolicy::EveryStep => (STEP_POLICY_EVERY, 0),
            StepPolicy::LatestStep => (STEP_POLICY_LATEST, 0),
            StepPolicy::SkipOk(n) => (STEP_POLICY_SKIP_OK, n),
        }
    }
}

/// One delivered step, as returned by [`StepSubscription::next_step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Sequence number within the series (0-based, strictly increasing;
    /// gaps mean the policy or back-pressure skipped steps).
    pub seq: u64,
    /// Slot filename holding the step's datasets; open it through the
    /// same consume link as any other file.
    pub file: String,
    /// The slot file's generation at publish time (see
    /// [`StepSubscription::is_torn`]).
    pub gen: u64,
}

/// The slot filename of sequence number `seq` in a ring of `ring` slots.
fn slot_name(series: &str, slot: u64) -> String {
    format!("{series}@s{slot}")
}

/// One retained (published, not yet retired) step.
pub(crate) struct StepRecord {
    seq: u64,
    gen: u64,
    pub_ns: u64,
    file: String,
}

/// Per-series producer-side state: the bounded announce window and the
/// per-consumer cumulative cursors.
pub(crate) struct SeriesState {
    capacity: usize,
    mode: BackPressure,
    next_seq: u64,
    /// Retained steps, ascending by `seq`.
    window: VecDeque<StepRecord>,
    /// consumer world rank → cumulative cursor (every step below it is
    /// consumed by that rank). Initialized to 0 for every expected
    /// consumer, max-merged by idempotent `M_STEP_ACK`s.
    cursors: HashMap<usize, u64>,
    ended: bool,
}

impl SeriesState {
    fn min_cursor(&self) -> u64 {
        self.cursors.values().copied().min().unwrap_or(u64::MAX)
    }

    fn window_start(&self) -> u64 {
        self.window.front().map(|r| r.seq).unwrap_or(self.next_seq)
    }

    /// Drop fully-consumed steps off the front of the window.
    fn retire(&mut self) {
        let min = self.min_cursor();
        while self.window.front().is_some_and(|r| r.seq < min) {
            self.window.pop_front();
        }
    }
}

/// All streaming state held by one [`DistMetadataVol`].
#[derive(Default)]
pub(crate) struct StreamState {
    pub(crate) series: HashMap<String, SeriesState>,
    /// Slot files published at least once and not since recreated: the
    /// async serve loop answers `M_METADATA` for these without a session
    /// (step files never enter the DONE-counted session map).
    pub(crate) serveable: HashSet<String>,
}

impl StreamState {
    /// Is `name` a slot file of a registered series? (`<series>@s<digits>`
    /// with `<series>` registered.)
    pub(crate) fn is_step_file(&self, name: &str) -> bool {
        match name.rsplit_once("@s") {
            Some((series, digits)) => {
                !digits.is_empty()
                    && digits.bytes().all(|b| b.is_ascii_digit())
                    && self.series.contains_key(series)
            }
            None => false,
        }
    }
}

/// Producer half of a step series.
///
/// Create one per series (collectively, on every producer rank) after
/// building an overlap-mode VOL; then, per step: write the slot file named
/// by [`Self::step_file`] through the ordinary HDF5 API, close it, and
/// call [`Self::publish`]. Call [`Self::finish`] before
/// [`DistMetadataVol::drain`].
pub struct StepPublisher {
    vol: Arc<DistMetadataVol>,
    series: String,
    ring: u64,
}

impl StepPublisher {
    /// Register `series` on this producer rank and make sure the serve
    /// thread is answering subscribe requests.
    ///
    /// The queue depth and back-pressure mode come from the VOL's
    /// properties, matched against the *series* name
    /// ([`crate::LowFiveProps::set_stream_queue_depth`] /
    /// [`crate::LowFiveProps::set_stream_backpressure`]). Expected
    /// consumers are the ranks of the produce links matching the series'
    /// slot files.
    ///
    /// Errors if the VOL is not in overlap mode, if no produce link
    /// matches the slot files, or if the series already has a publisher.
    pub fn new(vol: Arc<DistMetadataVol>, series: &str) -> H5Result<Self> {
        if !vol.is_async_serve() {
            return Err(H5Error::Vol(
                "step streaming requires overlap mode (DistVolBuilder::async_serve)".into(),
            ));
        }
        let capacity = vol.props().stream_queue_depth_for(series);
        let mode = vol.props().stream_backpressure_for(series);
        let consumers = vol.consumers_for(&slot_name(series, 0));
        if consumers.is_empty() {
            return Err(H5Error::Vol(format!(
                "no produce link matches the step files of series {series:?} \
                 (declare e.g. .produce(\"{series}@s*\", …))"
            )));
        }
        {
            let mut st = vol.stream_state().lock();
            if st.series.contains_key(series) {
                return Err(H5Error::Vol(format!("series {series:?} already has a publisher")));
            }
            st.series.insert(
                series.to_string(),
                SeriesState {
                    capacity,
                    mode,
                    next_seq: 0,
                    window: VecDeque::new(),
                    cursors: consumers.iter().map(|&r| (r, 0)).collect(),
                    ended: false,
                },
            );
        }
        // Subscribes may arrive before the first slot file closes; the
        // serve thread must be up to answer them.
        vol.ensure_serve_thread();
        Ok(StepPublisher { vol, series: series.to_string(), ring: capacity as u64 + 2 })
    }

    /// The slot filename the *next* step must be written to.
    ///
    /// Slots rotate through `queue depth + 2` names, so under
    /// [`BackPressure::Block`] a name is only ever recreated after the
    /// step previously in it was retired (acknowledged by every
    /// consumer) — see the module docs for the safety argument.
    pub fn step_file(&self) -> String {
        let st = self.vol.stream_state().lock();
        let seq = st.series[&self.series].next_seq;
        slot_name(&self.series, seq % self.ring)
    }

    /// Publish the step currently sitting in [`Self::step_file`] (which
    /// must have been written and closed): append it to the announce
    /// window and return its sequence number.
    ///
    /// When the window is full, [`BackPressure::Block`] waits here until
    /// the slowest consumer retires a step; [`BackPressure::DropOldest`]
    /// evicts the oldest retained step (counted under `steps_dropped`)
    /// and returns immediately. `steps_published` / `steps_dropped` are
    /// bumped on producer-local rank 0 only, so summed metrics stay exact
    /// for multi-rank producer tasks.
    pub fn publish(&self) -> H5Result<u64> {
        let file = self.step_file();
        // The slot must hold a closed snapshot; its generation is what
        // consumers use to detect recycled slots.
        self.vol.metadata().file_meta(&file)?;
        let gen = self.vol.metadata().generation(&file);
        let pub_ns = obsv::clock::now_ns();
        let count_here = self.vol.local_comm().rank() == 0;
        loop {
            let mut st = self.vol.stream_state().lock();
            let s = st.series.get_mut(&self.series).expect("registered in new()");
            s.retire();
            if s.window.len() >= s.capacity {
                match s.mode {
                    BackPressure::Block => {
                        drop(st);
                        std::thread::sleep(Duration::from_micros(200));
                        continue;
                    }
                    BackPressure::DropOldest => {
                        s.window.pop_front();
                        if count_here {
                            obsv::counter_add(obsv::Ctr::StepsDropped, 1);
                        }
                    }
                }
            }
            let seq = s.next_seq;
            s.next_seq += 1;
            s.window.push_back(StepRecord { seq, gen, pub_ns, file: file.clone() });
            st.serveable.insert(file);
            if count_here {
                obsv::counter_add(obsv::Ctr::StepsPublished, 1);
            }
            return Ok(seq);
        }
    }

    /// Mark the series ended and wait (up to `grace`; `None` waits
    /// forever) until every expected consumer has acknowledged every
    /// published step. Returns whether the drain was clean — `false`
    /// means a consumer never caught up (it died, or never subscribed).
    ///
    /// Subscribers polling past the end receive `Ended` and stop, so
    /// marking the end *first* cannot deadlock against a consumer still
    /// waiting for more steps.
    pub fn finish(&self, grace: Option<Duration>) -> bool {
        let deadline = grace.map(|g| std::time::Instant::now() + g);
        let head = {
            let mut st = self.vol.stream_state().lock();
            let s = st.series.get_mut(&self.series).expect("registered in new()");
            s.ended = true;
            s.next_seq
        };
        loop {
            {
                let st = self.vol.stream_state().lock();
                if st.series[&self.series].min_cursor() >= head {
                    return true;
                }
            }
            if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Consumer half of a step series.
///
/// Construction subscribes to the consumer's *home* producer (the same
/// load-spreading choice file opens make) and starts at the oldest step
/// the window retains — a late joiner catches up from there. Iterate with
/// [`Self::next_step`]; acknowledgements are sent automatically.
pub struct StepSubscription {
    vol: Arc<DistMetadataVol>,
    series: String,
    policy: StepPolicy,
    producers: Vec<usize>,
    home: usize,
    cursor: u64,
    /// The step most recently delivered and not yet acknowledged.
    last: Option<u64>,
    done: bool,
}

impl StepSubscription {
    /// Subscribe to `series` under `policy`, blocking (in 1 ms polls)
    /// until the producer registers the series. The RPC policy configured
    /// for the series still bounds each poll, so a dead producer surfaces
    /// as [`H5Error::PeerUnavailable`] instead of hanging forever.
    pub fn new(vol: Arc<DistMetadataVol>, series: &str, policy: StepPolicy) -> H5Result<Self> {
        let producers = vol
            .consume_link_for(&slot_name(series, 0))
            .ok_or_else(|| {
                H5Error::Vol(format!(
                    "no consume link matches the step files of series {series:?} \
                     (declare e.g. .consume(\"{series}@s*\", …))"
                ))
            })?
            .remote_ranks
            .clone();
        let home = producers[vol.local_comm().rank() % producers.len()];
        // The subscribe doubles as the codec handshake for this series:
        // announce replies from `home` arrive codec-prefixed under the
        // returned mask. Only `home` ever sends us announces, so no
        // offers fan out to the other producer ranks here.
        let caps = vol.props().wire_codec_for(series).caps();
        let window_start = loop {
            let reply =
                vol.call_producer(series, home, M_STEP_SUB, &enc_step_sub_req(series, caps))?;
            match dec_result(&reply) {
                Ok(body) => {
                    let (window_start, _, _, mask) = dec_step_sub_reply(&body)?;
                    if mask & !caps != 0 {
                        return Err(H5Error::Format(format!(
                            "producer negotiated codec mask {mask:#x} \
                             outside our advertised caps {caps:#x}"
                        )));
                    }
                    break window_start;
                }
                // Not registered yet: the producer task is still starting.
                Err(H5Error::NotFound(_)) => std::thread::sleep(Duration::from_millis(1)),
                Err(e) => return Err(e),
            }
        };
        Ok(StepSubscription {
            vol,
            series: series.to_string(),
            policy,
            producers,
            home,
            cursor: window_start,
            last: None,
            done: false,
        })
    }

    /// The producer world rank this subscription polls.
    pub fn home(&self) -> usize {
        self.home
    }

    /// Deliver the next step under the subscription's policy, or `None`
    /// once the series has ended and nothing remains to deliver.
    ///
    /// Calling `next_step` again acknowledges the previously delivered
    /// step (cumulatively and idempotently, so a retried ack is
    /// harmless): the home producer learns the new cursor from the
    /// `M_STEP_NEXT` poll itself, the other producer ranks from an
    /// explicit `M_STEP_ACK`. The poll repeats in 1 ms intervals until a
    /// step, or the end of the series, is announced.
    ///
    /// The ack-before-poll ordering matters for shutdown: a producer may
    /// exit the moment its last owed ack arrives, so the consumer must
    /// never send it anything *after* the message that completes its
    /// drain. Piggybacking the home ack on the poll — and, at the end of
    /// the series, acking only when the cursor is still behind the head —
    /// keeps every producer alive until it has replied to the consumer's
    /// final message to it.
    pub fn next_step(&mut self) -> H5Result<Option<Step>> {
        if self.done {
            return Ok(None);
        }
        if let Some(s) = self.last.take() {
            self.cursor = self.cursor.max(s + 1);
            self.ack_others(self.cursor)?;
        }
        let (code, skip) = self.policy.wire();
        loop {
            let reply = self.vol.call_producer(
                &self.series,
                self.home,
                M_STEP_NEXT,
                &enc_step_next_req(&self.series, self.cursor, code, skip),
            )?;
            let body = self.vol.decode_reply_body(&self.series, &dec_result(&reply)?)?;
            match dec_step_next_reply(&body)? {
                StepNextReply::Pending => std::thread::sleep(Duration::from_millis(1)),
                StepNextReply::Step { seq, file, gen, pub_ns } => {
                    obsv::counter_add(obsv::Ctr::StepsLagged, seq.saturating_sub(self.cursor));
                    obsv::hist_record(
                        obsv::Hist::StepLatencyNs,
                        obsv::clock::now_ns().saturating_sub(pub_ns),
                    );
                    // Prime the fetch cache's generation record so reads
                    // of a recycled slot invalidate stale cached lookups.
                    self.vol.note_gen(&file, self.home, gen);
                    self.last = Some(seq);
                    self.cursor = seq;
                    return Ok(Some(Step { seq, file, gen }));
                }
                StepNextReply::Ended { head } => {
                    // Every producer already holds `self.cursor` (home
                    // from the poll above, the rest from `ack_others`).
                    // If that cursor is the head, nothing is owed — and a
                    // producer whose drain condition was just met may
                    // already be gone, so a redundant ack could block on
                    // a dead serve loop.
                    if self.cursor < head {
                        self.ack_all(head)?;
                        self.cursor = head;
                    }
                    self.done = true;
                    return Ok(None);
                }
            }
        }
    }

    /// Did the slot behind `step` get recycled while we were reading it?
    ///
    /// Only possible under [`BackPressure::DropOldest`] (see the module
    /// docs). Call after reading the step's data: compares the generation
    /// the home producer reported during those reads against the
    /// announced one. A torn step's data belongs (partly) to a newer
    /// step — discard it and move on.
    pub fn is_torn(&self, step: &Step) -> bool {
        self.vol.noted_gen(&step.file, self.home).is_some_and(|g| g != step.gen)
    }

    fn ack(&self, producer: usize, cursor: u64) -> H5Result<()> {
        let reply = self.vol.call_producer(
            &self.series,
            producer,
            M_STEP_ACK,
            &enc_step_ack_req(&self.series, cursor),
        )?;
        dec_result(&reply)?;
        Ok(())
    }

    fn ack_all(&self, cursor: u64) -> H5Result<()> {
        for &p in &self.producers {
            self.ack(p, cursor)?;
        }
        Ok(())
    }

    /// Ack every producer rank except home (which learns the cursor from
    /// the `M_STEP_NEXT` polls themselves).
    fn ack_others(&self, cursor: u64) -> H5Result<()> {
        for &p in &self.producers {
            if p != self.home {
                self.ack(p, cursor)?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Serve-side handlers (run on the overlap-mode serve thread)
// ---------------------------------------------------------------------

/// Answer `M_STEP_SUB`: the series' retained window bounds, or
/// `NotFound` while the series is not registered yet (the consumer
/// retries).
pub(crate) fn serve_step_sub(vol: &DistMetadataVol, rank: usize, args: &Bytes) -> Bytes {
    let reply = dec_step_sub_req(args).and_then(|(series, caps)| {
        // Record the negotiation even while the series is still
        // unregistered: the consumer's retries re-send the same caps, but
        // an early record costs nothing and keeps the paths uniform.
        vol.record_consumer_caps(&series, rank, caps);
        let st = vol.stream_state().lock();
        match st.series.get(&series) {
            Some(s) => Ok(enc_step_sub_reply(
                s.window_start(),
                s.next_seq,
                s.ended,
                vol.negotiated_mask(&series, rank),
            )),
            None => Err(H5Error::NotFound(series)),
        }
    });
    enc_result(reply)
}

/// Answer `M_STEP_NEXT` from consumer world rank `rank`: select a
/// retained step under the requested policy, report the end of the
/// series, or ask the consumer to poll again. The request's cursor
/// doubles as a piggybacked ack (max-merged like `M_STEP_ACK`), so a
/// consumer never owes its home producer a separate ack message.
pub(crate) fn serve_step_next(vol: &DistMetadataVol, rank: usize, args: &Bytes) -> Bytes {
    let reply = dec_step_next_req(args).and_then(|(series, cursor, policy, skip)| {
        if policy > STEP_POLICY_SKIP_OK {
            return Err(H5Error::Format(format!("unknown step policy code {policy}")));
        }
        let mut st = vol.stream_state().lock();
        let s = st.series.get_mut(&series).ok_or_else(|| H5Error::NotFound(series.clone()))?;
        let c = s.cursors.entry(rank).or_insert(0);
        *c = (*c).max(cursor);
        let chosen = match select_step(&s.window, cursor, policy, skip) {
            Some(r) => StepNextReply::Step {
                seq: r.seq,
                file: r.file.clone(),
                gen: r.gen,
                pub_ns: r.pub_ns,
            },
            None if s.ended => StepNextReply::Ended { head: s.next_seq },
            None => StepNextReply::Pending,
        };
        Ok((series.clone(), enc_step_next_reply(&chosen)))
    });
    // Announce bodies ride the negotiated codec like data replies do —
    // they are small, so `Auto` virtually always ships them raw, but a
    // forced policy compresses them too and the framing stays uniform.
    enc_result(reply.map(|(series, body)| vol.encode_reply_bytes(&series, rank, body)))
}

/// Apply `M_STEP_ACK` from consumer world rank `rank`: max-merge its
/// cumulative cursor. Unknown series are acked anyway — a late duplicate
/// after a restart carries no information worth erroring on.
pub(crate) fn serve_step_ack(vol: &DistMetadataVol, rank: usize, args: &Bytes) -> Bytes {
    let reply = dec_step_ack_req(args).map(|(series, cursor)| {
        let mut st = vol.stream_state().lock();
        if let Some(s) = st.series.get_mut(&series) {
            let c = s.cursors.entry(rank).or_insert(0);
            *c = (*c).max(cursor);
        }
        Bytes::new()
    });
    enc_result(reply)
}

/// Pick the step a consumer at `cursor` should receive, or `None` when
/// nothing at or past the cursor is retained. `window` ascends by `seq`.
fn select_step(
    window: &VecDeque<StepRecord>,
    cursor: u64,
    policy: u8,
    skip: u64,
) -> Option<&StepRecord> {
    let mut avail = window.iter().filter(|r| r.seq >= cursor);
    match policy {
        STEP_POLICY_EVERY => avail.next(),
        STEP_POLICY_LATEST => avail.next_back(),
        _ => {
            // SkipOk(n): the newest step within `cursor + n`, else the
            // oldest available (the consumer has been outrun; jump to the
            // window start rather than past it).
            let limit = cursor.saturating_add(skip);
            let mut first = None;
            let mut best = None;
            for r in avail {
                if first.is_none() {
                    first = Some(r);
                }
                if r.seq <= limit {
                    best = Some(r);
                }
            }
            best.or(first)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(seqs: &[u64]) -> VecDeque<StepRecord> {
        seqs.iter()
            .map(|&seq| StepRecord { seq, gen: seq + 1, pub_ns: 0, file: slot_name("s", seq % 6) })
            .collect()
    }

    #[test]
    fn select_every_is_in_order() {
        let w = window(&[3, 4, 5, 6]);
        assert_eq!(select_step(&w, 0, STEP_POLICY_EVERY, 0).unwrap().seq, 3);
        assert_eq!(select_step(&w, 5, STEP_POLICY_EVERY, 0).unwrap().seq, 5);
        assert!(select_step(&w, 7, STEP_POLICY_EVERY, 0).is_none());
    }

    #[test]
    fn select_latest_takes_newest() {
        let w = window(&[3, 4, 5, 6]);
        assert_eq!(select_step(&w, 0, STEP_POLICY_LATEST, 0).unwrap().seq, 6);
        assert_eq!(select_step(&w, 6, STEP_POLICY_LATEST, 0).unwrap().seq, 6);
        assert!(select_step(&w, 7, STEP_POLICY_LATEST, 0).is_none());
    }

    #[test]
    fn select_skip_ok_bounds_the_jump() {
        let w = window(&[3, 4, 5, 6]);
        // Within range: newest step not past cursor + skip.
        assert_eq!(select_step(&w, 3, STEP_POLICY_SKIP_OK, 2).unwrap().seq, 5);
        // Exactly in order when skip is 0.
        assert_eq!(select_step(&w, 4, STEP_POLICY_SKIP_OK, 0).unwrap().seq, 4);
        // Outrun: cursor + skip falls before the window — take its start.
        assert_eq!(select_step(&w, 0, STEP_POLICY_SKIP_OK, 1).unwrap().seq, 3);
        assert!(select_step(&w, 7, STEP_POLICY_SKIP_OK, 3).is_none());
    }

    #[test]
    fn step_file_names_are_recognized() {
        let mut st = StreamState::default();
        st.series.insert(
            "sim.h5".to_string(),
            SeriesState {
                capacity: 2,
                mode: BackPressure::Block,
                next_seq: 0,
                window: VecDeque::new(),
                cursors: HashMap::new(),
                ended: false,
            },
        );
        assert!(st.is_step_file("sim.h5@s0"));
        assert!(st.is_step_file("sim.h5@s12"));
        assert!(!st.is_step_file("sim.h5"), "series name itself is not a slot");
        assert!(!st.is_step_file("other.h5@s0"), "unregistered series");
        assert!(!st.is_step_file("sim.h5@sx"), "suffix must be digits");
        assert!(!st.is_step_file("sim.h5@s"), "suffix must be non-empty");
    }

    #[test]
    fn retire_honors_the_slowest_cursor() {
        let mut s = SeriesState {
            capacity: 4,
            mode: BackPressure::Block,
            next_seq: 7,
            window: window(&[3, 4, 5, 6]),
            cursors: [(8, 5u64), (9, 4u64)].into_iter().collect(),
            ended: false,
        };
        s.retire();
        let left: Vec<u64> = s.window.iter().map(|r| r.seq).collect();
        assert_eq!(left, vec![4, 5, 6], "rank 9 still needs step 4");
        assert_eq!(s.window_start(), 4);
        // No consumers at all: nothing ever blocks retirement.
        s.cursors.clear();
        s.retire();
        assert_eq!(s.window_start(), s.next_seq);
    }
}
