//! The base VOL layer: catch everything, pass through to storage.
//!
//! Paper §III-A(a): "Any HDF5 functions that are not redefined in the
//! subsequent layers are caught at this base layer and pass through to
//! native HDF5 file I/O." `BaseVol` is exactly that: a transparent wrapper
//! around an inner connector (normally [`minih5::native::NativeVol`]).
//! The metadata layer composes over it and overrides what it needs.

use std::sync::Arc;

use bytes::Bytes;
use minih5::{Dataspace, Datatype, H5Result, ObjId, ObjKind, Ownership, Selection, Vol};

/// Transparent passthrough connector.
pub struct BaseVol {
    inner: Arc<dyn Vol>,
}

impl BaseVol {
    /// Wrap an inner storage connector.
    pub fn new(inner: Arc<dyn Vol>) -> Self {
        BaseVol { inner }
    }

    /// A base layer over a serial native connector.
    pub fn native() -> Self {
        BaseVol { inner: Arc::new(minih5::native::NativeVol::serial()) }
    }

    /// The wrapped connector.
    pub fn inner(&self) -> &Arc<dyn Vol> {
        &self.inner
    }
}

impl Vol for BaseVol {
    fn vol_name(&self) -> &'static str {
        "lowfive-base"
    }

    fn file_create(&self, name: &str) -> H5Result<ObjId> {
        self.inner.file_create(name)
    }

    fn file_open(&self, name: &str) -> H5Result<ObjId> {
        self.inner.file_open(name)
    }

    fn file_close(&self, file: ObjId) -> H5Result<()> {
        self.inner.file_close(file)
    }

    fn group_create(&self, parent: ObjId, name: &str) -> H5Result<ObjId> {
        self.inner.group_create(parent, name)
    }

    fn open_path(&self, parent: ObjId, path: &str) -> H5Result<ObjId> {
        self.inner.open_path(parent, path)
    }

    fn dataset_create(
        &self,
        parent: ObjId,
        name: &str,
        dtype: &Datatype,
        space: &Dataspace,
    ) -> H5Result<ObjId> {
        self.inner.dataset_create(parent, name, dtype, space)
    }

    fn dataset_create_chunked(
        &self,
        parent: ObjId,
        name: &str,
        dtype: &Datatype,
        space: &Dataspace,
        chunk: &[u64],
    ) -> H5Result<ObjId> {
        self.inner.dataset_create_chunked(parent, name, dtype, space, chunk)
    }

    fn dataset_extend(&self, dset: ObjId, new_dims: &[u64]) -> H5Result<()> {
        self.inner.dataset_extend(dset, new_dims)
    }

    fn dataset_chunk(&self, dset: ObjId) -> H5Result<Option<Vec<u64>>> {
        self.inner.dataset_chunk(dset)
    }

    fn dataset_meta(&self, dset: ObjId) -> H5Result<(Datatype, Dataspace)> {
        self.inner.dataset_meta(dset)
    }

    fn dataset_write(
        &self,
        dset: ObjId,
        file_sel: &Selection,
        data: Bytes,
        ownership: Ownership,
    ) -> H5Result<()> {
        self.inner.dataset_write(dset, file_sel, data, ownership)
    }

    fn dataset_read(&self, dset: ObjId, file_sel: &Selection) -> H5Result<Bytes> {
        self.inner.dataset_read(dset, file_sel)
    }

    fn attr_write(&self, obj: ObjId, name: &str, dtype: &Datatype, data: Bytes) -> H5Result<()> {
        self.inner.attr_write(obj, name, dtype, data)
    }

    fn attr_read(&self, obj: ObjId, name: &str) -> H5Result<(Datatype, Bytes)> {
        self.inner.attr_read(obj, name)
    }

    fn list(&self, obj: ObjId) -> H5Result<Vec<(String, ObjKind)>> {
        self.inner.list(obj)
    }

    fn obj_kind(&self, obj: ObjId) -> H5Result<ObjKind> {
        self.inner.obj_kind(obj)
    }

    fn object_close(&self, obj: ObjId) -> H5Result<()> {
        self.inner.object_close(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minih5::H5;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("lowfive-base-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn base_layer_is_transparent() {
        let h5 = H5::with_vol(Arc::new(BaseVol::native()));
        assert_eq!(h5.vol_name(), "lowfive-base");
        let path = tmp("passthrough.nh5");
        let f = h5.create_file(&path).unwrap();
        let d = f.create_dataset("d", Datatype::UInt64, Dataspace::simple(&[4])).unwrap();
        d.write_all(&[9u64, 8, 7, 6]).unwrap();
        f.close().unwrap();

        // The file is a normal native file, readable without LowFive.
        let plain = H5::native();
        let f = plain.open_file(&path).unwrap();
        let d = f.open_dataset("d").unwrap();
        assert_eq!(d.read_all::<u64>().unwrap(), vec![9, 8, 7, 6]);
        f.close().unwrap();
    }
}
