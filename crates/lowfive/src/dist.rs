//! The distributed metadata VOL: in situ transport between tasks.
//!
//! Paper §III-A(c): "the distributed metadata VOL class … redefine\[s\] HDF5
//! functions that potentially access remote processes, e.g., in order to
//! transfer data over MPI from the processes of a producer task to the
//! processes of a consumer task. … We implement distributed client-server
//! connections between the processes of a consumer task reading data and a
//! producer task writing data."
//!
//! Lifecycle on the producer side: writes accumulate in the metadata
//! layer's tree; `file_close` triggers **index** (Algorithm 1 — producers
//! exchange region bounding boxes according to the common decomposition)
//! and then **serve** (Algorithm 2 — answer consumer queries until every
//! consumer rank reports done).
//!
//! Lifecycle on the consumer side: `file_open` fetches the serialized
//! metadata tree from a producer rank; `dataset_read` runs **query**
//! (Algorithm 3 — redirect via the common decomposition, then fetch data
//! from the owning producers); `file_close` notifies the producers.
//!
//! Fan-in and fan-out are expressed as [`Link`]s: a task may produce some
//! file patterns and consume others, with any number of peer tasks.
//!
//! Data replies are served **zero-copy** for shallow regions: the serve
//! loop lends refcounted sub-slices of the producer's regions into a
//! multi-part [`ReplyFrame`] instead of gathering them into an
//! intermediate blob, and consumers scatter the reply parts straight into
//! the destination buffer with a [`PayloadReader`]. Deep regions
//! (`set_zero_copy(…, false)`) keep the historical gather-copy, counted
//! under `obsv::Ctr::BytesCopied`. Every reply also carries the file's
//! write *generation*, which consumers use to invalidate their fetch
//! caches when a producer rewrites a file in place.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use diyblk::rpc::{Call, Caller, RpcClient, RpcError, RpcServer, ServeOutcome, ServeStep};
use diyblk::{RegularDecomposer, RetryPolicy};
use minih5::format::{import_meta, FileMeta};
use minih5::selection::overlap_runs;
use minih5::{
    BBox, Dataspace, Datatype, H5Error, H5Result, Hierarchy, NodeId, ObjId, ObjKind, Ownership,
    Selection, Vol,
};
use simmpi::{Comm, Payload, RatioEwma};

use crate::metadata::MetadataVol;
use crate::props::{glob_match, LowFiveProps};
use crate::protocol::*;

/// Direction of a workflow link, from this task's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDir {
    /// This task writes files matching the pattern; the remote ranks
    /// consume them.
    Produce,
    /// This task reads files matching the pattern; the remote ranks
    /// produce them.
    Consume,
}

/// One edge of the workflow task graph.
#[derive(Debug, Clone)]
pub struct Link {
    /// File-name glob selecting which files travel on this link.
    pub pattern: String,
    /// Whether this rank produces or consumes on the link.
    pub dir: LinkDir,
    /// World ranks of the remote task's processes.
    pub remote_ranks: Vec<usize>,
}

/// Ids of objects opened over a Consume link carry this bit; all other ids
/// belong to the local metadata layer.
const REMOTE_BIT: ObjId = 1 << 63;

struct RemoteFileInfo {
    producers: Vec<usize>,
}

#[derive(Clone)]
struct RemoteEntry {
    node: NodeId,
    filename: Arc<str>,
    path: String,
}

#[derive(Default)]
struct RemoteState {
    hier: Hierarchy,
    files: HashMap<String, RemoteFileInfo>,
    entries: HashMap<ObjId, RemoteEntry>,
    next: ObjId,
}

impl RemoteState {
    fn mint(&mut self) -> ObjId {
        self.next += 1;
        self.next | REMOTE_BIT
    }

    fn entry(&self, id: ObjId) -> H5Result<&RemoteEntry> {
        self.entries.get(&id).ok_or(H5Error::InvalidHandle(id))
    }
}

/// Fine-grained transport profile (paper §V-C: "profiling our
/// communication at finer grain"). Producer-side phases (index, serve)
/// and consumer-side phases (open, redirect, fetch) are timed and counted
/// separately; snapshot with [`DistMetadataVol::profile`].
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TransportProfile {
    /// Seconds spent in the index exchange (Algorithm 1).
    pub index_seconds: f64,
    /// Bounding boxes recorded in the serve index.
    pub index_boxes: u64,
    /// Seconds spent serving consumers (Algorithm 2), including waiting.
    pub serve_seconds: f64,
    /// Completed serve sessions (one per produced file).
    pub serve_sessions: u64,
    /// `M_METADATA` requests answered.
    pub metadata_requests: u64,
    /// `M_INTERSECT` (redirect) requests answered.
    pub intersect_requests: u64,
    /// Data query entries answered — each `M_DATA` counts one, each
    /// `M_DATA_BATCH` counts one per entry it carries.
    pub data_requests: u64,
    /// Payload bytes shipped in data replies.
    pub bytes_served: u64,
    /// Consumer: seconds blocked in remote file opens.
    pub open_seconds: f64,
    /// Consumer: seconds in redirect queries (Algorithm 3 step 1).
    pub redirect_seconds: f64,
    /// Consumer: seconds fetching and scattering data (step 2).
    pub fetch_seconds: f64,
    /// Payload bytes received in data replies.
    pub bytes_fetched: u64,
}

/// Book-keeping for the asynchronous serve loop (one background thread
/// multiplexing all open serve sessions).
#[derive(Default)]
struct AsyncSessions {
    /// filename → (expected consumer DONEs, distinct consumer ranks heard
    /// from). Ranks, not message counts: a consumer whose ack was lost
    /// retransmits DONE, and a duplicate must not close the session early.
    open: HashMap<String, (usize, std::collections::HashSet<usize>)>,
    /// Files fully served (safe to keep answering reads for).
    completed: std::collections::HashSet<String>,
    /// drain() was requested: exit once `open` empties.
    draining: bool,
}

#[derive(Default, Clone)]
struct ServeIndex {
    /// `(file, dataset) → [(bounding box, producer local rank)]` — the
    /// paper's `boxes[file, dset]` of Algorithm 1 line 11.
    boxes: HashMap<(String, String), Vec<(BBox, usize)>>,
}

/// Number of [`HotStripe`] cells the hot serve counters are split over.
/// Eight covers the dispatcher plus any realistic worker-pool size
/// without two threads hashing to the same cache line very often.
const HOT_STRIPES: usize = 8;

/// One cache-line-aligned stripe of the hot serve-path counters: the
/// request/byte tallies every `M_METADATA`/`M_INTERSECT`/`M_DATA`/
/// `M_DATA_BATCH` handler bumps. Alignment keeps stripes on distinct
/// cache lines so concurrent workers never false-share.
#[derive(Default)]
#[repr(align(64))]
struct HotStripe {
    metadata_requests: AtomicU64,
    intersect_requests: AtomicU64,
    data_requests: AtomicU64,
    bytes_served: AtomicU64,
}

/// The serve path's hot counters, sharded per thread so concurrent serve
/// workers bump relaxed atomics in their own stripe instead of
/// serializing on the `TransportProfile` mutex. Merged into the profile
/// snapshot at [`DistMetadataVol::profile`] time (cold fields — the
/// per-phase seconds — stay in the mutex; they are touched a handful of
/// times per session).
#[derive(Default)]
struct HotProfile {
    stripes: [HotStripe; HOT_STRIPES],
}

/// The stripe this thread writes to: a cached hash of the thread id.
fn hot_stripe_index() -> usize {
    use std::hash::{Hash, Hasher};
    thread_local! {
        static IDX: usize = {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            h.finish() as usize % HOT_STRIPES
        };
    }
    IDX.with(|i| *i)
}

impl HotProfile {
    fn stripe(&self) -> &HotStripe {
        &self.stripes[hot_stripe_index()]
    }

    /// Fold every stripe into a profile snapshot.
    fn merge_into(&self, p: &mut TransportProfile) {
        for s in &self.stripes {
            p.metadata_requests += s.metadata_requests.load(Ordering::Relaxed);
            p.intersect_requests += s.intersect_requests.load(Ordering::Relaxed);
            p.data_requests += s.data_requests.load(Ordering::Relaxed);
            p.bytes_served += s.bytes_served.load(Ordering::Relaxed);
        }
    }

    fn reset(&self) {
        for s in &self.stripes {
            s.metadata_requests.store(0, Ordering::Relaxed);
            s.intersect_requests.store(0, Ordering::Relaxed);
            s.data_requests.store(0, Ordering::Relaxed);
            s.bytes_served.store(0, Ordering::Relaxed);
        }
    }
}

/// Consumer-side cache of remote lookups, so repeated reads of the same
/// region skip the metadata and redirect round-trips entirely. Populated
/// only when the pipelined fetch path is active; every entry for a file
/// is dropped at `file_close`, so reopening a (possibly rewritten)
/// snapshot always refetches.
#[derive(Default)]
struct FetchCache {
    /// filename → serialized metadata tree fetched at `consumer_open`.
    meta: HashMap<String, FileMeta>,
    /// `(file, dataset path, query bbox)` → producer-local indices that
    /// answered the redirect query with intersecting data.
    owners: HashMap<(String, String, BBox), Vec<usize>>,
    /// `(file, producer world rank)` → the generation that producer last
    /// reported for the file. Every reply (metadata, redirect, data)
    /// carries the serving file's live generation; when a producer
    /// reports one that differs from what it reported before, the file
    /// was rewritten in place and every cached lookup for it is dropped
    /// (see [`DistMetadataVol::note_gen`]).
    gens: HashMap<(String, usize), u64>,
}

/// The distributed metadata connector.
pub struct DistMetadataVol {
    meta: MetadataVol,
    props: LowFiveProps,
    world: Comm,
    local: Comm,
    links: Vec<Link>,
    remote: Mutex<RemoteState>,
    /// The queryable index, published as an immutable snapshot: `index()`
    /// builds a fresh [`ServeIndex`] and swaps the `Arc` in one store, so
    /// serve workers clone the handle and read entirely lock-free while
    /// the next generation is being built.
    serve_index: Mutex<Arc<ServeIndex>>,
    profile: Mutex<TransportProfile>,
    /// Per-thread stripes for the serve path's hot counters (see
    /// [`HotProfile`]); merged into [`Self::profile`] snapshots.
    hot: HotProfile,
    /// Overlap mode (paper §V-C: "consume data as soon as it is
    /// available, and overlap reading and writing"): file_close returns
    /// immediately and a single background thread serves all sessions.
    async_serve: bool,
    sessions: Mutex<AsyncSessions>,
    serve_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    self_weak: std::sync::Weak<DistMetadataVol>,
    /// Metadata requests for files this task will produce but has not
    /// closed yet (a consumer may run ahead and open snapshot *t+1* while
    /// we still serve *t*). Answered when the file's serve session opens.
    pending_meta: Mutex<Vec<(Caller, String)>>,
    /// Consumer-side cache of metadata and redirect results (pipelined
    /// fetch path only; see [`FetchCache`]).
    fetch_cache: Mutex<FetchCache>,
    /// Producer-side negotiated codec masks, `(file, consumer world
    /// rank)` → consumer caps ∩ our caps. Populated from the metadata
    /// handshake and `M_CODEC_OFFER` notifications; a pair with no entry
    /// falls through to raw.
    codec_masks: Mutex<HashMap<(String, usize), u64>>,
    /// Producer-side EWMA of *realized* compression ratios per consumer
    /// world rank (this producer task is the other half of the pair).
    /// Observed on every reply we attempted to compress; consulted by
    /// `Auto` codec planning in place of the static
    /// [`simmpi::CODEC_ASSUMED_RATIO`] once real frames have flowed.
    codec_ratio: Mutex<HashMap<usize, RatioEwma>>,
    /// Step-streaming state: registered series and their announce
    /// windows (see [`crate::stream`]). Slot files of a series bypass
    /// the DONE-counted session map entirely.
    stream: Mutex<crate::stream::StreamState>,
}

/// Builder for [`DistMetadataVol`].
pub struct DistVolBuilder {
    world: Comm,
    local: Comm,
    props: LowFiveProps,
    links: Vec<Link>,
    storage: Option<Arc<dyn Vol>>,
    async_serve: bool,
}

impl DistVolBuilder {
    /// `world` spans all tasks; `local` spans this task's ranks.
    pub fn new(world: Comm, local: Comm) -> Self {
        DistVolBuilder {
            world,
            local,
            props: LowFiveProps::new(),
            links: Vec::new(),
            storage: None,
            async_serve: false,
        }
    }

    /// Enable overlap mode: producer `file_close` indexes, registers a
    /// serve session, and returns immediately; a background thread answers
    /// consumers while the producer computes the next step. Call
    /// [`DistMetadataVol::drain`] before the producer task exits.
    pub fn async_serve(mut self, on: bool) -> Self {
        self.async_serve = on;
        self
    }

    /// Set the transport properties.
    pub fn props(mut self, props: LowFiveProps) -> Self {
        self.props = props;
        self
    }

    /// Declare that this task produces files matching `pattern` for the
    /// consumer task whose processes are `consumer_world_ranks`.
    pub fn produce(mut self, pattern: &str, consumer_world_ranks: Vec<usize>) -> Self {
        self.links.push(Link {
            pattern: pattern.to_string(),
            dir: LinkDir::Produce,
            remote_ranks: consumer_world_ranks,
        });
        self
    }

    /// Declare that this task consumes files matching `pattern` from the
    /// producer task whose processes are `producer_world_ranks`.
    pub fn consume(mut self, pattern: &str, producer_world_ranks: Vec<usize>) -> Self {
        self.links.push(Link {
            pattern: pattern.to_string(),
            dir: LinkDir::Consume,
            remote_ranks: producer_world_ranks,
        });
        self
    }

    /// Override the storage connector used for passthrough (defaults to a
    /// parallel native connector coordinated over `local`).
    pub fn storage(mut self, vol: Arc<dyn Vol>) -> Self {
        self.storage = Some(vol);
        self
    }

    /// Finalize the builder into the distributed VOL. With no explicit
    /// [`storage`](Self::storage) layer, file-mode traffic falls back to
    /// the native parallel connector on the local communicator.
    pub fn build(self) -> Arc<DistMetadataVol> {
        let storage = self.storage.unwrap_or_else(|| {
            let c = self.local.clone();
            Arc::new(minih5::native::NativeVol::parallel(self.local.rank(), move || c.barrier()))
        });
        Arc::new_cyclic(|weak| DistMetadataVol {
            meta: MetadataVol::new(storage, self.props.clone()),
            props: self.props,
            world: self.world,
            local: self.local,
            links: self.links,
            remote: Mutex::default(),
            serve_index: Mutex::default(),
            profile: Mutex::default(),
            hot: HotProfile::default(),
            async_serve: self.async_serve,
            sessions: Mutex::default(),
            serve_thread: Mutex::default(),
            self_weak: weak.clone(),
            pending_meta: Mutex::default(),
            fetch_cache: Mutex::default(),
            codec_masks: Mutex::default(),
            codec_ratio: Mutex::default(),
            stream: Mutex::default(),
        })
    }
}

impl DistMetadataVol {
    /// Access the wrapped metadata layer (tests, diagnostics).
    pub fn metadata(&self) -> &MetadataVol {
        &self.meta
    }

    /// Snapshot the accumulated transport profile. Hot request/byte
    /// counters live in per-thread stripes on the serve path; they are
    /// folded into the snapshot here.
    pub fn profile(&self) -> TransportProfile {
        let mut p = self.profile.lock().clone();
        self.hot.merge_into(&mut p);
        p
    }

    /// Zero the transport profile (e.g. between timesteps).
    pub fn reset_profile(&self) {
        *self.profile.lock() = TransportProfile::default();
        self.hot.reset();
    }

    /// The transport properties this VOL was built with.
    pub(crate) fn props(&self) -> &LowFiveProps {
        &self.props
    }

    /// This task's local communicator.
    pub(crate) fn local_comm(&self) -> &Comm {
        &self.local
    }

    /// Is overlap mode (background serve thread) enabled?
    pub(crate) fn is_async_serve(&self) -> bool {
        self.async_serve
    }

    /// The step-streaming state shared with [`crate::stream`].
    pub(crate) fn stream_state(&self) -> &Mutex<crate::stream::StreamState> {
        &self.stream
    }

    // -----------------------------------------------------------------
    // Wire codecs: negotiation, encode-on-serve, decode-on-scatter
    // -----------------------------------------------------------------

    /// Record a consumer rank's advertised codec caps for `file`,
    /// intersected with our own policy's caps — the negotiated mask every
    /// data reply toward that rank is encoded under. Called from the
    /// metadata-handshake and step-subscribe arms (before any parking)
    /// and from `M_CODEC_OFFER` notifications.
    pub(crate) fn record_consumer_caps(&self, file: &str, rank: usize, caps: u64) {
        let mask = caps & self.props.wire_codec_for(file).caps();
        self.codec_masks.lock().insert((file.to_string(), rank), mask);
    }

    /// The negotiated codec mask toward `rank` for `file`. No recorded
    /// negotiation (e.g. the consumer's offer was dropped by fault
    /// injection) falls through to raw — always correct, never faster.
    pub(crate) fn negotiated_mask(&self, file: &str, rank: usize) -> u64 {
        self.codec_masks.lock().get(&(file.to_string(), rank)).copied().unwrap_or(CAP_RAW)
    }

    /// Pick the codec for one reply body of `len` bytes toward the
    /// consumer `caller` negotiated at `mask`. `Auto` compresses only
    /// when the attached cost model says the modeled wire saving beats
    /// the modeled codec cost (no cost model — in-proc transport — means
    /// raw); a forced `Rle`/`DeltaRle` policy skips the cost check.
    ///
    /// The saving term uses the *realized* compression ratio toward this
    /// consumer — an EWMA over frames we actually encoded (see
    /// [`RatioEwma`]) — falling back to the static planning assumption
    /// until the first frame has flowed.
    fn pick_codec(&self, file: &str, caller: usize, mask: u64, len: usize) -> u8 {
        let preferred = preferred_codec(mask);
        if preferred == CODEC_RAW {
            return CODEC_RAW;
        }
        match self.props.wire_codec_for(file) {
            WireCodec::Auto => match self.world.cost_model() {
                Some(cm) => {
                    let ratio =
                        self.codec_ratio.lock().get(&caller).copied().unwrap_or_default().ratio();
                    if cm.compression_worthwhile_with_ratio(len, ratio) {
                        preferred
                    } else {
                        CODEC_RAW
                    }
                }
                _ => CODEC_RAW,
            },
            WireCodec::Raw => CODEC_RAW,
            _ => preferred,
        }
    }

    /// Codec-wrap one reply body toward `caller`, maintaining the
    /// pre/post byte counters and the codec-latency histogram. The raw
    /// path (and the not-smaller fallback inside [`encode_coded`]) keeps
    /// the body's lent parts untouched.
    fn encode_reply_body(&self, file: &str, caller: usize, body: Payload) -> Payload {
        let pre_len = body.len();
        obsv::counter_add(obsv::Ctr::BytesPreCodec, pre_len as u64);
        let codec = self.pick_codec(file, caller, self.negotiated_mask(file, caller), pre_len);
        let coded = if codec == CODEC_RAW {
            encode_coded(body, CODEC_RAW)
        } else {
            let t0 = obsv::clock::now_ns();
            let coded = encode_coded(body, codec);
            obsv::hist_record(obsv::Hist::CodecLatencyNs, obsv::clock::now_ns() - t0);
            // Feed the realized on-wire ratio of this *attempted*
            // compression back into planning for the next frame toward
            // the same consumer (the not-smaller raw fallback inside
            // `encode_coded` is observed too — as a ratio near 1 — which
            // is exactly what teaches the EWMA to stop compressing
            // incompressible streams).
            let realized = (coded.len() - 1) as f64 / pre_len.max(1) as f64;
            self.codec_ratio.lock().entry(caller).or_default().observe(realized);
            coded
        };
        obsv::counter_add(obsv::Ctr::BytesOnWire, (coded.len() - 1) as u64);
        coded
    }

    /// [`Self::encode_reply_body`] flattened to contiguous bytes, for
    /// the small single-part control replies (step announces).
    pub(crate) fn encode_reply_bytes(&self, file: &str, caller: usize, body: Bytes) -> Bytes {
        let coded = self.encode_reply_body(file, caller, Payload::from(body));
        // Control frames are header-sized; flatten by hand so the gather
        // stays outside the dataset-byte `BytesCopied` accounting.
        let mut v = Vec::with_capacity(coded.len());
        for part in coded.parts() {
            v.extend_from_slice(part);
        }
        Bytes::from(v)
    }

    /// Strip and expand the codec prefix of a contiguous reply body.
    /// `allowed` is this consumer's own advertised cap set — a producer
    /// may only use codecs we offered.
    pub(crate) fn decode_reply_body(&self, file: &str, b: &Bytes) -> H5Result<Bytes> {
        let allowed = self.props.wire_codec_for(file).caps();
        if b.first() == Some(&CODEC_RAW) {
            return dec_coded(b, allowed);
        }
        let t0 = obsv::clock::now_ns();
        let out = dec_coded(b, allowed)?;
        obsv::hist_record(obsv::Hist::CodecLatencyNs, obsv::clock::now_ns() - t0);
        Ok(out)
    }

    /// Parts-preserving [`Self::decode_reply_body`] for the pipelined
    /// scatter path: a raw body sheds its prefix in place.
    fn decode_reply_payload(&self, file: &str, p: Payload) -> H5Result<Payload> {
        let allowed = self.props.wire_codec_for(file).caps();
        let mut d = [0u8; 1];
        if p.copy_prefix(&mut d) && d[0] == CODEC_RAW {
            return decode_coded_payload(p, allowed);
        }
        let t0 = obsv::clock::now_ns();
        let out = decode_coded_payload(p, allowed)?;
        obsv::hist_record(obsv::Hist::CodecLatencyNs, obsv::clock::now_ns() - t0);
        Ok(out)
    }

    pub(crate) fn consume_link_for(&self, name: &str) -> Option<&Link> {
        self.links.iter().find(|l| l.dir == LinkDir::Consume && glob_match(&l.pattern, name))
    }

    /// All consumer world ranks subscribed to `name` (fan-out: multiple
    /// Produce links can match).
    pub(crate) fn consumers_for(&self, name: &str) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        for l in &self.links {
            if l.dir == LinkDir::Produce && glob_match(&l.pattern, name) {
                for &r in &l.remote_ranks {
                    if !out.contains(&r) {
                        out.push(r);
                    }
                }
            }
        }
        out
    }

    // -----------------------------------------------------------------
    // Producer: index (Algorithm 1)
    // -----------------------------------------------------------------

    fn index(&self, filename: &str) -> H5Result<()> {
        let sp = obsv::span(obsv::Phase::Index);
        let n = self.local.size();
        let gen = self.meta.generation(filename);
        let dsets = self.meta.datasets_of_file(filename)?;
        let mut bundles: Vec<Vec<(String, String, u64, BBox)>> = vec![Vec::new(); n];
        for dset in &dsets {
            let (_dtype, space) = self.meta.dataset_meta_by_path(filename, dset)?;
            let dims = effective_dims(&space);
            let decomp = RegularDecomposer::new(&dims, n);
            for region in self.meta.dataset_regions(filename, dset)? {
                let bb = effective_bbox(&region.selection, &space);
                if bb.is_empty() {
                    continue;
                }
                // Algorithm 1 lines 6-9: send the bounding box to every
                // producer whose common-decomposition block it intersects.
                for gid in decomp.blocks_intersecting(&bb) {
                    bundles[gid].push((filename.to_string(), dset.clone(), gen, bb.clone()));
                }
            }
        }
        // One (possibly empty) bundle to every peer gives each producer a
        // deterministic receive count — the termination condition the
        // paper's nonblocking sends need anyway. The exchange is a
        // personalized all-to-all.
        let parts: Vec<bytes::Bytes> = bundles.iter().map(|b| enc_index_bundle(b)).collect();
        let received = self.local.alltoall_bytes(parts);
        // Build the next index generation off to the side, then publish
        // it as a single `Arc` swap. Serve workers clone the handle once
        // per request and read it without any lock held; a worker racing
        // this publish keeps answering from the previous snapshot, which
        // is exactly the pre-swap serve behavior.
        let mut next: ServeIndex = (**self.serve_index.lock()).clone();
        next.boxes.retain(|(f, _), _| f != filename);
        let mut nboxes = 0u64;
        for (src, payload) in received.iter().enumerate() {
            // The bundle's generation tag records which snapshot the
            // sender's boxes describe; replies always report the *live*
            // generation, so a consumer that cached owners from this
            // index notices any later in-place rewrite.
            for (f, d, _gen, bb) in dec_index_bundle(payload)? {
                next.boxes.entry((f, d)).or_default().push((bb, src));
                nboxes += 1;
            }
        }
        *self.serve_index.lock() = Arc::new(next);
        // The all-to-all alone is not a barrier: a rank can complete it
        // (everyone has *sent*) while a peer has yet to fold the received
        // bundles into its serve index. Anything that makes the file
        // visible after this returns — an overlap-mode step announce, the
        // metadata reply that unblocks a consumer's open — must imply
        // that *every* producer rank can already answer `M_INTERSECT`
        // for it, or a consumer races the laggard and reads an empty
        // owner set (silently zero-filled data).
        self.local.barrier();
        let mut p = self.profile.lock();
        p.index_seconds += sp.finish();
        p.index_boxes += nboxes;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Producer: serve (Algorithm 2)
    // -----------------------------------------------------------------

    fn serve(&self, filename: &str, expected_dones: usize) {
        let sp = obsv::span(obsv::Phase::Serve);
        obsv::counter_add(obsv::Ctr::ServeSessions, 1);
        // Answer metadata requests that arrived for this file before we
        // closed it (consumers running ahead to the next snapshot).
        {
            let mut pending = self.pending_meta.lock();
            let (now, later): (Vec<_>, Vec<_>) =
                pending.drain(..).partition(|(_, f)| f == filename);
            *pending = later;
            for (caller, file) in now {
                let mask = self.negotiated_mask(&file, caller.rank);
                let reply = self
                    .meta
                    .file_meta(&file)
                    .map(|m| enc_metadata_reply(self.meta.generation(&file), mask, &m));
                diyblk::rpc::send_reply(&self.world, caller, enc_result(reply));
            }
        }
        let server = RpcServer::new(&self.world);
        // DONE must be idempotent: a consumer whose *ack* was lost resends
        // the same DONE under its retry policy, and each retransmit is a
        // fresh RPC. Counting messages would double-count that consumer and
        // stop the serve loop early, stranding the rest — so we count
        // distinct caller ranks instead.
        let mut dones = std::collections::HashSet::new();
        // Control plane (metadata, negotiation, DONE counting, step
        // errors) stays on the dispatcher; the data plane (intersect,
        // data, batch) is offloaded to the worker pool when one is
        // configured. Replies are matched by call id, so completion
        // order never matters to the consumer.
        let workers = self.props.serve_workers_for(filename);
        server.serve_concurrent(workers, |caller, method, args| match method {
            M_METADATA => {
                self.hot.stripe().metadata_requests.fetch_add(1, Ordering::Relaxed);
                let (file, caps) = match dec_metadata_req(&args) {
                    Ok(fc) => fc,
                    Err(e) => return ServeStep::Inline(ServeOutcome::Reply(enc_result(Err(e)))),
                };
                // Record the negotiation before any parking, so a flush
                // from a later serve session already knows the mask.
                self.record_consumer_caps(&file, caller.rank, caps);
                match self.meta.file_meta(&file) {
                    Ok(meta) => {
                        ServeStep::Inline(ServeOutcome::Reply(enc_result(Ok(enc_metadata_reply(
                            self.meta.generation(&file),
                            self.negotiated_mask(&file, caller.rank),
                            &meta,
                        )))))
                    }
                    Err(H5Error::NotFound(_))
                        if self.links.iter().any(|l| {
                            l.dir == LinkDir::Produce && glob_match(&l.pattern, &file)
                        }) =>
                    {
                        // A future snapshot of ours: hold the request until
                        // its serve session opens.
                        self.pending_meta.lock().push((caller, file));
                        ServeStep::Inline(ServeOutcome::Continue)
                    }
                    Err(e) => ServeStep::Inline(ServeOutcome::Reply(enc_result(Err(e)))),
                }
            }
            M_CODEC_OFFER => {
                if let Ok((file, caps)) = dec_codec_offer(&args) {
                    self.record_consumer_caps(&file, caller.rank, caps);
                }
                ServeStep::Inline(ServeOutcome::Continue)
            }
            M_INTERSECT => {
                ServeStep::Offload(Box::new(move || Payload::from(self.serve_intersect(&args))))
            }
            M_DATA => ServeStep::Offload(Box::new(move || self.serve_data(&args, caller.rank))),
            M_DATA_BATCH => {
                ServeStep::Offload(Box::new(move || self.serve_data_batch(&args, caller.rank)))
            }
            M_DONE => {
                let file = dec_done_req(&args).unwrap_or_default();
                if file == filename {
                    dones.insert(caller.rank);
                }
                // Ack every DONE: the consumer awaits (and under a retry
                // policy resends) it, so a dropped notification can no
                // longer starve the serve loop.
                let ack = enc_result(Ok(Bytes::new()));
                ServeStep::Inline(if dones.len() == expected_dones {
                    ServeOutcome::Stop(Some(ack))
                } else {
                    ServeOutcome::Reply(ack)
                })
            }
            M_STEP_SUB | M_STEP_NEXT | M_STEP_ACK => {
                // A producer blocked in this synchronous loop could never
                // publish another step, so streaming refuses to start.
                ServeStep::Inline(ServeOutcome::Reply(enc_result(Err(H5Error::Vol(
                    "step streaming requires overlap mode (DistVolBuilder::async_serve)".into(),
                )))))
            }
            m => ServeStep::Inline(ServeOutcome::Reply(enc_result(Err(H5Error::Vol(format!(
                "unknown RPC method {m}"
            )))))),
        });
        let mut p = self.profile.lock();
        p.serve_seconds += sp.finish();
        p.serve_sessions += 1;
    }

    /// Algorithm 2 lines 9-14: stream the intersection of the local data
    /// regions with the consumer's selection, as contiguous segments
    /// addressed in the consumer's packed buffer.
    ///
    /// Zero-copy: shallow regions are *lent* into the frame as refcounted
    /// sub-slices of the region allocation — no dataset byte is copied on
    /// the producer. Deep regions (`set_zero_copy(…, false)`) keep the
    /// historical gather-copy, counted under `obsv::Ctr::BytesCopied`.
    fn answer_data_query_into(
        &self,
        frame: &mut ReplyFrame,
        gen: u64,
        file: &str,
        dset: &str,
        sel: &Selection,
    ) -> H5Result<()> {
        let (dtype, space) = self.meta.dataset_meta_by_path(file, dset)?;
        sel.validate(&space)?;
        let es = dtype.size();
        let sel_runs = sel.runs(&space);
        // The segment table precedes the blob on the wire, so the runs
        // are resolved first and the slices lent after the header.
        let mut segs: Vec<(u64, u64)> = Vec::new();
        let mut slices: Vec<(Bytes, Ownership)> = Vec::new();
        let mut blob_len = 0u64;
        for region in self.meta.dataset_regions(file, dset)? {
            let reg_runs = region.selection.runs(&space);
            for ov in overlap_runs(&reg_runs, &sel_runs) {
                segs.push((ov.b_off, ov.len));
                let s = (ov.a_off as usize) * es;
                let nb = (ov.len as usize) * es;
                slices.push((region.data.slice(s..s + nb), region.ownership));
                blob_len += nb as u64;
            }
        }
        frame.put_u64(gen);
        frame.put_u64(segs.len() as u64);
        for (off, len) in segs {
            frame.put_u64(off);
            frame.put_u64(len);
        }
        frame.put_blob_len(blob_len);
        let mut deep_bytes = 0u64;
        for (b, own) in slices {
            match own {
                Ownership::Shallow => frame.lend(b),
                Ownership::Deep => {
                    deep_bytes += b.len() as u64;
                    obsv::counter_add(obsv::Ctr::BytesCopied, b.len() as u64);
                    frame.lend(Bytes::copy_from_slice(&b));
                }
            }
        }
        // Modeled per-byte gather cost (`set_gather_cost`): a real sleep
        // on the producer side of the deep-copy path, standing in for
        // the strided gathers and NUMA traffic a production-size rank
        // would pay. The shallow lend path pays nothing by construction
        // — which is what the serve-concurrency figure exploits: worker
        // pools overlap these stalls across consumers.
        let ns_per_byte = self.props.gather_cost_for(file);
        if ns_per_byte > 0.0 && deep_bytes > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(
                (ns_per_byte * deep_bytes as f64) as u64,
            ));
        }
        Ok(())
    }

    /// Answer an `M_INTERSECT` redirect query (shared by both serve
    /// loops): which producer-local ranks indexed data of `(file, dset)`
    /// intersecting the query box.
    fn serve_intersect(&self, args: &Bytes) -> Bytes {
        let t0 = obsv::clock::now_ns();
        self.hot.stripe().intersect_requests.fetch_add(1, Ordering::Relaxed);
        let reply = dec_intersect_req(args).map(|(file, dset, qbb)| {
            let gen = self.meta.generation(&file);
            let idx = Arc::clone(&self.serve_index.lock());
            // Dedup through a set (a fine decomposition can hold many
            // boxes per rank) while keeping the historical first-hit
            // order of the reply.
            let mut ranks: Vec<u64> = Vec::new();
            let mut seen: HashSet<usize> = HashSet::new();
            if let Some(list) = idx.boxes.get(&(file, dset)) {
                for (bb, rank) in list {
                    if bb.intersects(&qbb) && seen.insert(*rank) {
                        ranks.push(*rank as u64);
                    }
                }
            }
            enc_intersect_reply(gen, &ranks)
        });
        let out = enc_result(reply);
        obsv::hist_record(obsv::Hist::ServeIntersectNs, obsv::clock::now_ns().saturating_sub(t0));
        out
    }

    /// Answer a single `M_DATA` query (shared by both serve loops) as a
    /// multi-part frame lending shallow region bytes.
    fn serve_data(&self, args: &Bytes, caller: usize) -> Payload {
        let t0 = obsv::clock::now_ns();
        let reply = dec_data_req(args).and_then(|(file, dset, sel)| {
            let gen = self.meta.generation(&file);
            let mut frame = ReplyFrame::new();
            self.answer_data_query_into(&mut frame, gen, &file, &dset, &sel)?;
            Ok((file, frame.finish()))
        });
        let hot = self.hot.stripe();
        hot.data_requests.fetch_add(1, Ordering::Relaxed);
        if let Ok((_, b)) = &reply {
            // Profiled at the pre-codec length: `bytes_served` counts what
            // the consumer receives after decode, not what crossed the wire.
            hot.bytes_served.fetch_add(b.len() as u64, Ordering::Relaxed);
            obsv::hist_record(obsv::Hist::BytesServed, b.len() as u64);
        }
        let out = enc_result_payload(
            reply.map(|(file, body)| self.encode_reply_body(&file, caller, body)),
        );
        obsv::hist_record(obsv::Hist::ServeDataNs, obsv::clock::now_ns().saturating_sub(t0));
        out
    }

    /// Answer a batched `M_DATA_BATCH` query (shared by both serve
    /// loops): one [`DataReply`] body per `(dataset, selection)` entry,
    /// in entry order, all in a single multi-part frame. Each entry is
    /// answered exactly as a lone `M_DATA` would be, so batching never
    /// changes the bytes a consumer sees.
    fn serve_data_batch(&self, args: &Bytes, caller: usize) -> Payload {
        let t0 = obsv::clock::now_ns();
        let reply = dec_data_req_batch(args).and_then(|(file, entries)| {
            let gen = self.meta.generation(&file);
            let mut frame = ReplyFrame::new();
            frame.put_u64(entries.len() as u64);
            for (dset, sel) in &entries {
                self.answer_data_query_into(&mut frame, gen, &file, dset, sel)?;
            }
            self.hot.stripe().data_requests.fetch_add(entries.len() as u64, Ordering::Relaxed);
            Ok((file, frame.finish()))
        });
        if let Ok((_, b)) = &reply {
            self.hot.stripe().bytes_served.fetch_add(b.len() as u64, Ordering::Relaxed);
            obsv::hist_record(obsv::Hist::BytesServed, b.len() as u64);
        }
        let out = enc_result_payload(
            reply.map(|(file, body)| self.encode_reply_body(&file, caller, body)),
        );
        obsv::hist_record(obsv::Hist::ServeBatchNs, obsv::clock::now_ns().saturating_sub(t0));
        out
    }

    fn producer_close(&self, filename: &str) -> H5Result<()> {
        let consumers = self.consumers_for(filename);
        if consumers.is_empty() {
            return Ok(());
        }
        // Index is collective over the producer task, so it always runs on
        // the caller (one index per close, in program order on every
        // rank).
        self.index(filename)?;
        if !self.async_serve {
            self.serve(filename, consumers.len());
            return Ok(());
        }
        // Overlap mode: register the session, release any consumers that
        // asked early, make sure the serve thread runs, and return.
        //
        // Step slot files never enter the session map: their lifetime is
        // governed by the series' announce window (publish → retire), not
        // by counted consumer DONEs — a `LatestStep` subscriber may never
        // open a given slot at all. Consumer closes of slot files hit the
        // async loop's absent-file DONE branch and are simply acked.
        let is_step = self.stream.lock().is_step_file(filename);
        if !is_step {
            self.sessions
                .lock()
                .open
                .insert(filename.to_string(), (consumers.len(), std::collections::HashSet::new()));
        }
        {
            let mut pending = self.pending_meta.lock();
            let (now, later): (Vec<_>, Vec<_>) =
                pending.drain(..).partition(|(_, f)| f == filename);
            *pending = later;
            for (caller, file) in now {
                let mask = self.negotiated_mask(&file, caller.rank);
                let reply = self
                    .meta
                    .file_meta(&file)
                    .map(|m| enc_metadata_reply(self.meta.generation(&file), mask, &m));
                diyblk::rpc::send_reply(&self.world, caller, enc_result(reply));
            }
        }
        self.ensure_serve_thread();
        Ok(())
    }

    /// Start the overlap-mode serve thread if it is not already running.
    /// Called from the first async `file_close` and from
    /// [`crate::stream::StepPublisher::new`] (subscribes can arrive
    /// before the first slot file closes).
    pub(crate) fn ensure_serve_thread(&self) {
        let mut guard = self.serve_thread.lock();
        if guard.is_none() {
            let me = self.self_weak.upgrade().expect("self is alive during close");
            // The serve thread records into its own lane (same rank) so
            // its spans land in the trace next to the rank that spawned
            // it, without sharing the rank thread's ring.
            let parent = obsv::current();
            *guard = Some(
                std::thread::Builder::new()
                    .name(format!("lowfive-serve-{}", self.world.rank()))
                    .spawn(move || {
                        let _obs = parent.and_then(|r| r.fork()).map(obsv::install);
                        me.serve_async_loop()
                    })
                    .expect("spawn serve thread"),
            );
        }
    }

    /// Block until every outstanding async serve session completes and
    /// stop the background thread. Producers in overlap mode must call
    /// this before leaving their task (the `orchestra` runner does it
    /// automatically).
    pub fn drain(&self) {
        let handle = {
            let mut guard = self.serve_thread.lock();
            match guard.take() {
                Some(h) => h,
                None => return,
            }
        };
        // Wake the loop so it can observe the drain request. The notify
        // is an ordinary message, so under fault injection it can be
        // dropped like any other — re-send until the loop exits (extra
        // M_SHUTDOWNs are idempotent: they just re-mark the drain).
        let rpc = RpcClient::new(&self.world);
        loop {
            rpc.notify(self.world.rank(), M_SHUTDOWN, &[]);
            if handle.is_finished() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        handle.join().expect("serve thread panicked");
    }

    /// The multiplexed serve loop of overlap mode: one thread answers
    /// queries for every open (or completed) session and exits once a
    /// drain is requested and no session remains open.
    fn serve_async_loop(&self) {
        let sp = obsv::span(obsv::Phase::Serve);
        let server = RpcServer::new(&self.world);
        // One loop multiplexes every produced file, so the pool is sized
        // to the widest `set_serve_workers` rule across our Produce link
        // patterns. Control plane — metadata parking, session/DONE
        // bookkeeping, drains, and the whole step-streaming window state
        // — stays on the dispatcher thread, which is what keeps the
        // shutdown-ordering invariant (drain only fires with no session
        // open) and the per-subscriber step cursors race-free. Only the
        // read-mostly data plane fans out.
        let workers = self
            .links
            .iter()
            .filter(|l| l.dir == LinkDir::Produce)
            .map(|l| self.props.serve_workers_for(&l.pattern))
            .max()
            .unwrap_or(1);
        server.serve_concurrent(workers, |caller, method, args| match method {
            M_METADATA => {
                self.hot.stripe().metadata_requests.fetch_add(1, Ordering::Relaxed);
                let (file, caps) = match dec_metadata_req(&args) {
                    Ok(fc) => fc,
                    Err(e) => return ServeStep::Inline(ServeOutcome::Reply(enc_result(Err(e)))),
                };
                self.record_consumer_caps(&file, caller.rank, caps);
                let known = {
                    let s = self.sessions.lock();
                    s.open.contains_key(&file) || s.completed.contains(&file)
                } || self.stream.lock().serveable.contains(&file);
                ServeStep::Inline(if known {
                    let mask = self.negotiated_mask(&file, caller.rank);
                    let reply = self
                        .meta
                        .file_meta(&file)
                        .map(|m| enc_metadata_reply(self.meta.generation(&file), mask, &m));
                    ServeOutcome::Reply(enc_result(reply))
                } else if self
                    .links
                    .iter()
                    .any(|l| l.dir == LinkDir::Produce && glob_match(&l.pattern, &file))
                {
                    // Not closed yet (or never produced): hold the request.
                    self.pending_meta.lock().push((caller, file));
                    ServeOutcome::Continue
                } else {
                    ServeOutcome::Reply(enc_result(Err(H5Error::NotFound(file))))
                })
            }
            M_CODEC_OFFER => {
                if let Ok((file, caps)) = dec_codec_offer(&args) {
                    self.record_consumer_caps(&file, caller.rank, caps);
                }
                ServeStep::Inline(ServeOutcome::Continue)
            }
            M_INTERSECT => {
                ServeStep::Offload(Box::new(move || Payload::from(self.serve_intersect(&args))))
            }
            M_DATA => ServeStep::Offload(Box::new(move || self.serve_data(&args, caller.rank))),
            M_DATA_BATCH => {
                ServeStep::Offload(Box::new(move || self.serve_data_batch(&args, caller.rank)))
            }
            M_DONE => {
                let file = dec_done_req(&args).unwrap_or_default();
                let mut s = self.sessions.lock();
                if let Some((expected, done)) = s.open.get_mut(&file) {
                    done.insert(caller.rank);
                    if done.len() == *expected {
                        s.open.remove(&file);
                        s.completed.insert(file);
                        self.profile.lock().serve_sessions += 1;
                        obsv::counter_add(obsv::Ctr::ServeSessions, 1);
                    }
                }
                let ack = enc_result(Ok(Bytes::new()));
                ServeStep::Inline(if s.draining && s.open.is_empty() {
                    ServeOutcome::Stop(Some(ack))
                } else {
                    ServeOutcome::Reply(ack)
                })
            }
            M_SHUTDOWN => {
                let mut s = self.sessions.lock();
                s.draining = true;
                ServeStep::Inline(if s.open.is_empty() {
                    ServeOutcome::Stop(None)
                } else {
                    ServeOutcome::Continue
                })
            }
            M_STEP_SUB => ServeStep::Inline(ServeOutcome::Reply(crate::stream::serve_step_sub(
                self,
                caller.rank,
                &args,
            ))),
            M_STEP_NEXT => ServeStep::Inline(ServeOutcome::Reply(crate::stream::serve_step_next(
                self,
                caller.rank,
                &args,
            ))),
            M_STEP_ACK => ServeStep::Inline(ServeOutcome::Reply(crate::stream::serve_step_ack(
                self,
                caller.rank,
                &args,
            ))),
            m => ServeStep::Inline(ServeOutcome::Reply(enc_result(Err(H5Error::Vol(format!(
                "unknown RPC method {m}"
            )))))),
        });
        // The loop has stopped: any metadata request still parked here
        // (a consumer running ahead to a snapshot we will never close)
        // would otherwise hang its sender through our drain. Failing it
        // now surfaces the lifecycle bug on the consumer instead.
        let orphaned: Vec<(Caller, String)> = self.pending_meta.lock().drain(..).collect();
        for (caller, file) in orphaned {
            diyblk::rpc::send_reply(&self.world, caller, enc_result(Err(H5Error::NotFound(file))));
        }
        self.profile.lock().serve_seconds += sp.finish();
    }

    // -----------------------------------------------------------------
    // Consumer: open / query (Algorithm 3) / close
    // -----------------------------------------------------------------

    /// One consumer → producer RPC, honoring the file's configured retry
    /// policy (see [`LowFiveProps::set_rpc_timeout`]). Without a policy
    /// the call blocks forever, exactly like MPI. With one, a producer
    /// that died or stopped answering surfaces as
    /// [`H5Error::PeerUnavailable`] after the bounded attempts — all
    /// consumer RPCs (metadata, intersect, data) are idempotent, so
    /// resending is safe. Returns the still-encoded reply frame.
    pub(crate) fn call_producer(
        &self,
        file: &str,
        server: usize,
        method: u32,
        args: &[u8],
    ) -> H5Result<Bytes> {
        let rpc = RpcClient::new(&self.world);
        match self.props.rpc_policy_for(file) {
            None => Ok(rpc.call(server, method, args)),
            Some(policy) => rpc.call_retry(server, method, args, policy).map_err(|e| {
                H5Error::PeerUnavailable(match e {
                    RpcError::PeerDead => format!("producer world rank {server} died"),
                    RpcError::TimedOut => format!(
                        "producer world rank {server} did not answer within {:?} x{}",
                        policy.timeout, policy.attempts
                    ),
                })
            }),
        }
    }

    /// Record the generation a producer reported for `file`. Returns
    /// true — after dropping every cached lookup for the file — when it
    /// differs from the last generation that producer reported: the
    /// cached metadata and owner lists were built against a snapshot the
    /// producer has since rewritten.
    pub(crate) fn note_gen(&self, file: &str, server: usize, gen: u64) -> bool {
        let mut cache = self.fetch_cache.lock();
        match cache.gens.insert((file.to_string(), server), gen) {
            Some(old) if old != gen => {
                cache.meta.remove(file);
                cache.owners.retain(|(f, _, _), _| f != file);
                true
            }
            _ => false,
        }
    }

    /// The last generation producer world rank `server` reported for
    /// `file` on this consumer, if any reply has carried one yet. Step
    /// subscribers compare this against an announce's generation to
    /// detect a slot recycled mid-read
    /// ([`crate::stream::StepSubscription::is_torn`]).
    pub fn noted_gen(&self, file: &str, server: usize) -> Option<u64> {
        self.fetch_cache.lock().gens.get(&(file.to_string(), server)).copied()
    }

    fn consumer_open(&self, name: &str, link: &Link) -> H5Result<ObjId> {
        let sp = obsv::span(obsv::Phase::Open);
        // Pipelined fetch caches the metadata tree per file, so a reopen
        // between closes costs no round-trip. (`file_close` invalidates,
        // and opens are issued in the same program order on every
        // consumer rank, so the broadcast variant stays collective: all
        // ranks hit or all ranks miss together.)
        let caching = self.props.fetch_pipeline_for(name);
        if caching {
            if let Some(meta) = self.fetch_cache.lock().meta.get(name).cloned() {
                obsv::counter_add(obsv::Ctr::FetchCacheHits, 1);
                return self.install_remote_meta(name, link, &meta, sp);
            }
            obsv::counter_add(obsv::Ctr::FetchCacheMisses, 1);
        }
        // Advertise our codec caps in the handshake; the home producer
        // answers with the negotiated mask. The other producers learn the
        // caps from the fire-and-forget offers below.
        let caps = self.props.wire_codec_for(name).caps();
        let (home, reply) = if self.props.metadata_broadcast_for(name) {
            // Collective variant (paper §V-C): one rank fetches, the task
            // broadcasts — m−1 fewer round trips to the producers.
            // Broadcast the raw reply (including any error) so that a
            // remote failure — the producer returning an error *or* the
            // producer being gone — propagates to every rank instead of
            // leaving peers stuck in the collective.
            let home = link.remote_ranks[0];
            let reply = if self.local.rank() == 0 {
                let reply = self
                    .call_producer(name, home, M_METADATA, &enc_metadata_req(name, caps))
                    .unwrap_or_else(|e| enc_result(Err(e)));
                self.local.bcast_bytes(0, Some(reply))
            } else {
                self.local.bcast_bytes(0, None)
            };
            (home, reply)
        } else {
            // Each consumer rank has a "home" producer for metadata
            // requests, spreading the load across the producer task.
            let home = link.remote_ranks[self.local.rank() % link.remote_ranks.len()];
            (home, self.call_producer(name, home, M_METADATA, &enc_metadata_req(name, caps))?)
        };
        let (gen, mask, meta) = dec_metadata_reply(&dec_result(&reply)?)?;
        if mask & !caps != 0 {
            return Err(H5Error::Format(format!(
                "producer negotiated codec mask {mask:#x} outside our advertised caps {caps:#x}"
            )));
        }
        // Every producer rank may serve our data queries, not just the
        // home rank that answered the handshake — fan our caps out to the
        // rest as fire-and-forget offers. Per-flow FIFO ordering means an
        // offer lands before any M_DATA we send that producer afterwards;
        // a dropped offer just leaves that pair on raw.
        if caps != CAP_RAW {
            // In broadcast mode only local rank 0 performed the handshake;
            // everyone else must offer to the home producer as well.
            let handshook = !self.props.metadata_broadcast_for(name) || self.local.rank() == 0;
            let rpc = RpcClient::new(&self.world);
            let offer = enc_codec_offer(name, caps);
            for &p in &link.remote_ranks {
                if !(handshook && p == home) {
                    rpc.notify(p, M_CODEC_OFFER, &offer);
                }
            }
        }
        // Record the generation *before* caching: a bump clears stale
        // entries first, so the fresh tree is what ends up cached.
        self.note_gen(name, home, gen);
        if caching {
            self.fetch_cache.lock().meta.insert(name.to_string(), meta.clone());
        }
        self.install_remote_meta(name, link, &meta, sp)
    }

    /// Import a fetched (or cached) metadata tree into the remote
    /// hierarchy and mint the file handle.
    fn install_remote_meta(
        &self,
        name: &str,
        link: &Link,
        meta: &FileMeta,
        sp: obsv::SpanGuard,
    ) -> H5Result<ObjId> {
        let mut rs = self.remote.lock();
        if rs.hier.file(name).is_some() {
            rs.hier.remove_file(name)?;
        }
        let root = rs.hier.create_file(name)?;
        import_meta(&mut rs.hier, root, meta)?;
        rs.files.insert(name.to_string(), RemoteFileInfo { producers: link.remote_ranks.clone() });
        let id = rs.mint();
        rs.entries
            .insert(id, RemoteEntry { node: root, filename: Arc::from(name), path: String::new() });
        drop(rs);
        self.profile.lock().open_seconds += sp.finish();
        Ok(id)
    }

    /// Resolve a remote dataset handle to its location and the producer
    /// ranks serving it.
    fn remote_target(&self, dset: ObjId) -> H5Result<(NodeId, Arc<str>, String, Vec<usize>)> {
        let rs = self.remote.lock();
        let e = rs.entry(dset)?.clone();
        let info = rs
            .files
            .get(e.filename.as_ref())
            .ok_or_else(|| H5Error::NotFound(e.filename.to_string()))?;
        Ok((e.node, e.filename.clone(), e.path.clone(), info.producers.clone()))
    }

    /// Map a transport-level RPC failure on a consumer→producer call to
    /// the error consumers see, mirroring [`DistMetadataVol::call_producer`].
    fn peer_error(server: usize, policy: Option<RetryPolicy>, e: RpcError) -> H5Error {
        H5Error::PeerUnavailable(match (e, policy) {
            (RpcError::PeerDead, _) => format!("producer world rank {server} died"),
            (RpcError::TimedOut, Some(p)) => format!(
                "producer world rank {server} did not answer within {:?} x{}",
                p.timeout, p.attempts
            ),
            (RpcError::TimedOut, None) => {
                format!("producer world rank {server} did not answer")
            }
        })
    }

    fn remote_read(&self, dset: ObjId, sel: &Selection) -> H5Result<Bytes> {
        let filename = self.remote.lock().entry(dset)?.filename.clone();
        if self.props.fetch_pipeline_for(&filename) {
            let mut bufs = self.remote_read_pipelined(dset, std::slice::from_ref(sel))?;
            return Ok(bufs.pop().expect("one buffer per selection"));
        }
        self.remote_read_serial(dset, sel)
    }

    /// Read several selections of one remote dataset. With the pipeline
    /// enabled all selections share one round of redirect queries and one
    /// batched data fetch per producer; otherwise each is a serial read.
    fn remote_read_multi(&self, dset: ObjId, sels: &[Selection]) -> H5Result<Vec<Bytes>> {
        if sels.is_empty() {
            return Ok(Vec::new());
        }
        let filename = self.remote.lock().entry(dset)?.filename.clone();
        if self.props.fetch_pipeline_for(&filename) {
            return self.remote_read_pipelined(dset, sels);
        }
        sels.iter().map(|s| self.remote_read_serial(dset, s)).collect()
    }

    /// The legacy one-blocking-RPC-at-a-time read path (Algorithm 3
    /// exactly as written). Kept behind
    /// [`LowFiveProps::set_fetch_pipeline`]`(…, false)` for A/B
    /// comparison; the pipelined path must stay byte-identical to it.
    fn remote_read_serial(&self, dset: ObjId, sel: &Selection) -> H5Result<Bytes> {
        let (node, filename, path, producers) = self.remote_target(dset)?;
        let (dtype, space) = self.remote.lock().hier.dataset_meta(node)?;
        sel.validate(&space)?;
        let es = dtype.size();
        let total = (sel.npoints(&space) as usize) * es;
        let mut out = vec![0u8; total];
        if total == 0 {
            return Ok(Bytes::from(out));
        }
        let n = producers.len();
        // The whole remote read is one query span; the redirect and fetch
        // steps nest inside it, so the trace shows Algorithm 3's two round
        // trips within each dataset read.
        let _sp_query = obsv::span(obsv::Phase::Query);

        // Step 1 (redirect): ask the producers responsible for the blocks
        // of the common decomposition intersected by our bounding box
        // which producers actually hold intersecting data.
        let sp_redirect = obsv::span(obsv::Phase::Redirect);
        let owners: Vec<usize> = {
            let dims = effective_dims(&space);
            let decomp = RegularDecomposer::new(&dims, n);
            let bb = effective_bbox(sel, &space);
            let mut owners = BTreeSet::new();
            for gid in decomp.blocks_intersecting(&bb) {
                let reply = self.call_producer(
                    &filename,
                    producers[gid],
                    M_INTERSECT,
                    &enc_intersect_req(&filename, &path, &bb),
                )?;
                let (gen, ranks) = dec_intersect_reply(&dec_result(&reply)?)?;
                self.note_gen(&filename, producers[gid], gen);
                for r in ranks {
                    owners.insert(r as usize);
                }
            }
            owners.into_iter().collect()
        };
        self.profile.lock().redirect_seconds += sp_redirect.finish();

        // Step 2: fetch the data from each owner and scatter the segments
        // straight into our packed read buffer.
        let sp_fetch = obsv::span(obsv::Phase::Fetch);
        let mut fetched = 0u64;
        for p in owners {
            let reply = self.call_producer(
                &filename,
                producers[p],
                M_DATA,
                &enc_data_req(&filename, &path, sel),
            )?;
            fetched += reply.len() as u64;
            obsv::hist_record(obsv::Hist::BytesFetched, reply.len() as u64);
            let dr = dec_data_reply(&self.decode_reply_body(&filename, &dec_result(&reply)?)?)?;
            self.note_gen(&filename, producers[p], dr.gen);
            scatter_segments(&mut out, &dr, es)?;
        }
        {
            let mut p = self.profile.lock();
            p.fetch_seconds += sp_fetch.finish();
            p.bytes_fetched += fetched;
        }
        Ok(Bytes::from(out))
    }

    /// The pipelined read path: every selection's redirect queries fan
    /// out concurrently (answers assembled as they land), then each
    /// producer receives **one** `M_DATA_BATCH` frame carrying all
    /// selections it owns and the replies scatter into the packed
    /// buffers in completion order. Redirect results are cached per
    /// `(file, dataset, bbox)`, so a repeat read goes straight to the
    /// data fetch.
    ///
    /// If any reply carries a generation differing from what its
    /// producer reported before, the cached lookups this read may have
    /// used were built against a stale snapshot; [`Self::note_gen`] has
    /// already dropped them, and one clean second pass re-resolves
    /// everything against the live state.
    fn remote_read_pipelined(&self, dset: ObjId, sels: &[Selection]) -> H5Result<Vec<Bytes>> {
        let (bufs, stale) = self.remote_read_pipelined_once(dset, sels)?;
        if !stale {
            return Ok(bufs);
        }
        Ok(self.remote_read_pipelined_once(dset, sels)?.0)
    }

    fn remote_read_pipelined_once(
        &self,
        dset: ObjId,
        sels: &[Selection],
    ) -> H5Result<(Vec<Bytes>, bool)> {
        let (node, filename, path, producers) = self.remote_target(dset)?;
        let (dtype, space) = self.remote.lock().hier.dataset_meta(node)?;
        let es = dtype.size();
        let mut outs: Vec<Vec<u8>> = Vec::with_capacity(sels.len());
        for sel in sels {
            sel.validate(&space)?;
            outs.push(vec![0u8; (sel.npoints(&space) as usize) * es]);
        }
        let n = producers.len();
        let policy = self.props.rpc_policy_for(&filename);
        let rpc = RpcClient::new(&self.world);
        let _sp_query = obsv::span(obsv::Phase::Query);

        // Step 1 (redirect), skipped per selection on a cache hit.
        let sp_redirect = obsv::span(obsv::Phase::Redirect);
        let dims = effective_dims(&space);
        let decomp = RegularDecomposer::new(&dims, n);
        let bbs: Vec<BBox> = sels.iter().map(|s| effective_bbox(s, &space)).collect();
        let mut owners: Vec<Option<Vec<usize>>> = vec![None; sels.len()];
        {
            let cache = self.fetch_cache.lock();
            for (i, bb) in bbs.iter().enumerate() {
                if outs[i].is_empty() {
                    // Empty selection: nothing to fetch, no query needed.
                    owners[i] = Some(Vec::new());
                    continue;
                }
                let key = (filename.to_string(), path.clone(), bb.clone());
                if let Some(o) = cache.owners.get(&key) {
                    obsv::counter_add(obsv::Ctr::FetchCacheHits, 1);
                    owners[i] = Some(o.clone());
                } else {
                    obsv::counter_add(obsv::Ctr::FetchCacheMisses, 1);
                }
            }
        }
        let mut calls: Vec<Call> = Vec::new();
        let mut call_sel: Vec<usize> = Vec::new();
        for (i, bb) in bbs.iter().enumerate() {
            if owners[i].is_some() {
                continue;
            }
            for gid in decomp.blocks_intersecting(bb) {
                calls.push(Call::new(
                    producers[gid],
                    M_INTERSECT,
                    enc_intersect_req(&filename, &path, bb),
                ));
                call_sel.push(i);
            }
        }
        let mut stale = false;
        if !calls.is_empty() {
            let mut sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); sels.len()];
            let mut first_err: Option<H5Error> = None;
            rpc.call_many(&calls, policy, |k, r| {
                let decoded = r
                    .map_err(|e| Self::peer_error(calls[k].server, policy, e))
                    .and_then(|reply| dec_intersect_reply(&dec_result(&reply.into_bytes())?));
                match decoded {
                    Ok((gen, ranks)) => {
                        stale |= self.note_gen(&filename, calls[k].server, gen);
                        sets[call_sel[k]].extend(ranks.iter().map(|&x| x as usize));
                    }
                    Err(e) => first_err = first_err.take().or(Some(e)),
                }
            });
            if let Some(e) = first_err {
                return Err(e);
            }
            let mut cache = self.fetch_cache.lock();
            for (i, bb) in bbs.iter().enumerate() {
                if owners[i].is_none() {
                    let list: Vec<usize> = sets[i].iter().copied().collect();
                    cache
                        .owners
                        .insert((filename.to_string(), path.clone(), bb.clone()), list.clone());
                    owners[i] = Some(list);
                }
            }
        }
        self.profile.lock().redirect_seconds += sp_redirect.finish();

        // Step 2 (fetch): group the selections by owning producer, one
        // batched frame each, all in flight at once.
        let sp_fetch = obsv::span(obsv::Phase::Fetch);
        let mut per_prod: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, o) in owners.iter().enumerate() {
            for &p in o.as_ref().expect("owners resolved above") {
                per_prod.entry(p).or_default().push(i);
            }
        }
        let mut calls: Vec<Call> = Vec::new();
        let mut call_sels: Vec<Vec<usize>> = Vec::new();
        for (&p, sel_ids) in &per_prod {
            let entries: Vec<(String, Selection)> =
                sel_ids.iter().map(|&i| (path.clone(), sels[i].clone())).collect();
            obsv::hist_record(obsv::Hist::FetchBatchEntries, entries.len() as u64);
            calls.push(Call::new(
                producers[p],
                M_DATA_BATCH,
                enc_data_req_batch(&filename, &entries),
            ));
            call_sels.push(sel_ids.clone());
        }
        obsv::counter_add(obsv::Ctr::FetchBatches, calls.len() as u64);
        let mut fetched = 0u64;
        let mut first_err: Option<H5Error> = None;
        rpc.call_many(&calls, policy, |k, r| {
            // The reply is walked in place with a [`PayloadReader`]: the
            // header runs are peeked across part boundaries and each
            // segment's bytes are copied straight from the (possibly
            // borrowed-on-the-producer) reply parts into their slot of the
            // packed destination — the one copy of the zero-copy path.
            let scattered =
                r.map_err(|e| Self::peer_error(calls[k].server, policy, e)).and_then(|reply| {
                    fetched += reply.len() as u64;
                    obsv::hist_record(obsv::Hist::BytesFetched, reply.len() as u64);
                    let mut pr = PayloadReader::new(
                        self.decode_reply_payload(&filename, dec_result_payload(reply)?)?,
                    );
                    let count = pr.get_u64()? as usize;
                    if count != call_sels[k].len() {
                        return Err(H5Error::Format(format!(
                            "batch reply carries {} bodies for {} entries",
                            count,
                            call_sels[k].len()
                        )));
                    }
                    for &i in &call_sels[k] {
                        let (gen, segs, blob_len) = get_data_reply_header(&mut pr)?;
                        stale |= self.note_gen(&filename, calls[k].server, gen);
                        scatter_payload(&mut pr, &mut outs[i], &segs, blob_len, es)?;
                    }
                    if pr.remaining() != 0 {
                        return Err(H5Error::Format(format!(
                            "{} trailing bytes after batch reply",
                            pr.remaining()
                        )));
                    }
                    Ok(())
                });
            if let Err(e) = scattered {
                first_err = first_err.take().or(Some(e));
            }
        });
        if let Some(e) = first_err {
            return Err(e);
        }
        {
            let mut p = self.profile.lock();
            p.fetch_seconds += sp_fetch.finish();
            p.bytes_fetched += fetched;
        }
        Ok((outs.into_iter().map(Bytes::from).collect(), stale))
    }

    fn consumer_close(&self, file: ObjId) -> H5Result<()> {
        let (filename, producers) = {
            let mut rs = self.remote.lock();
            let e = rs.entry(file)?.clone();
            let producers =
                rs.files.get(e.filename.as_ref()).map(|i| i.producers.clone()).unwrap_or_default();
            rs.entries.remove(&file);
            (e.filename, producers)
        };
        // Closing ends this consumer's view of the snapshot: drop every
        // cached lookup for the file so a later open (possibly of a
        // rewritten file with the same name) refetches.
        {
            let mut cache = self.fetch_cache.lock();
            cache.meta.remove(filename.as_ref());
            cache.owners.retain(|(f, _, _), _| f.as_str() != filename.as_ref());
        }
        for p in producers {
            // DONE is a *call*, not a notification: the producer's serve
            // loop counts it toward session completion, so a dropped
            // message would leave the producer waiting forever. Awaiting
            // the ack (resent under the file's retry policy) closes that
            // hole; a producer that already died is best-effort.
            let _ = self.call_producer(&filename, p, M_DONE, &enc_done_req(&filename));
        }
        Ok(())
    }
}

/// Apply one frame-decoded data reply body: copy each segment's bytes
/// off the front of the reply payload straight into its slot of the
/// packed destination, leaving the cursor at the next batch entry.
/// Bounds are checked so a corrupt reply surfaces as a format error
/// instead of a panic.
fn scatter_payload(
    pr: &mut PayloadReader,
    out: &mut [u8],
    segs: &[(u64, u64)],
    blob_len: usize,
    es: usize,
) -> H5Result<()> {
    let mut cum = 0usize;
    for &(off, len) in segs {
        let nb = (len as usize) * es;
        let dst = (off as usize) * es;
        if dst + nb > out.len() || cum + nb > blob_len {
            return Err(H5Error::Format("data reply segment out of bounds".into()));
        }
        pr.copy_into(&mut out[dst..dst + nb])?;
        cum += nb;
    }
    pr.skip(blob_len - cum)
}

/// Apply one data reply to a packed destination buffer: copy each
/// segment's payload to its element offset. Bounds are checked so a
/// corrupt reply surfaces as a format error instead of a panic.
fn scatter_segments(out: &mut [u8], dr: &DataReply, es: usize) -> H5Result<()> {
    let mut cum = 0usize;
    for &(off, len) in &dr.segs {
        let nb = (len as usize) * es;
        let dst = (off as usize) * es;
        if dst + nb > out.len() || cum + nb > dr.blob.len() {
            return Err(H5Error::Format("data reply segment out of bounds".into()));
        }
        out[dst..dst + nb].copy_from_slice(&dr.blob[cum..cum + nb]);
        cum += nb;
    }
    Ok(())
}

/// Dimensions used for decomposition: scalar spaces act as 1-element 1-d.
fn effective_dims(space: &Dataspace) -> Vec<u64> {
    if space.rank() == 0 {
        vec![1]
    } else {
        space.dims().to_vec()
    }
}

/// Bounding box used for decomposition, lifted to 1-d for scalar spaces.
fn effective_bbox(sel: &Selection, space: &Dataspace) -> BBox {
    if space.rank() == 0 {
        BBox::new(vec![0], vec![1])
    } else {
        sel.bbox(space)
    }
}

impl Vol for DistMetadataVol {
    fn vol_name(&self) -> &'static str {
        "lowfive-distributed"
    }

    fn file_create(&self, name: &str) -> H5Result<ObjId> {
        // A recreated file is no longer safe to serve from old state.
        if self.async_serve {
            self.sessions.lock().completed.remove(name);
            // A recycled step slot stops being serveable until the next
            // publish re-announces it (metadata requests meanwhile park
            // in pending_meta and are flushed by the slot's next close).
            self.stream.lock().serveable.remove(name);
        }
        self.meta.file_create(name)
    }

    fn file_open(&self, name: &str) -> H5Result<ObjId> {
        if let Some(link) = self.consume_link_for(name) {
            if self.props.memory_for(name) {
                let link = link.clone();
                return self.consumer_open(name, &link);
            }
            // File mode on a consume link: the file comes from a peer task
            // that may still be writing it. Poll until it opens as a
            // complete file (bounded), mirroring the blocking semantics of
            // the in-memory open. The budget honors the file's configured
            // RPC policy (`set_rpc_timeout` x `set_rpc_retries`), falling
            // back to the historical 120 s default when none is set.
            let policy = self.props.rpc_policy_for(name);
            let budget = policy
                .map(|p| p.timeout.saturating_mul(p.attempts.max(1)))
                .unwrap_or(std::time::Duration::from_secs(120));
            let deadline = std::time::Instant::now() + budget;
            loop {
                match self.meta.file_open(name) {
                    Ok(id) => return Ok(id),
                    Err(e) if std::time::Instant::now() >= deadline => {
                        // With an explicit policy this is the same "peer
                        // did not deliver in time" condition as a memory-
                        // mode RPC timeout; surface it the same way.
                        return Err(match policy {
                            Some(p) => H5Error::PeerUnavailable(format!(
                                "file {name:?} was not completely written within \
                                 {:?} x{} ({e})",
                                p.timeout, p.attempts
                            )),
                            None => e,
                        });
                    }
                    Err(H5Error::Io(_)) | Err(H5Error::Format(_)) => {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        self.meta.file_open(name)
    }

    fn file_close(&self, file: ObjId) -> H5Result<()> {
        if file & REMOTE_BIT != 0 {
            return self.consumer_close(file);
        }
        let filename = self.meta.filename_of(file)?;
        // Only a write session's close triggers index+serve; closing a
        // re-opened (read) handle must not re-serve the file.
        let created = self.meta.was_created(file)?;
        self.meta.file_close(file)?;
        if created && self.props.memory_for(&filename) {
            self.producer_close(&filename)?;
        }
        Ok(())
    }

    fn group_create(&self, parent: ObjId, name: &str) -> H5Result<ObjId> {
        if parent & REMOTE_BIT != 0 {
            return Err(H5Error::Vol("consumed files are read-only".into()));
        }
        self.meta.group_create(parent, name)
    }

    fn open_path(&self, parent: ObjId, path: &str) -> H5Result<ObjId> {
        if parent & REMOTE_BIT == 0 {
            return self.meta.open_path(parent, path);
        }
        let mut rs = self.remote.lock();
        let e = rs.entry(parent)?.clone();
        let node = rs.hier.resolve(e.node, path)?;
        let joined = path.split('/').filter(|s| !s.is_empty()).fold(e.path.clone(), |acc, part| {
            if acc.is_empty() {
                part.to_string()
            } else {
                format!("{acc}/{part}")
            }
        });
        let id = rs.mint();
        rs.entries.insert(id, RemoteEntry { node, filename: e.filename, path: joined });
        Ok(id)
    }

    fn dataset_create(
        &self,
        parent: ObjId,
        name: &str,
        dtype: &Datatype,
        space: &Dataspace,
    ) -> H5Result<ObjId> {
        if parent & REMOTE_BIT != 0 {
            return Err(H5Error::Vol("consumed files are read-only".into()));
        }
        self.meta.dataset_create(parent, name, dtype, space)
    }

    fn dataset_create_chunked(
        &self,
        parent: ObjId,
        name: &str,
        dtype: &Datatype,
        space: &Dataspace,
        chunk: &[u64],
    ) -> H5Result<ObjId> {
        if parent & REMOTE_BIT != 0 {
            return Err(H5Error::Vol("consumed files are read-only".into()));
        }
        self.meta.dataset_create_chunked(parent, name, dtype, space, chunk)
    }

    fn dataset_extend(&self, dset: ObjId, new_dims: &[u64]) -> H5Result<()> {
        if dset & REMOTE_BIT != 0 {
            return Err(H5Error::Vol("consumed files are read-only".into()));
        }
        self.meta.dataset_extend(dset, new_dims)
    }

    fn dataset_chunk(&self, dset: ObjId) -> H5Result<Option<Vec<u64>>> {
        if dset & REMOTE_BIT != 0 {
            let rs = self.remote.lock();
            let node = rs.entry(dset)?.node;
            return rs.hier.dataset_chunk(node);
        }
        self.meta.dataset_chunk(dset)
    }

    fn dataset_meta(&self, dset: ObjId) -> H5Result<(Datatype, Dataspace)> {
        if dset & REMOTE_BIT != 0 {
            let rs = self.remote.lock();
            let node = rs.entry(dset)?.node;
            return rs.hier.dataset_meta(node);
        }
        self.meta.dataset_meta(dset)
    }

    fn dataset_write(
        &self,
        dset: ObjId,
        file_sel: &Selection,
        data: Bytes,
        ownership: Ownership,
    ) -> H5Result<()> {
        if dset & REMOTE_BIT != 0 {
            return Err(H5Error::Vol("consumed files are read-only".into()));
        }
        self.meta.dataset_write(dset, file_sel, data, ownership)
    }

    fn dataset_read(&self, dset: ObjId, file_sel: &Selection) -> H5Result<Bytes> {
        if dset & REMOTE_BIT != 0 {
            return self.remote_read(dset, file_sel);
        }
        self.meta.dataset_read(dset, file_sel)
    }

    fn dataset_read_multi(&self, dset: ObjId, file_sels: &[Selection]) -> H5Result<Vec<Bytes>> {
        if dset & REMOTE_BIT != 0 {
            return self.remote_read_multi(dset, file_sels);
        }
        self.meta.dataset_read_multi(dset, file_sels)
    }

    fn attr_write(&self, obj: ObjId, name: &str, dtype: &Datatype, data: Bytes) -> H5Result<()> {
        if obj & REMOTE_BIT != 0 {
            return Err(H5Error::Vol("consumed files are read-only".into()));
        }
        self.meta.attr_write(obj, name, dtype, data)
    }

    fn attr_read(&self, obj: ObjId, name: &str) -> H5Result<(Datatype, Bytes)> {
        if obj & REMOTE_BIT != 0 {
            let rs = self.remote.lock();
            let node = rs.entry(obj)?.node;
            return rs.hier.attr(node, name);
        }
        self.meta.attr_read(obj, name)
    }

    fn list(&self, obj: ObjId) -> H5Result<Vec<(String, ObjKind)>> {
        if obj & REMOTE_BIT != 0 {
            let rs = self.remote.lock();
            let node = rs.entry(obj)?.node;
            return Ok(rs.hier.children_of(node));
        }
        self.meta.list(obj)
    }

    fn obj_kind(&self, obj: ObjId) -> H5Result<ObjKind> {
        if obj & REMOTE_BIT != 0 {
            let rs = self.remote.lock();
            let node = rs.entry(obj)?.node;
            return Ok(rs.hier.node(node).obj_kind());
        }
        self.meta.obj_kind(obj)
    }

    fn object_close(&self, obj: ObjId) -> H5Result<()> {
        if obj & REMOTE_BIT != 0 {
            self.remote.lock().entries.remove(&obj);
            return Ok(());
        }
        self.meta.object_close(obj)
    }
}
