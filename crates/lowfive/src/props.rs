//! LowFive configuration properties.
//!
//! Real LowFive is configured per (file pattern, dataset pattern):
//! `set_memory`, `set_passthru`, and `set_zerocopy` select, at per-dataset
//! granularity, whether data flow in memory, to physical storage, or both,
//! and whether the in-memory copy is deep or shallow. This module
//! reproduces that surface with simple `*`/`?` glob patterns; the last
//! matching rule wins.

use std::time::Duration;

use diyblk::RetryPolicy;
use minih5::Ownership;

use crate::protocol::WireCodec;

/// What a producer's `publish` does when a stream series' bounded step
/// queue is full (see `crate::stream` and `docs/STREAMING.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackPressure {
    /// `publish` blocks until the slowest subscribed consumer retires a
    /// step. Lossless: every consumer sees every step.
    #[default]
    Block,
    /// `publish` evicts the oldest retained step and proceeds at full
    /// rate. Slow consumers observe gaps (counted as `steps_dropped`).
    DropOldest,
}

/// Size of the producer-side serve worker pool (see
/// [`LowFiveProps::set_serve_workers`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeWorkers {
    /// Exactly this many worker threads; `Fixed(1)` (or `Fixed(0)`) is
    /// the serial dispatcher-only loop — today's behavior.
    Fixed(usize),
    /// One worker per available core
    /// (`std::thread::available_parallelism`), minimum 1.
    Auto,
    /// Serial serve loop (the default): equivalent to `Fixed(1)`.
    #[default]
    Serial,
}

impl ServeWorkers {
    /// Resolve to a concrete worker count (>= 1).
    pub fn resolve(self) -> usize {
        match self {
            ServeWorkers::Fixed(n) => n.max(1),
            ServeWorkers::Auto => {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            }
            ServeWorkers::Serial => 1,
        }
    }
}

#[derive(Debug, Clone)]
enum Action {
    Memory(bool),
    Passthrough(bool),
    Zerocopy(bool),
    MetadataBroadcast(bool),
    RpcTimeout(Option<Duration>),
    RpcRetries(u32),
    FetchPipeline(bool),
    StreamQueueDepth(usize),
    StreamBackpressure(BackPressure),
    WireCodecPolicy(WireCodec),
    ServeWorkersPolicy(ServeWorkers),
    GatherCost(f64),
}

#[derive(Debug, Clone)]
struct Rule {
    file_pat: String,
    dset_pat: String,
    action: Action,
}

/// Per-file / per-dataset transport configuration.
///
/// Defaults: memory mode **on**, passthrough (file I/O) **off**, deep
/// copies.
#[derive(Debug, Clone, Default)]
pub struct LowFiveProps {
    rules: Vec<Rule>,
}

impl LowFiveProps {
    /// Empty property list: every knob at its documented default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable/disable in-memory transport for files matching `file_pat`.
    pub fn set_memory(&mut self, file_pat: &str, on: bool) -> &mut Self {
        self.rules.push(Rule {
            file_pat: file_pat.to_string(),
            dset_pat: "*".to_string(),
            action: Action::Memory(on),
        });
        self
    }

    /// Enable/disable passthrough to physical storage for files matching
    /// `file_pat`.
    pub fn set_passthrough(&mut self, file_pat: &str, on: bool) -> &mut Self {
        self.rules.push(Rule {
            file_pat: file_pat.to_string(),
            dset_pat: "*".to_string(),
            action: Action::Passthrough(on),
        });
        self
    }

    /// Enable/disable zero-copy (shallow) in-memory regions for datasets
    /// matching `(file_pat, dset_pat)`.
    pub fn set_zerocopy(&mut self, file_pat: &str, dset_pat: &str, on: bool) -> &mut Self {
        self.rules.push(Rule {
            file_pat: file_pat.to_string(),
            dset_pat: dset_pat.to_string(),
            action: Action::Zerocopy(on),
        });
        self
    }

    /// Fetch file metadata once per consumer *task* (local rank 0 queries
    /// a producer, then broadcasts) instead of once per consumer *rank*.
    ///
    /// This implements the paper's future-work direction of replacing
    /// point-to-point exchanges with collectives where profitable
    /// (§V-C). When enabled, `file_open` on a consume link becomes a
    /// collective call over the consumer task.
    pub fn set_metadata_broadcast(&mut self, file_pat: &str, on: bool) -> &mut Self {
        self.rules.push(Rule {
            file_pat: file_pat.to_string(),
            dset_pat: "*".to_string(),
            action: Action::MetadataBroadcast(on),
        });
        self
    }

    /// Bound every consumer-side RPC against producers of files matching
    /// `file_pat` to `timeout` per attempt (`None` restores the default:
    /// block forever, like MPI). When a bound is set, a producer that dies
    /// or stalls surfaces as [`minih5::H5Error::PeerUnavailable`] instead
    /// of hanging the consumer.
    pub fn set_rpc_timeout(&mut self, file_pat: &str, timeout: Option<Duration>) -> &mut Self {
        self.rules.push(Rule {
            file_pat: file_pat.to_string(),
            dset_pat: "*".to_string(),
            action: Action::RpcTimeout(timeout),
        });
        self
    }

    /// Number of *extra* attempts (beyond the first) for idempotent
    /// consumer RPCs — metadata, intersect, and data queries — against
    /// producers of files matching `file_pat`. Only meaningful together
    /// with [`LowFiveProps::set_rpc_timeout`]; retries of a call that
    /// never times out never happen.
    pub fn set_rpc_retries(&mut self, file_pat: &str, retries: u32) -> &mut Self {
        self.rules.push(Rule {
            file_pat: file_pat.to_string(),
            dset_pat: "*".to_string(),
            action: Action::RpcRetries(retries),
        });
        self
    }

    /// Enable/disable the pipelined consumer fetch path for files
    /// matching `file_pat` (default **on**).
    ///
    /// Pipelined reads fan redirect and data queries out to every
    /// intersecting producer concurrently (one batched `M_DATA_BATCH`
    /// frame per producer) and cache intersect results per
    /// `(file, dataset, bbox)`; turning the knob off restores the
    /// serial one-blocking-RPC-per-producer path, which is retained for
    /// A/B comparison and debugging.
    pub fn set_fetch_pipeline(&mut self, file_pat: &str, on: bool) -> &mut Self {
        self.rules.push(Rule {
            file_pat: file_pat.to_string(),
            dset_pat: "*".to_string(),
            action: Action::FetchPipeline(on),
        });
        self
    }

    /// Bound the number of unretired steps a stream series matching
    /// `file_pat` retains (default **4**, minimum 1). Match against the
    /// *series* name, not the per-step slot filenames derived from it.
    pub fn set_stream_queue_depth(&mut self, file_pat: &str, depth: usize) -> &mut Self {
        self.rules.push(Rule {
            file_pat: file_pat.to_string(),
            dset_pat: "*".to_string(),
            action: Action::StreamQueueDepth(depth.max(1)),
        });
        self
    }

    /// Select what `publish` does when the step queue of a series
    /// matching `file_pat` is full (default [`BackPressure::Block`]).
    pub fn set_stream_backpressure(&mut self, file_pat: &str, mode: BackPressure) -> &mut Self {
        self.rules.push(Rule {
            file_pat: file_pat.to_string(),
            dset_pat: "*".to_string(),
            action: Action::StreamBackpressure(mode),
        });
        self
    }

    /// Override the wire-codec policy for data replies of files matching
    /// `file_pat` (default [`WireCodec::Auto`]: the sender's cost model
    /// decides per frame). Both sides consult it — as the capability
    /// bitmask a consumer advertises at open/subscribe time, and as the
    /// producer-side cap intersected into the negotiated mask. Forcing
    /// [`WireCodec::Rle`] or [`WireCodec::DeltaRle`] skips the cost-model
    /// check but still ships raw when compression fails to shrink a body.
    pub fn set_wire_codec(&mut self, file_pat: &str, codec: WireCodec) -> &mut Self {
        self.rules.push(Rule {
            file_pat: file_pat.to_string(),
            dset_pat: "*".to_string(),
            action: Action::WireCodecPolicy(codec),
        });
        self
    }

    /// Size the serve engine's worker pool for files matching `file_pat`
    /// (default [`ServeWorkers::Serial`]: the single-threaded dispatcher
    /// loop, exactly the pre-pool behavior). With two or more workers,
    /// data-plane requests (`M_INTERSECT`/`M_DATA`/`M_DATA_BATCH`) are
    /// executed and replied from a bounded worker pool while control-plane
    /// requests stay on the dispatcher; replies are matched by call id, so
    /// consumers observe no semantic difference — only less queueing
    /// behind other consumers' gather/encode time.
    pub fn set_serve_workers(&mut self, file_pat: &str, workers: ServeWorkers) -> &mut Self {
        self.rules.push(Rule {
            file_pat: file_pat.to_string(),
            dset_pat: "*".to_string(),
            action: Action::ServeWorkersPolicy(workers),
        });
        self
    }

    /// Model the producer-side cost of gathering a deep-copy region as
    /// `ns_per_byte` nanoseconds per gathered byte (default `0.0`: no
    /// modeled cost). Like the interconnect [`simmpi::CostModel`], this
    /// injects real sleeps so fan-in contention on the serve path shows up
    /// in wall-clock measurements; the shallow zero-copy lend path never
    /// pays it. Bench scenarios use it to emulate expensive gathers
    /// (strided/compressed source layouts) on fast development hardware.
    pub fn set_gather_cost(&mut self, file_pat: &str, ns_per_byte: f64) -> &mut Self {
        self.rules.push(Rule {
            file_pat: file_pat.to_string(),
            dset_pat: "*".to_string(),
            action: Action::GatherCost(ns_per_byte),
        });
        self
    }

    /// Effective serve worker-pool size for `file` (resolved to >= 1).
    pub fn serve_workers_for(&self, file: &str) -> usize {
        let mut policy = ServeWorkers::Serial;
        for r in &self.rules {
            if let Action::ServeWorkersPolicy(v) = r.action {
                if glob_match(&r.file_pat, file) {
                    policy = v;
                }
            }
        }
        policy.resolve()
    }

    /// Effective modeled gather cost for `file`, ns per deep-copied byte.
    pub fn gather_cost_for(&self, file: &str) -> f64 {
        let mut ns_per_byte = 0.0;
        for r in &self.rules {
            if let Action::GatherCost(v) = r.action {
                if glob_match(&r.file_pat, file) {
                    ns_per_byte = v;
                }
            }
        }
        ns_per_byte
    }

    /// Effective wire-codec policy for `file`.
    pub fn wire_codec_for(&self, file: &str) -> WireCodec {
        let mut codec = WireCodec::Auto;
        for r in &self.rules {
            if let Action::WireCodecPolicy(v) = r.action {
                if glob_match(&r.file_pat, file) {
                    codec = v;
                }
            }
        }
        codec
    }

    /// Effective step-queue depth for stream series `file`.
    pub fn stream_queue_depth_for(&self, file: &str) -> usize {
        let mut depth = 4;
        for r in &self.rules {
            if let Action::StreamQueueDepth(v) = r.action {
                if glob_match(&r.file_pat, file) {
                    depth = v;
                }
            }
        }
        depth
    }

    /// Effective back-pressure mode for stream series `file`.
    pub fn stream_backpressure_for(&self, file: &str) -> BackPressure {
        let mut mode = BackPressure::Block;
        for r in &self.rules {
            if let Action::StreamBackpressure(v) = r.action {
                if glob_match(&r.file_pat, file) {
                    mode = v;
                }
            }
        }
        mode
    }

    /// Should remote reads of `file` use the pipelined fetch path?
    pub fn fetch_pipeline_for(&self, file: &str) -> bool {
        let mut on = true;
        for r in &self.rules {
            if let Action::FetchPipeline(v) = r.action {
                if glob_match(&r.file_pat, file) {
                    on = v;
                }
            }
        }
        on
    }

    /// Effective retry policy for consumer RPCs on `file`: `None` means
    /// no timeout configured — block forever (the default).
    pub fn rpc_policy_for(&self, file: &str) -> Option<RetryPolicy> {
        let mut timeout = None;
        let mut retries = 0u32;
        for r in &self.rules {
            match r.action {
                Action::RpcTimeout(v) if glob_match(&r.file_pat, file) => timeout = v,
                Action::RpcRetries(v) if glob_match(&r.file_pat, file) => retries = v,
                _ => {}
            }
        }
        timeout.map(|t| RetryPolicy::new(retries + 1, t))
    }

    /// Should consumers of `file` broadcast metadata instead of each rank
    /// fetching it?
    pub fn metadata_broadcast_for(&self, file: &str) -> bool {
        let mut on = false;
        for r in &self.rules {
            if let Action::MetadataBroadcast(v) = r.action {
                if glob_match(&r.file_pat, file) {
                    on = v;
                }
            }
        }
        on
    }

    /// Should `file` use in-memory transport?
    pub fn memory_for(&self, file: &str) -> bool {
        let mut on = true;
        for r in &self.rules {
            if let Action::Memory(v) = r.action {
                if glob_match(&r.file_pat, file) {
                    on = v;
                }
            }
        }
        on
    }

    /// Should `file` also (or instead) go to physical storage?
    pub fn passthrough_for(&self, file: &str) -> bool {
        let mut on = false;
        for r in &self.rules {
            if let Action::Passthrough(v) = r.action {
                if glob_match(&r.file_pat, file) {
                    on = v;
                }
            }
        }
        on
    }

    /// Ownership for a write into `(file, dset)`; `requested` is what the
    /// caller passed through the API and is used when no rule matches.
    pub fn ownership_for(&self, file: &str, dset: &str, requested: Ownership) -> Ownership {
        let mut own = requested;
        for r in &self.rules {
            if let Action::Zerocopy(v) = r.action {
                if glob_match(&r.file_pat, file) && glob_match(&r.dset_pat, dset) {
                    own = if v { Ownership::Shallow } else { Ownership::Deep };
                }
            }
        }
        own
    }
}

/// Glob match supporting `*` (any sequence) and `?` (any one char).
pub fn glob_match(pattern: &str, s: &str) -> bool {
    fn inner(p: &[u8], s: &[u8]) -> bool {
        match (p.first(), s.first()) {
            (None, None) => true,
            (Some(b'*'), _) => inner(&p[1..], s) || (!s.is_empty() && inner(p, &s[1..])),
            (Some(b'?'), Some(_)) => inner(&p[1..], &s[1..]),
            (Some(a), Some(b)) if a == b => inner(&p[1..], &s[1..]),
            _ => false,
        }
    }
    inner(pattern.as_bytes(), s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_basics() {
        assert!(glob_match("*", "anything"));
        assert!(glob_match("*.h5", "step1.h5"));
        assert!(!glob_match("*.h5", "step1.nh5x"));
        assert!(glob_match("step?.h5", "step3.h5"));
        assert!(!glob_match("step?.h5", "step12.h5"));
        assert!(glob_match("a*b*c", "aXXbYYc"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
    }

    #[test]
    fn defaults() {
        let p = LowFiveProps::new();
        assert!(p.memory_for("f.h5"));
        assert!(!p.passthrough_for("f.h5"));
        assert_eq!(p.ownership_for("f.h5", "d", Ownership::Deep), Ownership::Deep);
        assert_eq!(p.ownership_for("f.h5", "d", Ownership::Shallow), Ownership::Shallow);
    }

    #[test]
    fn last_matching_rule_wins() {
        let mut p = LowFiveProps::new();
        p.set_memory("*", false).set_memory("outputs/*", true);
        assert!(!p.memory_for("scratch.h5"));
        assert!(p.memory_for("outputs/step1.h5"));
    }

    #[test]
    fn file_mode_configuration() {
        // The paper's "file mode": memory off, passthrough on.
        let mut p = LowFiveProps::new();
        p.set_memory("*", false).set_passthrough("*", true);
        assert!(!p.memory_for("x.h5"));
        assert!(p.passthrough_for("x.h5"));
    }

    #[test]
    fn rpc_policy_defaults_to_blocking() {
        let p = LowFiveProps::new();
        assert!(p.rpc_policy_for("f.h5").is_none());
    }

    #[test]
    fn rpc_policy_composes_timeout_and_retries() {
        let mut p = LowFiveProps::new();
        p.set_rpc_timeout("*.h5", Some(Duration::from_millis(250)));
        p.set_rpc_retries("*.h5", 3);
        let pol = p.rpc_policy_for("a.h5").expect("timeout set");
        assert_eq!(pol.attempts, 4); // first try + 3 retries
        assert_eq!(pol.timeout, Duration::from_millis(250));
        assert!(p.rpc_policy_for("other.bin").is_none(), "pattern-scoped");
        // A later rule can turn the bound back off.
        p.set_rpc_timeout("a.h5", None);
        assert!(p.rpc_policy_for("a.h5").is_none());
    }

    #[test]
    fn fetch_pipeline_defaults_on_and_is_pattern_scoped() {
        let p = LowFiveProps::new();
        assert!(p.fetch_pipeline_for("f.h5"));
        let mut p = LowFiveProps::new();
        p.set_fetch_pipeline("legacy/*", false);
        assert!(!p.fetch_pipeline_for("legacy/step1.h5"));
        assert!(p.fetch_pipeline_for("outputs/step1.h5"));
        // Last matching rule wins.
        p.set_fetch_pipeline("*", true);
        assert!(p.fetch_pipeline_for("legacy/step1.h5"));
    }

    #[test]
    fn stream_knobs_default_and_pattern_scope() {
        let p = LowFiveProps::new();
        assert_eq!(p.stream_queue_depth_for("sim.h5"), 4);
        assert_eq!(p.stream_backpressure_for("sim.h5"), BackPressure::Block);

        let mut p = LowFiveProps::new();
        p.set_stream_queue_depth("sim*", 2);
        p.set_stream_backpressure("sim*", BackPressure::DropOldest);
        assert_eq!(p.stream_queue_depth_for("sim.h5"), 2);
        assert_eq!(p.stream_backpressure_for("sim.h5"), BackPressure::DropOldest);
        assert_eq!(p.stream_queue_depth_for("other.h5"), 4);
        assert_eq!(p.stream_backpressure_for("other.h5"), BackPressure::Block);
        // Last matching rule wins; depth is clamped to at least one slot.
        p.set_stream_queue_depth("*", 0);
        assert_eq!(p.stream_queue_depth_for("sim.h5"), 1);
    }

    #[test]
    fn wire_codec_defaults_auto_and_is_pattern_scoped() {
        let p = LowFiveProps::new();
        assert_eq!(p.wire_codec_for("f.h5"), WireCodec::Auto);
        let mut p = LowFiveProps::new();
        p.set_wire_codec("grid/*", WireCodec::DeltaRle);
        p.set_wire_codec("*.bin", WireCodec::Raw);
        assert_eq!(p.wire_codec_for("grid/step1.h5"), WireCodec::DeltaRle);
        assert_eq!(p.wire_codec_for("blob.bin"), WireCodec::Raw);
        assert_eq!(p.wire_codec_for("other.h5"), WireCodec::Auto);
        // Last matching rule wins.
        p.set_wire_codec("*", WireCodec::Rle);
        assert_eq!(p.wire_codec_for("grid/step1.h5"), WireCodec::Rle);
    }

    #[test]
    fn serve_workers_default_serial_and_pattern_scoped() {
        let p = LowFiveProps::new();
        assert_eq!(p.serve_workers_for("f.h5"), 1);

        let mut p = LowFiveProps::new();
        p.set_serve_workers("grid/*", ServeWorkers::Fixed(4));
        assert_eq!(p.serve_workers_for("grid/step1.h5"), 4);
        assert_eq!(p.serve_workers_for("other.h5"), 1);
        // Fixed(0) clamps to the serial loop; Auto resolves to >= 1.
        p.set_serve_workers("grid/*", ServeWorkers::Fixed(0));
        assert_eq!(p.serve_workers_for("grid/step1.h5"), 1);
        p.set_serve_workers("grid/*", ServeWorkers::Auto);
        assert!(p.serve_workers_for("grid/step1.h5") >= 1);
        // Last matching rule wins.
        p.set_serve_workers("*", ServeWorkers::Fixed(2));
        assert_eq!(p.serve_workers_for("grid/step1.h5"), 2);
    }

    #[test]
    fn gather_cost_defaults_to_zero_and_is_pattern_scoped() {
        let p = LowFiveProps::new();
        assert_eq!(p.gather_cost_for("f.h5"), 0.0);
        let mut p = LowFiveProps::new();
        p.set_gather_cost("deep/*", 12.5);
        assert_eq!(p.gather_cost_for("deep/step1.h5"), 12.5);
        assert_eq!(p.gather_cost_for("other.h5"), 0.0);
        p.set_gather_cost("deep/*", 0.0);
        assert_eq!(p.gather_cost_for("deep/step1.h5"), 0.0);
    }

    #[test]
    fn zerocopy_per_dataset() {
        let mut p = LowFiveProps::new();
        p.set_zerocopy("*", "group2/particles", true);
        assert_eq!(
            p.ownership_for("a.h5", "group2/particles", Ownership::Deep),
            Ownership::Shallow
        );
        assert_eq!(p.ownership_for("a.h5", "group1/grid", Ownership::Deep), Ownership::Deep);
        // Later rule can turn it back off.
        p.set_zerocopy("*", "*", false);
        assert_eq!(
            p.ownership_for("a.h5", "group2/particles", Ownership::Shallow),
            Ownership::Deep
        );
    }
}
