//! Box coordinate iteration and local-offset arithmetic shared by the
//! baseline transports.

use minih5::BBox;

/// Row-major iterator over the coordinates inside a box.
pub struct BoxCoords {
    lo: Vec<u64>,
    hi: Vec<u64>,
    cur: Option<Vec<u64>>,
}

impl BoxCoords {
    pub fn new(bb: &BBox) -> Self {
        let cur = if bb.is_empty() { None } else { Some(bb.lo.clone()) };
        BoxCoords { lo: bb.lo.clone(), hi: bb.hi.clone(), cur }
    }
}

impl Iterator for BoxCoords {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        let cur = self.cur.as_mut()?;
        let out = cur.clone();
        // Odometer: increment the last dimension, carrying leftwards.
        let mut i = cur.len();
        loop {
            if i == 0 {
                self.cur = None;
                break;
            }
            i -= 1;
            cur[i] += 1;
            if cur[i] < self.hi[i] {
                break;
            }
            cur[i] = self.lo[i];
        }
        Some(out)
    }
}

/// Element offset of `coord` within the row-major packing of `bb`.
pub fn local_offset(bb: &BBox, coord: &[u64]) -> usize {
    let mut off = 0usize;
    for (i, &c) in coord.iter().enumerate() {
        let extent = (bb.hi[i] - bb.lo[i]) as usize;
        off = off * extent + (c - bb.lo[i]) as usize;
    }
    off
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterates_row_major() {
        let bb = BBox::new(vec![1, 2], vec![3, 4]);
        let coords: Vec<Vec<u64>> = BoxCoords::new(&bb).collect();
        assert_eq!(coords, vec![vec![1, 2], vec![1, 3], vec![2, 2], vec![2, 3]]);
    }

    #[test]
    fn empty_box_yields_nothing() {
        let bb = BBox::new(vec![2], vec![2]);
        assert_eq!(BoxCoords::new(&bb).count(), 0);
    }

    #[test]
    fn offsets_match_iteration_order() {
        let bb = BBox::new(vec![5, 0, 1], vec![7, 3, 4]);
        for (i, c) in BoxCoords::new(&bb).enumerate() {
            assert_eq!(local_offset(&bb, &c), i);
        }
    }
}
