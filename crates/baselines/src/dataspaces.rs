//! A DataSpaces-style staging service (Fig. 8 comparator).
//!
//! DataSpaces provides "a shared space consisting of a set of HPC
//! computing nodes that act as a distributed staging server for client
//! (producer and consumer) tasks", with an n-dimensional-array put/get
//! API. Following the paper's methodology we implement the
//! `dspaces_put_local` variant: the staging servers hold **only indexing
//! metadata** — registered bounding boxes and their owners — while the
//! data stay in the producers' memory and consumers pull them directly.
//!
//! Resource cost is explicit: the servers occupy extra ranks that LowFive
//! does not need (the paper used 4 extra nodes at full scale). The data
//! model is deliberately restricted to n-d arrays of fixed-size elements —
//! no hierarchy, no attributes, no datatypes — which is the other half of
//! the paper's comparison.

use std::collections::HashMap;

use bytes::Bytes;
use parking_lot::Mutex;
use simmpi::Comm;

use diyblk::rpc::{Caller, RpcClient, RpcServer, ServeOutcome};
use minih5::codec::{Reader, Writer};
use minih5::{BBox, H5Result};

use crate::boxes::{local_offset, BoxCoords};
use crate::staging::{HashRing, RingError};

const DS_PUT: u32 = 0x10;
const DS_QUERY: u32 = 0x11;
const DS_FETCH: u32 = 0x12;
const DS_DONE: u32 = 0x13;
const DS_PUT_STAGED: u32 = 0x14;
const DS_FETCH_STAGED: u32 = 0x15;

/// Static layout of a DataSpaces deployment: which world ranks are
/// staging servers, producers, and consumers.
#[derive(Debug, Clone)]
pub struct DsConfig {
    pub servers: Vec<usize>,
    pub producers: Vec<usize>,
    pub consumers: Vec<usize>,
}

impl DsConfig {
    /// Vnodes per server on the key-routing ring. Plenty to spread keys
    /// at this baseline's server counts; the replicated tier
    /// (`crate::staging`) makes this a config knob instead.
    const VNODES: usize = 8;

    /// Home server for a named, versioned array, resolved on the same
    /// consistent-hash ring the replicated staging tier uses (k = 1).
    /// One server degenerates cleanly (every key maps to it); an empty
    /// server list is a typed [`RingError`] — previously this was a
    /// modulo-by-zero panic deep in an FNV hash.
    fn home_server(&self, name: &str, version: u64) -> Result<usize, RingError> {
        let ring = HashRing::new(&self.servers, Self::VNODES)?;
        Ok(ring.primary(&key(name, version)))
    }
}

fn key(name: &str, version: u64) -> String {
    format!("{name}@{version}")
}

/// Run a staging server rank: index puts, answer queries, exit when every
/// consumer has called [`DsClient::done`].
///
/// A key (named, versioned array) becomes *ready* once every producer has
/// registered its put for it — like DataSpaces' versioned gets, queries
/// arriving earlier are held and answered when the version completes.
/// Every producer is expected to contribute exactly one put per key.
pub fn run_server(world: &Comm, cfg: &DsConfig) {
    let mut index: HashMap<String, Vec<(BBox, u64)>> = HashMap::new();
    // Staged data (`dspaces_put`): full copies held on the server.
    let mut staged: HashMap<String, Vec<(BBox, Bytes)>> = HashMap::new();
    let mut pending: HashMap<String, Vec<(Caller, BBox)>> = HashMap::new();
    let mut dones = 0usize;
    let expected_puts = cfg.producers.len();
    let expected_dones = cfg.consumers.len();
    let answer = |index: &HashMap<String, Vec<(BBox, u64)>>, k: &str, qbb: &BBox| {
        let mut w = Writer::new();
        let hits: Vec<&(BBox, u64)> = index
            .get(k)
            .map(|v| v.iter().filter(|(bb, _)| bb.intersects(qbb)).collect())
            .unwrap_or_default();
        w.put_u64(hits.len() as u64);
        for (bb, owner) in hits {
            w.put_u64(*owner);
            w.put(bb);
        }
        w.finish()
    };
    RpcServer::new(world).serve(|caller, method, args| match method {
        DS_PUT => {
            let mut r = Reader::new(&args);
            let k = r.get_str().expect("key");
            let owner = r.get_u64().expect("owner");
            let bb: BBox = r.get().expect("bbox");
            let entry = index.entry(k.clone()).or_default();
            entry.push((bb, owner));
            if entry.len() == expected_puts {
                // Version complete: release queries that arrived early.
                for (waiter, qbb) in pending.remove(&k).unwrap_or_default() {
                    diyblk::rpc::send_reply(world, waiter, answer(&index, &k, &qbb));
                }
            }
            ServeOutcome::Reply(Bytes::new()) // ack
        }
        DS_QUERY => {
            let mut r = Reader::new(&args);
            let k = r.get_str().expect("key");
            let qbb: BBox = r.get().expect("query box");
            if index.get(&k).map(|v| v.len()).unwrap_or(0) >= expected_puts {
                ServeOutcome::Reply(answer(&index, &k, &qbb))
            } else {
                pending.entry(k).or_default().push((caller, qbb));
                ServeOutcome::Continue
            }
        }
        DS_PUT_STAGED => {
            // `dspaces_put`: the data themselves land on the server. The
            // owner recorded in the index is the SERVER, so gets resolve
            // here without touching the producer again.
            let mut r = Reader::new(&args);
            let k = r.get_str().expect("key");
            let bb: BBox = r.get().expect("bbox");
            let body = Bytes::copy_from_slice(r.get_bytes().expect("body"));
            staged.entry(k.clone()).or_default().push((bb.clone(), body));
            let entry = index.entry(k.clone()).or_default();
            entry.push((bb, world.rank() as u64));
            if entry.len() == expected_puts {
                for (waiter, qbb) in pending.remove(&k).unwrap_or_default() {
                    diyblk::rpc::send_reply(world, waiter, answer(&index, &k, &qbb));
                }
            }
            ServeOutcome::Reply(Bytes::new())
        }
        DS_FETCH_STAGED => {
            let mut r = Reader::new(&args);
            let k = r.get_str().expect("key");
            let qbb: BBox = r.get().expect("query box");
            let es = r.get_u64().expect("element size") as usize;
            let entries = staged.get(&k).map(|v| v.as_slice()).unwrap_or(&[]);
            ServeOutcome::Reply(answer_pieces(entries, &qbb, es))
        }
        DS_DONE => {
            dones += 1;
            if dones == expected_dones {
                ServeOutcome::Stop(None)
            } else {
                ServeOutcome::Continue
            }
        }
        m => panic!("unknown DataSpaces method {m}"),
    });
}

/// Encode the pieces of `entries` intersecting `qbb` (shared by the
/// producer-local and server-staged fetch paths).
fn answer_pieces(entries: &[(BBox, Bytes)], qbb: &BBox, es: usize) -> Bytes {
    let mut w = Writer::new();
    let hits: Vec<&(BBox, Bytes)> = entries.iter().filter(|(bb, _)| bb.intersects(qbb)).collect();
    w.put_u64(hits.len() as u64);
    for (bb, data) in hits {
        let ibox = bb.intersect(qbb);
        w.put(&ibox);
        let mut body = Vec::with_capacity((ibox.npoints() as usize) * es);
        for_each_row(&ibox, |row_start, row_len| {
            let off = local_offset(bb, row_start) * es;
            body.extend_from_slice(&data[off..off + row_len * es]);
        });
        w.put_bytes(&body);
    }
    w.finish()
}

/// A producer or consumer client.
pub struct DsClient {
    world: Comm,
    cfg: DsConfig,
    /// Local store behind `put_local`: the data never leave the producer
    /// until a consumer fetches them.
    puts: Mutex<HashMap<String, Vec<(BBox, Bytes)>>>,
}

impl DsClient {
    pub fn new(world: Comm, cfg: DsConfig) -> Self {
        DsClient { world, cfg, puts: Mutex::default() }
    }

    /// Register an n-d array region under `(name, version)`. Only the
    /// bounding box and owner travel to the staging server; the data stay
    /// local (`dspaces_put_local`). Fails (typed) on an empty server
    /// list.
    pub fn put_local(&self, name: &str, version: u64, bbox: BBox, data: Bytes) -> H5Result<()> {
        let k = key(name, version);
        self.puts.lock().entry(k.clone()).or_default().push((bbox.clone(), data));
        let server = self.cfg.home_server(name, version)?;
        let mut w = Writer::new();
        w.put_str(&k);
        w.put_u64(self.world.rank() as u64);
        w.put(&bbox);
        // Wait for the ack so the registration is visible before we serve.
        let _ = RpcClient::new(&self.world).call(server, DS_PUT, &w.finish());
        Ok(())
    }

    /// Producer: answer direct fetches until every consumer is done.
    pub fn serve_local(&self) {
        let mut dones = 0usize;
        let expected = self.cfg.consumers.len();
        RpcServer::new(&self.world).serve(|_caller, method, args| match method {
            DS_FETCH => {
                let mut r = Reader::new(&args);
                let k = r.get_str().expect("key");
                let qbb: BBox = r.get().expect("query box");
                let es = r.get_u64().expect("element size") as usize;
                ServeOutcome::Reply(self.answer_fetch(&k, &qbb, es))
            }
            DS_DONE => {
                dones += 1;
                if dones == expected {
                    ServeOutcome::Stop(None)
                } else {
                    ServeOutcome::Continue
                }
            }
            m => panic!("unknown DataSpaces method {m}"),
        });
    }

    fn answer_fetch(&self, k: &str, qbb: &BBox, es: usize) -> Bytes {
        let puts = self.puts.lock();
        let entries = puts.get(k).map(|v| v.as_slice()).unwrap_or(&[]);
        answer_pieces(entries, qbb, es)
    }

    /// `dspaces_put`: ship a full copy of the region to the staging
    /// server. The producer's buffer is immediately reusable and the
    /// producer does not need to serve — the tradeoff the paper weighs
    /// against `put_local` ("a staging a full data copy").
    pub fn put_staged(&self, name: &str, version: u64, bbox: BBox, data: Bytes) -> H5Result<()> {
        let k = key(name, version);
        let server = self.cfg.home_server(name, version)?;
        let mut w = Writer::new();
        w.put_str(&k);
        w.put(&bbox);
        w.put_bytes(&data);
        let _ = RpcClient::new(&self.world).call(server, DS_PUT_STAGED, &w.finish());
        Ok(())
    }

    /// Consumer: fetch the elements of `qbox` (row-major packed). `es` is
    /// the element size in bytes.
    pub fn get(&self, name: &str, version: u64, qbox: &BBox, es: usize) -> H5Result<Vec<u8>> {
        let k = key(name, version);
        let rpc = RpcClient::new(&self.world);
        // 1. Ask the staging server who owns intersecting regions.
        let server = self.cfg.home_server(name, version)?;
        let mut w = Writer::new();
        w.put_str(&k);
        w.put(qbox);
        let reply = rpc.call(server, DS_QUERY, &w.finish());
        let mut r = Reader::new(&reply);
        let n = r.get_u64()? as usize;
        let mut owners: Vec<(u64, BBox)> = Vec::with_capacity(n);
        for _ in 0..n {
            let owner = r.get_u64()?;
            let bb: BBox = r.get()?;
            owners.push((owner, bb));
        }
        // 2. Pull directly from each owning producer.
        let mut out = vec![0u8; (qbox.npoints() as usize) * es];
        let mut seen: Vec<u64> = Vec::new();
        for (owner, _bb) in owners {
            if seen.contains(&owner) {
                continue;
            }
            seen.push(owner);
            let mut w = Writer::new();
            w.put_str(&k);
            w.put(qbox);
            w.put_u64(es as u64);
            // Staged regions are owned by (and fetched from) the server.
            let method = if self.cfg.servers.contains(&(owner as usize)) {
                DS_FETCH_STAGED
            } else {
                DS_FETCH
            };
            let reply = rpc.call(owner as usize, method, &w.finish());
            let mut r = Reader::new(&reply);
            let pieces = r.get_u64()? as usize;
            for _ in 0..pieces {
                let ibox: BBox = r.get()?;
                let body = r.get_bytes()?;
                let mut p = 0usize;
                for_each_row(&ibox, |row_start, row_len| {
                    let off = local_offset(qbox, row_start) * es;
                    out[off..off + row_len * es].copy_from_slice(&body[p..p + row_len * es]);
                    p += row_len * es;
                });
            }
        }
        Ok(out)
    }

    /// Consumer: release the servers and producers.
    pub fn done(&self) {
        let rpc = RpcClient::new(&self.world);
        for &s in &self.cfg.servers {
            rpc.notify(s, DS_DONE, &[]);
        }
        for &p in &self.cfg.producers {
            rpc.notify(p, DS_DONE, &[]);
        }
    }
}

/// Invoke `f(row_start_coord, row_len)` for every contiguous row of `bb`
/// (contiguity along the last dimension). Shared with the replicated
/// staging tier (`crate::staging`), whose pieces pack the same way.
pub(crate) fn for_each_row(bb: &BBox, mut f: impl FnMut(&[u64], usize)) {
    if bb.is_empty() {
        return;
    }
    let d = bb.rank();
    if d == 0 {
        return;
    }
    let row_len = (bb.hi[d - 1] - bb.lo[d - 1]) as usize;
    if d == 1 {
        f(&bb.lo, row_len);
        return;
    }
    // Iterate the outer dims via a reduced box, appending the row start.
    let outer = BBox::new(bb.lo[..d - 1].to_vec(), bb.hi[..d - 1].to_vec());
    let mut coord = vec![0u64; d];
    for c in BoxCoords::new(&outer) {
        coord[..d - 1].copy_from_slice(&c);
        coord[d - 1] = bb.lo[d - 1];
        f(&coord, row_len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::{TaskSpec, TaskWorld};

    fn setup(tc: &simmpi::TaskComm) -> DsConfig {
        DsConfig {
            producers: (0..tc.task_size(0)).map(|r| tc.world_rank_of(0, r)).collect(),
            servers: (0..tc.task_size(1)).map(|r| tc.world_rank_of(1, r)).collect(),
            consumers: (0..tc.task_size(2)).map(|r| tc.world_rank_of(2, r)).collect(),
        }
    }

    /// 2 producers (row halves) + 1 staging server + 2 consumers (column
    /// halves) on a 2-d grid of u64.
    #[test]
    fn put_local_get_roundtrip() {
        const N: u64 = 8;
        let specs =
            [TaskSpec::new("prod", 2), TaskSpec::new("staging", 1), TaskSpec::new("cons", 2)];
        TaskWorld::run(&specs, |tc| {
            let cfg = setup(&tc);
            match tc.task_id {
                0 => {
                    let client = DsClient::new(tc.world.clone(), cfg);
                    let r = tc.local.rank() as u64;
                    let bb = BBox::new(vec![r * 4, 0], vec![r * 4 + 4, N]);
                    let data: Vec<u8> =
                        BoxCoords::new(&bb).flat_map(|c| (c[0] * N + c[1]).to_le_bytes()).collect();
                    client.put_local("grid", 0, bb, data.into()).unwrap();
                    client.serve_local();
                }
                1 => run_server(&tc.world, &cfg),
                _ => {
                    let client = DsClient::new(tc.world.clone(), cfg);
                    let r = tc.local.rank() as u64;
                    let qbox = BBox::new(vec![0, r * 4], vec![N, r * 4 + 4]);
                    let got = client.get("grid", 0, &qbox, 8).unwrap();
                    for (i, c) in BoxCoords::new(&qbox).enumerate() {
                        let v = u64::from_le_bytes(got[i * 8..i * 8 + 8].try_into().unwrap());
                        assert_eq!(v, c[0] * N + c[1]);
                    }
                    client.done();
                }
            }
        });
    }

    /// Multiple named arrays and versions (time steps) coexist.
    #[test]
    fn versions_and_names_are_distinct() {
        let specs =
            [TaskSpec::new("prod", 1), TaskSpec::new("staging", 2), TaskSpec::new("cons", 1)];
        TaskWorld::run(&specs, |tc| {
            let cfg = setup(&tc);
            match tc.task_id {
                0 => {
                    let client = DsClient::new(tc.world.clone(), cfg);
                    let bb = BBox::new(vec![0], vec![4]);
                    for ver in 0..3u64 {
                        let data: Vec<u8> =
                            (0..4u64).flat_map(|i| (i + 100 * ver).to_le_bytes()).collect();
                        client.put_local("x", ver, bb.clone(), data.into()).unwrap();
                    }
                    let other: Vec<u8> = (0..4u64).flat_map(|i| (i + 7).to_le_bytes()).collect();
                    client.put_local("y", 0, bb.clone(), other.into()).unwrap();
                    client.serve_local();
                }
                1 => run_server(&tc.world, &cfg),
                _ => {
                    let client = DsClient::new(tc.world.clone(), cfg);
                    let bb = BBox::new(vec![0], vec![4]);
                    for ver in [2u64, 0, 1] {
                        let got = client.get("x", ver, &bb, 8).unwrap();
                        let v0 = u64::from_le_bytes(got[0..8].try_into().unwrap());
                        assert_eq!(v0, 100 * ver);
                    }
                    let goty = client.get("y", 0, &bb, 8).unwrap();
                    assert_eq!(u64::from_le_bytes(goty[0..8].try_into().unwrap()), 7);
                    client.done();
                }
            }
        });
    }

    #[test]
    fn get_outside_any_put_returns_zeros() {
        let specs =
            [TaskSpec::new("prod", 1), TaskSpec::new("staging", 1), TaskSpec::new("cons", 1)];
        TaskWorld::run(&specs, |tc| {
            let cfg = setup(&tc);
            match tc.task_id {
                0 => {
                    let client = DsClient::new(tc.world.clone(), cfg);
                    client
                        .put_local("x", 0, BBox::new(vec![0], vec![2]), vec![1u8, 2].into())
                        .unwrap();
                    client.serve_local();
                }
                1 => run_server(&tc.world, &cfg),
                _ => {
                    let client = DsClient::new(tc.world.clone(), cfg);
                    let got = client.get("x", 0, &BBox::new(vec![10], vec![12]), 1).unwrap();
                    assert_eq!(got, vec![0, 0]);
                    client.done();
                }
            }
        });
    }

    #[test]
    fn row_iteration_3d() {
        let bb = BBox::new(vec![1, 0, 2], vec![3, 2, 5]);
        let mut rows = Vec::new();
        for_each_row(&bb, |start, len| rows.push((start.to_vec(), len)));
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|(_, len)| *len == 3));
        assert_eq!(rows[0].0, vec![1, 0, 2]);
        assert_eq!(rows[3].0, vec![2, 1, 2]);
    }
}

#[cfg(test)]
mod staged_tests {
    use super::*;
    use simmpi::{TaskSpec, TaskWorld};

    /// `dspaces_put`: data staged on the server; producers never serve.
    #[test]
    fn staged_put_get_without_producer_serving() {
        const N: u64 = 8;
        let specs =
            [TaskSpec::new("prod", 2), TaskSpec::new("staging", 1), TaskSpec::new("cons", 2)];
        TaskWorld::run(&specs, |tc| {
            let cfg = DsConfig {
                producers: (0..2).map(|r| tc.world_rank_of(0, r)).collect(),
                servers: vec![tc.world_rank_of(1, 0)],
                consumers: (0..2).map(|r| tc.world_rank_of(2, r)).collect(),
            };
            match tc.task_id {
                0 => {
                    let client = DsClient::new(tc.world.clone(), cfg);
                    let r = tc.local.rank() as u64;
                    let bb = BBox::new(vec![r * 4, 0], vec![r * 4 + 4, N]);
                    let data: Vec<u8> =
                        BoxCoords::new(&bb).flat_map(|c| (c[0] * N + c[1]).to_le_bytes()).collect();
                    client.put_staged("grid", 0, bb, data.into()).unwrap();
                    // NO serve_local(): the producer is free immediately.
                }
                1 => run_server(&tc.world, &cfg),
                _ => {
                    let client = DsClient::new(tc.world.clone(), cfg);
                    let r = tc.local.rank() as u64;
                    let qbox = BBox::new(vec![0, r * 4], vec![N, r * 4 + 4]);
                    let got = client.get("grid", 0, &qbox, 8).unwrap();
                    for (i, c) in BoxCoords::new(&qbox).enumerate() {
                        let v = u64::from_le_bytes(got[i * 8..i * 8 + 8].try_into().unwrap());
                        assert_eq!(v, c[0] * N + c[1]);
                    }
                    client.done();
                }
            }
        });
    }
}
