//! Re-replication after a heartbeat-detected shard failure.
//!
//! When [`super::Membership`] declares a peer Failed, every key whose
//! replica set contained the corpse is one copy short; the ring walk
//! says exactly which shard joins each set as the replacement. For each
//! such key, the **leader** — the first *surviving* member of the old
//! replica set, a deterministic choice every survivor computes
//! identically without coordination — pushes its full entries to the
//! joiners. Pushes are `DS_REREP` notifications and inserts dedupe on
//! `(producer, bbox)`, so overlap with client-triggered read repair is
//! harmless: the copies converge, bytes are counted once per push in
//! [`obsv::Ctr::ReRepBytes`].

use simmpi::Comm;

use diyblk::rpc::RpcClient;

use crate::staging::replica::ShardStore;
use crate::staging::ring::HashRing;
use crate::staging::{wire, StagingConfig, DS_REREP};

/// Push this shard's share of the dead rank's replica sets to the
/// replacements. `failed_before` / `failed_now` are the failed sets
/// excluding/including `dead`, so old and new replica sets resolve
/// against the right epoch.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rereplicate(
    world: &Comm,
    cfg: &StagingConfig,
    ring: &HashRing,
    store: &ShardStore,
    me: usize,
    dead: usize,
    failed_before: &[usize],
    failed_now: &[usize],
) {
    let rpc = RpcClient::new(world);
    for key in store.keys() {
        let old_set = ring.replicas_excluding(key, cfg.replication, failed_before);
        if !old_set.contains(&dead) {
            continue;
        }
        let leader = old_set.iter().copied().find(|s| !failed_now.contains(s));
        if leader != Some(me) {
            continue;
        }
        let entries = store.entries(key);
        if entries.is_empty() {
            continue;
        }
        let new_set = ring.replicas_excluding(key, cfg.replication, failed_now);
        let push = wire::enc_rerep(key, entries);
        for &joiner in new_set.iter().filter(|s| !old_set.contains(s)) {
            obsv::counter_add(obsv::Ctr::ReRepBytes, push.len() as u64);
            rpc.notify(joiner, DS_REREP, &push);
        }
    }
}
