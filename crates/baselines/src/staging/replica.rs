//! The shard serve loop and the replicated put/get client.
//!
//! **Shard** ([`run_shard`]): a poll loop interleaving three duties —
//! drain the gossip lane into [`Membership`], serve the request lane
//! (puts, gets, repair pushes), and tick heartbeats/timers. Replies are
//! always immediate: a get on an incomplete version answers
//! `complete = false` instead of parking the caller, because a parked
//! reply on a shard that then dies would strand the consumer. Every
//! mutation is idempotent (puts dedupe on `(producer, bbox)`, dones
//! dedupe on caller rank), so client retries are harmless.
//!
//! **Client** ([`StagingClient`]): puts fan out to all `k` replicas and
//! wait for every ack; gets fan out and take the first complete reply
//! in ring order. A dead shard fails its slot fast (`RpcError::
//! PeerDead`), the client marks it failed, recomputes the replica set —
//! the ring walk appends a deterministic replacement — and carries on.
//! When a complete and an incomplete *replacement* replica answer side
//! by side, the client triggers read repair: the complete shard pushes
//! its entries to the replacement.
//!
//! Byte-identity under faults: a shard answers a get from its entries
//! sorted by `(producer, bbox.lo)`, and workload regions are disjoint
//! per producer, so any complete replica — original or repaired —
//! assembles the identical reply. That invariant is what the chaos
//! suite's before/after-kill comparisons lean on.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;
use simmpi::Comm;

use diyblk::rpc::{
    gossip_poll, gossip_send, Call, RetryPolicy, RpcClient, RpcError, RpcServer, ServeOutcome,
};
use minih5::{BBox, H5Error, H5Result};

use crate::boxes::local_offset;
use crate::dataspaces::for_each_row;
use crate::staging::membership::{Health, Membership};
use crate::staging::ring::RingError;
use crate::staging::{
    recovery, staging_key, wire, StagingConfig, DS_PING, DS_RDONE, DS_REREP, DS_RGET, DS_RPUT,
    DS_RSYNC,
};

/// Entries a shard holds for its keys: `(producer, bbox, data)`,
/// deduplicated on `(producer, bbox)` so retried puts and overlapping
/// repair pushes cannot double-insert.
#[derive(Default)]
pub(crate) struct ShardStore {
    data: HashMap<String, Vec<(u64, BBox, Bytes)>>,
}

impl ShardStore {
    /// Insert one entry; `false` means it was already present.
    fn insert(&mut self, key: &str, producer: u64, bbox: BBox, data: Bytes) -> bool {
        let entries = self.data.entry(key.to_string()).or_default();
        if entries.iter().any(|(p, bb, _)| *p == producer && *bb == bbox) {
            return false;
        }
        entries.push((producer, bbox, data));
        true
    }

    /// Every entry held for `key` (empty for an unknown key).
    pub(crate) fn entries(&self, key: &str) -> &[(u64, BBox, Bytes)] {
        self.data.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The keys this shard holds anything for.
    pub(crate) fn keys(&self) -> impl Iterator<Item = &String> {
        self.data.keys()
    }

    /// Answer a get: completeness flag plus the pieces intersecting
    /// `qbb`, **sorted by `(producer, bbox.lo)`** — the sort is the
    /// byte-identity guarantee across replicas, whose insertion orders
    /// differ under failover.
    fn answer(&self, key: &str, qbb: &BBox, es: usize, expected_producers: usize) -> Bytes {
        let entries = self.entries(key);
        let mut producers: Vec<u64> = entries.iter().map(|(p, _, _)| *p).collect();
        producers.sort_unstable();
        producers.dedup();
        let complete = producers.len() >= expected_producers;
        let mut hits: Vec<&(u64, BBox, Bytes)> =
            entries.iter().filter(|(_, bb, _)| bb.intersects(qbb)).collect();
        hits.sort_by(|a, b| (a.0, &a.1.lo).cmp(&(b.0, &b.1.lo)));
        let mut pieces: Vec<(BBox, Vec<u8>)> = Vec::with_capacity(hits.len());
        for (_, bb, data) in hits {
            let ibox = bb.intersect(qbb);
            let mut body = Vec::with_capacity((ibox.npoints() as usize) * es);
            for_each_row(&ibox, |row_start, row_len| {
                let off = local_offset(bb, row_start) * es;
                body.extend_from_slice(&data[off..off + row_len * es]);
            });
            pieces.push((ibox, body));
        }
        wire::enc_get_reply(complete, &pieces)
    }
}

/// How many queued requests one loop iteration serves before giving the
/// gossip lane and the timers another look.
const SERVE_BURST: usize = 32;

/// Run one staging shard until every client — producer and consumer —
/// has called [`StagingClient::done`]. Producers count too: a producer
/// can still be re-acking a put against a post-failover replica set
/// after every consumer is already satisfied, and a shard that stopped
/// at "all consumers done" would strand that put in retry limbo.
pub fn run_shard(world: &Comm, cfg: &StagingConfig) {
    let ring = cfg.ring().expect("staging shard needs a non-empty server list");
    let me = world.rank();
    let peers: Vec<usize> = cfg.servers.iter().copied().filter(|&s| s != me).collect();
    let heartbeats_on = !cfg.hb.interval.is_zero();
    let interval_ns = u64::try_from(cfg.hb.interval.as_nanos()).unwrap_or(u64::MAX);
    let mut membership =
        Membership::new(&peers, obsv::clock::now_ns(), cfg.hb.suspect_after, cfg.hb.fail_after);
    let mut store = ShardStore::default();
    let mut done_from: HashSet<usize> = HashSet::new();
    let expected_done: HashSet<usize> =
        cfg.producers.iter().chain(cfg.consumers.iter()).copied().collect();
    let mut last_hb_ns = 0u64;
    let server = RpcServer::new(world);
    let rpc = RpcClient::new(world);
    loop {
        let mut idle = true;
        // 1. Gossip lane first: liveness observations must not queue
        // behind data traffic.
        while let Some((src, method, _args)) = gossip_poll(world) {
            idle = false;
            if method == DS_PING {
                membership.heard_from(src, obsv::clock::now_ns());
            }
        }
        // 2. Heartbeats out.
        let now_ns = obsv::clock::now_ns();
        if heartbeats_on && now_ns.saturating_sub(last_hb_ns) >= interval_ns {
            last_hb_ns = now_ns;
            for &p in &peers {
                if membership.health(p) != Some(Health::Failed) {
                    gossip_send(world, p, DS_PING, &[]);
                }
            }
        }
        // 3. Timers: escalate silent peers, kick off recovery on Failed.
        for (rank, health) in membership.tick(now_ns) {
            match health {
                Health::Suspected => obsv::counter_add(obsv::Ctr::StagingSuspects, 1),
                Health::Failed => {
                    obsv::counter_add(obsv::Ctr::FailoversDetected, 1);
                    if cfg.recovery {
                        let failed_now = membership.failed();
                        let failed_before: Vec<usize> =
                            failed_now.iter().copied().filter(|&r| r != rank).collect();
                        recovery::rereplicate(
                            world,
                            cfg,
                            &ring,
                            &store,
                            me,
                            rank,
                            &failed_before,
                            &failed_now,
                        );
                    }
                }
                Health::Healthy => {}
            }
        }
        // 4. Request lane: a bounded burst, then back to the top.
        let mut stopped = false;
        for _ in 0..SERVE_BURST {
            let polled = server.poll(|caller, method, args| match method {
                DS_RPUT => {
                    let (key, producer, bbox, data) = wire::dec_put(&args).expect("put frame");
                    if store.insert(&key, producer, bbox, data) {
                        obsv::counter_add(obsv::Ctr::ReplicaPuts, 1);
                    }
                    ServeOutcome::Reply(Bytes::new())
                }
                DS_RGET => {
                    let (key, qbox, es) = wire::dec_get(&args).expect("get frame");
                    ServeOutcome::Reply(store.answer(&key, &qbox, es, cfg.producers.len()))
                }
                DS_REREP => {
                    let (key, entries) = wire::dec_rerep(&args).expect("rerep frame");
                    for (producer, bbox, data) in entries {
                        if store.insert(&key, producer, bbox, data) {
                            obsv::counter_add(obsv::Ctr::ReplicaPuts, 1);
                        }
                    }
                    ServeOutcome::Continue
                }
                DS_RSYNC => {
                    let (key, target) = wire::dec_sync(&args).expect("sync frame");
                    obsv::counter_add(obsv::Ctr::ReadRepairs, 1);
                    let entries = store.entries(&key);
                    if !entries.is_empty() {
                        let push = wire::enc_rerep(&key, entries);
                        obsv::counter_add(obsv::Ctr::ReRepBytes, push.len() as u64);
                        rpc.notify(target, DS_REREP, &push);
                    }
                    ServeOutcome::Continue
                }
                DS_RDONE => {
                    done_from.insert(caller.rank);
                    if expected_done.is_subset(&done_from) {
                        ServeOutcome::Stop(Some(Bytes::new()))
                    } else {
                        ServeOutcome::Reply(Bytes::new())
                    }
                }
                m => panic!("unknown staging method {m:#x}"),
            });
            match polled {
                Some(true) => {
                    stopped = true;
                    break;
                }
                Some(false) => idle = false,
                None => break,
            }
        }
        if stopped {
            return;
        }
        if idle {
            // Nothing moved this iteration; don't spin a core. Short
            // enough that a 10 ms heartbeat cadence stays honest.
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Producer/consumer client of the replicated tier.
pub struct StagingClient {
    world: Comm,
    cfg: StagingConfig,
    ring: crate::staging::HashRing,
    /// Shards this client has seen die (`RpcError::PeerDead`). Failure
    /// knowledge is per-client — there is no global oracle — and the
    /// ring walk turns the same failed-set into the same replica set on
    /// every client.
    failed: Mutex<Vec<usize>>,
}

/// Bounded rounds of put fan-out (each round re-resolves the replica
/// set against the latest failure knowledge).
const PUT_ROUNDS: usize = 64;
/// Bounded rounds of get fan-out. Gets also wait out version
/// completeness (a consumer may race the producers), so the bound is
/// generous; each incomplete round costs only a fast reply plus a short
/// sleep.
const GET_ROUNDS: usize = 800;

impl StagingClient {
    /// Build a client; fails (typed) on an empty server list.
    pub fn new(world: Comm, cfg: StagingConfig) -> Result<Self, RingError> {
        let ring = cfg.ring()?;
        Ok(StagingClient { world, cfg, ring, failed: Mutex::default() })
    }

    /// Per-attempt policy of every data call: bounded, with backoff, so
    /// a dropped frame (fault injection) is retried and a slow shard is
    /// not mistaken for a dead one.
    fn policy() -> RetryPolicy {
        RetryPolicy::new(5, Duration::from_millis(150)).with_backoff(Duration::from_millis(2))
    }

    fn mark_failed(&self, rank: usize) {
        let mut f = self.failed.lock();
        if !f.contains(&rank) {
            f.push(rank);
            obsv::counter_add(obsv::Ctr::FailoversDetected, 1);
        }
    }

    /// Replicate one region to every replica of `(name, version)`.
    /// Returns once **all** current replicas acked — the completeness
    /// gets rely on: after a successful put, any surviving replica can
    /// reach completeness without this producer.
    pub fn put(&self, name: &str, version: u64, bbox: BBox, data: Bytes) -> H5Result<()> {
        let key = staging_key(name, version);
        let args = wire::enc_put(&key, self.world.rank() as u64, &bbox, &data);
        let rpc = RpcClient::new(&self.world);
        let mut acked: Vec<usize> = Vec::new();
        for _ in 0..PUT_ROUNDS {
            let failed = self.failed.lock().clone();
            let set = self.ring.replicas_excluding(&key, self.cfg.replication, &failed);
            if set.is_empty() {
                return Err(H5Error::PeerUnavailable(format!("staging put {key}: no live shards")));
            }
            let pending: Vec<usize> = set.iter().copied().filter(|s| !acked.contains(s)).collect();
            if pending.is_empty() {
                return Ok(());
            }
            let calls: Vec<Call> =
                pending.iter().map(|&s| Call::new(s, DS_RPUT, args.clone())).collect();
            for (i, r) in
                rpc.call_many_collect(&calls, Some(Self::policy())).into_iter().enumerate()
            {
                match r {
                    Ok(_) => acked.push(pending[i]),
                    Err(RpcError::PeerDead) => self.mark_failed(pending[i]),
                    Err(RpcError::TimedOut) => {}
                }
            }
        }
        Err(H5Error::PeerUnavailable(format!("staging put {key}: replicas unreachable")))
    }

    /// Fetch the elements of `qbox` (row-major packed, `es` bytes per
    /// element), surviving shard deaths mid-query: the fan-out covers
    /// all replicas, the first *complete* reply in ring order wins, and
    /// an incomplete replacement triggers read repair for the next
    /// reader.
    pub fn get(&self, name: &str, version: u64, qbox: &BBox, es: usize) -> H5Result<Vec<u8>> {
        let key = staging_key(name, version);
        let args = wire::enc_get(&key, qbox, es);
        let rpc = RpcClient::new(&self.world);
        // The failure-free replica set: a member answering "incomplete"
        // is just racing the producers' puts and will complete on its
        // own; only a *replacement* (joined after a failover) needs
        // repair to ever complete.
        let original = self.ring.replicas(&key, self.cfg.replication);
        let mut synced: Vec<usize> = Vec::new();
        for _ in 0..GET_ROUNDS {
            let failed = self.failed.lock().clone();
            let set = self.ring.replicas_excluding(&key, self.cfg.replication, &failed);
            if set.is_empty() {
                return Err(H5Error::PeerUnavailable(format!("staging get {key}: no live shards")));
            }
            let calls: Vec<Call> =
                set.iter().map(|&s| Call::new(s, DS_RGET, args.clone())).collect();
            let results = rpc.call_many_collect(&calls, Some(Self::policy()));
            let mut newly_failed = false;
            let mut decoded: Vec<Option<wire::GetReply>> = Vec::with_capacity(set.len());
            for (i, r) in results.into_iter().enumerate() {
                match r {
                    Ok(reply) => decoded.push(Some(wire::dec_get_reply(&reply)?)),
                    Err(RpcError::PeerDead) => {
                        self.mark_failed(set[i]);
                        newly_failed = true;
                        decoded.push(None);
                    }
                    Err(RpcError::TimedOut) => decoded.push(None),
                }
            }
            if let Some(best) = decoded.iter().position(|d| matches!(d, Some((true, _)))) {
                for (i, d) in decoded.iter().enumerate() {
                    if matches!(d, Some((false, _)))
                        && !original.contains(&set[i])
                        && !synced.contains(&set[i])
                    {
                        synced.push(set[i]);
                        rpc.notify(set[best], DS_RSYNC, &wire::enc_sync(&key, set[i]));
                    }
                }
                let (_, pieces) = decoded.swap_remove(best).expect("matched Some above");
                return Ok(scatter(qbox, es, pieces));
            }
            if !newly_failed {
                // No replica is complete yet (producers still putting,
                // or a repair is in flight): give the tier a moment.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        Err(H5Error::PeerUnavailable(format!("staging get {key}: no complete replica")))
    }

    /// Release the shards; **every** client — producer and consumer —
    /// must call this once its last put or get returned. Sent as a
    /// *call* (not a notification) with retries, so fault injection
    /// cannot silently eat the shutdown; shards dedupe on caller rank,
    /// so a retried done never double-counts. Dead shards are skipped
    /// or fail fast — both fine.
    pub fn done(&self) {
        let rpc = RpcClient::new(&self.world);
        let failed = self.failed.lock().clone();
        let policy =
            RetryPolicy::new(10, Duration::from_millis(150)).with_backoff(Duration::from_millis(2));
        for &s in &self.cfg.servers {
            if failed.contains(&s) {
                continue;
            }
            let _ = rpc.call_retry(s, DS_RDONE, &[], policy);
        }
    }
}

/// Scatter reply pieces into a row-major packed buffer covering `qbox`.
fn scatter(qbox: &BBox, es: usize, pieces: Vec<(BBox, Vec<u8>)>) -> Vec<u8> {
    let mut out = vec![0u8; (qbox.npoints() as usize) * es];
    for (ibox, body) in pieces {
        let mut p = 0usize;
        for_each_row(&ibox, |row_start, row_len| {
            let off = local_offset(qbox, row_start) * es;
            out[off..off + row_len * es].copy_from_slice(&body[p..p + row_len * es]);
            p += row_len * es;
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxes::BoxCoords;
    use simmpi::{TaskSpec, TaskWorld};

    fn cfg_from(tc: &simmpi::TaskComm, k: usize) -> StagingConfig {
        let mut cfg = StagingConfig::new(
            (0..tc.task_size(1)).map(|r| tc.world_rank_of(1, r)).collect(),
            (0..tc.task_size(0)).map(|r| tc.world_rank_of(0, r)).collect(),
            (0..tc.task_size(2)).map(|r| tc.world_rank_of(2, r)).collect(),
        );
        cfg.replication = k;
        cfg
    }

    /// 2 producers (row halves) + 4 shards (k = 2) + 2 consumers
    /// (column halves) on a 2-d grid of u64 — the replicated analogue of
    /// the DataSpaces round-trip test.
    #[test]
    fn replicated_put_get_roundtrip() {
        const N: u64 = 8;
        let specs =
            [TaskSpec::new("prod", 2), TaskSpec::new("staging", 4), TaskSpec::new("cons", 2)];
        TaskWorld::run(&specs, |tc| {
            let cfg = cfg_from(&tc, 2);
            match tc.task_id {
                0 => {
                    let client = StagingClient::new(tc.world.clone(), cfg).unwrap();
                    let r = tc.local.rank() as u64;
                    let bb = BBox::new(vec![r * 4, 0], vec![r * 4 + 4, N]);
                    let data: Vec<u8> =
                        BoxCoords::new(&bb).flat_map(|c| (c[0] * N + c[1]).to_le_bytes()).collect();
                    client.put("grid", 0, bb, data.into()).unwrap();
                    client.done();
                }
                1 => run_shard(&tc.world, &cfg),
                _ => {
                    let client = StagingClient::new(tc.world.clone(), cfg).unwrap();
                    let r = tc.local.rank() as u64;
                    let qbox = BBox::new(vec![0, r * 4], vec![N, r * 4 + 4]);
                    let got = client.get("grid", 0, &qbox, 8).unwrap();
                    for (i, c) in BoxCoords::new(&qbox).enumerate() {
                        let v = u64::from_le_bytes(got[i * 8..i * 8 + 8].try_into().unwrap());
                        assert_eq!(v, c[0] * N + c[1]);
                    }
                    client.done();
                }
            }
        });
    }

    /// Names and versions stay distinct across the sharded tier, and a
    /// query outside every put returns zeros.
    #[test]
    fn versions_names_and_misses() {
        let specs =
            [TaskSpec::new("prod", 1), TaskSpec::new("staging", 3), TaskSpec::new("cons", 1)];
        TaskWorld::run(&specs, |tc| {
            let cfg = cfg_from(&tc, 2);
            match tc.task_id {
                0 => {
                    let client = StagingClient::new(tc.world.clone(), cfg).unwrap();
                    let bb = BBox::new(vec![0], vec![4]);
                    for ver in 0..3u64 {
                        let data: Vec<u8> =
                            (0..4u64).flat_map(|i| (i + 100 * ver).to_le_bytes()).collect();
                        client.put("x", ver, bb.clone(), data.into()).unwrap();
                    }
                    let other: Vec<u8> = (0..4u64).flat_map(|i| (i + 7).to_le_bytes()).collect();
                    client.put("y", 0, bb.clone(), other.into()).unwrap();
                    client.done();
                }
                1 => run_shard(&tc.world, &cfg),
                _ => {
                    let client = StagingClient::new(tc.world.clone(), cfg).unwrap();
                    let bb = BBox::new(vec![0], vec![4]);
                    for ver in [2u64, 0, 1] {
                        let got = client.get("x", ver, &bb, 8).unwrap();
                        assert_eq!(u64::from_le_bytes(got[0..8].try_into().unwrap()), 100 * ver);
                    }
                    let goty = client.get("y", 0, &bb, 8).unwrap();
                    assert_eq!(u64::from_le_bytes(goty[0..8].try_into().unwrap()), 7);
                    let miss = client.get("x", 0, &BBox::new(vec![10], vec![12]), 8).unwrap();
                    assert!(miss.iter().all(|&b| b == 0));
                    client.done();
                }
            }
        });
    }

    /// An empty server list is a typed error end to end.
    #[test]
    fn empty_tier_is_a_typed_error() {
        TaskWorld::run(&[TaskSpec::new("solo", 1)], |tc| {
            let cfg = StagingConfig::new(vec![], vec![0], vec![0]);
            assert_eq!(StagingClient::new(tc.world.clone(), cfg).err(), Some(RingError::EmptyRing));
        });
    }

    /// Shard store answers are sorted and deduplicated regardless of
    /// insertion order — the byte-identity invariant, unit-scale.
    #[test]
    fn store_answers_are_order_independent() {
        let bb0 = BBox::new(vec![0], vec![4]);
        let bb1 = BBox::new(vec![4], vec![8]);
        let d0 = Bytes::from_static(&[1, 2, 3, 4]);
        let d1 = Bytes::from_static(&[5, 6, 7, 8]);
        let q = BBox::new(vec![0], vec![8]);

        let mut a = ShardStore::default();
        assert!(a.insert("k", 0, bb0.clone(), d0.clone()));
        assert!(a.insert("k", 1, bb1.clone(), d1.clone()));
        assert!(!a.insert("k", 1, bb1.clone(), d1.clone()), "duplicate rejected");

        let mut b = ShardStore::default();
        assert!(b.insert("k", 1, bb1, d1));
        assert!(b.insert("k", 0, bb0, d0));

        assert_eq!(a.answer("k", &q, 1, 2), b.answer("k", &q, 1, 2));
        let (complete, pieces) = wire::dec_get_reply(&a.answer("k", &q, 1, 2)).unwrap();
        assert!(complete);
        assert_eq!(pieces.len(), 2);
        let (incomplete, _) = wire::dec_get_reply(&a.answer("k", &q, 1, 3)).unwrap();
        assert!(!incomplete, "a third producer has not put yet");
    }
}
