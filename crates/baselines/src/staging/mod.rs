//! A sharded, replicated staging tier over the DataSpaces comparator.
//!
//! The toy [`crate::dataspaces`] baseline routes every `(name, version)`
//! key to exactly one home server — a single point of failure and a
//! fan-in bottleneck. This module grows it into the service shape real
//! staging deployments use (DataSpaces, ADIOS staging engines):
//!
//! * [`ring`] — a consistent-hash ring with virtual nodes maps each key
//!   to `k` **distinct** shard ranks; adding or removing one shard moves
//!   only the keys adjacent to it.
//! * [`membership`] — a pure heartbeat state machine: a peer that misses
//!   heartbeats degrades Healthy → Suspected → Failed; a Suspected peer
//!   that is heard from again returns to Healthy without side effects.
//! * [`replica`] — the shard serve loop and the client: puts replicate
//!   to all `k` replicas, gets fan out via `call_many` and accept the
//!   first *complete* reply, an incomplete replacement triggers read
//!   repair from a complete one.
//! * [`recovery`] — when heartbeats declare a shard Failed, the
//!   surviving leader of each affected replica set re-replicates its
//!   entries to the replacement shard that joined the set.
//! * [`wire`] — the codec pairs for every frame, each with a round-trip
//!   doctest (the PROTOCOL.md greppable-constants convention).
//!
//! Data model and completeness contract are inherited from the
//! DataSpaces baseline: n-d arrays of fixed-size elements, and every
//! producer contributes exactly one put per key, so a replica holding
//! puts from all producers knows the version is complete.

use std::time::Duration;

pub mod membership;
pub mod recovery;
pub mod replica;
pub mod ring;
pub mod wire;

pub use membership::{Health, Membership};
pub use replica::{run_shard, StagingClient};
pub use ring::{HashRing, RingError};

/// Replicated put: `[key][producer u64][bbox][data]`, acked by the shard
/// once the entry is indexed (idempotent — duplicates are dropped).
pub const DS_RPUT: u32 = 0x20;
/// Replicated get: `[key][query bbox][elem size u64]`; the reply carries
/// a completeness flag plus the intersecting pieces.
pub const DS_RGET: u32 = 0x21;
/// Heartbeat datagram on the gossip lane (no body, never answered).
pub const DS_PING: u32 = 0x22;
/// Re-replication push (notification): full entries for one key, sent
/// shard-to-shard during recovery or read repair.
pub const DS_REREP: u32 = 0x23;
/// Client shutdown call — sent by every producer and consumer after its
/// last operation — deduplicated by caller rank so retries of a lost
/// ack cannot double-count.
pub const DS_RDONE: u32 = 0x24;
/// Read-repair request (notification): "push your entries for this key
/// to that shard" — sent by a client that saw a complete and an
/// incomplete replica side by side after a failover.
pub const DS_RSYNC: u32 = 0x25;

/// Heartbeat cadence and the thresholds of the Healthy → Suspected →
/// Failed escalation. All durations are measured on the `obsv::clock`
/// virtual clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Gap between heartbeat datagrams to every peer shard. `ZERO`
    /// disables heartbeats (and with them failure detection/recovery) —
    /// deterministic tests use this to keep full control of the fault
    /// timeline.
    pub interval: Duration,
    /// Silence after which a peer becomes Suspected. Must exceed
    /// `interval`, or one lost datagram suspects a healthy peer.
    pub suspect_after: Duration,
    /// Silence after which a Suspected peer is declared Failed —
    /// permanently; ranks do not come back in this fault model.
    pub fail_after: Duration,
}

impl HeartbeatConfig {
    /// Production-shaped defaults (tests override): ping every 10 ms,
    /// suspect after 50 ms of silence, fail after 150 ms.
    pub fn default_cadence() -> Self {
        HeartbeatConfig {
            interval: Duration::from_millis(10),
            suspect_after: Duration::from_millis(50),
            fail_after: Duration::from_millis(150),
        }
    }

    /// No heartbeats at all: shards never suspect or fail each other,
    /// leaving clients' dead-peer detection as the only failover path.
    pub fn disabled() -> Self {
        HeartbeatConfig {
            interval: Duration::ZERO,
            suspect_after: Duration::MAX,
            fail_after: Duration::MAX,
        }
    }
}

/// Static layout plus tuning of a staging deployment: which world ranks
/// are shards, producers, and consumers, and how the tier replicates.
#[derive(Debug, Clone)]
pub struct StagingConfig {
    /// World ranks running [`run_shard`].
    pub servers: Vec<usize>,
    /// World ranks that put (one put per key per producer); each must
    /// call [`StagingClient::done`] after its last put.
    pub producers: Vec<usize>,
    /// World ranks that get; each must call [`StagingClient::done`]
    /// after its last get.
    pub consumers: Vec<usize>,
    /// Replication factor `k`: each key lands on `min(k, |servers|)`
    /// distinct shards.
    pub replication: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Heartbeat cadence and failure thresholds.
    pub hb: HeartbeatConfig,
    /// Whether a Failed transition triggers shard-side re-replication
    /// ([`recovery`]). Off, repair happens only via client read repair.
    pub recovery: bool,
}

impl StagingConfig {
    /// A deployment with the default replication (k = 2), 16 vnodes per
    /// shard, default heartbeat cadence, and recovery enabled.
    pub fn new(servers: Vec<usize>, producers: Vec<usize>, consumers: Vec<usize>) -> Self {
        StagingConfig {
            servers,
            producers,
            consumers,
            replication: 2,
            vnodes: 16,
            hb: HeartbeatConfig::default_cadence(),
            recovery: true,
        }
    }

    /// The deployment's hash ring. Fails (typed, not a panic) on an
    /// empty server list.
    pub fn ring(&self) -> Result<HashRing, RingError> {
        HashRing::new(&self.servers, self.vnodes)
    }
}

/// Canonical storage key of a named, versioned array.
pub fn staging_key(name: &str, version: u64) -> String {
    format!("{name}@{version}")
}
