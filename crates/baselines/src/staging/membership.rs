//! Heartbeat membership: a pure state machine over peer health.
//!
//! Each shard runs one `Membership` over its peer shards. Receiving any
//! gossip from a peer refreshes it; [`Membership::tick`] degrades silent
//! peers Healthy → Suspected → Failed against the `obsv::clock`
//! timeline. The two-threshold design is what makes a *lost* heartbeat
//! (a fault plan's drop-once, a congested lane) survivable: Suspected is
//! a reversible warning — the next heartbeat heals it — while Failed is
//! permanent and is the only state that triggers re-replication. The
//! module is deliberately free of I/O so the escalation logic is
//! unit-testable with hand-fed timestamps.

use std::time::Duration;

/// Health of one peer as observed by one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Heard from recently.
    Healthy,
    /// Silent past `suspect_after`; reversible.
    Suspected,
    /// Silent past `fail_after`; permanent — ranks do not restart in
    /// this fault model, so there is no Failed → Healthy edge.
    Failed,
}

struct Peer {
    rank: usize,
    last_heard_ns: u64,
    health: Health,
}

/// One shard's view of its peers' liveness.
pub struct Membership {
    peers: Vec<Peer>,
    suspect_after_ns: u64,
    fail_after_ns: u64,
}

impl Membership {
    /// Track `peers`, all initially Healthy as of `now_ns`.
    pub fn new(
        peers: &[usize],
        now_ns: u64,
        suspect_after: Duration,
        fail_after: Duration,
    ) -> Self {
        Membership {
            peers: peers
                .iter()
                .map(|&rank| Peer { rank, last_heard_ns: now_ns, health: Health::Healthy })
                .collect(),
            suspect_after_ns: u64::try_from(suspect_after.as_nanos()).unwrap_or(u64::MAX),
            fail_after_ns: u64::try_from(fail_after.as_nanos()).unwrap_or(u64::MAX),
        }
    }

    /// Record gossip from `rank`. A Suspected peer heals back to
    /// Healthy; a Failed peer stays failed (its data are already being
    /// re-replicated — un-failing it would fork the replica sets).
    /// Returns the peer's health after the update.
    pub fn heard_from(&mut self, rank: usize, now_ns: u64) -> Option<Health> {
        let p = self.peers.iter_mut().find(|p| p.rank == rank)?;
        if p.health != Health::Failed {
            p.last_heard_ns = now_ns;
            p.health = Health::Healthy;
        }
        Some(p.health)
    }

    /// Declare `rank` Failed on direct evidence (e.g. the transport
    /// reported the rank dead), skipping the timers. Returns `true` if
    /// this is *news* — the caller only triggers recovery once.
    pub fn mark_failed(&mut self, rank: usize) -> bool {
        match self.peers.iter_mut().find(|p| p.rank == rank) {
            Some(p) if p.health != Health::Failed => {
                p.health = Health::Failed;
                true
            }
            _ => false,
        }
    }

    /// Advance the timers to `now_ns`; returns every transition this
    /// tick as `(rank, new health)` — at most one step per peer per
    /// tick, so a long scheduling stall still surfaces the Suspected
    /// warning before the Failed verdict.
    pub fn tick(&mut self, now_ns: u64) -> Vec<(usize, Health)> {
        let mut out = Vec::new();
        for p in &mut self.peers {
            let silent = now_ns.saturating_sub(p.last_heard_ns);
            let next = match p.health {
                Health::Healthy if silent >= self.suspect_after_ns => Health::Suspected,
                Health::Suspected if silent >= self.fail_after_ns => Health::Failed,
                h => h,
            };
            if next != p.health {
                p.health = next;
                out.push((p.rank, next));
            }
        }
        out
    }

    /// Current health of `rank` (None for an untracked rank).
    pub fn health(&self, rank: usize) -> Option<Health> {
        self.peers.iter().find(|p| p.rank == rank).map(|p| p.health)
    }

    /// The ranks currently declared Failed.
    pub fn failed(&self) -> Vec<usize> {
        self.peers.iter().filter(|p| p.health == Health::Failed).map(|p| p.rank).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn m() -> Membership {
        Membership::new(&[3, 7], 0, Duration::from_millis(50), Duration::from_millis(150))
    }

    #[test]
    fn silence_escalates_suspected_then_failed() {
        let mut m = m();
        assert!(m.tick(49 * MS).is_empty());
        assert_eq!(m.tick(50 * MS), vec![(3, Health::Suspected), (7, Health::Suspected)]);
        assert!(m.tick(149 * MS).is_empty(), "suspected holds until fail_after");
        assert_eq!(m.tick(150 * MS), vec![(3, Health::Failed), (7, Health::Failed)]);
        assert_eq!(m.failed(), vec![3, 7]);
    }

    #[test]
    fn heartbeat_heals_a_suspected_peer() {
        let mut m = m();
        m.tick(60 * MS);
        assert_eq!(m.health(3), Some(Health::Suspected));
        assert_eq!(m.heard_from(3, 70 * MS), Some(Health::Healthy));
        // The clock restarts from the heartbeat, not from zero.
        assert!(m.tick(110 * MS).is_empty());
        assert_eq!(m.health(3), Some(Health::Healthy));
        // Peer 7 stayed silent and keeps escalating independently of
        // peer 3, which heartbeats on.
        assert_eq!(m.heard_from(3, 115 * MS), Some(Health::Healthy));
        m.tick(160 * MS);
        assert_eq!(m.health(7), Some(Health::Failed));
        assert_eq!(m.health(3), Some(Health::Healthy));
    }

    #[test]
    fn failed_is_permanent() {
        let mut m = m();
        m.tick(200 * MS); // -> Suspected (one step per tick)
        m.tick(201 * MS); // -> Failed
        assert_eq!(m.health(3), Some(Health::Failed));
        assert_eq!(m.heard_from(3, 202 * MS), Some(Health::Failed), "no resurrection");
        assert_eq!(m.health(3), Some(Health::Failed));
    }

    #[test]
    fn mark_failed_reports_news_only_once() {
        let mut m = m();
        assert!(m.mark_failed(7));
        assert!(!m.mark_failed(7), "second report is not news");
        assert!(!m.mark_failed(42), "unknown rank is not news");
        assert_eq!(m.failed(), vec![7]);
    }

    #[test]
    fn skips_a_step_never() {
        // Even a huge stall yields Suspected first, Failed a tick later.
        let mut m = m();
        assert_eq!(m.tick(10_000 * MS), vec![(3, Health::Suspected), (7, Health::Suspected)]);
        assert_eq!(m.tick(10_001 * MS), vec![(3, Health::Failed), (7, Health::Failed)]);
    }
}
