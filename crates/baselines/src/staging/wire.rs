//! Codec pairs for the staging tier's frames.
//!
//! Every `enc_*`/`dec_*` pair round-trips and carries a doctest proving
//! it — the same convention `lowfive::protocol` uses, so `docs/
//! PROTOCOL.md` stays greppable against the code. Method ids live in
//! [`crate::staging`] (`DS_RPUT` …); these functions encode only the
//! argument bytes that follow the RPC header.

use bytes::Bytes;
use minih5::codec::{Reader, Writer};
use minih5::{BBox, H5Result};

/// One intersecting piece of a get reply: the intersection box and its
/// row-major packed bytes.
pub type GetPiece = (BBox, Vec<u8>);
/// Decoded get reply: the completeness flag plus the pieces.
pub type GetReply = (bool, Vec<GetPiece>);
/// One full stored entry on the wire: `(producer, bbox, data)`.
pub type RerepEntry = (u64, BBox, Bytes);

/// Encode a replicated put: `[key][producer u64][bbox][data]`.
///
/// ```
/// use baselines::staging::wire::{enc_put, dec_put};
/// use minih5::BBox;
/// let bb = BBox::new(vec![0, 4], vec![2, 8]);
/// let (key, producer, bb2, data) = dec_put(&enc_put("grid@0", 3, &bb, b"abcd")).unwrap();
/// assert_eq!((key.as_str(), producer, bb2, &data[..]), ("grid@0", 3, bb, &b"abcd"[..]));
/// ```
pub fn enc_put(key: &str, producer: u64, bbox: &BBox, data: &[u8]) -> Bytes {
    let mut w = Writer::new();
    w.put_str(key);
    w.put_u64(producer);
    w.put(bbox);
    w.put_bytes(data);
    w.finish()
}

/// Decode a replicated put.
pub fn dec_put(args: &[u8]) -> H5Result<(String, u64, BBox, Bytes)> {
    let mut r = Reader::new(args);
    let key = r.get_str()?;
    let producer = r.get_u64()?;
    let bbox: BBox = r.get()?;
    let data = Bytes::copy_from_slice(r.get_bytes()?);
    Ok((key, producer, bbox, data))
}

/// Encode a replicated get: `[key][query bbox][elem size u64]`.
///
/// ```
/// use baselines::staging::wire::{enc_get, dec_get};
/// use minih5::BBox;
/// let qbb = BBox::new(vec![1], vec![5]);
/// let (key, qbb2, es) = dec_get(&enc_get("grid@2", &qbb, 8)).unwrap();
/// assert_eq!((key.as_str(), qbb2, es), ("grid@2", qbb, 8));
/// ```
pub fn enc_get(key: &str, qbox: &BBox, es: usize) -> Bytes {
    let mut w = Writer::new();
    w.put_str(key);
    w.put(qbox);
    w.put_u64(es as u64);
    w.finish()
}

/// Decode a replicated get.
pub fn dec_get(args: &[u8]) -> H5Result<(String, BBox, usize)> {
    let mut r = Reader::new(args);
    let key = r.get_str()?;
    let qbox: BBox = r.get()?;
    let es = r.get_u64()? as usize;
    Ok((key, qbox, es))
}

/// Encode a get reply: `[complete u8][n u64]` then `n` × `[ibox][bytes]`.
/// `complete` says the shard holds puts from *every* producer for the
/// key; an incomplete reply is advisory — the client keeps looking.
///
/// ```
/// use baselines::staging::wire::{enc_get_reply, dec_get_reply};
/// use minih5::BBox;
/// let pieces = vec![(BBox::new(vec![0], vec![2]), vec![1u8, 2])];
/// let (complete, back) = dec_get_reply(&enc_get_reply(true, &pieces)).unwrap();
/// assert!(complete);
/// assert_eq!(back, pieces);
/// ```
pub fn enc_get_reply(complete: bool, pieces: &[GetPiece]) -> Bytes {
    let mut w = Writer::new();
    w.put_u8(u8::from(complete));
    w.put_u64(pieces.len() as u64);
    for (ibox, body) in pieces {
        w.put(ibox);
        w.put_bytes(body);
    }
    w.finish()
}

/// Decode a get reply.
pub fn dec_get_reply(reply: &[u8]) -> H5Result<GetReply> {
    let mut r = Reader::new(reply);
    let complete = r.get_u8()? != 0;
    let n = r.get_u64()? as usize;
    let mut pieces = Vec::with_capacity(n);
    for _ in 0..n {
        let ibox: BBox = r.get()?;
        let body = r.get_bytes()?.to_vec();
        pieces.push((ibox, body));
    }
    Ok((complete, pieces))
}

/// Encode a re-replication push: `[key][n u64]` then `n` ×
/// `[producer u64][bbox][data]` — *full* entries, not query pieces, so
/// the receiving shard becomes a first-class replica.
///
/// ```
/// use baselines::staging::wire::{enc_rerep, dec_rerep};
/// use bytes::Bytes;
/// use minih5::BBox;
/// let entries = vec![(1u64, BBox::new(vec![0], vec![2]), Bytes::from_static(b"xy"))];
/// let (key, back) = dec_rerep(&enc_rerep("grid@0", &entries)).unwrap();
/// assert_eq!((key.as_str(), back), ("grid@0", entries));
/// ```
pub fn enc_rerep(key: &str, entries: &[RerepEntry]) -> Bytes {
    let mut w = Writer::new();
    w.put_str(key);
    w.put_u64(entries.len() as u64);
    for (producer, bbox, data) in entries {
        w.put_u64(*producer);
        w.put(bbox);
        w.put_bytes(data);
    }
    w.finish()
}

/// Decode a re-replication push.
pub fn dec_rerep(args: &[u8]) -> H5Result<(String, Vec<RerepEntry>)> {
    let mut r = Reader::new(args);
    let key = r.get_str()?;
    let n = r.get_u64()? as usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let producer = r.get_u64()?;
        let bbox: BBox = r.get()?;
        let data = Bytes::copy_from_slice(r.get_bytes()?);
        entries.push((producer, bbox, data));
    }
    Ok((key, entries))
}

/// Encode a read-repair request: `[key][target rank u64]` — "push your
/// entries for `key` to `target`".
///
/// ```
/// use baselines::staging::wire::{enc_sync, dec_sync};
/// let (key, target) = dec_sync(&enc_sync("grid@1", 9)).unwrap();
/// assert_eq!((key.as_str(), target), ("grid@1", 9));
/// ```
pub fn enc_sync(key: &str, target: usize) -> Bytes {
    let mut w = Writer::new();
    w.put_str(key);
    w.put_u64(target as u64);
    w.finish()
}

/// Decode a read-repair request.
pub fn dec_sync(args: &[u8]) -> H5Result<(String, usize)> {
    let mut r = Reader::new(args);
    let key = r.get_str()?;
    let target = r.get_u64()? as usize;
    Ok((key, target))
}
