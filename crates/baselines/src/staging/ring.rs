//! Consistent-hash ring with virtual nodes.
//!
//! Each shard owns `vnodes` points on a 64-bit circle; a key hashes to a
//! point and its replica set is the next `k` **distinct** shards walking
//! clockwise from there. Virtual nodes smooth the load (a shard's share
//! of the keyspace concentrates toward `1/n` as vnodes grow) and — the
//! property replication leans on — give every key a *different* replica
//! ordering, so a shard failure spreads its keys' repairs over all
//! survivors instead of dumping them on one neighbor.

use std::fmt;

/// Typed failure of ring construction — the empty-server-list case that
/// used to be a modulo-by-zero panic in `DsConfig::home_server`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// No servers to hash onto.
    EmptyRing,
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::EmptyRing => write!(f, "consistent-hash ring has no servers"),
        }
    }
}

impl std::error::Error for RingError {}

impl From<RingError> for minih5::H5Error {
    fn from(e: RingError) -> Self {
        minih5::H5Error::Vol(e.to_string())
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation. FNV-1a
/// alone clusters nearby inputs; one finalizer pass scatters them over
/// the whole circle.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The ring: a sorted list of `(point, shard rank)` pairs.
#[derive(Debug, Clone)]
pub struct HashRing {
    points: Vec<(u64, usize)>,
    nservers: usize,
}

impl HashRing {
    /// Place `vnodes` points per server (at least one). The point layout
    /// is a pure function of the server ranks, so every participant —
    /// shard, producer, consumer — computes the identical ring.
    pub fn new(servers: &[usize], vnodes: usize) -> Result<Self, RingError> {
        if servers.is_empty() {
            return Err(RingError::EmptyRing);
        }
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(servers.len() * vnodes);
        for &s in servers {
            for v in 0..vnodes {
                points.push((splitmix64(((s as u64) << 20) ^ v as u64), s));
            }
        }
        // Sort by point, rank as tiebreak: collisions (astronomically
        // rare) still order deterministically on every participant.
        points.sort_unstable();
        Ok(HashRing { points, nservers: servers.len() })
    }

    /// Number of distinct servers on the ring.
    pub fn num_servers(&self) -> usize {
        self.nservers
    }

    /// Where `key` lands on the circle.
    fn key_point(key: &str) -> u64 {
        splitmix64(fnv1a(key.as_bytes()))
    }

    /// The first replica of `key` — the successor shard of its point.
    pub fn primary(&self, key: &str) -> usize {
        self.replicas(key, 1)[0]
    }

    /// The `min(k, servers)` distinct shards holding `key`, in ring
    /// (preference) order.
    pub fn replicas(&self, key: &str, k: usize) -> Vec<usize> {
        self.replicas_excluding(key, k, &[])
    }

    /// As [`HashRing::replicas`], skipping the shards in `excluded`
    /// (known dead): the walk continues clockwise, so replacements join
    /// the set in the same deterministic order on every client.
    pub fn replicas_excluding(&self, key: &str, k: usize, excluded: &[usize]) -> Vec<usize> {
        let h = Self::key_point(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut out = Vec::new();
        for i in 0..self.points.len() {
            let (_, s) = self.points[(start + i) % self.points.len()];
            if excluded.contains(&s) || out.contains(&s) {
                continue;
            }
            out.push(s);
            if out.len() == k {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_server_list_is_a_typed_error() {
        assert_eq!(HashRing::new(&[], 8).unwrap_err(), RingError::EmptyRing);
    }

    #[test]
    fn single_server_degenerates_cleanly() {
        let ring = HashRing::new(&[7], 16).unwrap();
        for key in ["a@0", "b@1", "grid@9"] {
            assert_eq!(ring.primary(key), 7);
            assert_eq!(ring.replicas(key, 3), vec![7], "k clamps to the server count");
        }
    }

    #[test]
    fn replicas_are_distinct_and_prefix_stable() {
        let servers = [2, 5, 9, 11, 14];
        let ring = HashRing::new(&servers, 16).unwrap();
        for v in 0..50u64 {
            let key = format!("grid@{v}");
            let r3 = ring.replicas(&key, 3);
            assert_eq!(r3.len(), 3);
            let mut uniq = r3.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "replicas must be distinct shards: {r3:?}");
            // k-prefix property: the k-set is a prefix of the (k+1)-set.
            let r4 = ring.replicas(&key, 4);
            assert_eq!(&r4[..3], &r3[..]);
            assert!(r3.iter().all(|s| servers.contains(s)));
        }
    }

    #[test]
    fn exclusion_removes_only_the_dead_and_preserves_order() {
        let ring = HashRing::new(&[0, 1, 2, 3, 4], 16).unwrap();
        for v in 0..50u64 {
            let key = format!("k@{v}");
            let full = ring.replicas(&key, 5);
            let dead = full[1];
            let alive = ring.replicas_excluding(&key, 4, &[dead]);
            assert!(!alive.contains(&dead));
            // Survivors keep their relative ring order; the replacement
            // appends where the walk finds it.
            let expect: Vec<usize> = full.iter().copied().filter(|&s| s != dead).collect();
            assert_eq!(alive, expect[..4].to_vec());
        }
    }

    #[test]
    fn load_spreads_over_vnodes() {
        let servers: Vec<usize> = (0..4).collect();
        let ring = HashRing::new(&servers, 64).unwrap();
        let mut counts = [0usize; 4];
        for v in 0..4000u64 {
            counts[ring.primary(&format!("key-{v}"))] += 1;
        }
        // With 64 vnodes each shard should own a reasonable share —
        // loose bounds, this is a smoke test of the placement, not a
        // statistics assertion.
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 400 && c < 2200, "server {s} owns {c} of 4000 keys: {counts:?}");
        }
    }
}
