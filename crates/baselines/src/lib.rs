//! # baselines — the comparator transports from the paper's evaluation
//!
//! Three from-scratch implementations of the systems LowFive is measured
//! against in §IV:
//!
//! * [`puempi`] — the "hand-written MPI code that performs the same data
//!   redistribution" of Fig. 7. Both sides know the decompositions
//!   analytically; producers ship each box intersection **serializing one
//!   point at a time**, exactly the behavior the paper credits for
//!   LowFive's small-scale win ("LowFive optimizes the serialization of
//!   contiguous regions better than the hand-written code, which simply
//!   iterates over all the data points … one point at a time").
//!
//! * [`bredala`] — the Decaf transport of Fig. 9/10: a container of
//!   annotated fields, each redistributed under a **contiguous** policy
//!   (1-d lists, efficient chunk moves) or a **bounding-box** policy
//!   (grids; coordinates travel with every point and intersections are
//!   computed per point — the measured pathology on the grid dataset).
//!
//! * [`dataspaces`] — the staging service of Fig. 8: dedicated server
//!   ranks index `put_local` registrations (data stay on producers) and
//!   answer queries; consumers then pull directly from producers. Fewer
//!   round trips than index–serve–query, at the cost of extra resources
//!   and an n-d-array-only data model.
//!
//! On top of the DataSpaces comparator, [`staging`] grows the toy single-
//! home-server layout into a deployable service shape: a consistent-hash
//! ring of shards with k-way replication, heartbeat failure detection,
//! read repair, and re-replication — the "millions of concurrent
//! consumers" direction of the roadmap, validated by a chaos-test suite
//! that kills shards mid-query.

pub mod boxes;
pub mod bredala;
pub mod dataspaces;
pub mod puempi;
pub mod staging;
